//! Cardinality estimation for a query optimizer (paper Exp. 1).
//!
//! Generates the synthetic IMDb (JOB-light schema), learns a DeepDB
//! ensemble, and compares its estimates against the ground truth and a
//! Postgres-style MCV+histogram estimator on a slice of the JOB-light
//! workload — showing where the independence assumption fails and the
//! data-driven model does not.
//!
//! Run with: `cargo run --release --example cardinality_estimation`

use deepdb::baselines::postgres::PostgresEstimator;
use deepdb::data::{imdb, joblight, Scale};
use deepdb::prelude::*;

fn main() -> Result<(), DeepDbError> {
    let scale = Scale {
        factor: 0.2,
        seed: 7,
    };
    println!("generating IMDb-synth (JOB-light schema)...");
    let db = imdb::generate(scale);
    println!(
        "{} titles / {} total rows across {} tables",
        db.table(db.table_id("title")?).n_rows(),
        db.total_rows(),
        db.n_tables()
    );

    println!("learning the RSPN ensemble (data-driven, no workload needed)...");
    let t0 = std::time::Instant::now();
    let ensemble = EnsembleBuilder::new(&db)
        .params(EnsembleParams {
            seed: scale.seed,
            ..EnsembleParams::default()
        })
        .build()?;
    println!(
        "ensemble ready in {:.1?}: {} RSPNs\n",
        t0.elapsed(),
        ensemble.rspns().len()
    );

    let postgres = PostgresEstimator::analyze(&db);

    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>8} {:>8}",
        "query", "truth", "deepdb", "postgres", "q(deep)", "q(pg)"
    );
    let workload = joblight::job_light(&db, scale.seed);
    let qerr = |est: f64, truth: f64| -> f64 {
        let t = truth.max(1.0);
        (est.max(1.0) / t).max(t / est.max(1.0))
    };
    let mut deep_qs = Vec::new();
    let mut pg_qs = Vec::new();
    for nq in workload.iter().take(15) {
        let truth = execute(&db, &nq.query).expect("executor").scalar().count as f64;
        let d = compile::estimate_cardinality(&ensemble, &db, &nq.query)?;
        let p = postgres.estimate(&db, &nq.query);
        deep_qs.push(qerr(d, truth));
        pg_qs.push(qerr(p, truth));
        println!(
            "{:<8} {:>10.0} {:>12.1} {:>12.1} {:>8.2} {:>8.2}",
            nq.name,
            truth,
            d,
            p,
            qerr(d, truth),
            qerr(p, truth)
        );
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    println!(
        "\nmedian q-error over {} queries: DeepDB {:.2} vs Postgres-style {:.2}",
        deep_qs.len(),
        med(&mut deep_qs),
        med(&mut pg_qs)
    );

    // An optimizer re-estimates the same query *shapes* with different
    // literals all day. `Ensemble::prepare` plans and translates a shape
    // once; each `execute` only rebinds the literal slots — no planning,
    // no allocation. Find a workload shape with at least one bindable
    // literal and sweep it.
    let (name, query, mut prepared) = workload
        .iter()
        .find_map(|nq| {
            let p = ensemble.prepare(&db, &nq.query).ok()?;
            (p.is_bound() && p.n_literals() > 0).then(|| (nq.name.clone(), nq.query.clone(), p))
        })
        .expect("a preparable workload query");
    let mut literals = query_literals(&query);
    println!(
        "\nprepared-query rebinding on {name} ({} literal slot(s)):",
        literals.len()
    );
    let base = literals[0];
    for delta in [-2.0, -1.0, 0.0, 1.0, 2.0] {
        literals[0] = base + delta;
        let est = prepared.execute(&ensemble, &db, &literals)?;
        println!(
            "  literal[0] = {:>8.0}  ->  estimate {:>12.1}",
            literals[0], est.value
        );
    }
    literals[0] = base;
    let stats = ensemble.plan_cache_stats(); // before the toggles reset counters
    ensemble.set_plan_cache_capacity(0); // bypass: honest planning cost
    let cold = avg_ns(|| {
        compile::estimate_cardinality(&ensemble, &db, &query).expect("cold");
    });
    ensemble.set_plan_cache_capacity(256);
    let rebind = avg_ns(|| {
        prepared.execute(&ensemble, &db, &literals).expect("rebind");
    });
    println!(
        "planned-cold {cold:.0} ns/query vs prepared {rebind:.0} ns/query ({:.1}x); \
         cache stats after the workload: {stats:?}",
        cold / rebind.max(1.0),
    );
    Ok(())
}

fn avg_ns(mut f: impl FnMut()) -> f64 {
    let t0 = std::time::Instant::now();
    for _ in 0..200 {
        f();
    }
    t0.elapsed().as_nanos() as f64 / 200.0
}
