//! Approximate query processing with confidence intervals (paper Exp. 2).
//!
//! Learns an ensemble over the Flights dataset and answers COUNT/AVG/SUM
//! queries — including GROUP BY — purely from the model, comparing against
//! exact execution and reporting the §5.1 confidence intervals.
//!
//! Run with: `cargo run --release --example approximate_query_processing`

use deepdb::data::{flights, Scale};
use deepdb::prelude::*;

fn main() -> Result<(), DeepDbError> {
    let scale = Scale {
        factor: 0.3,
        seed: 3,
    };
    let db = flights::generate(scale);
    let f = db.table_id("flights")?;
    println!("flights table: {} rows", db.table(f).n_rows());

    let ensemble = EnsembleBuilder::new(&db)
        .params(EnsembleParams {
            seed: scale.seed,
            ..EnsembleParams::default()
        })
        .build()?;

    // Scalar AVG with CI: average departure delay of one airline.
    use deepdb::data::flights::cols;
    let q = Query::count(vec![f])
        .filter(f, cols::AIRLINE, PredOp::Cmp(CmpOp::Eq, Value::Int(2)))
        .aggregate(Aggregate::Avg(ColumnRef {
            table: f,
            column: cols::DEP_DELAY,
        }));
    let truth = execute(&db, &q).expect("executor").scalar().avg().unwrap();
    let t0 = std::time::Instant::now();
    let out = execute_aqp(&ensemble, &db, &q)?;
    let latency = t0.elapsed();
    if let AqpOutput::Scalar(r) = out {
        println!(
            "AVG(dep_delay | airline=2): {:.2} ∈ [{:.2}, {:.2}]  (exact {:.2}, {:.0}µs vs full scan)",
            r.value,
            r.ci_low,
            r.ci_high,
            truth,
            latency.as_secs_f64() * 1e6,
        );
    }

    // Grouped COUNT: flights per year for a congested origin airport.
    let q = Query::count(vec![f])
        .filter(f, cols::ORIGIN, PredOp::Cmp(CmpOp::Eq, Value::Int(3)))
        .group(f, cols::YEAR);
    let truth = execute(&db, &q).expect("executor");
    let out = execute_aqp(&ensemble, &db, &q)?;
    println!("\nflights from origin 3 per year (estimate vs exact):");
    for (key, r) in out.groups() {
        let t = truth
            .groups()
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, a)| a.count)
            .unwrap_or(0);
        println!("  year {:?}: {:>8.0}  (exact {:>6})", key[0], r.value, t);
    }

    // A very selective SUM — where sample-based AQP would starve.
    let q = Query::count(vec![f])
        .filter(f, cols::ORIGIN, PredOp::Cmp(CmpOp::Eq, Value::Int(9)))
        .filter(f, cols::MONTH, PredOp::Cmp(CmpOp::Eq, Value::Int(2)))
        .filter(f, cols::YEAR, PredOp::Cmp(CmpOp::Eq, Value::Int(2016)))
        .aggregate(Aggregate::Sum(ColumnRef {
            table: f,
            column: cols::DISTANCE,
        }));
    let truth = execute(&db, &q).expect("executor").scalar().sum;
    if let AqpOutput::Scalar(r) = execute_aqp(&ensemble, &db, &q)? {
        println!(
            "\nselective SUM(distance): estimate {:.0} (exact {:.0}, rel err {:.1}%)",
            r.value,
            truth,
            100.0 * (r.value - truth).abs() / truth.max(1.0)
        );
    }
    Ok(())
}
