//! Quickstart: the paper's running example end to end.
//!
//! Builds the Customer/Order database of Figure 5, learns an RSPN ensemble,
//! and reproduces the worked queries of §4: Q1 (single-table count through a
//! joint RSPN), Q2 (join count), Q3 (tuple-factor-normalized AVG) — then
//! absorbs inserts without retraining.
//!
//! Run with: `cargo run --release --example quickstart`

use deepdb::prelude::*;

fn main() -> Result<(), DeepDbError> {
    // The exact data of paper Figure 5 (3 customers, 4 orders).
    let mut db = deepdb::storage::fixtures::paper_customer_order();
    let customer = db.table_id("customer")?;
    let orders = db.table_id("orders")?;

    // Offline phase (Figure 2): learn the RSPN ensemble. The paper's
    // hyper-parameters (RDC threshold 0.3, min instance slice 1%) are the
    // defaults; we force the joint RSPN because a 3-row table cannot pass a
    // statistical correlation test.
    let params = EnsembleParams {
        sample_size: 20_000,
        rdc_threshold: 0.0,
        ..EnsembleParams::default()
    };
    let mut ensemble = EnsembleBuilder::new(&db).params(params).build()?;
    println!(
        "learned {} RSPN(s); joint full-outer-join size |J| = {}",
        ensemble.rspns().len(),
        ensemble
            .rspns()
            .iter()
            .map(|r| r.full_join_count())
            .max()
            .unwrap_or(0),
    );

    // Q1: SELECT COUNT(*) FROM customer WHERE c_region = 'EUROPE'  → 2.
    let q1 =
        Query::count(vec![customer]).filter(customer, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
    let est = compile::estimate_count(&ensemble, &db, &q1)?;
    let truth = execute(&db, &q1).expect("executor").scalar().count;
    println!(
        "Q1 (European customers):      estimate {:.2}, truth {truth}",
        est.value
    );

    // Q2: COUNT over customer ⋈ orders WHERE region=EUROPE AND channel=ONLINE → 1.
    let q2 = Query::count(vec![customer, orders])
        .filter(customer, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
        .filter(orders, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
    let est = compile::estimate_count(&ensemble, &db, &q2)?;
    let truth = execute(&db, &q2).expect("executor").scalar().count;
    println!(
        "Q2 (EU online orders):        estimate {:.2}, truth {truth}",
        est.value
    );

    // Q3: AVG(c_age) of European customers → 35 (not the join-weighted 30!).
    let q3 = Query::count(vec![customer])
        .filter(customer, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
        .aggregate(Aggregate::Avg(ColumnRef {
            table: customer,
            column: 1,
        }));
    let est = compile::estimate_avg(&ensemble, &db, &q3)?;
    println!(
        "Q3 (AVG age of Europeans):    estimate {:.2}, truth 35.00",
        est.value
    );

    // AQP with a confidence interval.
    let out = execute_aqp(&ensemble, &db, &q1)?;
    if let AqpOutput::Scalar(r) = out {
        println!(
            "Q1 with 95% CI:               {:.2} ∈ [{:.2}, {:.2}]",
            r.value, r.ci_low, r.ci_high
        );
    }

    // Direct updates (paper Algorithm 1): insert young European customers —
    // the motivating scenario of §3.2 — and watch the model track them.
    println!("\ninserting 3 young European customers (no retraining)...");
    for (id, age) in [(4, 22), (5, 25), (6, 28)] {
        ensemble.apply_insert(
            &mut db,
            customer,
            &[Value::Int(id), Value::Int(age), Value::Int(0)],
        )?;
    }
    let est = compile::estimate_count(&ensemble, &db, &q1)?;
    let truth = execute(&db, &q1).expect("executor").scalar().count;
    println!(
        "Q1 after updates:             estimate {:.2}, truth {truth}",
        est.value
    );

    // Ensembles persist like indexes: snapshot, reload, keep estimating.
    let path = std::env::temp_dir().join("deepdb_quickstart.ens");
    ensemble.save_to_file(&path).expect("snapshot");
    let reloaded = Ensemble::load_from_file(&path).expect("reload");
    let est = compile::estimate_count(&reloaded, &db, &q1)?;
    println!(
        "Q1 from reloaded snapshot:    estimate {:.2} ({} bytes on disk)",
        est.value,
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );
    let _ = std::fs::remove_file(&path);
    Ok(())
}
