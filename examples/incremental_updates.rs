//! Direct model updates without retraining (paper §5.2 / Table 2).
//!
//! Learns an ensemble on 80% of the synthetic IMDb, streams the held-out
//! 20% through the RSPN update path (Algorithm 1), and shows that
//! cardinality estimates stay accurate — the capability workload-driven
//! models lack, since they must re-execute their training queries.
//!
//! Run with: `cargo run --release --example incremental_updates`

use deepdb::data::{joblight, updates, Scale};
use deepdb::prelude::*;

fn main() -> Result<(), DeepDbError> {
    let scale = Scale {
        factor: 0.15,
        seed: 9,
    };
    let (mut db, stream) = updates::split_imdb_random(scale, 0.2, 11);
    println!(
        "initial database: {} rows; held-out insert stream: {} tuples",
        db.total_rows(),
        stream.len()
    );

    let mut params = EnsembleParams {
        seed: scale.seed,
        ..EnsembleParams::default()
    };
    params.budget_factor = 0.0; // base ensemble, as in the paper's Table 2
    let mut ensemble = EnsembleBuilder::new(&db).params(params).build()?;

    let workload = joblight::job_light(&db, scale.seed);
    let sample: Vec<_> = workload.into_iter().take(20).collect();
    let median_qerr = |ens: &Ensemble, db: &Database| -> f64 {
        let mut qs: Vec<f64> = sample
            .iter()
            .map(|nq| {
                let truth = execute(db, &nq.query).expect("executor").scalar().count as f64;
                let est = compile::estimate_cardinality(ens, db, &nq.query).expect("estimate");
                (est.max(1.0) / truth.max(1.0)).max(truth.max(1.0) / est.max(1.0))
            })
            .collect();
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        qs[qs.len() / 2]
    };

    println!(
        "median q-error before updates: {:.3}",
        median_qerr(&ensemble, &db)
    );

    let t0 = std::time::Instant::now();
    let n = stream.len();
    for (table, values) in stream {
        ensemble.apply_insert(&mut db, table, &values)?;
    }
    ensemble.refresh_join_counts(&db)?;
    let dt = t0.elapsed();
    println!(
        "absorbed {n} inserts in {:.2?} ({:.0} tuples/s), no retraining",
        dt,
        n as f64 / dt.as_secs_f64()
    );

    println!(
        "median q-error after updates:  {:.3}",
        median_qerr(&ensemble, &db)
    );

    // Deletes are supported symmetrically.
    let title = db.table_id("title")?;
    let last_row = db.table(title).n_rows() - 1;
    ensemble.apply_delete(&mut db, title, last_row)?;
    println!("deleted one title; models and table stay consistent ✓");
    Ok(())
}
