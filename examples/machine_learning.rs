//! ML tasks on the AQP models, with zero extra training (paper Exp. 3).
//!
//! The same RSPN ensemble that answers AQP queries over the Flights data
//! also serves regression (conditional expectations) and classification
//! (most probable explanation) for any column given any feature subset.
//!
//! Run with: `cargo run --release --example machine_learning`

use deepdb::core_::ml::{predict_classification, predict_regression};
use deepdb::data::{flights, Scale};
use deepdb::prelude::*;

fn main() -> Result<(), DeepDbError> {
    let scale = Scale {
        factor: 0.2,
        seed: 5,
    };
    let db = flights::generate(scale);
    let f = db.table_id("flights")?;

    // Every ML entry point below takes `&ensemble`: predictions run on the
    // shared compiled arenas, so AQP and ML traffic can be served from the
    // same immutable models concurrently.
    let ensemble = EnsembleBuilder::new(&db)
        .params(EnsembleParams {
            seed: scale.seed,
            ..EnsembleParams::default()
        })
        .build()?;
    println!("ensemble learned once; every task below reuses it.\n");

    use deepdb::data::flights::cols;
    // Regression: predict air time from distance (strongly correlated by
    // construction: air_time ≈ distance / 7.8 + 18).
    for distance in [300.0, 900.0, 2000.0] {
        let pred = predict_regression(
            &ensemble,
            &db,
            f,
            cols::AIR_TIME,
            &[(cols::DISTANCE, Value::Float(distance))],
        )?;
        println!(
            "E[air_time | distance={distance:>6.0}] = {pred:>6.1} min (physics ≈ {:>6.1})",
            distance / 7.8 + 18.0
        );
    }

    // Regression with mixed evidence: arrival delay given departure delay.
    for dep in [-5.0, 30.0, 90.0] {
        let pred = predict_regression(
            &ensemble,
            &db,
            f,
            cols::ARR_DELAY,
            &[(cols::DEP_DELAY, Value::Float(dep))],
        )?;
        println!("E[arr_delay | dep_delay={dep:>5.0}] = {pred:>6.1} min");
    }

    // Classification via MPE: most probable airline for a very delayed
    // December flight (higher airline ids have heavier delay tails by
    // construction).
    let predicted = predict_classification(
        &ensemble,
        &db,
        f,
        cols::AIRLINE,
        &[(cols::MONTH, Value::Int(12))],
    )?;
    println!("\nMPE airline for a December flight: {predicted:?}");

    // Compare one regression against the exact conditional mean.
    let q = Query::count(vec![f])
        .filter(f, cols::ORIGIN, PredOp::Cmp(CmpOp::Eq, Value::Int(2)))
        .aggregate(Aggregate::Avg(ColumnRef {
            table: f,
            column: cols::TAXI_OUT,
        }));
    let exact = execute(&db, &q).expect("executor").scalar().avg().unwrap();
    let pred = predict_regression(
        &ensemble,
        &db,
        f,
        cols::TAXI_OUT,
        &[(cols::ORIGIN, Value::Int(2))],
    )?;
    println!("E[taxi_out | origin=2] = {pred:.2} (exact {exact:.2})");
    Ok(())
}
