//! Minimal in-tree replacement for `proptest`.
//!
//! The build environment has no network access, so the workspace patches
//! `proptest` to this crate. It supports the subset the test suites use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and multiple
//!   `#[test]` functions whose arguments are `pat in strategy` bindings;
//! * range strategies over the primitive integer/float types;
//! * tuple strategies (arity 2–6);
//! * `prop::collection::vec(strategy, len_range)`;
//! * `prop::option::of(strategy)`;
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! generated case index so it can be re-run deterministically (generation is
//! seeded per test name and case index).

use std::ops::Range;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// A `Vec` whose length is drawn from `len` and whose elements come
        /// from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = if self.len.start < self.len.end {
                    rng.gen_range(self.len.clone())
                } else {
                    self.len.start
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod option {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `None` with probability 1/4, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.gen::<f64>() < 0.25 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Derive a stable per-test seed from the test path and case index.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! proptest {
    // With a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    // Without a config header.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $(#[$meta])* fn $($rest)*);
    };
    (@funcs ($cfg:expr);) => {};
    (@funcs ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(concat!(module_path!(), "::", stringify!($name)), case);
                $(let $pat = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let run = std::panic::AssertUnwindSafe(|| {
                    $body;
                });
                if let Err(payload) = std::panic::catch_unwind(run) {
                    // Surface the failing case index so the deterministic
                    // generation can be replayed, then re-raise.
                    eprintln!(
                        "proptest {}: case {case} of {} failed",
                        stringify!($name),
                        config.cases
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range, tuple, vec, and option strategies generate in-bounds values.
        #[test]
        fn strategies_are_in_bounds(
            pairs in prop::collection::vec((0i64..6, 0i64..4), 5..20),
            x in 0.5f64..2.5,
            opt in prop::option::of(1u64..9),
        ) {
            prop_assert!(pairs.len() >= 5 && pairs.len() < 20);
            for (a, b) in &pairs {
                prop_assert!((0..6).contains(a));
                prop_assert!((0..4).contains(b));
            }
            prop_assert!((0.5..2.5).contains(&x));
            if let Some(v) = opt {
                prop_assert!((1..9).contains(&v), "v = {v}");
            }
        }
    }
}
