//! Minimal in-tree replacement for `criterion`.
//!
//! The build environment has no network access, so the workspace patches
//! `criterion` to this crate. It keeps the subset of the API the bench
//! targets use — `Criterion::bench_function`, `Bencher::iter` /
//! `iter_batched`, `criterion_group!` / `criterion_main!`, `black_box` —
//! and reports mean/median wall-clock time per iteration. There is no
//! statistical regression analysis; the numbers are honest medians over
//! `sample_size` timed samples.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not acted upon: every
/// batch is one setup + one routine call here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine` repeatedly; each sample is one batch of iterations
    /// sized so a sample lasts roughly `measurement_time / sample_size`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / iters.max(1) as f64;
        let target = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((target / per_iter.max(1e-9)).round() as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns.push(ns);
        }
    }

    /// Like [`Bencher::iter`] but with fresh input per sample; the setup call
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // One warm-up run.
        black_box(routine(setup()));
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{name:<48} time: [median {} mean {}]",
            fmt_ns(median),
            fmt_ns(mean)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
