//! Minimal in-tree replacement for the `rand` crate.
//!
//! The build environment has no network access, so the workspace patches
//! `rand` to this crate. It provides exactly the surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] for `f64`,
//! and [`Rng::gen_range`] over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the ChaCha12
//! stream the real `StdRng` uses, but every consumer in this workspace only
//! relies on determinism-per-seed and reasonable statistical quality, both of
//! which xoshiro256++ provides.

use std::ops::Range;

/// Seedable construction (the workspace only ever seeds from a `u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling interface.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Sample a value of `T` from its standard distribution
    /// (`f64` → uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < span / 2^64 — negligible for every range
                // in this workspace (all far below 2^32).
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }
}
