//! Error type for DeepDB core operations.

use deepdb_storage::StorageError;

/// Errors surfaced by ensemble construction and query compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum DeepDbError {
    /// Underlying storage/catalog error.
    Storage(StorageError),
    /// The query references tables no RSPN (combination) can answer.
    NotAnswerable(String),
    /// The query shape is outside the supported class.
    Unsupported(String),
    /// Ensemble construction failed.
    Learning(String),
    /// A [`PreparedQuery`](crate::PreparedQuery) outlived its plan epoch:
    /// the ensemble was recompiled or absorbed updates since `prepare`, so
    /// the frozen probe artifact may no longer match the models. Re-prepare
    /// against the current ensemble.
    StalePlan,
}

impl From<StorageError> for DeepDbError {
    fn from(e: StorageError) -> Self {
        DeepDbError::Storage(e)
    }
}

impl std::fmt::Display for DeepDbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Storage(e) => write!(f, "storage error: {e}"),
            Self::NotAnswerable(msg) => write!(f, "query not answerable by ensemble: {msg}"),
            Self::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
            Self::Learning(msg) => write!(f, "ensemble learning failed: {msg}"),
            Self::StalePlan => write!(
                f,
                "prepared query is stale: the ensemble's plan epoch advanced \
                 (recompile or update since prepare); re-prepare required"
            ),
        }
    }
}

impl std::error::Error for DeepDbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            _ => None,
        }
    }
}
