//! Error type for DeepDB core operations.
//!
//! # Error taxonomy
//!
//! Serving callers (see [`crate::serve`]) should branch on two classes:
//!
//! * **Retryable, transient** — the query was fine, the moment was not.
//!   Retrying the same request (possibly after backoff) is expected to
//!   succeed: [`DeepDbError::Overloaded`] (admission queue full — shed load
//!   or back off), [`DeepDbError::DeadlineExceeded`] (the deadline passed
//!   before the answer was ready — retry with a looser deadline), and
//!   [`DeepDbError::StalePlan`] (a maintenance epoch bump landed mid-flight;
//!   the serving layer already retries once internally, so seeing it means
//!   maintenance is churning — retry after it settles).
//! * **Caller / deployment bugs** — retrying the identical request will fail
//!   the identical way: [`DeepDbError::NotAnswerable`] and
//!   [`DeepDbError::Unsupported`] (the query itself is outside what the
//!   ensemble answers), [`DeepDbError::Storage`] and
//!   [`DeepDbError::Learning`] (bad catalog/construction input), and
//!   [`DeepDbError::QueryPanicked`] (a fault inside this query's own probe
//!   evaluation; co-batched queries were isolated from it, and the payload
//!   message names the panic — file a bug with it).

use deepdb_storage::StorageError;

/// Errors surfaced by ensemble construction, query compilation, and serving.
#[derive(Debug, Clone, PartialEq)]
pub enum DeepDbError {
    /// Underlying storage/catalog error.
    Storage(StorageError),
    /// The query references tables no RSPN (combination) can answer.
    NotAnswerable(String),
    /// The query shape is outside the supported class.
    Unsupported(String),
    /// Ensemble construction failed.
    Learning(String),
    /// A [`PreparedQuery`](crate::PreparedQuery) outlived its plan epoch:
    /// the ensemble was recompiled or absorbed updates since `prepare`, so
    /// the frozen probe artifact may no longer match the models. Re-prepare
    /// against the current ensemble. **Retryable** — the serving front-end
    /// re-prepares and retries once before surfacing this.
    StalePlan,
    /// The serving admission queue is full; the request was rejected before
    /// any work was done. **Retryable** after backoff — classic load
    /// shedding, never a statement about the query itself.
    Overloaded,
    /// The per-query deadline passed before the answer was ready (the sweep
    /// was cooperatively cancelled at a tile boundary, or the result missed
    /// its pickup window). **Retryable** with a looser deadline.
    DeadlineExceeded,
    /// Evaluation of *this* query's probes panicked (payload message
    /// inside). Co-batched queries were isolated and completed; the worker
    /// pool self-healed. **Not retryable**: the same probes will panic the
    /// same way — this is a bug report, not a load signal.
    QueryPanicked(String),
}

impl From<StorageError> for DeepDbError {
    fn from(e: StorageError) -> Self {
        DeepDbError::Storage(e)
    }
}

impl DeepDbError {
    /// Whether a caller may expect the *same* request to succeed on retry
    /// (see the module-level taxonomy).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Self::Overloaded | Self::DeadlineExceeded | Self::StalePlan
        )
    }
}

impl std::fmt::Display for DeepDbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Storage(e) => write!(f, "storage error: {e}"),
            Self::NotAnswerable(msg) => write!(f, "query not answerable by ensemble: {msg}"),
            Self::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
            Self::Learning(msg) => write!(f, "ensemble learning failed: {msg}"),
            Self::StalePlan => write!(
                f,
                "prepared query is stale: the ensemble's plan epoch advanced \
                 (recompile or update since prepare); re-prepare required"
            ),
            Self::Overloaded => write!(
                f,
                "serving queue is full: request rejected at admission; retry after backoff"
            ),
            Self::DeadlineExceeded => write!(
                f,
                "deadline exceeded: the query was cancelled before its answer was ready"
            ),
            Self::QueryPanicked(msg) => {
                write!(
                    f,
                    "query evaluation panicked (isolated to this query): {msg}"
                )
            }
        }
    }
}

impl std::error::Error for DeepDbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            _ => None,
        }
    }
}
