//! Functional dependencies between non-key attributes (paper §3.2).
//!
//! A user-declared FD `A → B` lets DeepDB omit column `B` from RSPN learning
//! (avoiding the cluster explosion required to make A and B "independent")
//! and instead keep a dictionary mapping values of `A` to values of `B`. At
//! query time, predicates on `B` are rewritten into `IN`-predicates on `A`.

use deepdb_storage::{ColId, Database, Predicate, TableId};

/// Declared functional dependency `determinant → dependent` within a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FunctionalDependency {
    pub table: TableId,
    pub determinant: ColId,
    pub dependent: ColId,
}

/// Dictionary backing one FD: the observed (determinant, dependent) value
/// pairs, deduplicated.
#[derive(Debug, Clone)]
pub struct FdDictionary {
    pub fd: FunctionalDependency,
    /// Sorted unique (a, b) pairs as f64 (NaN never stored).
    pairs: Vec<(f64, f64)>,
}

impl FdDictionary {
    /// Scan the table and build the dictionary. Rows with NULL on either
    /// side are skipped.
    pub fn build(db: &Database, fd: FunctionalDependency) -> Self {
        let table = db.table(fd.table);
        let det = table.column(fd.determinant);
        let dep = table.column(fd.dependent);
        let mut pairs: Vec<(f64, f64)> = (0..table.n_rows())
            .filter_map(|r| {
                let a = det.f64_or_nan(r);
                let b = dep.f64_or_nan(r);
                (a.is_finite() && b.is_finite()).then_some((a, b))
            })
            .collect();
        pairs.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        pairs.dedup();
        Self { fd, pairs }
    }

    /// Determinant values whose dependent value satisfies `accept`.
    pub fn determinants_where(&self, accept: impl Fn(f64) -> bool) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .pairs
            .iter()
            .filter(|(_, b)| accept(*b))
            .map(|(a, _)| *a)
            .collect();
        out.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        out.dedup();
        out
    }

    /// Rewrite a predicate on the dependent column into an `IN` list over the
    /// determinant. Unknown-producing comparisons (constants that are NULL)
    /// yield an empty list, i.e. a never-true predicate.
    pub fn translate(&self, pred: &Predicate) -> Vec<f64> {
        self.determinants_where(|b| {
            pred.op
                .eval(&deepdb_storage::Value::Float(b))
                .unwrap_or(false)
        })
    }

    /// Serialize for ensemble snapshots.
    pub(crate) fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        use deepdb_spn::wire::*;
        write_u64(w, self.fd.table as u64)?;
        write_u64(w, self.fd.determinant as u64)?;
        write_u64(w, self.fd.dependent as u64)?;
        write_u32(w, self.pairs.len() as u32)?;
        for &(a, b) in &self.pairs {
            write_f64(w, a)?;
            write_f64(w, b)?;
        }
        Ok(())
    }

    /// Deserialize from an ensemble snapshot.
    pub(crate) fn read_from(r: &mut impl std::io::Read) -> std::io::Result<Self> {
        use deepdb_spn::wire::*;
        let fd = FunctionalDependency {
            table: read_u64(r)? as usize,
            determinant: read_u64(r)? as usize,
            dependent: read_u64(r)? as usize,
        };
        let n = read_u32(r)? as usize;
        if n > 1 << 24 {
            return Err(corrupt("fd pair count"));
        }
        let pairs: Vec<(f64, f64)> = (0..n)
            .map(|_| Ok::<_, std::io::Error>((read_f64(r)?, read_f64(r)?)))
            .collect::<std::io::Result<_>>()?;
        Ok(Self { fd, pairs })
    }

    /// Number of stored pairs (diagnostics).
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::{CmpOp, Domain, PredOp, TableSchema, Value};

    /// city → nation is a classic FD (every city lies in one nation).
    fn city_nation_db() -> (Database, FunctionalDependency) {
        let mut db = Database::new("geo");
        db.create_table(
            TableSchema::new("cust")
                .pk("id")
                .col("city", Domain::Discrete)
                .col("nation", Domain::Discrete),
        )
        .unwrap();
        // cities 0,1 → nation 10; cities 2,3 → nation 20.
        for (id, city, nation) in [(1, 0, 10), (2, 1, 10), (3, 2, 20), (4, 3, 20), (5, 0, 10)] {
            db.insert(
                "cust",
                &[Value::Int(id), Value::Int(city), Value::Int(nation)],
            )
            .unwrap();
        }
        let fd = FunctionalDependency {
            table: 0,
            determinant: 1,
            dependent: 2,
        };
        (db, fd)
    }

    #[test]
    fn dictionary_deduplicates_pairs() {
        let (db, fd) = city_nation_db();
        let dict = FdDictionary::build(&db, fd);
        assert_eq!(dict.len(), 4); // (0,10),(1,10),(2,20),(3,20)
    }

    #[test]
    fn equality_on_dependent_becomes_in_on_determinant() {
        let (db, fd) = city_nation_db();
        let dict = FdDictionary::build(&db, fd);
        let pred = Predicate::new(0, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(10)));
        assert_eq!(dict.translate(&pred), vec![0.0, 1.0]);
    }

    #[test]
    fn range_on_dependent_translates() {
        let (db, fd) = city_nation_db();
        let dict = FdDictionary::build(&db, fd);
        let pred = Predicate::new(0, 2, PredOp::Cmp(CmpOp::Gt, Value::Int(15)));
        assert_eq!(dict.translate(&pred), vec![2.0, 3.0]);
    }

    #[test]
    fn unsatisfiable_translates_to_empty() {
        let (db, fd) = city_nation_db();
        let dict = FdDictionary::build(&db, fd);
        let pred = Predicate::new(0, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(99)));
        assert!(dict.translate(&pred).is_empty());
    }
}
