//! ML tasks on RSPNs (paper §4.3, Exp. 3): regression via conditional
//! expectation, classification via most-probable-explanation — with no
//! additional training beyond the ensemble itself.
//!
//! Every entry point takes `&Ensemble`: both probe kinds (expectations and
//! max-product MPE) run on the compiled arena engines, which updates keep
//! patched in place — there is no `&mut` query path left. Each prediction
//! registers its probes on one [`ProbePlan`], so a prediction (or a whole
//! batch of predictions — [`predict_classification_batch`] /
//! [`predict_regression_batch`], the serving-traffic shape) costs exactly
//! **one fused arena sweep per touched member**, fallback probes included.

use deepdb_spn::{LeafFunc, LeafPred};
use deepdb_storage::{ColId, Database, TableId, Value};

use crate::ensemble::Ensemble;
use crate::plan::{MpeHandle, ProbeHandle, ProbePlan};
use crate::DeepDbError;

/// Width (in training standard deviations) of the evidence window used when
/// conditioning on a continuous feature value.
const CONTINUOUS_EVIDENCE_SIGMA: f64 = 0.35;

/// Evidence support below this threshold triggers the unconditional
/// fallback (shared by regression and classification).
const MIN_EVIDENCE_SUPPORT: f64 = 1e-12;

/// Predict a numeric target column as `E[target | features]`.
///
/// Discrete features condition exactly; continuous features condition on a
/// ±0.35σ window around the given value. Features whose columns the chosen
/// RSPN does not model are ignored. Falls back to the unconditional mean if
/// the evidence has no support — the fallback's probes ride in the **same**
/// fused probe plan as the conditional ones, so a prediction always costs
/// exactly one arena sweep, support or not.
pub fn predict_regression(
    ens: &Ensemble,
    db: &Database,
    table: TableId,
    target: ColId,
    features: &[(ColId, Value)],
) -> Result<f64, DeepDbError> {
    let row = [features];
    Ok(predict_regression_batch(ens, db, table, target, &row)?[0])
}

/// Batched [`predict_regression`]: one fused probe plan answers every
/// evidence row, costing one arena sweep on the chosen member for the whole
/// batch (the per-row path would pay one sweep per prediction).
pub fn predict_regression_batch<R: AsRef<[(ColId, Value)]>>(
    ens: &Ensemble,
    db: &Database,
    table: TableId,
    target: ColId,
    rows: &[R],
) -> Result<Vec<f64>, DeepDbError> {
    if rows.is_empty() {
        return Ok(Vec::new());
    }
    // Member selection, target column, and the join-normalization factor
    // columns (paper §4.2: per-`table`-row answers, not per-join-row) are a
    // pure function of (table, target) — cached across batches.
    let prelude = crate::cache::ml_prelude(ens, table, target, true)?;
    let (idx, target_col) = (prelude.idx, prelude.target_col);
    let rspn = &ens.rspns()[idx];
    let factors = &prelude.factors;

    let mut plan = ProbePlan::new();
    let mut handles: Vec<(ProbeHandle, ProbeHandle)> = Vec::with_capacity(rows.len());
    for row in rows {
        let mut q = rspn.new_query();
        rspn.require_present(&mut q, table);
        add_evidence(rspn, db, table, row.as_ref(), &mut q);
        for &f in factors {
            q.set_func(f, LeafFunc::InvClamp1);
        }
        let mut den_q = q.clone();
        q.set_func(target_col, LeafFunc::X);
        den_q.add_pred(target_col, LeafPred::IsNotNull);
        handles.push((plan.register(idx, den_q), plan.register(idx, q)));
    }

    // Unconditional (still factor-normalized) mean, used when a row's
    // evidence has no support; registered once for the whole batch.
    let mut uq = rspn.new_query();
    uq.set_func(target_col, LeafFunc::X);
    let mut upq = rspn.new_query();
    upq.add_pred(target_col, LeafPred::IsNotNull);
    for &f in factors {
        uq.set_func(f, LeafFunc::InvClamp1);
        upq.set_func(f, LeafFunc::InvClamp1);
    }
    let h_u_num = plan.register(idx, uq);
    let h_u_den = plan.register(idx, upq);

    let results = plan.execute(ens);
    Ok(handles
        .into_iter()
        .map(|(h_den, h_num)| {
            let (den, num) = (results[h_den], results[h_num]);
            if den <= MIN_EVIDENCE_SUPPORT {
                results[h_u_num] / results[h_u_den].max(MIN_EVIDENCE_SUPPORT)
            } else {
                num / den
            }
        })
        .collect())
}

/// Predict a categorical target via MPE given the evidence, on the compiled
/// max-product path.
pub fn predict_classification(
    ens: &Ensemble,
    db: &Database,
    table: TableId,
    target: ColId,
    features: &[(ColId, Value)],
) -> Result<Option<Value>, DeepDbError> {
    let row = [features];
    Ok(predict_classification_batch(ens, db, table, target, &row)?.remove(0))
}

/// Batched [`predict_classification`]: every evidence row registers one MPE
/// probe plus one evidence-support probe on a single plan, and a shared
/// unconditional-MPE fallback covers rows whose evidence has no support —
/// the whole batch runs in **one fused arena sweep** on the chosen member
/// (both probe kinds ride the same [`deepdb_spn::sweep_models`] pass).
pub fn predict_classification_batch<R: AsRef<[(ColId, Value)]>>(
    ens: &Ensemble,
    db: &Database,
    table: TableId,
    target: ColId,
    rows: &[R],
) -> Result<Vec<Option<Value>>, DeepDbError> {
    if rows.is_empty() {
        return Ok(Vec::new());
    }
    // Member selection and target column are a pure function of
    // (table, target) — cached across batches.
    let prelude = crate::cache::ml_prelude(ens, table, target, false)?;
    let (idx, target_col) = (prelude.idx, prelude.target_col);
    let rspn = &ens.rspns()[idx];

    let mut plan = ProbePlan::new();
    let mut handles: Vec<(ProbeHandle, MpeHandle)> = Vec::with_capacity(rows.len());
    for row in rows {
        let mut q = rspn.new_query();
        add_evidence(rspn, db, table, row.as_ref(), &mut q);
        // Evidence-support probe: P(evidence), fused into the same sweep.
        let h_ev = plan.register(idx, q.clone());
        let h_mpe = plan.register_mpe(idx, target_col, q);
        handles.push((h_ev, h_mpe));
    }
    // Unconditional MPE (marginal mode of the target), registered once:
    // the fallback for rows whose evidence the model gives zero mass.
    let h_fallback = plan.register_mpe(idx, target_col, rspn.new_query());

    let results = plan.execute(ens);
    Ok(handles
        .into_iter()
        .map(|(h_ev, h_mpe)| {
            let mode = if results[h_ev] > MIN_EVIDENCE_SUPPORT {
                results.mpe_value(h_mpe)
            } else {
                results.mpe_value(h_fallback)
            };
            mode.map(mode_to_value)
        })
        .collect())
}

fn mode_to_value(v: f64) -> Value {
    if v.fract() == 0.0 {
        Value::Int(v as i64)
    } else {
        Value::Float(v)
    }
}

pub(crate) fn rspn_for(
    ens: &Ensemble,
    table: TableId,
    target: ColId,
) -> Result<usize, DeepDbError> {
    ens.rspns()
        .iter()
        .enumerate()
        .filter(|(_, r)| r.data_column(table, target).is_some())
        // Prefer the RSPN with the most feature columns for this table.
        .max_by_key(|(_, r)| r.columns().len())
        .map(|(i, _)| i)
        .ok_or_else(|| {
            DeepDbError::NotAnswerable(format!("no RSPN models column ({table}, {target})"))
        })
}

fn add_evidence(
    rspn: &crate::rspn::Rspn,
    db: &Database,
    table: TableId,
    features: &[(ColId, Value)],
    q: &mut deepdb_spn::SpnQuery,
) {
    for &(col, value) in features {
        let Some(spn_col) = rspn.data_column(table, col) else {
            continue;
        };
        let Some(v) = value.as_f64() else {
            q.add_pred(spn_col, LeafPred::IsNull);
            continue;
        };
        let discrete = db.table(table).schema().columns()[col].domain.is_discrete();
        if discrete {
            q.add_pred(spn_col, LeafPred::eq(v));
        } else {
            let (_, std) = rspn.column_stats(spn_col);
            let half = (std * CONTINUOUS_EVIDENCE_SIGMA).max(1e-9);
            q.add_pred(
                spn_col,
                LeafPred::Range {
                    lo: v - half,
                    hi: v + half,
                    lo_incl: true,
                    hi_incl: true,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::{EnsembleBuilder, EnsembleParams};
    use deepdb_storage::fixtures::correlated_customer_order;

    fn setup() -> (Database, Ensemble) {
        let db = correlated_customer_order(2500, 33);
        let params = EnsembleParams {
            sample_size: 25_000,
            correlation_sample: 1_500,
            ..EnsembleParams::default()
        };
        let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
        (db, ens)
    }

    #[test]
    fn regression_tracks_conditional_means() {
        let (db, ens) = setup();
        let c = db.table_id("customer").unwrap();
        // E[age | region]: Europeans (region 0) skew older by construction.
        let age_eu = predict_regression(&ens, &db, c, 1, &[(2, Value::Int(0))]).unwrap();
        let age_asia = predict_regression(&ens, &db, c, 1, &[(2, Value::Int(1))]).unwrap();
        assert!(
            age_eu > age_asia + 10.0,
            "EU mean {age_eu} should exceed ASIA mean {age_asia}"
        );
        // Compare against the true conditional mean.
        let table = db.table(c);
        let (mut s, mut k) = (0.0, 0);
        for r in 0..table.n_rows() {
            if table.value(r, 2) == Value::Int(0) {
                s += table.column(1).f64_or_nan(r);
                k += 1;
            }
        }
        let truth = s / k as f64;
        assert!((age_eu - truth).abs() < 3.0, "{age_eu} vs {truth}");
    }

    #[test]
    fn classification_predicts_dominant_region() {
        let (db, ens) = setup();
        let c = db.table_id("customer").unwrap();
        // Old customers are predominantly European (region 0).
        let pred = predict_classification(&ens, &db, c, 2, &[(1, Value::Int(80))]).unwrap();
        assert_eq!(pred, Some(Value::Int(0)));
    }

    #[test]
    fn classification_without_support_falls_back_to_marginal_mode() {
        let (db, ens) = setup();
        let c = db.table_id("customer").unwrap();
        // Age 999 was never observed: the marginal mode of region answers.
        let fallback = predict_classification(&ens, &db, c, 2, &[(1, Value::Int(999))]).unwrap();
        let marginal = predict_classification(&ens, &db, c, 2, &[]).unwrap();
        assert_eq!(fallback, marginal);
        assert!(fallback.is_some());
    }

    #[test]
    fn classification_batch_matches_sequential_predictions() {
        let (db, ens) = setup();
        let c = db.table_id("customer").unwrap();
        let rows: Vec<Vec<(ColId, Value)>> = (0..40)
            .map(|i| vec![(1usize, Value::Int(20 + (i % 8) * 10))])
            .collect();
        let batch = predict_classification_batch(&ens, &db, c, 2, &rows).unwrap();
        for (row, got) in rows.iter().zip(&batch) {
            let want = predict_classification(&ens, &db, c, 2, row).unwrap();
            assert_eq!(*got, want, "evidence {row:?}");
        }
    }

    #[test]
    fn regression_batch_matches_sequential_predictions() {
        let (db, ens) = setup();
        let c = db.table_id("customer").unwrap();
        let rows: Vec<Vec<(ColId, Value)>> = (0..24)
            .map(|i| {
                if i % 5 == 0 {
                    vec![(2usize, Value::Int(77))] // no support → fallback
                } else {
                    vec![(2usize, Value::Int(i % 2))]
                }
            })
            .collect();
        let batch = predict_regression_batch(&ens, &db, c, 1, &rows).unwrap();
        for (row, &got) in rows.iter().zip(&batch) {
            let want = predict_regression(&ens, &db, c, 1, row).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "evidence {row:?}");
        }
    }

    #[test]
    fn regression_without_features_returns_marginal_mean() {
        let (db, ens) = setup();
        let c = db.table_id("customer").unwrap();
        let est = predict_regression(&ens, &db, c, 1, &[]).unwrap();
        let table = db.table(c);
        let truth: f64 = (0..table.n_rows())
            .map(|r| table.column(1).f64_or_nan(r))
            .sum::<f64>()
            / table.n_rows() as f64;
        assert!((est - truth).abs() < 2.0, "{est} vs {truth}");
    }

    #[test]
    fn unsupported_column_errors() {
        let (db, ens) = setup();
        let c = db.table_id("customer").unwrap();
        // Column 0 is the primary key — not modeled.
        assert!(predict_regression(&ens, &db, c, 0, &[]).is_err());
    }
}
