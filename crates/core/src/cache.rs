//! Cross-query plan caching and prepared queries.
//!
//! PR 5 established that **planning is value-independent**: member selection
//! (`best_covering_rspn` / `best_rspn_with` / the Case-3 combine planner)
//! and predicate translation structure depend only on schema, ensemble
//! coverage, and the *columns* predicates touch — never on the literal
//! values. Production traffic repeats query **shapes** with different
//! literals, so the FK-graph walks, RDC scoring, and `SpnQuery` translation
//! can be done once per shape and reused.
//!
//! Three cache tiers live behind one LRU map ([`PlanCache`], owned
//! runtime-only by [`Ensemble`]):
//!
//! * **Full plan artifacts** (`COUNT`/`AVG`/`SUM`/disjunction/AQP-scalar
//!   entry points): the fully-registered [`ProbePlan`] plus its deferred
//!   resolver, with **literal binds** mapping flat probe-literal positions
//!   back to query-literal indices. A hit clones the plan, rewrites just the
//!   bound `f64` slots, executes, and resolves — zero planning work.
//! * **Grouped templates** ([`ScalarTemplate`] for GROUP BY / batched
//!   count-values): keyed on shape **plus literal bits** (templates bake
//!   translated shared-predicate literals into their base queries, so only
//!   exact literal matches may share one).
//! * **Selection preludes**: the covering-member choice of the
//!   count-values fast path and the ML entry points' (member, target
//!   column, normalization factors) prelude — pure member selection, safely
//!   shared across literals.
//! * **Pruning active sets** ([`active_set_for`]): per `(member,
//!   constrained-column union)` shape, the compacted sub-DAG a sweep may
//!   restrict itself to ([`deepdb_spn::ActiveSet`]). **Bitwise contract**:
//!   a pruned sweep is bitwise identical to the full sweep — pruned-away
//!   nodes are seeded from the arena's cached neutral (empty-query) values,
//!   which are exactly the values the full sweep computes for nodes none of
//!   the batch's probes constrain. Column unions are literal-independent,
//!   so one set serves every rebind of a shape; [`PreparedQuery`] pins its
//!   members' sets at prepare time and prunes with zero per-execute
//!   discovery.
//!
//! # Literal binds via sentinel discovery
//!
//! Rather than trusting the translation layer to report where literals land,
//! the cache **observes** it: on a miss the artifact is built twice — once
//! with the real literals, once with every literal replaced by a
//! distinguishable sentinel `f64` ([`sentinel`], quiet bit patterns near the
//! top of the finite range). If both builds have the same plan layout
//! ([`ProbePlan::same_layout`]), the flat literal walks are diffed bitwise:
//! an unchanged slot is a plan constant (±∞ range endpoints, join-indicator
//! values, translated representatives); a slot that changed must hold
//! sentinel *i* in the sentinel build and literal *i*'s exact bits in the
//! real build, and becomes a bind `(flat position, literal index)`. Any
//! unexplained difference — value-dependent translation (e.g. the
//! functional-dependency dictionary rewrite), layout divergence, a real
//! literal colliding with the sentinel range — rejects caching for that
//! shape. **Conservative by construction**: a query either gets a provably
//! value-independent artifact or plans cold like before.
//!
//! # Prepared queries
//!
//! [`Ensemble::prepare`] turns a scalar aggregate query into a
//! [`PreparedQuery`]: planning, translation, and bind discovery happen once;
//! [`PreparedQuery::execute`] only rewrites the bound literal slots in a
//! pre-sized plan and runs one inline fused sweep per member
//! ([`ProbePlan::execute_into`] over a reusable
//! [`InlineSweep`]) into pre-sized results — **zero allocations** in steady
//! state. Shapes whose binds cannot be discovered still prepare, but fall
//! back to cold planning per execution (see [`PreparedQuery::is_bound`]).
//!
//! # Invalidation
//!
//! Every cache key embeds the ensemble's **plan epoch**
//! ([`Ensemble::plan_epoch`]), bumped by `recompile_models` and every
//! coverage-/count-changing maintenance operation (inserts, deletes, join
//! count refreshes). Stale entries can never hit again and die lazily
//! through LRU eviction; a [`PreparedQuery`] from an old epoch fails its
//! next `execute` with [`DeepDbError::StalePlan`].

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

use deepdb_spn::{ActiveSet, InlineSweep};
use deepdb_storage::{
    Aggregate, CmpOp, ColId, ColumnRef, Database, PredOp, Predicate, Query, TableId, Value,
};

use crate::compile::{
    best_covering_rspn, register_avg, register_count, register_scalar, resolve_scalar, DeferredAvg,
    DeferredCountExpr, DeferredScalar, ScalarTemplate,
};
use crate::ensemble::Ensemble;
use crate::estimate::Estimate;
use crate::plan::{ProbePlan, ProbeResults};
use crate::DeepDbError;

/// Default [`PlanCache`] capacity (entries across all tiers). `0` disables
/// caching entirely — lookups, discovery, and inserts are all skipped, so a
/// capacity-0 ensemble measures the true planned-cold path.
pub(crate) const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

// ---------------------------------------------------------------------------
// Sentinels
// ---------------------------------------------------------------------------

/// Base bit pattern of the sentinel range: huge finite doubles (~9e307) that
/// cannot occur as translated plan constants and survive every
/// literal-preserving translation bitwise.
const SENT_BASE: u64 = 0x7FE0_0000_0000_0000;

/// Sentinel stand-in for literal `i` during bind discovery.
fn sentinel(i: u32) -> f64 {
    f64::from_bits(SENT_BASE + u64::from(i))
}

// ---------------------------------------------------------------------------
// Query shapes (cache keys)
// ---------------------------------------------------------------------------

/// Structural fingerprint of one predicate: which column it touches and the
/// operator *shape* (literal nullness included — NULL comparisons translate
/// to different probe structures), but never the literal values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PredShape {
    table: TableId,
    column: ColId,
    op: OpShape,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum OpShape {
    /// Comparison operator code + whether the literal is NULL.
    Cmp(u8, bool),
    /// Per-element nullness of the IN list (length implied).
    In(Vec<bool>),
    /// Nullness of the lower/upper bound.
    Between(bool, bool),
    IsNull,
    IsNotNull,
}

fn cmp_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn pred_shape(p: &Predicate) -> PredShape {
    let op = match &p.op {
        PredOp::Cmp(op, v) => OpShape::Cmp(cmp_code(*op), matches!(v, Value::Null)),
        PredOp::In(vs) => OpShape::In(vs.iter().map(|v| matches!(v, Value::Null)).collect()),
        PredOp::Between(lo, hi) => {
            OpShape::Between(matches!(lo, Value::Null), matches!(hi, Value::Null))
        }
        PredOp::IsNull => OpShape::IsNull,
        PredOp::IsNotNull => OpShape::IsNotNull,
    };
    PredShape {
        table: p.table,
        column: p.column,
        op,
    }
}

fn pred_shapes(preds: &[Predicate]) -> Vec<PredShape> {
    preds.iter().map(pred_shape).collect()
}

/// Canonical cache key: everything that determines plan structure, nothing
/// that a literal rebind can change. `literal_bits` stays empty for
/// bind-discovered artifact tiers and carries the exact literal bits for the
/// template tier (templates bake literals into their base queries).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct QueryShape {
    tag: u8,
    epoch: u64,
    tables: Vec<TableId>,
    agg: (u8, TableId, ColId),
    group_cols: Vec<(TableId, ColId)>,
    preds: Vec<PredShape>,
    disjuncts: Vec<Vec<PredShape>>,
    literal_bits: Vec<u64>,
}

/// Which entry point an artifact serves (and therefore how it resolves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ArtifactKind {
    /// `estimate_count` — plain COUNT resolution.
    Count,
    /// `estimate_avg` on the given target column.
    Avg(ColumnRef),
    /// `estimate_sum`: non-NULL COUNT × AVG on the given target column.
    Sum(ColumnRef),
    /// `execute_aqp`'s scalar path: a `(aggregate, count)` pair via
    /// [`register_scalar`] (aggregate kind read from the query).
    AqpScalar,
}

fn agg_code(kind: ArtifactKind, query: &Query) -> (u8, TableId, ColId) {
    match kind {
        ArtifactKind::Count => (0, 0, 0),
        ArtifactKind::Avg(t) => (1, t.table, t.column),
        ArtifactKind::Sum(t) => (2, t.table, t.column),
        ArtifactKind::AqpScalar => match query.aggregate {
            Aggregate::CountStar => (3, 0, 0),
            Aggregate::Avg(t) => (4, t.table, t.column),
            Aggregate::Sum(t) => (5, t.table, t.column),
        },
    }
}

fn artifact_shape(
    epoch: u64,
    query: &Query,
    kind: ArtifactKind,
    disjuncts: &[Vec<Predicate>],
) -> QueryShape {
    let tag = match (kind, disjuncts.is_empty()) {
        (ArtifactKind::Count, true) => 0,
        (ArtifactKind::Count, false) => 1,
        (ArtifactKind::Avg(_), _) => 2,
        (ArtifactKind::Sum(_), _) => 3,
        (ArtifactKind::AqpScalar, _) => 4,
    };
    QueryShape {
        tag,
        epoch,
        tables: query.tables.clone(),
        agg: agg_code(kind, query),
        group_cols: Vec::new(),
        preds: pred_shapes(&query.predicates),
        disjuncts: disjuncts.iter().map(|d| pred_shapes(d)).collect(),
        literal_bits: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Literal extraction / substitution
// ---------------------------------------------------------------------------

/// Walk the literal slots of a predicate list in canonical order — predicate
/// order, within `Cmp` the value, within `Between` lo then hi, within `In`
/// the elements in order, non-NULL slots only — calling `f` on each.
fn walk_pred_literals(preds: &mut [Predicate], mut f: impl FnMut(&mut Value)) {
    for p in preds {
        match &mut p.op {
            PredOp::Cmp(_, v) => {
                if !matches!(v, Value::Null) {
                    f(v);
                }
            }
            PredOp::Between(lo, hi) => {
                for v in [lo, hi] {
                    if !matches!(v, Value::Null) {
                        f(v);
                    }
                }
            }
            PredOp::In(vs) => {
                for v in vs.iter_mut() {
                    if !matches!(v, Value::Null) {
                        f(v);
                    }
                }
            }
            PredOp::IsNull | PredOp::IsNotNull => {}
        }
    }
}

fn collect_pred_literals(preds: &[Predicate], out: &mut Vec<f64>) {
    let mut preds = preds.to_vec();
    walk_pred_literals(&mut preds, |v| {
        out.push(v.as_f64().expect("non-NULL literal"));
    });
}

/// Every non-NULL literal of the query (and disjuncts, in order) as `f64` —
/// the **bind vector** of the query's shape. This is the order
/// [`PreparedQuery::execute`] expects its `literals` argument in; the
/// convenience extractor [`query_literals`] exposes it publicly.
fn collect_all_literals(query: &Query, disjuncts: &[Vec<Predicate>]) -> Vec<f64> {
    let mut out = Vec::new();
    collect_pred_literals(&query.predicates, &mut out);
    for d in disjuncts {
        collect_pred_literals(d, &mut out);
    }
    out
}

/// The literal vector of a query in the canonical bind order (predicate
/// order; within a predicate: `Cmp` value, `Between` lo then hi, `In`
/// elements in order; NULL literals are structural, not bindable). Pass a
/// same-shaped vector to [`PreparedQuery::execute`] to rebind.
pub fn query_literals(query: &Query) -> Vec<f64> {
    collect_all_literals(query, &[])
}

/// Clone of the query (and disjuncts) with every literal replaced by its
/// sentinel — the second build of bind discovery.
fn sentinel_variant(query: &Query, disjuncts: &[Vec<Predicate>]) -> (Query, Vec<Vec<Predicate>>) {
    let mut i = 0u32;
    let mut q = query.clone();
    walk_pred_literals(&mut q.predicates, |v| {
        *v = Value::Float(sentinel(i));
        i += 1;
    });
    let ds = disjuncts
        .iter()
        .map(|d| {
            let mut d = d.clone();
            walk_pred_literals(&mut d, |v| {
                *v = Value::Float(sentinel(i));
                i += 1;
            });
            d
        })
        .collect();
    (q, ds)
}

/// Overwrite the query's literal slots with `literals` (f64-space; every
/// translation layer compares through [`Value::as_f64`], so `Float`
/// replacements behave identically to the original `Int` literals).
fn rebind_query_literals(query: &mut Query, literals: &[f64]) {
    let mut i = 0usize;
    walk_pred_literals(&mut query.predicates, |v| {
        *v = Value::Float(literals[i]);
        i += 1;
    });
    debug_assert_eq!(i, literals.len(), "literal arity mismatch");
}

// ---------------------------------------------------------------------------
// Artifact building + bind discovery
// ---------------------------------------------------------------------------

/// How a cached plan's results resolve to estimates — one variant per entry
/// point, reproducing its exact arithmetic.
pub(crate) enum Resolver {
    Count(DeferredCountExpr),
    Avg(DeferredAvg),
    Sum {
        count_nn: DeferredCountExpr,
        avg: DeferredAvg,
    },
    /// Inclusion–exclusion terms: `(sign, deferred count)` per mask.
    Disjunction(Vec<(f64, DeferredCountExpr)>),
    /// AQP scalar `(aggregate, count)` pair.
    Scalar(DeferredScalar),
}

impl Resolver {
    pub(crate) fn resolve_single(&self, r: &ProbeResults) -> Result<Estimate, DeepDbError> {
        match self {
            Resolver::Count(d) => d.resolve(r),
            Resolver::Avg(d) => Ok(d.resolve(r)),
            Resolver::Sum { count_nn, avg } => Ok(count_nn.resolve(r)?.product(avg.resolve(r))),
            Resolver::Disjunction(terms) => {
                let mut total = Estimate::exact(0.0);
                for (sign, d) in terms {
                    total = total.add(d.resolve(r)?.scale(*sign));
                }
                total.value = total.value.max(0.0);
                Ok(total)
            }
            Resolver::Scalar(_) => unreachable!("AQP scalar artifacts resolve to a pair"),
        }
    }

    fn resolve_pair(&self, r: &ProbeResults) -> Result<(Estimate, Estimate), DeepDbError> {
        match self {
            Resolver::Scalar(d) => resolve_scalar(d, r),
            _ => unreachable!("single-estimate artifacts resolve via resolve_single"),
        }
    }
}

/// Build the fully-registered plan + resolver for one entry point — exactly
/// the probe registrations the cold path performs, factored out so cache
/// hits, misses, and sentinel builds share one recipe. `validate_terms`
/// keeps the disjunction path's per-term validation on the real build only
/// (validation is value-independent, so sentinel builds may skip it).
fn build_artifact(
    ens: &Ensemble,
    db: &Database,
    query: &Query,
    kind: ArtifactKind,
    disjuncts: &[Vec<Predicate>],
    validate_terms: bool,
) -> Result<(ProbePlan, Resolver), DeepDbError> {
    let qtables: BTreeSet<TableId> = query.tables.iter().copied().collect();
    let mut plan = ProbePlan::new();
    let resolver = if !disjuncts.is_empty() {
        let k = disjuncts.len();
        let mut terms = Vec::with_capacity((1usize << k) - 1);
        for mask in 1u32..(1 << k) {
            let mut sub = query.clone();
            for (i, d) in disjuncts.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    sub.predicates.extend(d.iter().cloned());
                }
            }
            if validate_terms {
                sub.validate(db)?;
            }
            let sign = if mask.count_ones() % 2 == 1 {
                1.0
            } else {
                -1.0
            };
            let deferred = register_count(&mut plan, ens, db, &qtables, &sub.predicates)?;
            terms.push((sign, deferred));
        }
        Resolver::Disjunction(terms)
    } else {
        match kind {
            ArtifactKind::Count => Resolver::Count(register_count(
                &mut plan,
                ens,
                db,
                &qtables,
                &query.predicates,
            )?),
            ArtifactKind::Avg(target) => Resolver::Avg(register_avg(
                &mut plan,
                ens,
                &query.tables,
                &query.predicates,
                target,
            )?),
            ArtifactKind::Sum(target) => {
                let mut count_preds = query.predicates.clone();
                count_preds.push(Predicate::new(
                    target.table,
                    target.column,
                    PredOp::IsNotNull,
                ));
                let count_nn = register_count(&mut plan, ens, db, &qtables, &count_preds)?;
                let avg = register_avg(&mut plan, ens, &query.tables, &query.predicates, target)?;
                Resolver::Sum { count_nn, avg }
            }
            ArtifactKind::AqpScalar => {
                Resolver::Scalar(register_scalar(&mut plan, ens, db, query)?)
            }
        }
    };
    Ok((plan, resolver))
}

/// A cached, rebindable plan: the registered probe plan, its resolver, and
/// the discovered literal binds. Shared via `Arc` — hits clone only the
/// [`ProbePlan`] (the derived clone preserves the plan id, so the stored
/// resolver's handles resolve against the clone's results).
pub(crate) struct PlanArtifact {
    plan: ProbePlan,
    resolver: Resolver,
    /// `(flat literal position, query literal index)`, sorted by position.
    binds: Vec<(u32, u32)>,
    n_literals: usize,
}

/// Diff the real build against a sentinel build to locate literal slots.
/// Returns `None` — don't cache — on any unexplained difference.
fn discover_binds(
    ens: &Ensemble,
    db: &Database,
    query: &Query,
    kind: ArtifactKind,
    disjuncts: &[Vec<Predicate>],
    plan: &ProbePlan,
    literals: &[f64],
) -> Option<Vec<(u32, u32)>> {
    let n = literals.len() as u64;
    // A real literal inside the sentinel range could masquerade as a plan
    // constant (or a bind of the wrong index) — refuse to cache.
    if literals.iter().any(|v| {
        let b = v.to_bits();
        b >= SENT_BASE && b < SENT_BASE + n
    }) {
        return None;
    }
    let (sq, sd) = sentinel_variant(query, disjuncts);
    let (sent_plan, _) = build_artifact(ens, db, &sq, kind, &sd, false).ok()?;
    if !plan.same_layout(&sent_plan) {
        return None;
    }
    let mut real = Vec::new();
    let mut sent = Vec::new();
    plan.flat_literals(&mut real);
    sent_plan.flat_literals(&mut sent);
    debug_assert_eq!(real.len(), sent.len(), "same_layout implies equal walks");
    let mut binds = Vec::new();
    for (pos, (&a, &b)) in real.iter().zip(&sent).enumerate() {
        if a.to_bits() == b.to_bits() {
            continue; // plan constant
        }
        let i = b.to_bits().wrapping_sub(SENT_BASE);
        if i >= n || a.to_bits() != literals[i as usize].to_bits() {
            return None; // value-dependent translation — not rebindable
        }
        binds.push((pos as u32, i as u32));
    }
    Some(binds)
}

// ---------------------------------------------------------------------------
// The LRU cache
// ---------------------------------------------------------------------------

/// Cache observability counters ([`Ensemble::plan_cache_stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached artifact.
    pub hits: u64,
    /// Lookups that found nothing (cold plans).
    pub misses: u64,
    /// Entries dropped by LRU pressure.
    pub evictions: u64,
    /// Live entries across all tiers.
    pub entries: usize,
    /// Live pruning active sets (side table, current epoch only; see
    /// [`active_set_for`]). Not counted in `entries`/`hits`/`misses` — an
    /// active-set rebuild is one arena walk, not a cold plan.
    pub active_sets: usize,
    /// Cardinality estimates issued by the join-order enumerator
    /// (`crate::joinorder::JoinOrderer`) through prepared-query rebinding.
    /// A separate counter from `hits`/`misses`: enumerator traffic hammers
    /// a handful of shapes thousands of times, and folding it into plan
    /// hit/miss stats would drown interactive-query observability.
    pub optimizer_estimates: u64,
}

#[derive(Clone)]
pub(crate) enum CachedValue {
    Plan(Arc<PlanArtifact>),
    Template(Arc<ScalarTemplate>),
    Member(usize),
    Ml(Arc<MlPrelude>),
}

struct CacheEntry {
    value: CachedValue,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<QueryShape, CacheEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    capacity: usize,
    /// Pruning active sets, keyed on `(member, constrained-column union)`
    /// and stamped with the plan epoch they were built under. A dedicated
    /// side table rather than `map` entries: an active set costs one
    /// O(nodes) arena walk to rebuild, so it must never evict a
    /// bind-discovered plan artifact (built twice + diffed) under LRU
    /// pressure, and its lookups are bookkeeping, not plan hits/misses.
    /// Epoch invalidation is eager — the first access at a new epoch clears
    /// the whole table, so stale sets never survive a maintenance op.
    actives: HashMap<(usize, Vec<usize>), Arc<ActiveSet>>,
    actives_epoch: u64,
    optimizer_estimates: u64,
}

/// LRU plan cache keyed on [`QueryShape`]. Counter-based recency (a lookup
/// or insert advances a logical tick); capacity 0 disables the cache —
/// callers skip lookup, discovery, and insert entirely, so the cold path is
/// measured honestly.
pub(crate) struct PlanCache {
    inner: Mutex<CacheInner>,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                capacity,
                actives: HashMap::new(),
                actives_epoch: 0,
                optimizer_estimates: 0,
            }),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.inner.lock().expect("plan cache poisoned").capacity > 0
    }

    fn lookup(&self, shape: &QueryShape) -> Option<CachedValue> {
        let mut g = self.inner.lock().expect("plan cache poisoned");
        g.tick += 1;
        let tick = g.tick;
        match g.map.get_mut(shape) {
            Some(e) => {
                e.last_used = tick;
                let v = e.value.clone();
                g.hits += 1;
                Some(v)
            }
            None => {
                g.misses += 1;
                None
            }
        }
    }

    fn insert(&self, shape: QueryShape, value: CachedValue) {
        let mut g = self.inner.lock().expect("plan cache poisoned");
        if g.capacity == 0 {
            return;
        }
        g.tick += 1;
        let tick = g.tick;
        if g.map.len() >= g.capacity && !g.map.contains_key(&shape) {
            if let Some(victim) = g
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                g.map.remove(&victim);
                g.evictions += 1;
            }
        }
        g.map.insert(
            shape,
            CacheEntry {
                value,
                last_used: tick,
            },
        );
    }

    /// Cached pruning set for `(member, columns)` at `epoch`. The first
    /// access at a new epoch clears the table — every maintenance op bumps
    /// the epoch, so a recompiled arena can never be swept with a stale set.
    fn active_lookup(
        &self,
        epoch: u64,
        member: usize,
        columns: &[usize],
    ) -> Option<Arc<ActiveSet>> {
        let mut g = self.inner.lock().expect("plan cache poisoned");
        if g.actives_epoch != epoch {
            g.actives.clear();
            g.actives_epoch = epoch;
            return None;
        }
        g.actives.get(&(member, columns.to_vec())).cloned()
    }

    fn active_insert(&self, epoch: u64, member: usize, columns: Vec<usize>, a: Arc<ActiveSet>) {
        let mut g = self.inner.lock().expect("plan cache poisoned");
        if g.capacity == 0 {
            return;
        }
        if g.actives_epoch != epoch {
            g.actives.clear();
            g.actives_epoch = epoch;
        }
        // Bounded by the artifact capacity; past it, callers just rebuild
        // (one arena walk) instead of caching — never evict.
        if g.actives.len() < g.capacity {
            g.actives.insert((member, columns), a);
        }
    }

    pub(crate) fn stats(&self) -> CacheStats {
        let g = self.inner.lock().expect("plan cache poisoned");
        CacheStats {
            hits: g.hits,
            misses: g.misses,
            evictions: g.evictions,
            entries: g.map.len(),
            active_sets: g.actives.len(),
            optimizer_estimates: g.optimizer_estimates,
        }
    }

    /// Record `n` enumerator-issued cardinality estimates (see
    /// [`CacheStats::optimizer_estimates`]).
    pub(crate) fn note_optimizer_estimates(&self, n: u64) {
        let mut g = self.inner.lock().expect("plan cache poisoned");
        g.optimizer_estimates += n;
    }

    /// Resize (0 disables). Clears all entries and counters so bench lanes
    /// and tests start from a known-cold state.
    pub(crate) fn set_capacity(&self, capacity: usize) {
        let mut g = self.inner.lock().expect("plan cache poisoned");
        g.map.clear();
        g.tick = 0;
        g.hits = 0;
        g.misses = 0;
        g.evictions = 0;
        g.capacity = capacity;
        g.actives.clear();
        g.actives_epoch = 0;
        g.optimizer_estimates = 0;
    }
}

// ---------------------------------------------------------------------------
// Cached entry-point routing
// ---------------------------------------------------------------------------

pub(crate) enum Obtained {
    Owned(Box<Resolver>),
    Shared(Arc<PlanArtifact>),
}

impl Obtained {
    pub(crate) fn resolver(&self) -> &Resolver {
        match self {
            Obtained::Owned(r) => r,
            Obtained::Shared(a) => &a.resolver,
        }
    }
}

/// Get an executable plan for `(query, kind, disjuncts)`: a rebound clone of
/// a cached artifact on a hit; a cold build (inserted when bind discovery
/// succeeds) otherwise. With the cache disabled this is exactly the old cold
/// path — no lookup, no discovery. Also the per-request planning step of the
/// serving front-end ([`crate::serve`]), whose batches absorb the returned
/// plan and resolve through the returned [`Obtained`].
pub(crate) fn obtain(
    ens: &Ensemble,
    db: &Database,
    query: &Query,
    kind: ArtifactKind,
    disjuncts: &[Vec<Predicate>],
) -> Result<(ProbePlan, Obtained), DeepDbError> {
    let cache = ens.plan_cache();
    if !cache.enabled() {
        let (plan, resolver) = build_artifact(ens, db, query, kind, disjuncts, true)?;
        return Ok((plan, Obtained::Owned(Box::new(resolver))));
    }
    let shape = artifact_shape(ens.plan_epoch(), query, kind, disjuncts);
    let literals = collect_all_literals(query, disjuncts);
    if let Some(CachedValue::Plan(art)) = cache.lookup(&shape) {
        if art.n_literals == literals.len() {
            let mut plan = art.plan.clone();
            plan.rebind_literals(&art.binds, &literals);
            return Ok((plan, Obtained::Shared(art)));
        }
    }
    let (plan, resolver) = build_artifact(ens, db, query, kind, disjuncts, true)?;
    match discover_binds(ens, db, query, kind, disjuncts, &plan, &literals) {
        Some(binds) => {
            let art = Arc::new(PlanArtifact {
                plan: plan.clone(),
                resolver,
                binds,
                n_literals: literals.len(),
            });
            cache.insert(shape, CachedValue::Plan(Arc::clone(&art)));
            Ok((plan, Obtained::Shared(art)))
        }
        None => Ok((plan, Obtained::Owned(Box::new(resolver)))),
    }
}

/// Cache-routed single-estimate entry point (`COUNT`/`AVG`/`SUM`/
/// disjunction). The caller has validated the query.
pub(crate) fn scalar_estimate(
    ens: &Ensemble,
    db: &Database,
    query: &Query,
    kind: ArtifactKind,
    disjuncts: &[Vec<Predicate>],
) -> Result<Estimate, DeepDbError> {
    let (plan, obtained) = obtain(ens, db, query, kind, disjuncts)?;
    let results = plan.execute(ens);
    obtained.resolver().resolve_single(&results)
}

/// Cache-routed `(aggregate, count)` pair for `execute_aqp`'s scalar path.
pub(crate) fn aqp_scalar(
    ens: &Ensemble,
    db: &Database,
    query: &Query,
) -> Result<(Estimate, Estimate), DeepDbError> {
    let (plan, obtained) = obtain(ens, db, query, ArtifactKind::AqpScalar, &[])?;
    let results = plan.execute(ens);
    obtained.resolver().resolve_pair(&results)
}

/// Cache-routed [`ScalarTemplate`] for GROUP BY enumeration and the
/// count-values fallback. Keyed on shape **plus exact literal bits**:
/// templates bake translated shared-predicate literals into their base
/// queries, so only bit-identical literals may share one.
pub(crate) fn grouped_template(
    ens: &Ensemble,
    db: &Database,
    shared_q: &Query,
    group_cols: &[ColumnRef],
) -> Result<Arc<ScalarTemplate>, DeepDbError> {
    let cache = ens.plan_cache();
    if !cache.enabled() {
        return Ok(Arc::new(ScalarTemplate::prepare(
            ens, db, shared_q, group_cols,
        )?));
    }
    let shape = QueryShape {
        tag: 5,
        epoch: ens.plan_epoch(),
        tables: shared_q.tables.clone(),
        agg: agg_code(ArtifactKind::AqpScalar, shared_q),
        group_cols: group_cols.iter().map(|c| (c.table, c.column)).collect(),
        preds: pred_shapes(&shared_q.predicates),
        disjuncts: Vec::new(),
        literal_bits: collect_all_literals(shared_q, &[])
            .iter()
            .map(|v| v.to_bits())
            .collect(),
    };
    if let Some(CachedValue::Template(t)) = cache.lookup(&shape) {
        return Ok(t);
    }
    let t = Arc::new(ScalarTemplate::prepare(ens, db, shared_q, group_cols)?);
    cache.insert(shape, CachedValue::Template(Arc::clone(&t)));
    Ok(t)
}

/// Cache-routed covering-member selection for the count-values fast path.
/// Selection depends only on coverage and predicate columns, so the key
/// carries no literals. An uncoverable shape is not cached (it re-checks and
/// falls through to the combined path each time).
pub(crate) fn covering_member(
    ens: &Ensemble,
    qtables: &BTreeSet<TableId>,
    selector_preds: &[Predicate],
) -> Option<usize> {
    let cache = ens.plan_cache();
    if !cache.enabled() {
        return best_covering_rspn(ens, qtables, selector_preds);
    }
    let shape = QueryShape {
        tag: 6,
        epoch: ens.plan_epoch(),
        tables: qtables.iter().copied().collect(),
        agg: (0, 0, 0),
        group_cols: Vec::new(),
        preds: pred_shapes(selector_preds),
        disjuncts: Vec::new(),
        literal_bits: Vec::new(),
    };
    if let Some(CachedValue::Member(i)) = cache.lookup(&shape) {
        return Some(i);
    }
    let idx = best_covering_rspn(ens, qtables, selector_preds)?;
    cache.insert(shape, CachedValue::Member(idx));
    Some(idx)
}

/// Cache-routed pruning [`ActiveSet`] for one ensemble member and one
/// constrained-column union. Building an active set is one O(nodes) arena
/// walk; production traffic repeats column *shapes*, so the walk is done
/// once per `(member, columns)` shape per plan epoch and shared via `Arc`.
/// Sets live in an epoch-stamped side table of the [`PlanCache`] (so they
/// never evict plan artifacts and their lookups don't skew plan hit/miss
/// stats): any maintenance operation (recompile, insert, delete, join-count
/// refresh) bumps the epoch, and the first access at a new epoch drops every
/// cached set — which matters because recompiles may change the arena's node
/// count and layout.
///
/// **Bitwise contract**: a sweep pruned by the returned set is bitwise
/// identical to the full sweep for every probe whose constrained and target
/// columns are a subset of `columns` — pruned-away nodes contribute their
/// query-independent neutral values, which are exactly what the full sweep
/// computes for them (see `deepdb_spn::ActiveSet`).
pub(crate) fn active_set_for(ens: &Ensemble, member: usize, columns: &[usize]) -> Arc<ActiveSet> {
    let cache = ens.plan_cache();
    if !cache.enabled() {
        return Arc::new(ens.rspns()[member].engine().active_set(columns));
    }
    let epoch = ens.plan_epoch();
    if let Some(a) = cache.active_lookup(epoch, member, columns) {
        return a;
    }
    let a = Arc::new(ens.rspns()[member].engine().active_set(columns));
    cache.active_insert(epoch, member, columns.to_vec(), Arc::clone(&a));
    a
}

/// Member selection + target/normalization prelude of the ML entry points.
pub(crate) struct MlPrelude {
    pub(crate) idx: usize,
    pub(crate) target_col: usize,
    /// Tuple-factor normalization columns (regression only; empty for
    /// classification).
    pub(crate) factors: Vec<usize>,
}

/// Cache-routed ML prelude: skips the member scan, target-column lookup,
/// and (for regression) the normalization-factor BFS on repeated
/// `(table, target)` prediction shapes.
pub(crate) fn ml_prelude(
    ens: &Ensemble,
    table: TableId,
    target: ColId,
    regression: bool,
) -> Result<Arc<MlPrelude>, DeepDbError> {
    let cache = ens.plan_cache();
    let shape = QueryShape {
        tag: if regression { 7 } else { 8 },
        epoch: ens.plan_epoch(),
        tables: vec![table],
        agg: (0, 0, 0),
        group_cols: vec![(table, target)],
        preds: Vec::new(),
        disjuncts: Vec::new(),
        literal_bits: Vec::new(),
    };
    if cache.enabled() {
        if let Some(CachedValue::Ml(p)) = cache.lookup(&shape) {
            return Ok(p);
        }
    }
    let idx = crate::ml::rspn_for(ens, table, target)?;
    let rspn = &ens.rspns()[idx];
    let target_col = rspn
        .data_column(table, target)
        .expect("selected to contain target");
    let factors = if regression {
        rspn.normalization_factor_cols(&BTreeSet::from([table]))
    } else {
        Vec::new()
    };
    let prelude = Arc::new(MlPrelude {
        idx,
        target_col,
        factors,
    });
    if cache.enabled() {
        cache.insert(shape, CachedValue::Ml(Arc::clone(&prelude)));
    }
    Ok(prelude)
}

// ---------------------------------------------------------------------------
// Prepared queries
// ---------------------------------------------------------------------------

/// A query prepared once, executable many times with different literals.
///
/// Created by [`Ensemble::prepare`]. The bound form holds a working
/// [`ProbePlan`] clone, pre-sized results, and a reusable inline sweep:
/// [`PreparedQuery::execute`] rewrites the bound literal slots in place,
/// runs one fused inline sweep per touched member, and resolves — **zero
/// planning work and zero allocations** in steady state. Shapes whose binds
/// could not be discovered (value-dependent translation, e.g. functional
/// dependency rewrites) fall back to cold planning per execution.
pub struct PreparedQuery {
    epoch: u64,
    n_literals: usize,
    /// The original query, kept pristine so the serving layer can
    /// re-prepare after a [`DeepDbError::StalePlan`].
    source: Query,
    inner: PreparedInner,
}

enum PreparedInner {
    Bound {
        artifact: Arc<PlanArtifact>,
        plan: ProbePlan,
        results: ProbeResults,
        /// One sweep (with its grow-only leaf-value tables) per plan member,
        /// so alternating members never reshapes shared scratch.
        sweeps: Vec<InlineSweep>,
        /// One pruning active set per plan member, pinned at prepare time
        /// (column shapes never change across rebinds), so steady-state
        /// executions prune with zero discovery work.
        actives: Vec<Arc<ActiveSet>>,
    },
    Fallback {
        query: Query,
        kind: ArtifactKind,
    },
}

/// Prepare `query` against the ensemble: plan, translate, and discover
/// literal binds once ([`Ensemble::prepare`] delegates here).
pub(crate) fn prepare(
    ens: &Ensemble,
    db: &Database,
    query: &Query,
) -> Result<PreparedQuery, DeepDbError> {
    query.validate(db)?;
    if !query.group_by.is_empty() {
        return Err(DeepDbError::Unsupported(
            "prepare supports scalar aggregates; GROUP BY queries go through execute_aqp".into(),
        ));
    }
    let kind = match query.aggregate {
        Aggregate::CountStar => ArtifactKind::Count,
        Aggregate::Avg(t) => ArtifactKind::Avg(t),
        Aggregate::Sum(t) => ArtifactKind::Sum(t),
    };
    let epoch = ens.plan_epoch();
    let literals = collect_all_literals(query, &[]);
    let cache = ens.plan_cache();

    let cached = if cache.enabled() {
        let shape = artifact_shape(epoch, query, kind, &[]);
        match cache.lookup(&shape) {
            Some(CachedValue::Plan(a)) if a.n_literals == literals.len() => Some(a),
            _ => {
                let (plan, resolver) = build_artifact(ens, db, query, kind, &[], true)?;
                discover_binds(ens, db, query, kind, &[], &plan, &literals).map(|binds| {
                    let a = Arc::new(PlanArtifact {
                        plan,
                        resolver,
                        binds,
                        n_literals: literals.len(),
                    });
                    cache.insert(shape, CachedValue::Plan(Arc::clone(&a)));
                    a
                })
            }
        }
    } else {
        // Cache disabled: the prepared query still owns a private artifact.
        let (plan, resolver) = build_artifact(ens, db, query, kind, &[], true)?;
        discover_binds(ens, db, query, kind, &[], &plan, &literals).map(|binds| {
            Arc::new(PlanArtifact {
                plan,
                resolver,
                binds,
                n_literals: literals.len(),
            })
        })
    };

    let inner = match cached {
        Some(artifact) => {
            let mut plan = artifact.plan.clone();
            plan.rebind_literals(&artifact.binds, &literals);
            let results = plan.blank_results();
            let actives = plan
                .member_columns()
                .iter()
                .map(|(member, cols)| active_set_for(ens, *member, cols))
                .collect();
            PreparedInner::Bound {
                artifact,
                plan,
                results,
                sweeps: Vec::new(),
                actives,
            }
        }
        None => PreparedInner::Fallback {
            query: query.clone(),
            kind,
        },
    };
    Ok(PreparedQuery {
        epoch,
        n_literals: literals.len(),
        source: query.clone(),
        inner,
    })
}

impl PreparedQuery {
    /// Execute with fresh literals (in [`query_literals`] order; same arity
    /// as the prepared query's). Returns [`DeepDbError::StalePlan`] once the
    /// ensemble's plan epoch has advanced past the prepared one.
    pub fn execute(
        &mut self,
        ens: &Ensemble,
        db: &Database,
        literals: &[f64],
    ) -> Result<Estimate, DeepDbError> {
        if ens.plan_epoch() != self.epoch {
            return Err(DeepDbError::StalePlan);
        }
        if literals.len() != self.n_literals {
            return Err(DeepDbError::Unsupported(format!(
                "prepared query binds {} literals, got {}",
                self.n_literals,
                literals.len()
            )));
        }
        match &mut self.inner {
            PreparedInner::Bound {
                artifact,
                plan,
                results,
                sweeps,
                actives,
            } => {
                plan.rebind_literals(&artifact.binds, literals);
                plan.execute_into(ens, sweeps, actives, results);
                artifact.resolver.resolve_single(results)
            }
            PreparedInner::Fallback { query, kind } => {
                rebind_query_literals(query, literals);
                let (plan, resolver) = build_artifact(ens, db, query, *kind, &[], false)?;
                let results = plan.execute(ens);
                resolver.resolve_single(&results)
            }
        }
    }

    /// Number of literal slots [`PreparedQuery::execute`] expects.
    pub fn n_literals(&self) -> usize {
        self.n_literals
    }

    /// Whether bind discovery succeeded: `true` means executions rebind a
    /// frozen artifact (zero planning work); `false` means the shape is
    /// value-dependent and each execution plans cold.
    pub fn is_bound(&self) -> bool {
        matches!(self.inner, PreparedInner::Bound { .. })
    }

    /// Plan epoch this query was prepared under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The source query this was prepared from (literals as of prepare
    /// time) — what [`crate::serve::ServeFront::serve_prepared`] re-prepares
    /// after a [`DeepDbError::StalePlan`].
    pub fn source(&self) -> &Query {
        &self.source
    }
}
