//! Fault-tolerant concurrent serving front-end with cross-query probe
//! fusion.
//!
//! [`ProbePlan`] fuses all probes of *one* query into one sweep per touched
//! member; [`ServeFront`] fuses the probes of *many in-flight queries* the
//! same way — the classic dynamic-batching trick from model serving, sound
//! here because a probe's value depends only on its own `SpnQuery` and the
//! semiring sweep, never on batch-mates (so fused answers are **bitwise**
//! identical to per-client execution).
//!
//! # Serving lifecycle
//!
//! 1. **Admission** — a bounded in-flight counter; requests beyond
//!    [`ServeConfig::queue_capacity`] are rejected immediately with
//!    [`DeepDbError::Overloaded`] (backpressure, no unbounded queueing).
//! 2. **Plan** — the request routes through the plan cache
//!    ([`crate::cache`]): a shape hit costs one literal rebind.
//! 3. **Window** — the request's probes are absorbed into the forming
//!    batch's shared [`ProbePlan`] ([`ProbePlan::absorb`]); the first
//!    client in becomes the batch **leader** and waits up to the (pressure-
//!    adjusted) batching window for co-batched arrivals, or until the batch
//!    reaches [`ServeConfig::max_batch`].
//! 4. **Fused sweep** — the leader executes the shared plan: **one fused
//!    sweep per touched RSPN member per window**, tiles spread over the
//!    ensemble's persistent worker pool, with a batch-wide [`CancelFlag`]
//!    checked at every tile claim.
//! 5. **Demux** — per-client slices are extracted back out
//!    ([`ProbeResults::extract`]) and handed to each waiting client through
//!    its slot; each client resolves its own typed handles.
//!
//! # Robustness contract
//!
//! Every `serve` call returns either a **bitwise-correct answer** (equal to
//! executing the query alone, unfused) or a **typed error** — never a wrong
//! answer, never a hang:
//!
//! * **Deadlines** — a per-query deadline cancels shared sweeps
//!   cooperatively at tile boundaries (only once *every* co-batched query's
//!   deadline has passed — shared work is cancelled only when nobody wants
//!   it) and bounds the client's wait on its result slot. Misses surface as
//!   [`DeepDbError::DeadlineExceeded`] and shrink the batching window
//!   (graceful degradation: less batching latency under pressure, window
//!   recovery on clean batches).
//! * **Panic isolation** — a panic inside the fused sweep aborts only the
//!   shared execution; the leader re-executes every co-batched query
//!   *individually* under its own `catch_unwind`, so the faulty query alone
//!   fails with [`DeepDbError::QueryPanicked`] while its peers still get
//!   bitwise-correct answers. The worker pool self-heals (panicked workers
//!   replace their scratch wholesale).
//! * **Maintenance races** — plan-epoch bumps landing mid-flight are
//!   detected after the sweep; affected requests retry **once** end to end
//!   (re-plan, re-batch, re-sweep) and only then surface
//!   [`DeepDbError::StalePlan`]. Stale results are never returned.
//!
//! # Chaos testing
//!
//! [`FaultPlan`] is a deterministic, seeded fault injector with hooks at
//! four named sites — [`FaultSite::Admission`], [`FaultSite::CacheLookup`],
//! [`FaultSite::TileStart`], [`FaultSite::CombineResolve`] — injecting
//! panics, delays, and plan-epoch bumps at configurable rates. The chaos
//! suite (`crates/core/tests/chaos.rs`) drives 64 concurrent clients
//! against an injected front and asserts the contract above holds for every
//! single request.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use deepdb_spn::{CancelFlag, TileFault, TileFaultFn};
use deepdb_storage::{Aggregate, Database, Query};

use crate::cache::{self, ArtifactKind, Obtained, PreparedQuery};
use crate::ensemble::Ensemble;
use crate::estimate::Estimate;
use crate::plan::{PlanStitch, ProbePlan, ProbeResults};
use crate::DeepDbError;

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// Named injection sites of the serving path, in request order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `serve` entry, before the admission check.
    Admission,
    /// Before the plan-cache lookup / artifact build.
    CacheLookup,
    /// Inside the worker pool, at every claimed sweep tile.
    TileStart,
    /// Before the client resolves its demuxed results.
    CombineResolve,
}

const N_SITES: usize = 4;

/// What the injector decided for one hook invocation.
#[derive(Clone, Copy)]
enum Injected {
    Panic,
    Delay,
    EpochBump,
}

/// A deterministic, seeded fault plan: each hook invocation at each site
/// draws a pseudo-random decision from `hash(seed, site, invocation #)`, so
/// a given seed always injects the same faults at the same points
/// regardless of thread interleaving *per site sequence*. Rates are per
/// 1024 invocations.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    panic_per_1024: u32,
    delay_per_1024: u32,
    bump_per_1024: u32,
    delay: Duration,
    /// Remaining panics this plan may inject (defaults to unlimited).
    panic_budget: AtomicU64,
    /// When set, faults inject at this site only.
    only: Option<FaultSite>,
    counters: [AtomicU64; N_SITES],
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A fault plan that injects nothing until rates are configured.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            panic_per_1024: 0,
            delay_per_1024: 0,
            bump_per_1024: 0,
            delay: Duration::from_millis(1),
            panic_budget: AtomicU64::new(u64::MAX),
            only: None,
            counters: Default::default(),
        }
    }

    /// Inject panics at `per_1024` out of 1024 hook invocations.
    pub fn with_panics(mut self, per_1024: u32) -> Self {
        self.panic_per_1024 = per_1024;
        self
    }

    /// Inject `delay`-long sleeps at `per_1024` out of 1024 invocations.
    pub fn with_delays(mut self, per_1024: u32, delay: Duration) -> Self {
        self.delay_per_1024 = per_1024;
        self.delay = delay;
        self
    }

    /// Inject plan-epoch bumps (simulated mid-flight maintenance) at
    /// `per_1024` out of 1024 invocations.
    pub fn with_epoch_bumps(mut self, per_1024: u32) -> Self {
        self.bump_per_1024 = per_1024;
        self
    }

    /// Cap the total number of panics this plan will ever inject (the
    /// budget spends across all sites; further panic draws become no-ops).
    /// Lets tests stage an exact fault sequence — e.g. "panic the fused
    /// sweep once, then the first isolated re-execution, then behave".
    pub fn with_panic_budget(self, n: u64) -> Self {
        self.panic_budget.store(n, Ordering::Relaxed);
        self
    }

    /// Restrict injection to one site (e.g. only [`FaultSite::TileStart`]
    /// to fault sweeps while leaving the serve layer clean).
    pub fn only_at(mut self, site: FaultSite) -> Self {
        self.only = Some(site);
        self
    }

    /// Total hook invocations so far at `site` (diagnostics).
    pub fn invocations(&self, site: FaultSite) -> u64 {
        self.counters[site as usize].load(Ordering::Relaxed)
    }

    fn decide(&self, site: FaultSite) -> Option<Injected> {
        let n = self.counters[site as usize].fetch_add(1, Ordering::Relaxed);
        if self.only.is_some_and(|s| s != site) {
            return None;
        }
        let h = splitmix(
            self.seed
                ^ (site as u64).wrapping_mul(0xA24B_AED4_963E_E407)
                ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let r = (h % 1024) as u32;
        if r < self.panic_per_1024 {
            let in_budget = self
                .panic_budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                .is_ok();
            in_budget.then_some(Injected::Panic)
        } else if r < self.panic_per_1024 + self.delay_per_1024 {
            Some(Injected::Delay)
        } else if r < self.panic_per_1024 + self.delay_per_1024 + self.bump_per_1024 {
            Some(Injected::EpochBump)
        } else {
            None
        }
    }

    /// The [`FaultSite::TileStart`] hook, adapted to the pool's
    /// [`TileFault`] vocabulary (epoch bumps happen here, inline, since the
    /// pool has no ensemble handle).
    fn tile_fault(&self, ens: &Ensemble) -> Option<TileFault> {
        match self.decide(FaultSite::TileStart) {
            Some(Injected::Panic) => Some(TileFault::Panic),
            Some(Injected::Delay) => Some(TileFault::Delay(self.delay)),
            Some(Injected::EpochBump) => {
                ens.invalidate_plans();
                None
            }
            None => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration and stats
// ---------------------------------------------------------------------------

/// Tuning knobs of a [`ServeFront`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Max concurrently admitted requests (queued + executing); beyond it,
    /// `serve` rejects with [`DeepDbError::Overloaded`].
    pub queue_capacity: usize,
    /// A forming batch executes as soon as it holds this many requests.
    pub max_batch: usize,
    /// How long a batch leader waits for co-batched arrivals. Shrunk
    /// (halved per consecutive deadline miss) under deadline pressure,
    /// restored on clean batches; `0` disables batching entirely (every
    /// request sweeps alone).
    pub window: Duration,
    /// Worker-thread cap for fused sweeps (`0` = the ensemble's budget).
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_batch: 64,
            window: Duration::from_micros(200),
            threads: 0,
        }
    }
}

/// Shrink exponent cap: a fully-degraded window is `window / 2^12` — for
/// any practical window that is "don't wait at all".
const MAX_SHRINK: u32 = 12;

/// Monotonic serving counters (snapshot via [`ServeFront::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests that passed admission.
    pub admitted: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected_overloaded: u64,
    /// Requests that ended in `DeadlineExceeded` (either cancelled sweeps
    /// or missed slot pickups).
    pub deadline_misses: u64,
    /// Requests that ended in `QueryPanicked`.
    pub query_panics: u64,
    /// `StalePlan` outcomes that triggered the internal one-shot retry.
    pub stale_retries: u64,
    /// Batches executed (fused or singleton).
    pub batches: u64,
    /// Requests served through a batch of size ≥ 2 (i.e. actually fused).
    pub fused_requests: u64,
    /// Per-client isolated re-executions after a fused-sweep panic.
    pub isolated_fallbacks: u64,
    /// Batches whose window closed with a single entry, served through the
    /// direct solo fast path (no fuse/demux).
    pub solo_fastpath: u64,
}

// ---------------------------------------------------------------------------
// Batch plumbing
// ---------------------------------------------------------------------------

/// One client's result mailbox: filled exactly once (first write wins), the
/// client waits on the condvar with its own deadline.
#[derive(Default)]
struct Slot {
    cell: Mutex<Option<Result<ProbeResults, DeepDbError>>>,
    cv: Condvar,
}

impl Slot {
    fn fill(&self, r: Result<ProbeResults, DeepDbError>) {
        let mut g = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        if g.is_none() {
            *g = Some(r);
        }
        self.cv.notify_all();
    }

    fn wait(&self, deadline: Option<Instant>) -> Result<ProbeResults, DeepDbError> {
        let mut g = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(r) = g.take() {
                return r;
            }
            match deadline {
                None => {
                    g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(DeepDbError::DeadlineExceeded);
                    }
                    let (ng, _) = self
                        .cv
                        .wait_timeout(g, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    g = ng;
                }
            }
        }
    }
}

/// One admitted request inside a forming batch.
struct Entry {
    slot: Arc<Slot>,
    /// Where this request's probes landed in the shared plan.
    stitch: PlanStitch,
    /// The request's standalone plan — the isolation fallback re-executes
    /// it alone after a fused-sweep panic.
    solo: ProbePlan,
    /// Plan epoch observed when the request planned; a different epoch
    /// after the sweep means maintenance landed mid-flight → retry.
    epoch: u64,
    deadline: Option<Instant>,
}

struct FormingBatch {
    plan: ProbePlan,
    entries: Vec<Entry>,
    opened: Instant,
}

struct FrontState {
    in_flight: usize,
    forming: Option<FormingBatch>,
}

/// Fills every still-empty slot of a batch with `QueryPanicked` on drop —
/// the no-hang backstop: even if batch execution unwinds in an unforeseen
/// way, no client waits forever. (Slot fills are first-write-wins, so this
/// is a no-op after a normal execution.)
struct FillGuard<'e> {
    entries: &'e [Entry],
}

impl Drop for FillGuard<'_> {
    fn drop(&mut self) {
        for e in self.entries {
            e.slot.fill(Err(DeepDbError::QueryPanicked(
                "serving batch executor unwound before filling this slot".into(),
            )));
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Decrements `in_flight` on drop, so admission is released even when the
/// request unwinds through an injected panic.
struct AdmissionGuard<'f, 'a> {
    front: &'f ServeFront<'a>,
}

impl Drop for AdmissionGuard<'_, '_> {
    fn drop(&mut self) {
        self.front.lock_state().in_flight -= 1;
    }
}

// ---------------------------------------------------------------------------
// The front-end
// ---------------------------------------------------------------------------

/// A concurrent serving front-end over `&Ensemble`: bounded admission, a
/// batching window fusing co-arriving queries' probes into shared
/// per-member sweeps, per-query deadlines with cooperative cancellation,
/// panic isolation, and one-shot retry on mid-flight maintenance. See the
/// module docs for the lifecycle and the robustness contract.
///
/// `ServeFront` is `Sync`: clients call [`ServeFront::serve`] concurrently
/// through a shared reference (typically one `ServeFront` per process,
/// shared across request threads).
pub struct ServeFront<'a> {
    ens: &'a Ensemble,
    db: &'a Database,
    cfg: ServeConfig,
    faults: Option<Arc<FaultPlan>>,
    state: Mutex<FrontState>,
    /// Batch leaders wait here for their batch to fill.
    batch_cv: Condvar,
    /// Window shrink exponent under deadline pressure.
    shrink: AtomicU32,
    admitted: AtomicU64,
    rejected_overloaded: AtomicU64,
    deadline_misses: AtomicU64,
    query_panics: AtomicU64,
    stale_retries: AtomicU64,
    batches: AtomicU64,
    fused_requests: AtomicU64,
    isolated_fallbacks: AtomicU64,
    solo_fastpath: AtomicU64,
}

impl<'a> ServeFront<'a> {
    /// A front with the default [`ServeConfig`].
    pub fn new(ens: &'a Ensemble, db: &'a Database) -> Self {
        Self::with_config(ens, db, ServeConfig::default())
    }

    pub fn with_config(ens: &'a Ensemble, db: &'a Database, cfg: ServeConfig) -> Self {
        Self {
            ens,
            db,
            cfg,
            faults: None,
            state: Mutex::new(FrontState {
                in_flight: 0,
                forming: None,
            }),
            batch_cv: Condvar::new(),
            shrink: AtomicU32::new(0),
            admitted: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            query_panics: AtomicU64::new(0),
            stale_retries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            fused_requests: AtomicU64::new(0),
            isolated_fallbacks: AtomicU64::new(0),
            solo_fastpath: AtomicU64::new(0),
        }
    }

    /// Attach a deterministic fault injector (chaos testing).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(Arc::new(faults));
        self
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            query_panics: self.query_panics.load(Ordering::Relaxed),
            stale_retries: self.stale_retries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            fused_requests: self.fused_requests.load(Ordering::Relaxed),
            isolated_fallbacks: self.isolated_fallbacks.load(Ordering::Relaxed),
            solo_fastpath: self.solo_fastpath.load(Ordering::Relaxed),
        }
    }

    /// The batching window currently in effect: the configured window
    /// halved once per consecutive deadline miss (graceful degradation),
    /// restored step by step on clean batches.
    pub fn effective_window(&self) -> Duration {
        let s = self.shrink.load(Ordering::Relaxed).min(MAX_SHRINK);
        self.cfg.window / (1u32 << s)
    }

    /// Requests currently admitted (queued or executing).
    pub fn in_flight(&self) -> usize {
        self.lock_state().in_flight
    }

    fn lock_state(&self) -> MutexGuard<'_, FrontState> {
        // Serving state is never left torn: every mutation under this lock
        // is a push/take/counter update completed before unlock, and batch
        // execution happens outside it. Recover from poison.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fire an injected fault at a serve-layer site (panics propagate to
    /// the per-request `catch_unwind`, surfacing as `QueryPanicked` for
    /// this request alone).
    fn fire(&self, site: FaultSite) {
        if let Some(fp) = &self.faults {
            match fp.decide(site) {
                Some(Injected::Panic) => panic!("injected fault at {site:?}"),
                Some(Injected::Delay) => std::thread::sleep(fp.delay),
                Some(Injected::EpochBump) => self.ens.invalidate_plans(),
                None => {}
            }
        }
    }

    fn note_deadline_miss(&self) {
        self.deadline_misses.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .shrink
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some((s + 1).min(MAX_SHRINK))
            });
    }

    fn note_clean_batch(&self) {
        let _ = self
            .shrink
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_sub(1))
            });
    }

    // -- request path -------------------------------------------------------

    /// Serve one scalar aggregate query (COUNT/AVG/SUM over conjunctive
    /// predicates), optionally under a deadline. Returns a bitwise-correct
    /// estimate (identical to the unfused single-query path) or a typed
    /// error — see the module-level robustness contract and the
    /// [`crate::error`] taxonomy.
    pub fn serve(
        &self,
        query: &Query,
        deadline: Option<Duration>,
    ) -> Result<Estimate, DeepDbError> {
        let deadline = deadline.map(|d| Instant::now() + d);
        match catch_unwind(AssertUnwindSafe(|| self.serve_at(query, deadline))) {
            Ok(r) => r,
            Err(payload) => {
                self.query_panics.fetch_add(1, Ordering::Relaxed);
                Err(DeepDbError::QueryPanicked(panic_message(payload)))
            }
        }
    }

    fn serve_at(&self, query: &Query, deadline: Option<Instant>) -> Result<Estimate, DeepDbError> {
        self.fire(FaultSite::Admission);
        let _admission = self.admit()?;
        query.validate(self.db)?;
        if !query.group_by.is_empty() {
            return Err(DeepDbError::Unsupported(
                "serve handles scalar aggregates; GROUP BY goes through execute_aqp".into(),
            ));
        }
        match self.request_once(query, deadline) {
            // Maintenance landed mid-flight: retry once end to end
            // (re-plan against the new epoch, re-batch, re-sweep).
            Err(DeepDbError::StalePlan) => {
                self.stale_retries.fetch_add(1, Ordering::Relaxed);
                self.request_once(query, deadline)
            }
            r => r,
        }
    }

    /// Serve a [`PreparedQuery`] with fresh literals. Prepared execution is
    /// the zero-allocation inline path, so it bypasses the batching window;
    /// it still gets admission control, deadline accounting, panic
    /// isolation, and — the serving contract for mid-flight maintenance —
    /// an automatic one-shot **re-prepare-and-retry** on
    /// [`DeepDbError::StalePlan`] (re-preparing from
    /// [`PreparedQuery::source`] in place).
    pub fn serve_prepared(
        &self,
        prepared: &mut PreparedQuery,
        literals: &[f64],
        deadline: Option<Duration>,
    ) -> Result<Estimate, DeepDbError> {
        let deadline = deadline.map(|d| Instant::now() + d);
        match catch_unwind(AssertUnwindSafe(|| {
            self.serve_prepared_at(prepared, literals, deadline)
        })) {
            Ok(r) => r,
            Err(payload) => {
                self.query_panics.fetch_add(1, Ordering::Relaxed);
                Err(DeepDbError::QueryPanicked(panic_message(payload)))
            }
        }
    }

    fn serve_prepared_at(
        &self,
        prepared: &mut PreparedQuery,
        literals: &[f64],
        deadline: Option<Instant>,
    ) -> Result<Estimate, DeepDbError> {
        self.fire(FaultSite::Admission);
        let _admission = self.admit()?;
        self.fire(FaultSite::CacheLookup);
        let out = match prepared.execute(self.ens, self.db, literals) {
            Err(DeepDbError::StalePlan) => {
                self.stale_retries.fetch_add(1, Ordering::Relaxed);
                *prepared = self.ens.prepare(self.db, prepared.source())?;
                prepared.execute(self.ens, self.db, literals)
            }
            r => r,
        };
        self.fire(FaultSite::CombineResolve);
        if let Some(d) = deadline {
            if Instant::now() >= d {
                self.note_deadline_miss();
                return Err(DeepDbError::DeadlineExceeded);
            }
        }
        out
    }

    fn admit(&self) -> Result<AdmissionGuard<'_, 'a>, DeepDbError> {
        let mut st = self.lock_state();
        if st.in_flight >= self.cfg.queue_capacity.max(1) {
            drop(st);
            self.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
            return Err(DeepDbError::Overloaded);
        }
        st.in_flight += 1;
        drop(st);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(AdmissionGuard { front: self })
    }

    /// One full pass: plan, join/lead a batch, wait for the demuxed slice,
    /// resolve.
    fn request_once(
        &self,
        query: &Query,
        deadline: Option<Instant>,
    ) -> Result<Estimate, DeepDbError> {
        self.fire(FaultSite::CacheLookup);
        let kind = match query.aggregate {
            Aggregate::CountStar => ArtifactKind::Count,
            Aggregate::Avg(t) => ArtifactKind::Avg(t),
            Aggregate::Sum(t) => ArtifactKind::Sum(t),
        };
        let epoch = self.ens.plan_epoch();
        let (plan, obtained): (ProbePlan, Obtained) =
            cache::obtain(self.ens, self.db, query, kind, &[])?;

        let slot = Arc::new(Slot::default());
        let leader = {
            let mut st = self.lock_state();
            let forming = st.forming.get_or_insert_with(|| FormingBatch {
                plan: ProbePlan::new(),
                entries: Vec::new(),
                opened: Instant::now(),
            });
            let stitch = forming.plan.absorb(&plan);
            forming.entries.push(Entry {
                slot: Arc::clone(&slot),
                stitch,
                solo: plan,
                epoch,
                deadline,
            });
            let leader = forming.entries.len() == 1;
            if forming.entries.len() >= self.cfg.max_batch.max(1) {
                // Batch is full: wake the leader early.
                self.batch_cv.notify_all();
            }
            leader
        };
        if leader {
            self.lead_batch();
        }
        let results = match slot.wait(deadline) {
            Ok(r) => r,
            Err(e) => {
                if e == DeepDbError::DeadlineExceeded {
                    self.note_deadline_miss();
                }
                return Err(e);
            }
        };
        self.fire(FaultSite::CombineResolve);
        obtained.resolver().resolve_single(&results)
    }

    /// Leader role: wait out the batching window (or until the batch is
    /// full), take the batch, execute and demux it. The leader's own slot
    /// is filled along with everyone else's.
    fn lead_batch(&self) {
        let window = self.effective_window();
        let full = |st: &FrontState| {
            st.forming
                .as_ref()
                .is_none_or(|f| f.entries.len() >= self.cfg.max_batch.max(1))
        };
        let batch = {
            let mut st = self.lock_state();
            if !window.is_zero() {
                let end = st.forming.as_ref().map(|f| f.opened + window);
                if let Some(end) = end {
                    while !full(&st) {
                        let now = Instant::now();
                        if now >= end {
                            break;
                        }
                        let (g, _) = self
                            .batch_cv
                            .wait_timeout(st, end - now)
                            .unwrap_or_else(PoisonError::into_inner);
                        st = g;
                    }
                }
            }
            st.forming.take()
        };
        if let Some(batch) = batch {
            self.execute_batch(batch);
        }
    }

    /// Execute a taken batch: one fused sweep per touched member, then
    /// demux per client — falling back to per-client isolated execution if
    /// the fused sweep panics, and to `DeadlineExceeded` if it was
    /// cancelled. Every slot is filled on every path (`FillGuard` backstops
    /// the unforeseen ones).
    fn execute_batch(&self, batch: FormingBatch) {
        let FormingBatch { plan, entries, .. } = batch;
        self.batches.fetch_add(1, Ordering::Relaxed);
        if entries.len() >= 2 {
            self.fused_requests
                .fetch_add(entries.len() as u64, Ordering::Relaxed);
        }
        let guard = FillGuard { entries: &entries };

        if entries.len() == 1 {
            // Single-client fast path: the window closed with one entry, so
            // the fused plan is that entry's solo plan plus stitch/demux
            // overhead. Execute the solo plan directly — its results already
            // carry the plan id the client's resolver expects.
            self.solo_fastpath.fetch_add(1, Ordering::Relaxed);
            let tile_hook = self.faults.clone().map(|fp| {
                let ens = self.ens;
                move || fp.tile_fault(ens)
            });
            let fault: Option<&TileFaultFn<'_>> = tile_hook.as_ref().map(|f| f as &TileFaultFn<'_>);
            if self.solo_execute(&entries[0], fault) {
                self.note_clean_batch();
            }
            drop(guard);
            return;
        }

        // The shared sweep is cancelled only when *every* co-batched
        // request's deadline has passed — cancel only when nobody is left
        // to want the results.
        let mut latest: Option<Instant> = None;
        let mut all_have_deadlines = true;
        for e in &entries {
            match e.deadline {
                Some(d) => latest = Some(latest.map_or(d, |l| l.max(d))),
                None => all_have_deadlines = false,
            }
        }
        let flag = match latest {
            Some(d) if all_have_deadlines => CancelFlag::with_deadline(d),
            _ => CancelFlag::new(),
        };
        let tile_hook = self.faults.clone().map(|fp| {
            let ens = self.ens;
            move || fp.tile_fault(ens)
        });
        let fault: Option<&TileFaultFn<'_>> = tile_hook.as_ref().map(|f| f as &TileFaultFn<'_>);

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            plan.execute_guarded(self.ens, self.cfg.threads, Some(&flag), fault)
        }));
        match outcome {
            Ok(results) if !flag.is_cancelled() => {
                let cur = self.ens.plan_epoch();
                for e in &entries {
                    if e.epoch != cur {
                        e.slot.fill(Err(DeepDbError::StalePlan));
                    } else {
                        e.slot.fill(Ok(results.extract(&e.stitch)));
                    }
                }
                self.note_clean_batch();
            }
            Ok(_) => {
                // Cancelled: every deadline in the batch has passed.
                for e in &entries {
                    e.slot.fill(Err(DeepDbError::DeadlineExceeded));
                }
                self.note_deadline_miss();
            }
            Err(_) => {
                // Fused sweep panicked: isolate — re-run every co-batched
                // request alone so only the faulty one fails.
                self.isolate(&entries, fault);
            }
        }
        drop(guard);
    }

    /// Per-client isolated fallback after a fused-sweep panic: each
    /// request's standalone plan re-executes under its own `catch_unwind`
    /// and its own deadline flag, so the faulty request alone gets
    /// `QueryPanicked` while its peers complete bitwise-correctly. The
    /// worker pool has already self-healed (panicked workers replaced
    /// their scratch).
    fn isolate(&self, entries: &[Entry], fault: Option<&TileFaultFn<'_>>) {
        for e in entries {
            self.isolated_fallbacks.fetch_add(1, Ordering::Relaxed);
            self.solo_execute(e, fault);
        }
    }

    /// Execute one entry's standalone plan under its own deadline flag and
    /// fill its slot; returns `true` when the execution completed cleanly
    /// (neither cancelled nor panicked). Shared by the single-client fast
    /// path and the post-panic isolation fallback.
    fn solo_execute(&self, e: &Entry, fault: Option<&TileFaultFn<'_>>) -> bool {
        let flag = match e.deadline {
            Some(d) => CancelFlag::with_deadline(d),
            None => CancelFlag::new(),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            e.solo
                .execute_guarded(self.ens, self.cfg.threads, Some(&flag), fault)
        }));
        let filled = match outcome {
            Ok(_) if flag.is_cancelled() => Err(DeepDbError::DeadlineExceeded),
            Ok(results) => {
                if e.epoch != self.ens.plan_epoch() {
                    Err(DeepDbError::StalePlan)
                } else {
                    Ok(results)
                }
            }
            Err(payload) => {
                self.query_panics.fetch_add(1, Ordering::Relaxed);
                Err(DeepDbError::QueryPanicked(panic_message(payload)))
            }
        };
        let clean = filled.is_ok();
        e.slot.fill(filled);
        clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_is_deterministic_per_seed() {
        let a = FaultPlan::new(7)
            .with_panics(100)
            .with_delays(50, Duration::from_micros(10))
            .with_epoch_bumps(30);
        let b = FaultPlan::new(7)
            .with_panics(100)
            .with_delays(50, Duration::from_micros(10))
            .with_epoch_bumps(30);
        for _ in 0..2048 {
            let da = a.decide(FaultSite::Admission);
            let db = b.decide(FaultSite::Admission);
            assert_eq!(
                std::mem::discriminant(&da.unwrap_or(Injected::Delay)),
                std::mem::discriminant(&db.unwrap_or(Injected::Delay)),
            );
            assert_eq!(da.is_none(), db.is_none());
        }
        // Different seeds diverge somewhere in the first 2048 draws.
        let c = FaultPlan::new(8).with_panics(100);
        let d = FaultPlan::new(9).with_panics(100);
        let mut diverged = false;
        for _ in 0..2048 {
            if c.decide(FaultSite::TileStart).is_some() != d.decide(FaultSite::TileStart).is_some()
            {
                diverged = true;
            }
        }
        assert!(diverged);
    }

    #[test]
    fn fault_plan_rates_are_roughly_honored() {
        let fp = FaultPlan::new(42).with_panics(256); // 25%
        let mut hits = 0;
        for _ in 0..4096 {
            if fp.decide(FaultSite::CacheLookup).is_some() {
                hits += 1;
            }
        }
        // 25% ± generous slack.
        assert!((700..=1350).contains(&hits), "hits = {hits}");
        assert_eq!(fp.invocations(FaultSite::CacheLookup), 4096);
    }

    #[test]
    fn window_shrinks_under_pressure_and_recovers() {
        let db = Database::new("empty");
        let ens_db = db.clone();
        // A front needs an ensemble; build a trivial one over zero tables.
        let ens = crate::EnsembleBuilder::new(&ens_db).build().unwrap();
        let front = ServeFront::with_config(
            &ens,
            &db,
            ServeConfig {
                window: Duration::from_millis(4),
                ..ServeConfig::default()
            },
        );
        assert_eq!(front.effective_window(), Duration::from_millis(4));
        front.note_deadline_miss();
        front.note_deadline_miss();
        assert_eq!(front.effective_window(), Duration::from_millis(1));
        front.note_clean_batch();
        assert_eq!(front.effective_window(), Duration::from_millis(2));
        for _ in 0..40 {
            front.note_deadline_miss();
        }
        // Saturates at the max shrink, never underflows to zero division.
        assert!(front.effective_window() <= Duration::from_micros(1));
        for _ in 0..40 {
            front.note_clean_batch();
        }
        assert_eq!(front.effective_window(), Duration::from_millis(4));
    }
}
