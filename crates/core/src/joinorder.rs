//! RSPN-backed cardinality model for the storage join-order optimizer.
//!
//! [`deepdb_storage::optimizer::JoinOrderSpace`] prices every connected
//! table subset of a query through a [`CardinalityModel`]; this module
//! supplies the model the paper actually argues for — RSPN estimates. The
//! enumerator hammers repeated sub-query *shapes* (a workload's queries
//! differ in literals, not structure), so [`JoinOrderer`] keeps one
//! [`PreparedQuery`] per subset shape and answers steady-state estimates by
//! **rebinding literals only**: no planning, no translation, and no
//! allocations (the shape key is a fixed stack array, the literal buffer is
//! reused, and the bound prepared path is allocation-free by contract).
//!
//! Subset shapes that the ensemble cannot answer (no covering member, no
//! combinable FK path) are memoized as unanswerable per plan epoch and
//! priced pessimistically by their row-count product — the DP then treats
//! them as expensive, which is the conservative choice. A plan-epoch bump
//! ([`DeepDbError::StalePlan`]) re-prepares lazily on next use.
//!
//! Estimate traffic is visible in [`CacheStats::optimizer_estimates`]
//! ([`crate::CacheStats`]) — a dedicated counter, so enumerator bursts do
//! not drown the interactive hit/miss accounting.

use std::collections::HashMap;

use deepdb_storage::optimizer::{CardinalityModel, JoinOrder, JoinOrderSpace};
use deepdb_storage::{Database, PredOp, Query, TableId, Value};

use crate::cache::PreparedQuery;
use crate::ensemble::Ensemble;
use crate::DeepDbError;

/// Exact fixed-size encoding of a subset-query shape: the table subset plus
/// one packed word per predicate on those tables. No hashing tricks — two
/// shapes collide only if they are equal; shapes that do not fit (more than
/// [`MAX_WORDS`] predicates, or table/column ids out of packing range) are
/// simply not memoized and estimate cold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SubKey {
    /// Bitmask of the subset's table ids (ids must be < 64).
    tables: u64,
    /// Packed predicate words, in predicate order; unused tail is 0.
    words: [u64; MAX_WORDS],
    len: u8,
}

const MAX_WORDS: usize = 12;

fn pack_pred(table: TableId, column: usize, op: &PredOp) -> Option<u64> {
    if table >= 1 << 16 || column >= 1 << 16 {
        return None;
    }
    // Discriminant + shape extras (literal nullness is structural: it changes
    // how the cache translates the predicate, so it belongs in the key).
    let (disc, extra): (u64, u64) = match op {
        PredOp::Cmp(op, v) => (*op as u64, u64::from(matches!(v, Value::Null))),
        PredOp::Between(lo, hi) => (
            8,
            u64::from(matches!(lo, Value::Null)) | u64::from(matches!(hi, Value::Null)) << 1,
        ),
        PredOp::In(vs) => {
            if vs.len() >= 1 << 12 {
                return None;
            }
            let nulls = vs.iter().filter(|v| matches!(v, Value::Null)).count() as u64;
            (9, (vs.len() as u64) << 4 | nulls.min(15))
        }
        PredOp::IsNull => (10, 0),
        PredOp::IsNotNull => (11, 0),
    };
    Some((table as u64) << 48 | (column as u64) << 32 | disc << 16 | extra)
}

/// Build the shape key of `query` restricted to `tables`. `None` when the
/// shape does not fit the fixed encoding (caller estimates uncached).
fn subset_key(query: &Query, tables: &[TableId]) -> Option<SubKey> {
    let mut mask = 0u64;
    for &t in tables {
        if t >= 64 {
            return None;
        }
        mask |= 1 << t;
    }
    let mut words = [0u64; MAX_WORDS];
    let mut len = 0usize;
    for p in &query.predicates {
        if p.table < 64 && mask & (1 << p.table) != 0 {
            if len == MAX_WORDS {
                return None;
            }
            words[len] = pack_pred(p.table, p.column, &p.op)?;
            len += 1;
        }
    }
    Some(SubKey {
        tables: mask,
        words,
        len: len as u8,
    })
}

/// Append the subset's literals (canonical [`crate::query_literals`] order,
/// restricted to predicates on `tables`) to `out`. The subset query's bind
/// vector is exactly this restriction because literal order is predicate
/// order.
fn subset_literals(query: &Query, tables: &[TableId], out: &mut Vec<f64>) {
    out.clear();
    for p in &query.predicates {
        if !tables.contains(&p.table) {
            continue;
        }
        match &p.op {
            PredOp::Cmp(_, v) => out.extend(v.as_f64()),
            PredOp::Between(lo, hi) => {
                out.extend(lo.as_f64());
                out.extend(hi.as_f64());
            }
            PredOp::In(vs) => out.extend(vs.iter().filter_map(Value::as_f64)),
            PredOp::IsNull | PredOp::IsNotNull => {}
        }
    }
}

// `Ready` dominates the map and is dereferenced on every estimate; boxing it
// to shrink the rare `Unanswerable` variant would cost a pointer chase on the
// hot rebinding path for no capacity win (entries already live on the heap).
#[allow(clippy::large_enum_variant)]
enum PreparedEntry {
    Ready(PreparedQuery),
    /// The ensemble could not answer this shape at `epoch`; re-checked after
    /// the next maintenance operation (coverage can change).
    Unanswerable {
        epoch: u64,
    },
}

/// Reusable join-order planner: RSPN cardinalities through shape-memoized
/// prepared queries. One instance serves a whole workload — the shape map
/// and literal buffer persist across [`optimize`](Self::optimize) calls, so
/// repeated query shapes plan with zero estimator planning work.
#[derive(Default)]
pub struct JoinOrderer {
    map: HashMap<SubKey, PreparedEntry>,
    lits: Vec<f64>,
}

impl JoinOrderer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized subset shapes (prepared + unanswerable).
    pub fn shapes(&self) -> usize {
        self.map.len()
    }

    /// Enumerate and price the query's join-order space with RSPN
    /// estimates. One [`CardinalityModel`] call per connected subset, all
    /// recorded in [`CacheStats::optimizer_estimates`](crate::CacheStats).
    pub fn space(
        &mut self,
        ens: &Ensemble,
        db: &Database,
        query: &Query,
    ) -> Result<JoinOrderSpace, DeepDbError> {
        let mut model = RspnModel { orderer: self, ens };
        let space = JoinOrderSpace::new(db, query, &mut model)?;
        ens.plan_cache()
            .note_optimizer_estimates(space.n_estimates() as u64);
        Ok(space)
    }

    /// The estimated-best left-deep order for `query`.
    pub fn optimize(
        &mut self,
        ens: &Ensemble,
        db: &Database,
        query: &Query,
    ) -> Result<JoinOrder, DeepDbError> {
        Ok(self.space(ens, db, query)?.best())
    }

    /// Price one connected subset of `query.tables` — the estimate the DP
    /// scores candidate subplans with, exposed so callers (and the
    /// counting-allocator acceptance test) can drive the steady-state
    /// rebinding path directly. After one warm call per shape this performs
    /// zero heap allocations.
    pub fn subset_estimate(
        &mut self,
        ens: &Ensemble,
        db: &Database,
        query: &Query,
        tables: &[TableId],
    ) -> f64 {
        self.estimate_subset(ens, db, query, tables)
    }

    /// One subset estimate: rebind the shape's prepared query when warm,
    /// prepare it when cold, fall back to the pessimistic row-count product
    /// when the ensemble cannot answer the shape.
    fn estimate_subset(
        &mut self,
        ens: &Ensemble,
        db: &Database,
        query: &Query,
        tables: &[TableId],
    ) -> f64 {
        let Some(key) = subset_key(query, tables) else {
            // Shape outside the fixed encoding: estimate cold, unmemoized.
            return self
                .cold_estimate(ens, db, query, tables)
                .unwrap_or_else(|| row_product(db, tables));
        };
        subset_literals(query, tables, &mut self.lits);
        match self.map.get_mut(&key) {
            Some(PreparedEntry::Ready(pq)) => match pq.execute(ens, db, &self.lits) {
                Ok(est) => est.value.max(0.0),
                Err(DeepDbError::StalePlan) => {
                    self.map.remove(&key);
                    self.prepare_and_estimate(ens, db, query, tables, key)
                }
                Err(_) => row_product(db, tables),
            },
            Some(PreparedEntry::Unanswerable { epoch }) if *epoch == ens.plan_epoch() => {
                row_product(db, tables)
            }
            _ => self.prepare_and_estimate(ens, db, query, tables, key),
        }
    }

    /// Cold path: build the subset query, prepare it, memoize, estimate.
    fn prepare_and_estimate(
        &mut self,
        ens: &Ensemble,
        db: &Database,
        query: &Query,
        tables: &[TableId],
        key: SubKey,
    ) -> f64 {
        let sub = subset_query(query, tables);
        match ens.prepare(db, &sub) {
            Ok(mut pq) => {
                let est = pq
                    .execute(ens, db, &self.lits)
                    .map_or_else(|_| row_product(db, tables), |e| e.value.max(0.0));
                self.map.insert(key, PreparedEntry::Ready(pq));
                est
            }
            Err(_) => {
                self.map.insert(
                    key,
                    PreparedEntry::Unanswerable {
                        epoch: ens.plan_epoch(),
                    },
                );
                row_product(db, tables)
            }
        }
    }

    fn cold_estimate(
        &mut self,
        ens: &Ensemble,
        db: &Database,
        query: &Query,
        tables: &[TableId],
    ) -> Option<f64> {
        let sub = subset_query(query, tables);
        crate::compile::estimate_count(ens, db, &sub)
            .ok()
            .map(|e| e.value.max(0.0))
    }
}

/// `COUNT(*)` over the subset with the query's predicates restricted to it.
fn subset_query(query: &Query, tables: &[TableId]) -> Query {
    let mut sub = Query::count(tables.to_vec());
    sub.predicates = query
        .predicates
        .iter()
        .filter(|p| tables.contains(&p.table))
        .cloned()
        .collect();
    sub
}

/// Pessimistic fallback: the unfiltered cross-product bound along the FK
/// join is unknowable without estimates, so price the subset by its tables'
/// row-count product — large subsets look expensive, which steers the DP
/// away from orders the estimator cannot vouch for.
fn row_product(db: &Database, tables: &[TableId]) -> f64 {
    tables
        .iter()
        .map(|&t| db.table(t).n_rows().max(1) as f64)
        .product()
}

/// Adapter pairing a [`JoinOrderer`] with the ensemble it estimates
/// through, for the storage-side [`CardinalityModel`] trait.
struct RspnModel<'a> {
    orderer: &'a mut JoinOrderer,
    ens: &'a Ensemble,
}

impl CardinalityModel for RspnModel<'_> {
    fn subset_cardinality(&mut self, db: &Database, query: &Query, tables: &[TableId]) -> f64 {
        self.orderer.estimate_subset(self.ens, db, query, tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::CmpOp;

    #[test]
    fn subkey_is_exact_and_order_sensitive() {
        let q = Query::count(vec![0, 1])
            .filter(0, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(5)))
            .filter(1, 1, PredOp::Between(Value::Int(1), Value::Int(9)));
        let k01 = subset_key(&q, &[0, 1]).unwrap();
        let k0 = subset_key(&q, &[0]).unwrap();
        assert_ne!(k01, k0);
        // Same shape, different literals → same key (rebind, don't replan).
        let q2 = Query::count(vec![0, 1])
            .filter(0, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(7)))
            .filter(1, 1, PredOp::Between(Value::Int(3), Value::Int(4)));
        assert_eq!(subset_key(&q2, &[0, 1]).unwrap(), k01);
        // NULL literal is structural → different key.
        let q3 = Query::count(vec![0, 1])
            .filter(0, 2, PredOp::Cmp(CmpOp::Eq, Value::Null))
            .filter(1, 1, PredOp::Between(Value::Int(1), Value::Int(9)));
        assert_ne!(subset_key(&q3, &[0, 1]).unwrap(), k01);
    }

    #[test]
    fn subkey_overflow_declines_to_memoize() {
        let mut q = Query::count(vec![0]);
        for _ in 0..(MAX_WORDS + 1) {
            q = q.filter(0, 1, PredOp::IsNotNull);
        }
        assert!(subset_key(&q, &[0]).is_none());
        let q = Query::count(vec![64]);
        assert!(subset_key(&q, &[64]).is_none());
    }

    #[test]
    fn subset_literals_follow_predicate_order() {
        let q = Query::count(vec![0, 1])
            .filter(1, 1, PredOp::Between(Value::Int(3), Value::Int(7)))
            .filter(0, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(5)))
            .filter(
                1,
                3,
                PredOp::In(vec![Value::Int(2), Value::Null, Value::Int(4)]),
            );
        let mut lits = Vec::new();
        subset_literals(&q, &[1], &mut lits);
        assert_eq!(lits, vec![3.0, 7.0, 2.0, 4.0]);
        subset_literals(&q, &[0, 1], &mut lits);
        assert_eq!(lits, vec![3.0, 7.0, 5.0, 2.0, 4.0]);
        // Matches the full-query canonical extractor on the full subset.
        assert_eq!(lits, crate::cache::query_literals(&q));
    }
}
