//! Approximate query processing on the ensemble (paper §2, §4.2, §6.2).
//!
//! COUNT/SUM/AVG queries — optionally with GROUP BY — are answered purely
//! from the models: no table data is touched at query time. Group-by queries
//! are compiled into one estimate per group over the observed domain of the
//! grouping columns (paper §4.2) — including a NULL group for nullable
//! grouping columns — and every estimate carries the §5.1 confidence
//! interval.
//!
//! GROUP BY enumeration is **plan-fused**: every group's probe bundle
//! (count fraction, probability factor, second moment, AVG
//! numerator/denominator) is registered on one [`crate::ProbePlan`], so the
//! whole result set costs exactly one fused arena sweep per touched RSPN
//! member, parallelized across the ensemble's probe-thread budget. Groups
//! whose COUNT needs Case-3 RSPN combination register their symbolic
//! [`crate::combine::CombinePlan`] bundles on the same shared plan — the
//! one-sweep-per-member invariant holds for multi-RSPN GROUP BY too.
//!
//! The whole query path runs on `&Ensemble`; structural recompilation is an
//! explicit maintenance call ([`Ensemble::recompile_models`]).

use deepdb_storage::{Aggregate, Database, Domain, Query, Value};

use crate::compile::{estimate_count_values, resolve_scalar, value_predicate};
use crate::ensemble::Ensemble;
use crate::estimate::Estimate;
use crate::plan::ProbePlan;
use crate::DeepDbError;

/// One approximate aggregate with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AqpResult {
    /// Point estimate of the aggregate.
    pub value: f64,
    /// Lower/upper bound of the confidence interval.
    pub ci_low: f64,
    pub ci_high: f64,
    /// Estimated number of qualifying rows (useful to spot empty groups).
    pub count_estimate: f64,
}

/// Output of [`execute_aqp`]: scalar or per-group results.
#[derive(Debug, Clone)]
pub enum AqpOutput {
    Scalar(AqpResult),
    Grouped(Vec<(Vec<Value>, AqpResult)>),
}

impl AqpOutput {
    /// Scalar accessor (first group's result for grouped output).
    pub fn scalar(&self) -> Option<AqpResult> {
        match self {
            AqpOutput::Scalar(r) => Some(*r),
            AqpOutput::Grouped(g) => g.first().map(|(_, r)| *r),
        }
    }

    pub fn groups(&self) -> &[(Vec<Value>, AqpResult)] {
        match self {
            AqpOutput::Scalar(_) => &[],
            AqpOutput::Grouped(g) => g,
        }
    }
}

/// Confidence level used for reported intervals (95%, as in the paper's
/// evaluation).
pub const CONFIDENCE: f64 = 0.95;

/// Answer an aggregate query approximately from the ensemble.
pub fn execute_aqp(ens: &Ensemble, db: &Database, query: &Query) -> Result<AqpOutput, DeepDbError> {
    query.validate(db)?;

    if query.group_by.is_empty() {
        let (agg, count) = scalar_estimates(ens, db, query)?;
        return Ok(AqpOutput::Scalar(to_result(agg, count)));
    }

    // GROUP BY: one probabilistic query per group over the observed domain
    // (paper §4.2 — "n times more expectations"). Before forming the cross
    // product of group domains, prune each domain with a cheap marginal
    // count estimate so contradictory values (e.g. cities of a filtered-out
    // nation) do not explode the enumeration. The per-value probes go
    // through `estimate_count_values`, which runs the whole domain as one
    // batched pass over the compiled arena when a single RSPN covers it.
    let mut group_domains: Vec<Vec<Value>> = Vec::new();
    for g in &query.group_by {
        let domain = group_domain(ens, db, g.table, g.column)?;
        let survivors = if query.group_by.len() > 1 && domain.len() > 8 {
            let mut mq = query.clone();
            mq.group_by.clear();
            mq.aggregate = Aggregate::CountStar;
            let target = deepdb_storage::ColumnRef {
                table: g.table,
                column: g.column,
            };
            let counts = estimate_count_values(ens, db, &mq, target, &domain)?;
            domain
                .into_iter()
                .zip(counts)
                .filter(|(_, c)| *c >= 0.5)
                .map(|(v, _)| v)
                .collect()
        } else {
            domain
        };
        if survivors.is_empty() {
            return Ok(AqpOutput::Grouped(Vec::new()));
        }
        group_domains.push(survivors);
    }

    // Enumerate all group combinations (mixed-radix counter) and register
    // every group's full probe bundle on ONE plan, then sweep each touched
    // member once. Member selection, the translation of the shared
    // (non-group) predicates, and — for multi-RSPN counts — the whole
    // Case-3 combine plan happen ONCE in the template; each group only
    // appends its own value predicates to the cloned bases.
    let mut shared_q = query.clone();
    shared_q.group_by.clear();
    let template = crate::cache::grouped_template(ens, db, &shared_q, &query.group_by)?;
    let mut plan = ProbePlan::new();
    let mut pending = Vec::new();
    let mut combo = vec![0usize; group_domains.len()];
    'outer: loop {
        let key: Vec<Value> = combo
            .iter()
            .zip(&group_domains)
            .map(|(&i, d)| d[i])
            .collect();
        let group_preds: Vec<_> = query
            .group_by
            .iter()
            .zip(&key)
            .map(|(g, v)| value_predicate(g.table, g.column, *v))
            .collect();
        pending.push((key, template.register_group(&mut plan, ens, &group_preds)?));
        // Advance the mixed-radix counter over group combinations.
        for d in 0..combo.len() {
            combo[d] += 1;
            if combo[d] < group_domains[d].len() {
                continue 'outer;
            }
            combo[d] = 0;
        }
        break;
    }

    let results = plan.execute(ens);
    let mut groups = Vec::new();
    for (key, deferred) in pending {
        let (agg, count) = resolve_scalar(&deferred, &results)?;
        // Suppress groups the model considers empty (< half a row).
        if count.value >= 0.5 {
            groups.push((key, to_result(agg, count)));
        }
    }
    Ok(AqpOutput::Grouped(groups))
}

fn to_result(agg: Estimate, count: Estimate) -> AqpResult {
    let (ci_low, ci_high) = agg.confidence_interval(CONFIDENCE);
    AqpResult {
        value: agg.value,
        ci_low,
        ci_high,
        count_estimate: count.value,
    }
}

/// (aggregate estimate, count estimate) for a scalar query: one plan, one
/// fused sweep per touched member (COUNT and the aggregate's probes ride
/// together even when they pick different members).
fn scalar_estimates(
    ens: &Ensemble,
    db: &Database,
    query: &Query,
) -> Result<(Estimate, Estimate), DeepDbError> {
    let mut scalar_q = query.clone();
    scalar_q.group_by.clear();
    crate::cache::aqp_scalar(ens, db, &scalar_q)
}

/// Observed domain of a grouping column, from RSPN distinct-value tracking
/// (plus a NULL group when the column is nullable — SQL groups NULLs
/// together), falling back to the catalog's categorical labels.
fn group_domain(
    ens: &Ensemble,
    db: &Database,
    table: deepdb_storage::TableId,
    column: deepdb_storage::ColId,
) -> Result<Vec<Value>, DeepDbError> {
    for rspn in ens.rspns() {
        if let Some(col) = rspn.data_column(table, column) {
            if let Some(values) = rspn.distinct_values(col) {
                let def = &db.table(table).schema().columns()[column];
                let mut as_values: Vec<Value> = values
                    .into_iter()
                    .map(|v| match def.domain {
                        Domain::Continuous => Value::Float(v),
                        _ => Value::Int(v as i64),
                    })
                    .collect();
                if rspn.columns()[col].nullable {
                    // Candidate NULL group; the model suppresses it like any
                    // other empty group if no NULLs were actually observed.
                    as_values.push(Value::Null);
                }
                return Ok(as_values);
            }
        }
    }
    // Fallback: categorical labels from the schema (plus the NULL group for
    // nullable columns, mirroring the distinct-values path above).
    let def = &db.table(table).schema().columns()[column];
    if let Domain::Categorical { labels } = &def.domain {
        let mut vals: Vec<Value> = (0..labels.len() as i64).map(Value::Int).collect();
        if def.nullable {
            vals.push(Value::Null);
        }
        return Ok(vals);
    }
    Err(DeepDbError::Unsupported(format!(
        "cannot enumerate GROUP BY domain for ({table}, {column})"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::{EnsembleBuilder, EnsembleParams};
    use deepdb_storage::fixtures::correlated_customer_order;
    use deepdb_storage::{execute, CmpOp, ColumnRef, PredOp, Query};

    fn setup() -> (Database, Ensemble) {
        let db = correlated_customer_order(2500, 21);
        let params = EnsembleParams {
            sample_size: 30_000,
            correlation_sample: 1_500,
            ..EnsembleParams::default()
        };
        let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
        (db, ens)
    }

    #[test]
    fn scalar_count_with_ci() {
        let (db, ens) = setup();
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        let out = execute_aqp(&ens, &db, &q).unwrap();
        let r = out.scalar().unwrap();
        let rel = (r.value - truth).abs() / truth;
        assert!(rel < 0.1, "rel err {rel}");
        assert!(r.ci_low <= r.value && r.value <= r.ci_high);
    }

    #[test]
    fn group_by_region_matches_executor_per_group() {
        let (db, ens) = setup();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o])
            .aggregate(Aggregate::Avg(ColumnRef {
                table: o,
                column: 3,
            }))
            .group(c, 2);
        let truth = execute(&db, &q).unwrap();
        let out = execute_aqp(&ens, &db, &q).unwrap();
        let groups = out.groups();
        assert_eq!(groups.len(), truth.groups().len(), "group count");
        for (key, res) in groups {
            let t = truth
                .groups()
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, a)| a.avg().unwrap())
                .unwrap_or_else(|| panic!("missing group {key:?}"));
            let rel = (res.value - t).abs() / t.abs().max(1.0);
            assert!(
                rel < 0.12,
                "group {key:?}: {} vs {t} (rel {rel})",
                res.value
            );
        }
    }

    #[test]
    fn grouped_counts_sum_to_total() {
        let (db, ens) = setup();
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).group(c, 2);
        let out = execute_aqp(&ens, &db, &q).unwrap();
        let total: f64 = out.groups().iter().map(|(_, r)| r.value).sum();
        let truth = db.table(c).n_rows() as f64;
        assert!((total - truth).abs() / truth < 0.05, "{total} vs {truth}");
    }

    #[test]
    fn sum_aggregate_group_by() {
        let (db, ens) = setup();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o])
            .aggregate(Aggregate::Sum(ColumnRef {
                table: o,
                column: 3,
            }))
            .group(c, 2);
        let truth = execute(&db, &q).unwrap();
        let out = execute_aqp(&ens, &db, &q).unwrap();
        for (key, res) in out.groups() {
            let t = truth
                .groups()
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, a)| a.sum)
                .unwrap();
            let rel = (res.value - t).abs() / t.abs().max(1.0);
            assert!(rel < 0.35, "group {key:?}: {} vs {t}", res.value);
        }
    }
}
