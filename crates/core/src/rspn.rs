//! Relational Sum-Product Networks (paper §3.2).
//!
//! An [`Rspn`] is an SPN learned over a uniform sample of the full outer
//! join of one or more tables, plus the relational metadata needed to answer
//! database queries: which SPN column holds which table attribute, the `N_T`
//! join-indicator columns, the tuple-factor columns `F_{S←T}` (clamped for
//! edges inside the join, raw for edges leaving it), functional-dependency
//! dictionaries, and the exact full-outer-join cardinality `|J|`.

use std::collections::{BTreeSet, HashMap};

use deepdb_spn::{
    BatchEvaluator, ColumnMeta, CompiledSpn, DataView, LeafFunc, LeafPred, MaxProductEvaluator,
    MpeOutcome, MpeProbe, Spn, SpnParams, SpnQuery,
};
use deepdb_storage::{
    CmpOp, ColId, Database, ForeignKey, JoinColumnMeta, JoinColumnRole, JoinSample, PredOp,
    Predicate, TableId, Value,
};

use crate::fd::{FdDictionary, FunctionalDependency};
use crate::DeepDbError;

/// Cap on per-column distinct values tracked for GROUP BY enumeration.
const MAX_GROUP_DISTINCT: usize = 4096;

/// An SPN over a relation (single table or full outer join) with relational
/// metadata.
#[derive(Debug, Clone)]
pub struct Rspn {
    spn: Spn,
    /// Arena-compiled form of `spn` — the engine every expectation query
    /// actually runs against. Updates patch it **in place** (lockstep with
    /// the tree, O(depth) per tuple), so it is never stale on the hot path;
    /// [`Rspn::ensure_compiled`] remains as a structural-change escape
    /// hatch. Evaluation itself is `&self` so probe plans can sweep members
    /// from worker threads.
    compiled: CompiledSpn,
    compiled_dirty: bool,
    tables: Vec<TableId>,
    columns: Vec<JoinColumnMeta>,
    full_join_count: u64,
    /// Sampling rate used at training; updates are absorbed at the same rate
    /// (paper §6.1 "the same sample rate has to be used for the updates").
    /// Values above 1 mean the training sample oversampled a small join.
    sample_rate: f64,
    data_col: HashMap<(TableId, ColId), usize>,
    indicator_col: HashMap<TableId, usize>,
    factor_col: HashMap<ForeignKey, usize>,
    /// FK edges internal to the join tree (clamped factors).
    internal_edges: Vec<ForeignKey>,
    /// FD dictionaries whose dependent column was omitted from learning.
    fds: Vec<FdDictionary>,
    /// Distinct values per SPN column (discrete data columns only).
    distincts: HashMap<usize, BTreeSet<u64>>,
    /// (mean, std) per SPN column over the training sample (NULLs ignored).
    col_stats: Vec<(f64, f64)>,
    /// Pairwise RDC between SPN columns (execution-strategy scoring).
    attr_rdc: Vec<Vec<f64>>,
    /// |J| bookkeeping went stale (multi-table incremental updates).
    join_count_dirty: bool,
}

impl Rspn {
    /// Learn an RSPN from a join sample. Columns that are FD-dependent are
    /// omitted from the SPN and answered through dictionaries instead.
    pub fn learn(
        sample: &JoinSample,
        db: &Database,
        fds: &[FunctionalDependency],
        params: &SpnParams,
    ) -> Result<Self, DeepDbError> {
        // Determine FD-dependent columns to skip (both sides must be data
        // columns of a joined table).
        let mut fd_dicts = Vec::new();
        let mut skip: Vec<usize> = Vec::new();
        for fd in fds {
            if !sample.tables.contains(&fd.table) {
                continue;
            }
            let dep_idx = sample.columns.iter().position(|c| {
                matches!(c.role, JoinColumnRole::Data { table, col } if table == fd.table && col == fd.dependent)
            });
            let det_idx = sample.columns.iter().position(|c| {
                matches!(c.role, JoinColumnRole::Data { table, col } if table == fd.table && col == fd.determinant)
            });
            if let (Some(dep), Some(_)) = (dep_idx, det_idx) {
                skip.push(dep);
                fd_dicts.push(FdDictionary::build(db, *fd));
            }
        }

        let kept: Vec<usize> = (0..sample.columns.len())
            .filter(|i| !skip.contains(i))
            .collect();
        let columns: Vec<JoinColumnMeta> =
            kept.iter().map(|&i| sample.columns[i].clone()).collect();
        let cols: Vec<Vec<f64>> = kept.iter().map(|&i| sample.data[i].clone()).collect();
        let meta: Vec<ColumnMeta> = columns
            .iter()
            .map(|c| ColumnMeta {
                name: c.name.clone(),
                discrete: c.discrete,
            })
            .collect();

        let view = DataView::new(&cols, &meta);
        let spn = Spn::learn(view, params);

        // Column lookup maps.
        let mut data_col = HashMap::new();
        let mut indicator_col = HashMap::new();
        let mut factor_col = HashMap::new();
        let mut internal_edges = Vec::new();
        for (i, c) in columns.iter().enumerate() {
            match c.role {
                JoinColumnRole::Data { table, col } => {
                    data_col.insert((table, col), i);
                }
                JoinColumnRole::Indicator { table } => {
                    indicator_col.insert(table, i);
                }
                JoinColumnRole::TupleFactor { fk, clamped } => {
                    factor_col.insert(fk, i);
                    if clamped {
                        internal_edges.push(fk);
                    }
                }
            }
        }

        // Distinct values + column stats from the training sample.
        let mut distincts: HashMap<usize, BTreeSet<u64>> = HashMap::new();
        let mut col_stats = Vec::with_capacity(cols.len());
        for (i, col) in cols.iter().enumerate() {
            let mut sum = 0.0;
            let mut sq = 0.0;
            let mut k = 0u64;
            for &v in col {
                if v.is_finite() {
                    sum += v;
                    sq += v * v;
                    k += 1;
                }
            }
            let mean = if k > 0 { sum / k as f64 } else { 0.0 };
            let var = if k > 0 {
                (sq / k as f64 - mean * mean).max(0.0)
            } else {
                0.0
            };
            col_stats.push((mean, var.sqrt()));
            if columns[i].discrete && matches!(columns[i].role, JoinColumnRole::Data { .. }) {
                let set: BTreeSet<u64> = col
                    .iter()
                    .filter(|v| v.is_finite())
                    .map(|&v| v.to_bits())
                    .take(MAX_GROUP_DISTINCT * 4)
                    .collect();
                if set.len() <= MAX_GROUP_DISTINCT {
                    distincts.insert(i, set);
                }
            }
        }

        // Pairwise attribute RDC for the execution strategy (data cols only).
        let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let rows: Vec<u32> = (0..sample.n_samples as u32).collect();
        let attr_rdc = deepdb_spn::rdc::pairwise_rdc(&refs, &rows, 1500, &params.rdc);

        let compiled = spn.compile();
        Ok(Self {
            spn,
            compiled,
            compiled_dirty: false,
            tables: sample.tables.clone(),
            columns,
            full_join_count: sample.full_join_count,
            sample_rate: if sample.full_join_count == 0 {
                1.0
            } else {
                // May exceed 1: small joins are deliberately oversampled, so
                // updates must insert multiple sample rows per real tuple.
                sample.n_samples as f64 / sample.full_join_count as f64
            },
            data_col,
            indicator_col,
            factor_col,
            internal_edges,
            fds: fd_dicts,
            distincts,
            col_stats,
            attr_rdc,
            join_count_dirty: false,
        })
    }

    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    /// Exact (or incrementally maintained) full-outer-join cardinality.
    pub fn full_join_count(&self) -> u64 {
        self.full_join_count
    }

    pub fn set_full_join_count(&mut self, count: u64) {
        self.full_join_count = count;
        self.join_count_dirty = false;
    }

    pub fn bump_full_join_count(&mut self, delta: i64) {
        self.full_join_count = (self.full_join_count as i64 + delta).max(0) as u64;
    }

    pub fn mark_join_count_dirty(&mut self) {
        self.join_count_dirty = true;
    }

    pub fn join_count_dirty(&self) -> bool {
        self.join_count_dirty
    }

    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Number of SPN training rows (grows/shrinks with updates).
    pub fn n_training(&self) -> u64 {
        self.spn.n_rows()
    }

    /// SPN node count (diagnostics / cost accounting).
    pub fn model_size(&self) -> usize {
        self.spn.size()
    }

    pub fn columns(&self) -> &[JoinColumnMeta] {
        &self.columns
    }

    pub fn internal_edges(&self) -> &[ForeignKey] {
        &self.internal_edges
    }

    pub fn has_factor(&self, fk: &ForeignKey) -> bool {
        self.factor_col.contains_key(fk)
    }

    /// SPN column holding a table attribute, if modeled directly.
    pub fn data_column(&self, table: TableId, col: ColId) -> Option<usize> {
        self.data_col.get(&(table, col)).copied()
    }

    /// (mean, std) of an SPN column over the training sample.
    pub fn column_stats(&self, spn_col: usize) -> (f64, f64) {
        self.col_stats[spn_col]
    }

    /// Distinct values of a discrete data column (for GROUP BY enumeration).
    pub fn distinct_values(&self, spn_col: usize) -> Option<Vec<f64>> {
        self.distincts
            .get(&spn_col)
            .map(|s| s.iter().map(|&b| f64::from_bits(b)).collect())
    }

    /// Fresh query over this RSPN's columns.
    pub fn new_query(&self) -> SpnQuery {
        SpnQuery::new(self.columns.len())
    }

    /// Recompile the arena engine if something invalidated it. Since
    /// inserts/deletes patch the arena in place, this is a **structural
    /// escape hatch** (future structure adaptation, e.g. leaf splitting on
    /// drift), not part of the steady-state update path — on the hot path it
    /// is a no-op, which keeps [`Rspn::probe_passes`] counters alive across
    /// update streams. The query surface in `compile`/`aqp`/`ml` is entirely
    /// `&Ensemble` and never calls this; structural maintenance goes through
    /// the explicit [`crate::Ensemble::recompile_models`] entry point.
    pub fn ensure_compiled(&mut self) {
        if self.compiled_dirty {
            self.compiled = self.spn.compile();
            self.compiled_dirty = false;
        }
    }

    /// Whether something invalidated the compiled engine (never set by the
    /// in-place update path; reserved for structural changes).
    pub fn needs_recompile(&self) -> bool {
        self.compiled_dirty
    }

    /// The compiled arena engine. Panics if updates left it stale — callers
    /// must run [`Rspn::ensure_compiled`] (or
    /// [`crate::Ensemble::recompile_models`]) first; evaluation deliberately
    /// cannot recompile behind a shared reference.
    pub(crate) fn engine(&self) -> &CompiledSpn {
        assert!(
            !self.compiled_dirty,
            "RSPN arena engine is stale after updates; call ensure_compiled()/recompile_models() \
             before evaluating"
        );
        &self.compiled
    }

    /// Fused arena sweeps executed against this member's compiled engine so
    /// far (diagnostics; lets tests assert probe plans touch each member
    /// exactly once per query). Resets when updates force a recompile.
    pub fn probe_passes(&self) -> u64 {
        self.compiled.sweep_count()
    }

    /// Evaluate an expectation on the compiled arena engine.
    pub fn expect(&self, q: &SpnQuery) -> f64 {
        self.expect_batch(std::slice::from_ref(q))[0]
    }

    /// Evaluate a whole batch of expectations in one fused pass over the
    /// arena (one scratch buffer, predicate normalization hoisted per
    /// query, SIMD semiring kernels over the query lanes) — the backbone of
    /// probabilistic query compilation, which issues several probes per SQL
    /// query. Scratch is thread-local, so this is `&self` and safe to call
    /// from probe-plan worker threads.
    pub fn expect_batch(&self, queries: &[SpnQuery]) -> Vec<f64> {
        thread_local! {
            static SCRATCH: std::cell::RefCell<BatchEvaluator> =
                std::cell::RefCell::new(BatchEvaluator::new());
        }
        SCRATCH.with(|ev| ev.borrow_mut().evaluate(self.engine(), queries))
    }

    /// Most probable value of an SPN column given evidence, on the compiled
    /// max-product path (`&self`, recursion-free). Classification batches
    /// should go through [`crate::ProbePlan::register_mpe`] instead, which
    /// fuses MPE probes into the same per-member sweep as expectation
    /// probes.
    pub fn most_probable_value(&self, target: usize, q: &SpnQuery) -> Option<f64> {
        self.mpe_batch(std::slice::from_ref(&MpeProbe::new(target, q.clone())))[0].value
    }

    /// Evaluate a batch of max-product probes in one fused pass over the
    /// arena — the MPE twin of [`Rspn::expect_batch`]. Scratch is
    /// thread-local, so this is `&self` and safe from worker threads.
    pub fn mpe_batch(&self, probes: &[MpeProbe]) -> Vec<MpeOutcome> {
        thread_local! {
            static SCRATCH: std::cell::RefCell<MaxProductEvaluator> =
                std::cell::RefCell::new(MaxProductEvaluator::new());
        }
        SCRATCH.with(|ev| ev.borrow_mut().evaluate(self.engine(), probes))
    }

    /// Require `N_T = 1` for a table (inner-join semantics, Case 1/2).
    pub fn require_present(&self, q: &mut SpnQuery, table: TableId) {
        if let Some(&col) = self.indicator_col.get(&table) {
            q.add_pred(col, LeafPred::eq(1.0));
        }
    }

    /// Translate and attach a storage predicate. Predicates on FD-dependent
    /// columns are rewritten onto their determinant. Returns an error if the
    /// column is not modeled at all.
    pub fn add_predicate(&self, q: &mut SpnQuery, pred: &Predicate) -> Result<(), DeepDbError> {
        if let Some(&col) = self.data_col.get(&(pred.table, pred.column)) {
            for lp in translate_pred(&pred.op) {
                q.add_pred(col, lp);
            }
            return Ok(());
        }
        // FD rewrite: predicate on a dependent column → IN over determinant.
        for dict in &self.fds {
            if dict.fd.table == pred.table && dict.fd.dependent == pred.column {
                let det = self
                    .data_col
                    .get(&(pred.table, dict.fd.determinant))
                    .copied()
                    .ok_or_else(|| DeepDbError::Unsupported("FD determinant not modeled".into()))?;
                q.add_pred(det, LeafPred::In(dict.translate(pred)));
                return Ok(());
            }
        }
        Err(DeepDbError::Unsupported(format!(
            "column ({}, {}) not modeled by this RSPN",
            pred.table, pred.column
        )))
    }

    /// Tuple-factor normalization set for a query over `present` tables
    /// (Theorem 1): BFS outward from the present set over the internal join
    /// tree; every edge traversed in FK-downward direction (one side → many
    /// side) contributes its `F'`.
    pub fn normalization_factor_cols(&self, present: &BTreeSet<TableId>) -> Vec<usize> {
        let mut visited: BTreeSet<TableId> = present
            .iter()
            .copied()
            .filter(|t| self.tables.contains(t))
            .collect();
        if visited.is_empty() {
            return Vec::new();
        }
        let mut factors = Vec::new();
        loop {
            let mut progressed = false;
            for fk in &self.internal_edges {
                let p_in = visited.contains(&fk.parent_table);
                let c_in = visited.contains(&fk.child_table);
                if p_in && !c_in {
                    factors.push(self.factor_col[fk]);
                    visited.insert(fk.child_table);
                    progressed = true;
                } else if c_in && !p_in {
                    visited.insert(fk.parent_table);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        factors
    }

    /// Raw tuple-factor column of an FK (for Theorem-2 fan-out terms).
    pub fn factor_column(&self, fk: &ForeignKey) -> Option<usize> {
        self.factor_col.get(fk).copied()
    }

    /// Execution-strategy score: sum of pairwise RDC values between the
    /// predicate columns this RSPN can handle (paper §4.1, "Execution
    /// Strategy"), plus a small per-predicate bonus so coverage breaks ties.
    pub fn strategy_score(&self, preds: &[Predicate]) -> f64 {
        let handled: Vec<usize> = preds
            .iter()
            .filter_map(|p| self.data_col.get(&(p.table, p.column)).copied())
            .collect();
        let mut score = 0.05 * handled.len() as f64;
        for i in 0..handled.len() {
            for j in (i + 1)..handled.len() {
                score += self.attr_rdc[handled[i]][handled[j]];
            }
        }
        score
    }

    /// Serialize for ensemble snapshots (lookup maps are rebuilt on load).
    pub(crate) fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        use deepdb_spn::wire::*;
        self.spn.write_to(w)?;
        write_usizes(w, &self.tables)?;
        write_u32(w, self.columns.len() as u32)?;
        for c in &self.columns {
            write_str(w, &c.name)?;
            match c.role {
                JoinColumnRole::Data { table, col } => {
                    write_u8(w, 0)?;
                    write_u64(w, table as u64)?;
                    write_u64(w, col as u64)?;
                }
                JoinColumnRole::Indicator { table } => {
                    write_u8(w, 1)?;
                    write_u64(w, table as u64)?;
                }
                JoinColumnRole::TupleFactor { fk, clamped } => {
                    write_u8(w, 2)?;
                    write_u64(w, fk.child_table as u64)?;
                    write_u64(w, fk.child_col as u64)?;
                    write_u64(w, fk.parent_table as u64)?;
                    write_u64(w, fk.parent_col as u64)?;
                    write_u8(w, u8::from(clamped))?;
                }
            }
            write_u8(w, u8::from(c.discrete))?;
            write_u8(w, u8::from(c.nullable))?;
        }
        write_u64(w, self.full_join_count)?;
        write_f64(w, self.sample_rate)?;
        write_u32(w, self.fds.len() as u32)?;
        for d in &self.fds {
            d.write_to(w)?;
        }
        write_u32(w, self.distincts.len() as u32)?;
        for (&col, set) in &self.distincts {
            write_u64(w, col as u64)?;
            write_u64s(w, &set.iter().copied().collect::<Vec<_>>())?;
        }
        write_u32(w, self.col_stats.len() as u32)?;
        for &(m, s) in &self.col_stats {
            write_f64(w, m)?;
            write_f64(w, s)?;
        }
        write_u32(w, self.attr_rdc.len() as u32)?;
        for row in &self.attr_rdc {
            write_f64s(w, row)?;
        }
        write_u8(w, u8::from(self.join_count_dirty))
    }

    /// Deserialize an RSPN written by [`Rspn::write_to`].
    pub(crate) fn read_from(r: &mut impl std::io::Read) -> std::io::Result<Self> {
        use deepdb_spn::wire::*;
        let spn = Spn::read_from(r)?;
        let tables = read_usizes(r)?;
        let n_cols = read_u32(r)? as usize;
        if n_cols > 1 << 16 {
            return Err(corrupt("rspn column count"));
        }
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let name = read_str(r)?;
            let role = match read_u8(r)? {
                0 => JoinColumnRole::Data {
                    table: read_u64(r)? as usize,
                    col: read_u64(r)? as usize,
                },
                1 => JoinColumnRole::Indicator {
                    table: read_u64(r)? as usize,
                },
                2 => {
                    let fk = ForeignKey {
                        child_table: read_u64(r)? as usize,
                        child_col: read_u64(r)? as usize,
                        parent_table: read_u64(r)? as usize,
                        parent_col: read_u64(r)? as usize,
                    };
                    JoinColumnRole::TupleFactor {
                        fk,
                        clamped: read_u8(r)? != 0,
                    }
                }
                _ => return Err(corrupt("column role tag")),
            };
            let discrete = read_u8(r)? != 0;
            let nullable = read_u8(r)? != 0;
            columns.push(JoinColumnMeta {
                name,
                role,
                discrete,
                nullable,
            });
        }
        let full_join_count = read_u64(r)?;
        let sample_rate = read_f64(r)?;
        let n_fds = read_u32(r)? as usize;
        let fds: Vec<FdDictionary> = (0..n_fds)
            .map(|_| FdDictionary::read_from(r))
            .collect::<std::io::Result<_>>()?;
        let n_distinct = read_u32(r)? as usize;
        let mut distincts = HashMap::new();
        for _ in 0..n_distinct {
            let col = read_u64(r)? as usize;
            let set: BTreeSet<u64> = read_u64s(r)?.into_iter().collect();
            distincts.insert(col, set);
        }
        let n_stats = read_u32(r)? as usize;
        let col_stats: Vec<(f64, f64)> = (0..n_stats)
            .map(|_| Ok::<_, std::io::Error>((read_f64(r)?, read_f64(r)?)))
            .collect::<std::io::Result<_>>()?;
        let n_rdc = read_u32(r)? as usize;
        let attr_rdc: Vec<Vec<f64>> = (0..n_rdc)
            .map(|_| read_f64s(r))
            .collect::<std::io::Result<_>>()?;
        let join_count_dirty = read_u8(r)? != 0;
        // The wire format stores only the tree; recompile the arena on load.
        let compiled = spn.compile();

        // Rebuild the lookup maps from the column roles.
        let mut data_col = HashMap::new();
        let mut indicator_col = HashMap::new();
        let mut factor_col = HashMap::new();
        let mut internal_edges = Vec::new();
        for (i, c) in columns.iter().enumerate() {
            match c.role {
                JoinColumnRole::Data { table, col } => {
                    data_col.insert((table, col), i);
                }
                JoinColumnRole::Indicator { table } => {
                    indicator_col.insert(table, i);
                }
                JoinColumnRole::TupleFactor { fk, clamped } => {
                    factor_col.insert(fk, i);
                    if clamped {
                        internal_edges.push(fk);
                    }
                }
            }
        }
        Ok(Self {
            spn,
            compiled,
            compiled_dirty: false,
            tables,
            columns,
            full_join_count,
            sample_rate,
            data_col,
            indicator_col,
            factor_col,
            internal_edges,
            fds,
            distincts,
            col_stats,
            attr_rdc,
            join_count_dirty,
        })
    }

    /// Absorb one full-outer-join row (paper Algorithm 1), already assembled
    /// in SPN column order. The tree **and** the compiled arena engine are
    /// patched in place — O(depth + touched bins), no recompilation, and
    /// query results are bitwise identical to a full recompile.
    pub fn insert_row(&mut self, row: &[f64]) {
        self.track_distincts(row);
        self.spn.insert_patch(&mut self.compiled, row);
    }

    /// Absorb a batch of full-outer-join rows in one routed traversal; arena
    /// deltas are folded per node (one weight renormalization per touched
    /// sum for the whole batch).
    pub fn insert_rows(&mut self, rows: &[Vec<f64>]) {
        for row in rows {
            self.track_distincts(row);
        }
        self.spn.insert_batch(&mut self.compiled, rows);
    }

    /// Remove one full-outer-join row, patching tree and arena in place.
    /// Returns `false` (a consistent no-op) if the routed path cannot absorb
    /// the delete — e.g. the tuple was never represented.
    pub fn delete_row(&mut self, row: &[f64]) -> bool {
        self.spn.delete_patch(&mut self.compiled, row)
    }

    /// Remove a batch of rows; returns how many actually applied. Arena
    /// finalization is folded per batch like [`Rspn::insert_rows`].
    pub fn delete_rows(&mut self, rows: &[Vec<f64>]) -> usize {
        self.spn.delete_batch(&mut self.compiled, rows)
    }

    fn track_distincts(&mut self, row: &[f64]) {
        for (i, &v) in row.iter().enumerate() {
            if v.is_finite() && self.columns[i].discrete {
                if let Some(set) = self.distincts.get_mut(&i) {
                    if set.len() < MAX_GROUP_DISTINCT {
                        set.insert(v.to_bits());
                    }
                }
            }
        }
    }
}

/// Translate a storage predicate operation into leaf predicates.
/// Comparisons against NULL constants are unsatisfiable (SQL unknown) and
/// yield an empty `In` list.
pub(crate) fn translate_pred(op: &PredOp) -> Vec<LeafPred> {
    fn num(v: &Value) -> Option<f64> {
        v.as_f64()
    }
    match op {
        PredOp::IsNull => vec![LeafPred::IsNull],
        PredOp::IsNotNull => vec![LeafPred::IsNotNull],
        PredOp::Cmp(op, c) => match num(c) {
            None => vec![LeafPred::In(Vec::new())],
            Some(v) => vec![match op {
                CmpOp::Eq => LeafPred::eq(v),
                CmpOp::Ne => LeafPred::NotIn(vec![v]),
                CmpOp::Lt => LeafPred::lt(v),
                CmpOp::Le => LeafPred::le(v),
                CmpOp::Gt => LeafPred::gt(v),
                CmpOp::Ge => LeafPred::ge(v),
            }],
        },
        PredOp::In(vs) => {
            let nums: Vec<f64> = vs.iter().filter_map(num).collect();
            vec![LeafPred::In(nums)]
        }
        PredOp::Between(lo, hi) => match (num(lo), num(hi)) {
            (Some(a), Some(b)) => {
                vec![LeafPred::Range {
                    lo: a,
                    hi: b,
                    lo_incl: true,
                    hi_incl: true,
                }]
            }
            _ => vec![LeafPred::In(Vec::new())],
        },
    }
}

/// Build an expectation query for the count fraction of Theorem 1:
/// `E[1/F'(Q,J) · 1_C · ∏_{T∈Q} N_T]`, returning `(query, factor_cols)`.
pub(crate) fn count_fraction_query(
    rspn: &Rspn,
    present: &BTreeSet<TableId>,
    preds: &[Predicate],
    squared: bool,
) -> Result<(SpnQuery, Vec<usize>), DeepDbError> {
    let mut q = rspn.new_query();
    for &t in present {
        rspn.require_present(&mut q, t);
    }
    for p in preds {
        rspn.add_predicate(&mut q, p)?;
    }
    let factors = rspn.normalization_factor_cols(present);
    let func = if squared {
        LeafFunc::InvSqClamp1
    } else {
        LeafFunc::InvClamp1
    };
    for &f in &factors {
        q.set_func(f, func);
    }
    Ok((q, factors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::fixtures::paper_customer_order;
    use deepdb_storage::JoinTree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn learn_joint(n_samples: usize) -> (Database, Rspn) {
        let db = paper_customer_order();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let tree = JoinTree::new(&db, &[c, o]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let sample = tree.sample(&db, n_samples, &mut rng);
        let rspn = Rspn::learn(&sample, &db, &[], &SpnParams::default()).unwrap();
        (db, rspn)
    }

    #[test]
    fn metadata_maps_are_complete() {
        let (db, rspn) = learn_joint(2000);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        assert!(rspn.data_column(c, 1).is_some(), "c_age modeled");
        assert!(rspn.data_column(c, 2).is_some(), "c_region modeled");
        assert!(rspn.data_column(o, 2).is_some(), "o_channel modeled");
        assert!(rspn.data_column(c, 0).is_none(), "keys are not modeled");
        assert_eq!(rspn.internal_edges().len(), 1);
        assert_eq!(rspn.full_join_count(), 5);
    }

    #[test]
    fn normalization_rule_matches_paper_cases() {
        let (db, rspn) = learn_joint(500);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        // Query on {customer} only: normalize by F'_{C←O} (paper Case 2).
        let f = rspn.normalization_factor_cols(&BTreeSet::from([c]));
        assert_eq!(f.len(), 1);
        // Query on both tables: no normalization (paper Case 1).
        let f = rspn.normalization_factor_cols(&BTreeSet::from([c, o]));
        assert!(f.is_empty());
        // Query on {orders}: upward traversal, no factor.
        let f = rspn.normalization_factor_cols(&BTreeSet::from([o]));
        assert!(f.is_empty());
    }

    #[test]
    fn count_fraction_reproduces_paper_numbers() {
        let (db, rspn) = learn_joint(40_000);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();

        // Paper Case 1 (Q2): P(ONLINE ∧ EUROPE ∧ N_O ∧ N_C) = 1/5.
        let preds = vec![
            Predicate::new(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0))),
            Predicate::new(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0))),
        ];
        let (q, _) = count_fraction_query(&rspn, &BTreeSet::from([c, o]), &preds, false).unwrap();
        let frac = rspn.expect(&q);
        let est = frac * rspn.full_join_count() as f64;
        assert!((est - 1.0).abs() < 0.2, "Q2 estimate = {est}");

        // Paper Case 2 (Q1): European customers from the joint RSPN = 2.
        let preds = vec![Predicate::new(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))];
        let (q, factors) =
            count_fraction_query(&rspn, &BTreeSet::from([c]), &preds, false).unwrap();
        assert_eq!(factors.len(), 1);
        let est = rspn.expect(&q) * rspn.full_join_count() as f64;
        assert!((est - 2.0).abs() < 0.25, "Q1 via case 2 = {est}");
    }

    #[test]
    fn distinct_values_track_training_data() {
        let (db, rspn) = learn_joint(3000);
        let c = db.table_id("customer").unwrap();
        let col = rspn.data_column(c, 2).unwrap();
        let vals = rspn.distinct_values(col).unwrap();
        assert_eq!(vals, vec![0.0, 1.0]);
    }

    #[test]
    fn predicate_translation_covers_operators() {
        assert_eq!(translate_pred(&PredOp::IsNull), vec![LeafPred::IsNull]);
        assert_eq!(
            translate_pred(&PredOp::Cmp(CmpOp::Ne, Value::Int(3))),
            vec![LeafPred::NotIn(vec![3.0])]
        );
        // Comparisons against NULL are unsatisfiable.
        assert_eq!(
            translate_pred(&PredOp::Cmp(CmpOp::Eq, Value::Null)),
            vec![LeafPred::In(vec![])]
        );
        match &translate_pred(&PredOp::Between(Value::Int(1), Value::Int(5)))[0] {
            LeafPred::Range {
                lo,
                hi,
                lo_incl,
                hi_incl,
            } => {
                assert_eq!((*lo, *hi, *lo_incl, *hi_incl), (1.0, 5.0, true, true));
            }
            other => panic!("unexpected translation {other:?}"),
        }
    }

    #[test]
    fn strategy_score_prefers_covering_rspn() {
        let (db, rspn) = learn_joint(2000);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let both = vec![
            Predicate::new(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0))),
            Predicate::new(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0))),
        ];
        let one = vec![Predicate::new(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))];
        assert!(rspn.strategy_score(&both) > rspn.strategy_score(&one));
    }
}
