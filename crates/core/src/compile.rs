//! Probabilistic query compilation (paper §4).
//!
//! Translates COUNT/AVG/SUM queries over FK joins into products of
//! expectations and probabilities against the RSPN ensemble:
//!
//! * **Case 1/2** — a single RSPN covers (a superset of) the query's tables:
//!   `|J| · E[1/F'(Q,J) · 1_C · ∏_{T∈Q} N_T]` (Theorem 1).
//! * **Case 3** — the query spans several RSPNs: a covered table set is
//!   extended edge by edge, multiplying either conditional count-fraction
//!   ratios (when one RSPN spans the overlap, Theorem 2) or explicit
//!   fan-out × selectivity terms built from raw tuple-factor columns (the
//!   paper's worked alternatives).
//!
//! RSPN choice is greedy by the sum of pairwise RDC values among the filter
//! columns an RSPN can handle ("Execution Strategy", §4.1).
//!
//! Probes are **deferred, not eager**: the `register_*` functions translate
//! a (sub)query into [`deepdb_spn::SpnQuery`] probes on a [`ProbePlan`] and return typed
//! deferred estimates holding [`ProbeHandle`]s; a single
//! [`ProbePlan::execute`] then sweeps each touched RSPN member's arena once
//! and the deferred values `resolve` against the results. Entry points that
//! need only one bundle (a scalar COUNT, one Theorem-2 extension step) build
//! a local plan; `aqp::execute_aqp` fuses the bundles of *every* GROUP BY
//! group into one plan. Case 3 extension is inherently sequential (each step
//! depends on the covered set so far) and stays eager, but each step's
//! probes are still fused.

use std::collections::BTreeSet;

use deepdb_spn::{LeafFunc, LeafPred, SpnQuery};
use deepdb_storage::{Aggregate, ColumnRef, Database, Predicate, Query, TableId};

use crate::ensemble::Ensemble;
use crate::estimate::Estimate;
use crate::plan::{ProbeHandle, ProbePlan, ProbeResults};
use crate::rspn::count_fraction_query;
use crate::DeepDbError;

/// Estimate `COUNT(*)` of an inner-join query (cardinality estimation /
/// COUNT AQP). Returns the point estimate with propagated variance.
pub fn estimate_count(
    ens: &mut Ensemble,
    db: &Database,
    query: &Query,
) -> Result<Estimate, DeepDbError> {
    ens.recompile_models();
    estimate_count_inner(ens, db, query)
}

/// [`estimate_count`] behind a shared ensemble reference (engines must be
/// compiled — the `&mut` entry points guarantee it).
pub(crate) fn estimate_count_inner(
    ens: &Ensemble,
    db: &Database,
    query: &Query,
) -> Result<Estimate, DeepDbError> {
    query.validate(db)?;
    let qtables: BTreeSet<TableId> = query.tables.iter().copied().collect();
    let mut plan = ProbePlan::new();
    match register_count(&mut plan, ens, &qtables, &query.predicates)? {
        // Case 1/2: one RSPN covering every query table, one fused sweep.
        Some(deferred) => {
            let results = plan.execute(ens);
            Ok(deferred.resolve(&results))
        }
        // Case 3: combine RSPNs.
        None => multi_rspn_count(ens, db, &qtables, &query.predicates),
    }
}

/// Cardinality estimate clamped to ≥ 1 tuple (q-error convention).
pub fn estimate_cardinality(
    ens: &mut Ensemble,
    db: &Database,
    query: &Query,
) -> Result<f64, DeepDbError> {
    Ok(estimate_count(ens, db, query)?.value.max(1.0))
}

/// Batched point-count estimates for `query` extended with `target = v` for
/// each `v` in `values` — the workhorse behind GROUP BY domain pruning,
/// where one query fans out into one probe per candidate group value.
///
/// When a single RSPN covers the query (paper Cases 1/2) all probes are
/// registered on one [`ProbePlan`] and the member is swept **once**, tiles
/// parallelized (`|J| · E[1/F' · 1_{C ∧ target=v} · ∏N_T]` per value).
/// Otherwise this falls back to one [`estimate_count`] per value (Case 3
/// needs per-value RSPN combination).
pub fn estimate_count_values(
    ens: &mut Ensemble,
    db: &Database,
    query: &Query,
    target: ColumnRef,
    values: &[deepdb_storage::Value],
) -> Result<Vec<f64>, DeepDbError> {
    ens.recompile_models();
    estimate_count_values_inner(ens, db, query, target, values)
}

pub(crate) fn estimate_count_values_inner(
    ens: &Ensemble,
    db: &Database,
    query: &Query,
    target: ColumnRef,
    values: &[deepdb_storage::Value],
) -> Result<Vec<f64>, DeepDbError> {
    query.validate(db)?;
    let qtables: BTreeSet<TableId> = query.tables.iter().copied().collect();
    let eq_pred = |v: &deepdb_storage::Value| value_predicate(target.table, target.column, *v);

    // Representative predicate set for RSPN selection (the choice is
    // identical for every value: only the constant differs).
    let mut selector_preds = query.predicates.clone();
    if let Some(v) = values.first() {
        selector_preds.push(eq_pred(v));
    }
    let single = best_covering_rspn(ens, &qtables, &selector_preds).and_then(|idx| {
        // The whole batch must translate against this one RSPN. The shared
        // predicates are translated once into a base query; each value only
        // appends its own equality predicate.
        let rspn = &ens.rspns()[idx];
        let base = count_fraction_query(rspn, &qtables, &query.predicates, false)
            .ok()
            .map(|(q, _)| q)?;
        let mut plan = ProbePlan::new();
        let mut handles = Vec::with_capacity(values.len());
        for v in values {
            let mut q = base.clone();
            match rspn.add_predicate(&mut q, &eq_pred(v)) {
                Ok(()) => handles.push(plan.register(idx, q)),
                Err(_) => return None,
            }
        }
        Some((idx, plan, handles))
    });

    if let Some((idx, plan, handles)) = single {
        let j = ens.rspns()[idx].full_join_count() as f64;
        let results = plan.execute(ens);
        return Ok(handles
            .into_iter()
            .map(|h| (results[h] * j).max(0.0))
            .collect());
    }

    // Case 3 fallback: one full estimate per value.
    let mut out = Vec::with_capacity(values.len());
    for v in values {
        let mut sub = query.clone();
        sub.predicates.push(eq_pred(v));
        out.push(estimate_count_inner(ens, db, &sub)?.value.max(0.0));
    }
    Ok(out)
}

/// Equality predicate for a concrete value; NULL group keys become `IS NULL`
/// (an `=` comparison against NULL is SQL-unknown and would drop the group).
pub(crate) fn value_predicate(
    table: TableId,
    column: deepdb_storage::ColId,
    v: deepdb_storage::Value,
) -> Predicate {
    match v {
        deepdb_storage::Value::Null => {
            Predicate::new(table, column, deepdb_storage::PredOp::IsNull)
        }
        _ => Predicate::new(
            table,
            column,
            deepdb_storage::PredOp::Cmp(deepdb_storage::CmpOp::Eq, v),
        ),
    }
}

/// Maximum number of disjuncts accepted by [`estimate_count_disjunction`]
/// (inclusion–exclusion enumerates 2^k − 1 conjunctive subqueries).
pub const MAX_DISJUNCTS: usize = 10;

/// Estimate `COUNT(*)` of a query whose WHERE clause is
/// `C ∧ (D₁ ∨ D₂ ∨ … ∨ Dₖ)` — `query.predicates` is the conjunctive part
/// `C`, each `disjuncts[i]` is one conjunction `Dᵢ` — via the
/// inclusion–exclusion principle the paper points to in §4.1:
///
/// `COUNT(∨ᵢ Dᵢ) = Σ_{∅≠S} (−1)^{|S|+1} · COUNT(∧_{i∈S} Dᵢ)`.
///
/// All 2^k − 1 conjunctive terms are registered on **one** probe plan (terms
/// needing Case-3 combination fall back to eager evaluation), so the whole
/// disjunction costs one sweep per touched member. Variances of the terms
/// are summed (the terms reuse the same models, so this over-states
/// independence; documented approximation). The estimate is clamped to ≥ 0.
pub fn estimate_count_disjunction(
    ens: &mut Ensemble,
    db: &Database,
    query: &Query,
    disjuncts: &[Vec<Predicate>],
) -> Result<Estimate, DeepDbError> {
    if disjuncts.is_empty() {
        return estimate_count(ens, db, query);
    }
    if disjuncts.len() > MAX_DISJUNCTS {
        return Err(DeepDbError::Unsupported(format!(
            "inclusion-exclusion supports at most {MAX_DISJUNCTS} disjuncts, got {}",
            disjuncts.len()
        )));
    }
    ens.recompile_models();
    let ens: &Ensemble = ens;
    query.validate(db)?;
    let qtables: BTreeSet<TableId> = query.tables.iter().copied().collect();

    let k = disjuncts.len();
    let mut plan = ProbePlan::new();
    let mut terms: Vec<(f64, Option<DeferredCount>, Vec<Predicate>)> = Vec::new();
    for mask in 1u32..(1 << k) {
        let mut sub = query.clone();
        for (i, d) in disjuncts.iter().enumerate() {
            if mask & (1 << i) != 0 {
                sub.predicates.extend(d.iter().cloned());
            }
        }
        // Validate each inclusion–exclusion term like the eager path did —
        // disjunct predicates can reference tables outside the FROM list.
        sub.validate(db)?;
        let sign = if mask.count_ones() % 2 == 1 {
            1.0
        } else {
            -1.0
        };
        let deferred = register_count(&mut plan, ens, &qtables, &sub.predicates)?;
        terms.push((sign, deferred, sub.predicates));
    }
    let results = plan.execute(ens);
    let mut total = Estimate::exact(0.0);
    for (sign, deferred, preds) in terms {
        let term = match deferred {
            Some(d) => d.resolve(&results),
            None => multi_rspn_count(ens, db, &qtables, &preds)?,
        };
        total = total.add(term.scale(sign));
    }
    total.value = total.value.max(0.0);
    Ok(total)
}

/// Estimate `AVG(col)` with tuple-factor normalization (paper §4.2).
pub fn estimate_avg(
    ens: &mut Ensemble,
    db: &Database,
    query: &Query,
) -> Result<Estimate, DeepDbError> {
    ens.recompile_models();
    query.validate(db)?;
    let Aggregate::Avg(target) = query.aggregate else {
        return Err(DeepDbError::Unsupported(
            "estimate_avg requires an AVG aggregate".into(),
        ));
    };
    let mut plan = ProbePlan::new();
    let deferred = register_avg(&mut plan, ens, &query.tables, &query.predicates, target)?;
    let results = plan.execute(ens);
    Ok(deferred.resolve(&results))
}

/// Estimate `SUM(col)` = COUNT × AVG (paper §4.2). The COUNT probes (over
/// non-NULL summands) and the AVG numerator/denominator/moment probes are
/// fused into one plan — one sweep per touched member even when COUNT and
/// AVG pick different members.
pub fn estimate_sum(
    ens: &mut Ensemble,
    db: &Database,
    query: &Query,
) -> Result<Estimate, DeepDbError> {
    ens.recompile_models();
    let ens: &Ensemble = ens;
    query.validate(db)?;
    let Aggregate::Sum(target) = query.aggregate else {
        return Err(DeepDbError::Unsupported(
            "estimate_sum requires a SUM aggregate".into(),
        ));
    };
    let qtables: BTreeSet<TableId> = query.tables.iter().copied().collect();
    // COUNT must only include rows where the summand is non-NULL.
    let mut count_preds = query.predicates.clone();
    count_preds.push(Predicate::new(
        target.table,
        target.column,
        deepdb_storage::PredOp::IsNotNull,
    ));

    let mut plan = ProbePlan::new();
    let count_deferred = register_count(&mut plan, ens, &qtables, &count_preds)?;
    let avg_deferred = register_avg(&mut plan, ens, &query.tables, &query.predicates, target)?;
    let results = plan.execute(ens);
    let count = match count_deferred {
        Some(d) => d.resolve(&results),
        None => multi_rspn_count(ens, db, &qtables, &count_preds)?,
    };
    Ok(count.product(avg_deferred.resolve(&results)))
}

/// Pick the best RSPN whose tables cover all of `qtables` (greedy RDC
/// strategy; smaller RSPNs win ties to avoid needless normalization).
fn best_covering_rspn(
    ens: &Ensemble,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Option<usize> {
    let mut best: Option<(f64, isize, usize)> = None;
    for (i, rspn) in ens.rspns().iter().enumerate() {
        if !qtables.iter().all(|t| rspn.tables().contains(t)) {
            continue;
        }
        let score = rspn.strategy_score(preds);
        let size_penalty = -(rspn.tables().len() as isize);
        let key = (score, size_penalty, i);
        if best.is_none_or(|(s, p, _)| (score, size_penalty) > (s, p)) {
            best = Some(key);
        }
    }
    best.map(|(_, _, i)| i)
}

// ---------------------------------------------------------------------------
// Deferred probe bundles: register on a ProbePlan now, resolve to Estimates
// after one fused execute().
// ---------------------------------------------------------------------------

/// Deferred `E[1/F'(Q,J) · 1_C · ∏N_T]` with variance: the point probe,
/// plus — when tuple-factor normalization is active — the probability factor
/// and the second-moment probe (three probes, same member, one sweep).
pub(crate) struct DeferredFraction {
    n: u64,
    /// The fraction probe (moment functions applied).
    point: ProbeHandle,
    /// `P(C ∧ ∏N_T)` — same query without the moment functions.
    prob: Option<ProbeHandle>,
    /// Squared-moment probe for the Koenig–Huygens variance.
    sq: Option<ProbeHandle>,
}

impl DeferredFraction {
    pub(crate) fn resolve(&self, r: &ProbeResults) -> Estimate {
        let n = self.n;
        let (Some(prob), Some(sq)) = (self.prob, self.sq) else {
            // No tuple-factor normalization: the fraction *is* the
            // probability (binomial variance, paper §5.1).
            let p = r[self.point].clamp(0.0, 1.0);
            if p <= 0.0 {
                return Estimate::exact(0.0);
            }
            return Estimate::probability(p, n);
        };
        let p = r[prob].clamp(0.0, 1.0);
        if p <= 0.0 {
            return Estimate::exact(0.0);
        }
        let e_g1c = r[self.point]; // E[g·1_C]
        let e_g2c = r[sq]; // E[g²·1_C]
        let n_eff = (n as f64 * p).max(1.0);
        let cond = Estimate::conditional_expectation(e_g1c / p, e_g2c / p, n_eff);
        cond.product(Estimate::probability(p, n))
    }
}

/// Register the probes of one count fraction on RSPN member `idx` (the
/// split into a binomial predicate part and a Koenig–Huygens
/// conditional-expectation part follows paper §5.1). Thin wrapper over
/// [`CountTemplate`] — the single source of the point/prob/sq bundle —
/// with no deferred group predicates.
pub(crate) fn register_fraction(
    plan: &mut ProbePlan,
    ens: &Ensemble,
    idx: usize,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Result<DeferredFraction, DeepDbError> {
    Ok(CountTemplate::build(ens, idx, qtables, preds)?
        .register(plan, ens, &[])?
        .fraction)
}

/// Deferred Theorem-1 count on a single covering member:
/// `|J| · E[1/F' · 1_C · ∏N_T]`.
pub(crate) struct DeferredCount {
    j: f64,
    fraction: DeferredFraction,
}

impl DeferredCount {
    pub(crate) fn resolve(&self, r: &ProbeResults) -> Estimate {
        self.fraction.resolve(r).scale(self.j)
    }
}

/// Register a full COUNT estimate if one RSPN covers the query tables
/// (Cases 1/2). `Ok(None)` means Case 3: the caller must fall back to
/// eager [`multi_rspn_count`]. Translation failures propagate as errors.
pub(crate) fn register_count(
    plan: &mut ProbePlan,
    ens: &Ensemble,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Result<Option<DeferredCount>, DeepDbError> {
    let Some(idx) = best_covering_rspn(ens, qtables, preds) else {
        return Ok(None);
    };
    let fraction = register_fraction(plan, ens, idx, qtables, preds)?;
    Ok(Some(DeferredCount {
        j: ens.rspns()[idx].full_join_count() as f64,
        fraction,
    }))
}

/// Deferred AVG via normalized conditional expectation (paper §4.2):
/// numerator `E[A/F' · 1_C]`, denominator `E[1_{A not null}/F' · 1_C]`, and
/// the second moment `E[(A/F')²·1_C]` for the Koenig–Huygens variance.
pub(crate) struct DeferredAvg {
    n: u64,
    num: ProbeHandle,
    den: ProbeHandle,
    sq: ProbeHandle,
}

impl DeferredAvg {
    pub(crate) fn resolve(&self, r: &ProbeResults) -> Estimate {
        let (den, num, e2) = (r[self.den], r[self.num], r[self.sq]);
        if den <= 0.0 {
            return Estimate::exact(0.0);
        }
        let n_eff = (self.n as f64 * den).max(1.0);
        Estimate::conditional_expectation(num / den, e2 / den, n_eff)
    }
}

/// Register an AVG estimate: choose the RSPN containing the aggregate column
/// with the best predicate coverage; predicates on tables outside that RSPN
/// are ignored (approximation noted in the paper). Thin wrapper over
/// [`AvgTemplate`] with no deferred group predicates.
pub(crate) fn register_avg(
    plan: &mut ProbePlan,
    ens: &Ensemble,
    tables: &[TableId],
    preds: &[Predicate],
    target: ColumnRef,
) -> Result<DeferredAvg, DeepDbError> {
    AvgTemplate::build(ens, tables, preds, preds, target)?.register(plan, ens, &[])
}

/// A deferred (aggregate, count) pair for one scalar (or one GROUP BY group)
/// subquery — what `aqp` fuses across all groups of a query.
pub(crate) struct DeferredScalar {
    qtables: BTreeSet<TableId>,
    preds: Vec<Predicate>,
    /// `None` = the COUNT needs Case-3 combination (eager fallback).
    count: Option<DeferredCount>,
    agg: DeferredAggKind,
}

pub(crate) enum DeferredAggKind {
    /// Aggregate is the COUNT itself.
    Count,
    Avg(DeferredAvg),
    Sum {
        nn_preds: Vec<Predicate>,
        count_nn: Option<DeferredCount>,
        avg: DeferredAvg,
    },
}

/// Register all probes of one scalar aggregate query (COUNT plus the
/// aggregate's own probes) on `plan`.
pub(crate) fn register_scalar(
    plan: &mut ProbePlan,
    ens: &Ensemble,
    query: &Query,
) -> Result<DeferredScalar, DeepDbError> {
    ScalarTemplate::prepare(ens, query, &[])?.register_group(plan, ens, &[])
}

// ---------------------------------------------------------------------------
// Scalar templates: GROUP BY enumeration registers the same probe bundle
// once per group, with only the group-value predicates changing. A
// `ScalarTemplate` performs the member selection and translates the shared
// (non-group) predicates into base `SpnQuery`s ONCE; each group then clones
// the bases and appends just its own per-value predicates — O(groups ×
// group columns) instead of O(groups × all predicates) translation work.
// ---------------------------------------------------------------------------

/// Pre-translated probe bases for a family of scalar queries that differ
/// only in appended group-value predicates. Built by
/// [`ScalarTemplate::prepare`]; consumed once per group via
/// [`ScalarTemplate::register_group`]. The scalar path is the degenerate
/// no-group-columns case, so both paths share one translation.
pub(crate) struct ScalarTemplate {
    qtables: BTreeSet<TableId>,
    shared_preds: Vec<Predicate>,
    /// `None` = the COUNT needs Case-3 combination (eager per-group fallback).
    count: Option<CountTemplate>,
    agg: AggTemplate,
}

/// Base queries of one deferred Theorem-1 count on a fixed member.
struct CountTemplate {
    idx: usize,
    j: f64,
    n: u64,
    point: SpnQuery,
    prob: Option<SpnQuery>,
    sq: Option<SpnQuery>,
}

/// Base queries of one deferred AVG on a fixed member.
struct AvgTemplate {
    idx: usize,
    n: u64,
    num: SpnQuery,
    den: SpnQuery,
    sq: SpnQuery,
}

enum AggTemplate {
    Count,
    Avg(AvgTemplate),
    Sum {
        target: ColumnRef,
        count_nn: Option<CountTemplate>,
        avg: AvgTemplate,
    },
}

impl CountTemplate {
    /// Translate the shared predicates of one count bundle against member
    /// `idx` — the single source of the Theorem-1 point/prob/sq bundle
    /// ([`register_fraction`] delegates here).
    fn build(
        ens: &Ensemble,
        idx: usize,
        qtables: &BTreeSet<TableId>,
        preds: &[Predicate],
    ) -> Result<Self, DeepDbError> {
        let rspn = &ens.rspns()[idx];
        let (point, factors) = count_fraction_query(rspn, qtables, preds, false)?;
        let (prob, sq) = if factors.is_empty() {
            (None, None)
        } else {
            let mut prob_q = point.clone();
            for &f in &factors {
                prob_q.set_func(f, LeafFunc::One);
            }
            let (sq_q, _) = count_fraction_query(rspn, qtables, preds, true)?;
            (Some(prob_q), Some(sq_q))
        };
        Ok(CountTemplate {
            idx,
            j: rspn.full_join_count() as f64,
            n: rspn.n_training(),
            point,
            prob,
            sq,
        })
    }

    fn register(
        &self,
        plan: &mut ProbePlan,
        ens: &Ensemble,
        group_preds: &[Predicate],
    ) -> Result<DeferredCount, DeepDbError> {
        let rspn = &ens.rspns()[self.idx];
        let extend = |base: &SpnQuery| -> Result<SpnQuery, DeepDbError> {
            let mut q = base.clone();
            for p in group_preds {
                rspn.add_predicate(&mut q, p)?;
            }
            Ok(q)
        };
        let point = plan.register(self.idx, extend(&self.point)?);
        let prob = match &self.prob {
            Some(b) => Some(plan.register(self.idx, extend(b)?)),
            None => None,
        };
        let sq = match &self.sq {
            Some(b) => Some(plan.register(self.idx, extend(b)?)),
            None => None,
        };
        Ok(DeferredCount {
            j: self.j,
            fraction: DeferredFraction {
                n: self.n,
                point,
                prob,
                sq,
            },
        })
    }
}

impl AvgTemplate {
    /// Member selection + shared-predicate translation of one AVG bundle
    /// (mirrors the former eager `register_avg` body). `selector_preds`
    /// drive the member choice (they include representative group
    /// predicates — scoring depends only on predicate columns, never on the
    /// group value); the base queries carry only the translated shared
    /// predicates.
    fn build(
        ens: &Ensemble,
        tables: &[TableId],
        preds: &[Predicate],
        selector_preds: &[Predicate],
        target: ColumnRef,
    ) -> Result<Self, DeepDbError> {
        let idx = best_rspn_with(ens, selector_preds, |r| {
            r.tables().contains(&target.table)
                && r.data_column(target.table, target.column).is_some()
        })
        .ok_or_else(|| {
            DeepDbError::NotAnswerable(format!(
                "no RSPN models AVG column ({}, {})",
                target.table, target.column
            ))
        })?;

        let rspn = &ens.rspns()[idx];
        let target_col = rspn
            .data_column(target.table, target.column)
            .expect("checked above");
        let present: BTreeSet<TableId> = tables
            .iter()
            .copied()
            .filter(|t| rspn.tables().contains(t))
            .collect();
        let usable: Vec<Predicate> = preds
            .iter()
            .filter(|p| rspn.tables().contains(&p.table))
            .cloned()
            .collect();

        let (mut num, _) = count_fraction_query(rspn, &present, &usable, false)?;
        num.set_func(target_col, LeafFunc::X);
        let (mut den, _) = count_fraction_query(rspn, &present, &usable, false)?;
        den.add_pred(target_col, LeafPred::IsNotNull);
        let (mut sq, _) = count_fraction_query(rspn, &present, &usable, true)?;
        sq.set_func(target_col, LeafFunc::X2);

        Ok(AvgTemplate {
            idx,
            n: rspn.n_training(),
            num,
            den,
            sq,
        })
    }

    fn register(
        &self,
        plan: &mut ProbePlan,
        ens: &Ensemble,
        group_preds: &[Predicate],
    ) -> Result<DeferredAvg, DeepDbError> {
        let rspn = &ens.rspns()[self.idx];
        let extend = |base: &SpnQuery| -> Result<SpnQuery, DeepDbError> {
            let mut q = base.clone();
            // Same filter the shared predicates went through: predicates on
            // tables outside this member are ignored (documented
            // approximation of the paper's AVG translation).
            for p in group_preds {
                if rspn.tables().contains(&p.table) {
                    rspn.add_predicate(&mut q, p)?;
                }
            }
            Ok(q)
        };
        Ok(DeferredAvg {
            n: self.n,
            num: plan.register(self.idx, extend(&self.num)?),
            den: plan.register(self.idx, extend(&self.den)?),
            sq: plan.register(self.idx, extend(&self.sq)?),
        })
    }
}

impl ScalarTemplate {
    /// Select members and translate the shared predicates of `query` once.
    /// `group_cols` are the GROUP BY columns whose per-value predicates will
    /// be appended group by group; member selection sees representative
    /// equality predicates on them (scores depend only on the columns).
    pub(crate) fn prepare(
        ens: &Ensemble,
        query: &Query,
        group_cols: &[ColumnRef],
    ) -> Result<Self, DeepDbError> {
        let qtables: BTreeSet<TableId> = query.tables.iter().copied().collect();
        let rep: Vec<Predicate> = group_cols
            .iter()
            .map(|c| value_predicate(c.table, c.column, deepdb_storage::Value::Int(0)))
            .collect();
        let selector: Vec<Predicate> = query.predicates.iter().chain(rep.iter()).cloned().collect();

        let count = match best_covering_rspn(ens, &qtables, &selector) {
            Some(idx) => Some(CountTemplate::build(ens, idx, &qtables, &query.predicates)?),
            None => None,
        };
        let agg = match query.aggregate {
            Aggregate::CountStar => AggTemplate::Count,
            Aggregate::Avg(target) => AggTemplate::Avg(AvgTemplate::build(
                ens,
                &query.tables,
                &query.predicates,
                &selector,
                target,
            )?),
            Aggregate::Sum(target) => {
                let nn = Predicate::new(
                    target.table,
                    target.column,
                    deepdb_storage::PredOp::IsNotNull,
                );
                let mut nn_base = query.predicates.clone();
                nn_base.push(nn.clone());
                let mut nn_selector = selector.clone();
                nn_selector.push(nn);
                let count_nn = match best_covering_rspn(ens, &qtables, &nn_selector) {
                    Some(idx) => Some(CountTemplate::build(ens, idx, &qtables, &nn_base)?),
                    None => None,
                };
                AggTemplate::Sum {
                    target,
                    count_nn,
                    avg: AvgTemplate::build(
                        ens,
                        &query.tables,
                        &query.predicates,
                        &selector,
                        target,
                    )?,
                }
            }
        };
        Ok(ScalarTemplate {
            qtables,
            shared_preds: query.predicates.clone(),
            count,
            agg,
        })
    }

    /// Register one group's probe bundle: clone the translated bases and
    /// append only this group's value predicates.
    pub(crate) fn register_group(
        &self,
        plan: &mut ProbePlan,
        ens: &Ensemble,
        group_preds: &[Predicate],
    ) -> Result<DeferredScalar, DeepDbError> {
        let mut preds = self.shared_preds.clone();
        preds.extend(group_preds.iter().cloned());
        let count = match &self.count {
            Some(t) => Some(t.register(plan, ens, group_preds)?),
            None => None,
        };
        let agg = match &self.agg {
            AggTemplate::Count => DeferredAggKind::Count,
            AggTemplate::Avg(t) => DeferredAggKind::Avg(t.register(plan, ens, group_preds)?),
            AggTemplate::Sum {
                target,
                count_nn,
                avg,
            } => {
                let mut nn_preds = preds.clone();
                nn_preds.push(Predicate::new(
                    target.table,
                    target.column,
                    deepdb_storage::PredOp::IsNotNull,
                ));
                DeferredAggKind::Sum {
                    count_nn: match count_nn {
                        Some(t) => Some(t.register(plan, ens, group_preds)?),
                        None => None,
                    },
                    nn_preds,
                    avg: avg.register(plan, ens, group_preds)?,
                }
            }
        };
        Ok(DeferredScalar {
            qtables: self.qtables.clone(),
            preds,
            count,
            agg,
        })
    }
}

/// Resolve a [`DeferredScalar`] into `(aggregate, count)` estimates,
/// falling back to eager Case-3 combination where registration could not
/// cover the COUNT.
pub(crate) fn resolve_scalar(
    ens: &Ensemble,
    db: &Database,
    deferred: &DeferredScalar,
    r: &ProbeResults,
) -> Result<(Estimate, Estimate), DeepDbError> {
    let count = match &deferred.count {
        Some(d) => d.resolve(r),
        None => multi_rspn_count(ens, db, &deferred.qtables, &deferred.preds)?,
    };
    let agg = match &deferred.agg {
        DeferredAggKind::Count => count,
        DeferredAggKind::Avg(avg) => avg.resolve(r),
        DeferredAggKind::Sum {
            nn_preds,
            count_nn,
            avg,
        } => {
            let nn_count = match count_nn {
                Some(d) => d.resolve(r),
                None => multi_rspn_count(ens, db, &deferred.qtables, nn_preds)?,
            };
            nn_count.product(avg.resolve(r))
        }
    };
    Ok((agg, count))
}

/// `E[1/F'(Q,J) · 1_C · ∏N_T]` with variance, evaluated immediately on
/// member `idx` (registration + one single-member sweep) — the building
/// block of the sequential Case-3 extension loop.
fn count_fraction(
    ens: &Ensemble,
    idx: usize,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Result<Estimate, DeepDbError> {
    let mut plan = ProbePlan::new();
    let deferred = register_fraction(&mut plan, ens, idx, qtables, preds)?;
    let results = plan.execute(ens);
    Ok(deferred.resolve(&results))
}

/// Theorem-1 estimate on one RSPN: `|J| · E[1/F' · 1_C · ∏N_T]`.
fn single_rspn_count(
    ens: &Ensemble,
    idx: usize,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Result<Estimate, DeepDbError> {
    let fraction = count_fraction(ens, idx, qtables, preds)?;
    let j = ens.rspns()[idx].full_join_count() as f64;
    Ok(fraction.scale(j))
}

/// Case 3: extend a covered table set across FK edges, multiplying
/// conditional ratios (Theorem 2). Each extension step depends on the
/// covered set so far, so the loop is sequential — but every step fuses its
/// probes (numerator + denominator fractions, or the three factor-weighted
/// ratio probes) into one plan, i.e. one sweep per step per member.
pub(crate) fn multi_rspn_count(
    ens: &Ensemble,
    db: &Database,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Result<Estimate, DeepDbError> {
    // Start with the RSPN overlapping the query that scores best.
    let mut start: Option<(f64, usize)> = None;
    for (i, rspn) in ens.rspns().iter().enumerate() {
        let overlap = rspn.tables().iter().filter(|t| qtables.contains(t)).count();
        if overlap == 0 {
            continue;
        }
        let handled: Vec<Predicate> = preds
            .iter()
            .filter(|p| rspn.tables().contains(&p.table))
            .cloned()
            .collect();
        let score = rspn.strategy_score(&handled) + overlap as f64;
        if start.is_none_or(|(s, _)| score > s) {
            start = Some((score, i));
        }
    }
    let (_, start_idx) = start
        .ok_or_else(|| DeepDbError::NotAnswerable("no RSPN overlaps the query tables".into()))?;

    let mut covered: BTreeSet<TableId> = ens.rspns()[start_idx]
        .tables()
        .iter()
        .filter(|t| qtables.contains(t))
        .copied()
        .collect();
    let covered_preds: Vec<Predicate> = preds
        .iter()
        .filter(|p| covered.contains(&p.table))
        .cloned()
        .collect();
    let mut est = single_rspn_count(ens, start_idx, &covered.clone(), &covered_preds)?;

    let mut guard = 0;
    while covered != *qtables {
        guard += 1;
        if guard > qtables.len() + 2 {
            return Err(DeepDbError::NotAnswerable(format!(
                "could not extend coverage beyond {covered:?} for query {qtables:?}"
            )));
        }
        // Find an FK edge from a covered table to an uncovered query table.
        let Some((u, v, fk)) = qtables.iter().find_map(|&v| {
            if covered.contains(&v) {
                return None;
            }
            covered
                .iter()
                .find_map(|&u| db.edge_between(u, v).map(|fk| (u, v, *fk)))
        }) else {
            return Err(DeepDbError::NotAnswerable(format!(
                "query tables {qtables:?} not FK-connected through {covered:?}"
            )));
        };

        // Prefer an RSPN spanning both sides of the edge (Theorem 2 with a
        // non-empty overlap).
        let spanning = best_rspn_with(ens, preds, |r| {
            r.tables().contains(&u) && r.tables().contains(&v)
        });
        if let Some(b) = spanning {
            let b_tables: BTreeSet<TableId> = ens.rspns()[b].tables().iter().copied().collect();
            let overlap: BTreeSet<TableId> = covered.intersection(&b_tables).copied().collect();
            let mut extended = overlap.clone();
            // Absorb every uncovered query table the RSPN can reach.
            for t in b_tables.iter() {
                if qtables.contains(t) {
                    extended.insert(*t);
                }
            }
            let num_preds: Vec<Predicate> = preds
                .iter()
                .filter(|p| extended.contains(&p.table))
                .cloned()
                .collect();
            let den_preds: Vec<Predicate> = preds
                .iter()
                .filter(|p| overlap.contains(&p.table))
                .cloned()
                .collect();
            // Both fractions of the Theorem-2 ratio in one fused sweep.
            let mut plan = ProbePlan::new();
            let num = register_fraction(&mut plan, ens, b, &extended, &num_preds)?;
            let den = register_fraction(&mut plan, ens, b, &overlap, &den_preds)?;
            let results = plan.execute(ens);
            est = est.product(num.resolve(&results).divide(den.resolve(&results)));
            covered.extend(extended);
            continue;
        }

        // Disjoint RSPNs: fan-out from the covered side times conditional
        // selectivity on the new side (the paper's Q2 factorization).
        if fk.parent_table == u {
            // Downward: E(F(Q_cov)·F_{u←v}) / E(F(Q_cov)) from an RSPN with
            // the raw factor column, then P(preds_v) from an RSPN over v.
            let a = best_rspn_with(ens, preds, |r| r.tables().contains(&u) && r.has_factor(&fk))
                .ok_or_else(|| {
                    DeepDbError::NotAnswerable(format!(
                        "no RSPN stores tuple factor for edge {u}->{v}"
                    ))
                })?;
            let cov_a: BTreeSet<TableId> = ens.rspns()[a]
                .tables()
                .iter()
                .filter(|t| covered.contains(t))
                .copied()
                .collect();
            let a_preds: Vec<Predicate> = preds
                .iter()
                .filter(|p| cov_a.contains(&p.table))
                .cloned()
                .collect();
            let fanout = factor_weighted_ratio(ens, a, &cov_a, &a_preds, &fk, None)?;

            let b = best_rspn_with(ens, preds, |r| r.tables().contains(&v))
                .ok_or_else(|| DeepDbError::NotAnswerable(format!("no RSPN models table {v}")))?;
            let v_set = BTreeSet::from([v]);
            let v_preds: Vec<Predicate> = preds.iter().filter(|p| p.table == v).cloned().collect();
            // Selectivity numerator and denominator fused on member b.
            let mut plan = ProbePlan::new();
            let num = register_fraction(&mut plan, ens, b, &v_set, &v_preds)?;
            let den = register_fraction(&mut plan, ens, b, &v_set, &[])?;
            let results = plan.execute(ens);
            est = est
                .product(fanout)
                .product(num.resolve(&results).divide(den.resolve(&results)));
        } else {
            // Upward to the parent v: no row multiplication; weight v's rows
            // by their child counts (the paper's alternative formula):
            // E(1_{preds_v} · F_{v←u}) / E(F_{v←u}).
            let a = best_rspn_with(ens, preds, |r| r.tables().contains(&v) && r.has_factor(&fk))
                .ok_or_else(|| {
                    DeepDbError::NotAnswerable(format!(
                        "no RSPN stores tuple factor for edge {v}<-{u}"
                    ))
                })?;
            let v_set = BTreeSet::from([v]);
            let v_preds: Vec<Predicate> = preds.iter().filter(|p| p.table == v).cloned().collect();
            let ratio = factor_weighted_ratio(ens, a, &v_set, &[], &fk, Some(&v_preds))?;
            est = est.product(ratio);
        }
        covered.insert(v);
    }
    Ok(est)
}

/// Raw tuple-factor ratios for the disjoint-RSPN extensions of Case 3.
///
/// * Fan-out (`extra_num_preds = None`): `E[F(set)·F_fk·1_C] / E[F(set)·1_C]`
///   — the expected number of new-side partners per covered row.
/// * Weighted selectivity (`extra_num_preds = Some(vp)`):
///   `E[F_fk·1_{vp}·F(set)·1_C] / E[F_fk·F(set)·1_C]` — the fraction of
///   child rows whose parent satisfies `vp` (the paper's alternative Q2
///   formula).
///
/// Numerator, denominator, and second moment go through one fused
/// single-member plan.
fn factor_weighted_ratio(
    ens: &Ensemble,
    idx: usize,
    set: &BTreeSet<TableId>,
    preds: &[Predicate],
    fk: &deepdb_storage::ForeignKey,
    extra_num_preds: Option<&[Predicate]>,
) -> Result<Estimate, DeepDbError> {
    let rspn = &ens.rspns()[idx];
    let factor_col = rspn
        .factor_column(fk)
        .ok_or_else(|| DeepDbError::NotAnswerable("missing factor column".into()))?;

    let (mut num_q, _) = count_fraction_query(rspn, set, preds, false)?;
    num_q.set_func(factor_col, LeafFunc::X);
    if let Some(extra) = extra_num_preds {
        for p in extra {
            rspn.add_predicate(&mut num_q, p)?;
        }
    }
    let (mut den_q, _) = count_fraction_query(rspn, set, preds, false)?;
    if extra_num_preds.is_some() {
        // Weighted selectivity: denominator keeps the factor weight.
        den_q.set_func(factor_col, LeafFunc::X);
    }
    // Second moment of the weighted quantity for the variance.
    let (mut sq_q, _) = count_fraction_query(rspn, set, preds, true)?;
    sq_q.set_func(factor_col, LeafFunc::X2);
    if let Some(extra) = extra_num_preds {
        for p in extra {
            rspn.add_predicate(&mut sq_q, p)?;
        }
    }

    let n = rspn.n_training();
    let mut plan = ProbePlan::new();
    let h_num = plan.register(idx, num_q);
    let h_den = plan.register(idx, den_q);
    let h_sq = plan.register(idx, sq_q);
    let results = plan.execute(ens);
    let (num, den, e2_raw) = (results[h_num], results[h_den], results[h_sq]);
    if den <= 0.0 {
        return Ok(Estimate::exact(0.0));
    }
    let ratio = num / den;
    let n_eff = (n as f64 * den.min(1.0)).max(1.0);
    if extra_num_preds.is_some() {
        // Weighted fraction in [0,1]: binomial-style variance.
        let p = ratio.clamp(0.0, 1.0);
        Ok(Estimate {
            value: ratio,
            variance: p * (1.0 - p) / n_eff,
        })
    } else {
        // Expected fan-out: Koenig–Huygens on the weighted measure.
        let e2 = e2_raw / den;
        Ok(Estimate::conditional_expectation(
            ratio,
            e2.max(ratio * ratio),
            n_eff,
        ))
    }
}

/// Best RSPN satisfying a shape filter, by strategy score.
fn best_rspn_with(
    ens: &Ensemble,
    preds: &[Predicate],
    accept: impl Fn(&crate::rspn::Rspn) -> bool,
) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for (i, rspn) in ens.rspns().iter().enumerate() {
        if !accept(rspn) {
            continue;
        }
        let handled: Vec<Predicate> = preds
            .iter()
            .filter(|p| rspn.tables().contains(&p.table))
            .cloned()
            .collect();
        let score = rspn.strategy_score(&handled);
        if best.is_none_or(|(s, _)| score > s) {
            best = Some((score, i));
        }
    }
    best.map(|(_, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::{EnsembleBuilder, EnsembleParams, EnsembleStrategy};
    use deepdb_storage::fixtures::{correlated_customer_order, paper_customer_order};
    use deepdb_storage::{execute, CmpOp, PredOp, Value};

    fn params(sample: usize) -> EnsembleParams {
        EnsembleParams {
            sample_size: sample,
            correlation_sample: 1_500,
            ..EnsembleParams::default()
        }
    }

    /// Relative check helper: estimate within `tol`× of truth.
    fn assert_close(est: f64, truth: f64, tol: f64, label: &str) {
        let q = if est > truth {
            est / truth.max(1e-9)
        } else {
            truth / est.max(1e-9)
        };
        assert!(
            q <= tol,
            "{label}: estimate {est} vs truth {truth} (q-error {q:.3})"
        );
    }

    #[test]
    fn paper_q1_and_q2_via_joint_rspn() {
        let db = paper_customer_order();
        let mut p = params(40_000);
        p.rdc_threshold = 0.0; // force the joint RSPN
        let mut ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();

        // Q1: European customers = 2 (answered via Case 2).
        let q1 = Query::count(vec![c]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let est = estimate_count(&mut ens, &db, &q1).unwrap();
        assert_close(est.value, 2.0, 1.15, "Q1");

        // Q2: European online orders = 1 (Case 1).
        let q2 = Query::count(vec![c, o])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let est = estimate_count(&mut ens, &db, &q2).unwrap();
        assert_close(est.value, 1.0, 1.6, "Q2");
    }

    #[test]
    fn paper_q2_via_single_table_rspns_case_3() {
        let db = paper_customer_order();
        let mut p = params(40_000);
        p.strategy = EnsembleStrategy::SingleTables;
        let mut ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        // Paper §4.1 Case 3: |C|·E(1_EU·F_{C←O})·E(1_ONLINE) = 3·(2/3)·(1/2) = 1.
        let q2 = Query::count(vec![c, o])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let est = estimate_count(&mut ens, &db, &q2).unwrap();
        assert_close(est.value, 1.0, 1.3, "Q2 case 3");

        // Join count without predicates = 4 orders.
        let q = Query::count(vec![c, o]);
        let est = estimate_count(&mut ens, &db, &q).unwrap();
        assert_close(est.value, 4.0, 1.2, "join count case 3");
    }

    #[test]
    fn paper_q3_avg_with_factor_normalization() {
        let db = paper_customer_order();
        let mut p = params(40_000);
        p.rdc_threshold = 0.0;
        let mut ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        // AVG(c_age | EU) over the *customer* table must be 35, not the
        // join-weighted 20·2+50 / 3 — the tuple-factor normalization of §4.2.
        let q3 = Query::count(vec![c])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .aggregate(Aggregate::Avg(ColumnRef {
                table: c,
                column: 1,
            }));
        let est = estimate_avg(&mut ens, &db, &q3).unwrap();
        assert!((est.value - 35.0).abs() < 2.5, "AVG = {}", est.value);
    }

    #[test]
    fn statistical_accuracy_against_executor() {
        let db = correlated_customer_order(2500, 11);
        let mut ens = EnsembleBuilder::new(&db)
            .params(params(30_000))
            .build()
            .unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();

        let queries = [
            Query::count(vec![c]).filter(c, 1, PredOp::Cmp(CmpOp::Ge, Value::Int(50))),
            Query::count(vec![c, o]).filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0))),
            Query::count(vec![c, o])
                .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
                .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1))),
            Query::count(vec![c, o])
                .filter(c, 1, PredOp::Between(Value::Int(30), Value::Int(60)))
                .filter(o, 3, PredOp::Cmp(CmpOp::Gt, Value::Float(250.0))),
        ];
        for (i, q) in queries.iter().enumerate() {
            let truth = execute(&db, q).unwrap().scalar().count as f64;
            let est = estimate_cardinality(&mut ens, &db, q).unwrap();
            assert_close(est, truth.max(1.0), 1.35, &format!("workload query {i}"));
        }
    }

    #[test]
    fn sum_estimate_matches_executor() {
        let db = correlated_customer_order(2000, 13);
        let mut ens = EnsembleBuilder::new(&db)
            .params(params(30_000))
            .build()
            .unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)))
            .aggregate(Aggregate::Sum(ColumnRef {
                table: o,
                column: 3,
            }));
        let truth = execute(&db, &q).unwrap().scalar().sum;
        let est = estimate_sum(&mut ens, &db, &q).unwrap();
        let rel = (est.value - truth).abs() / truth.abs().max(1.0);
        assert!(rel < 0.35, "SUM rel error {rel}: {} vs {truth}", est.value);
    }

    #[test]
    fn count_estimate_carries_confidence_interval() {
        let db = correlated_customer_order(2000, 17);
        let mut ens = EnsembleBuilder::new(&db)
            .params(params(20_000))
            .build()
            .unwrap();
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).filter(c, 1, PredOp::Cmp(CmpOp::Lt, Value::Int(40)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        let est = estimate_count(&mut ens, &db, &q).unwrap();
        let (lo, hi) = est.confidence_interval(0.95);
        assert!(lo <= est.value && est.value <= hi);
        assert!(
            lo <= truth && truth <= hi * 1.1,
            "CI [{lo}, {hi}] should bracket {truth}"
        );
    }

    #[test]
    fn disjunction_via_inclusion_exclusion() {
        let db = correlated_customer_order(2500, 19);
        let mut ens = EnsembleBuilder::new(&db)
            .params(params(25_000))
            .build()
            .unwrap();
        let c = db.table_id("customer").unwrap();
        // region = EUROPE ∨ age < 30 (overlapping disjuncts).
        let base = Query::count(vec![c]);
        let d1 = vec![Predicate::new(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))];
        let d2 = vec![Predicate::new(c, 1, PredOp::Cmp(CmpOp::Lt, Value::Int(30)))];
        let est = crate::compile::estimate_count_disjunction(
            &mut ens,
            &db,
            &base,
            &[d1.clone(), d2.clone()],
        )
        .unwrap();
        // Exact truth via inclusion-exclusion over exact conjunctive counts.
        let count = |preds: Vec<Predicate>| {
            let mut q = Query::count(vec![c]);
            q.predicates = preds;
            execute(&db, &q).unwrap().scalar().count as f64
        };
        let truth =
            count(d1.clone()) + count(d2.clone()) - count(d1.iter().chain(&d2).cloned().collect());
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.1, "disjunction estimate {} vs {truth}", est.value);
        // Union is at least as large as each disjunct alone.
        let single = estimate_count(&mut ens, &db, &{
            let mut q = Query::count(vec![c]);
            q.predicates = d1;
            q
        })
        .unwrap();
        assert!(est.value >= single.value * 0.95);
    }

    #[test]
    fn empty_disjunct_list_falls_back_to_conjunction() {
        let db = paper_customer_order();
        let mut p = params(5_000);
        p.rdc_threshold = 0.0;
        let mut ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]);
        let a = estimate_count(&mut ens, &db, &q).unwrap();
        let b = crate::compile::estimate_count_disjunction(&mut ens, &db, &q, &[]).unwrap();
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn impossible_predicates_estimate_near_zero() {
        let db = paper_customer_order();
        let mut p = params(5_000);
        p.rdc_threshold = 0.0;
        let mut ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).filter(c, 1, PredOp::Cmp(CmpOp::Gt, Value::Int(1000)));
        let est = estimate_count(&mut ens, &db, &q).unwrap();
        assert!(est.value < 0.1, "impossible predicate gave {}", est.value);
    }
}
