//! Probabilistic query compilation (paper §4).
//!
//! Translates COUNT/AVG/SUM queries over FK joins into products of
//! expectations and probabilities against the RSPN ensemble:
//!
//! * **Case 1/2** — a single RSPN covers (a superset of) the query's tables:
//!   `|J| · E[1/F'(Q,J) · 1_C · ∏_{T∈Q} N_T]` (Theorem 1).
//! * **Case 3** — the query spans several RSPNs: a covered table set is
//!   extended edge by edge, multiplying either conditional count-fraction
//!   ratios (when one RSPN spans the overlap, Theorem 2) or explicit
//!   fan-out × selectivity terms built from raw tuple-factor columns (the
//!   paper's worked alternatives).
//!
//! RSPN choice is greedy by the sum of pairwise RDC values among the filter
//! columns an RSPN can handle ("Execution Strategy", §4.1), with ties broken
//! deterministically to the lowest member index (the MPE tie rule).
//!
//! Probes are **deferred, not eager**: the `register_*` functions translate
//! a (sub)query into [`deepdb_spn::SpnQuery`] probes on a [`ProbePlan`] and return typed
//! deferred estimates holding [`ProbeHandle`]s; a single
//! [`ProbePlan::execute`] then sweeps each touched RSPN member's arena once
//! and the deferred values `resolve` against the results. Each member's
//! sweep is additionally *pruned* to the sub-DAG its probes can influence:
//! the plan's constrained/target column union keys a cached
//! [`deepdb_spn::ActiveSet`] (see [`crate::cache`]) and the kernels sweep
//! only its compacted runs, bitwise identical to the full sweep. This now covers
//! Case 3 too: [`crate::combine::CombinePlan`] plans the whole multi-RSPN
//! combination symbolically and registers **every** extension step's
//! fraction bundles on the same plan, so a COUNT costs one sweep per
//! touched member no matter how many RSPNs it combines.
//! `aqp::execute_aqp` fuses the bundles of *every* GROUP BY group — combine
//! plans included — into one plan. The retired eager Case-3 loop survives
//! only as the differential-test oracle [`crate::combine::multi_rspn_count`].
//!
//! All query entry points take `&Ensemble`: the compiled engines are kept
//! fresh in place by the update path, and structural recompilation is an
//! explicit maintenance call ([`Ensemble::recompile_models`]).

use std::collections::BTreeSet;

use deepdb_spn::{LeafFunc, LeafPred, SpnQuery};
use deepdb_storage::{Aggregate, ColumnRef, Database, Predicate, Query, TableId};

use crate::combine::{CombineExpr, CombinePlan};
use crate::ensemble::Ensemble;
use crate::estimate::Estimate;
use crate::plan::{ProbeHandle, ProbePlan, ProbeResults};
use crate::rspn::count_fraction_query;
use crate::DeepDbError;

/// Estimate `COUNT(*)` of an inner-join query (cardinality estimation /
/// COUNT AQP). Returns the point estimate with propagated variance.
pub fn estimate_count(
    ens: &Ensemble,
    db: &Database,
    query: &Query,
) -> Result<Estimate, DeepDbError> {
    query.validate(db)?;
    crate::cache::scalar_estimate(ens, db, query, crate::cache::ArtifactKind::Count, &[])
}

/// Cardinality estimate clamped to ≥ 1 tuple (q-error convention).
pub fn estimate_cardinality(
    ens: &Ensemble,
    db: &Database,
    query: &Query,
) -> Result<f64, DeepDbError> {
    Ok(estimate_count(ens, db, query)?.value.max(1.0))
}

/// Batched point-count estimates for `query` extended with `target = v` for
/// each `v` in `values` — the workhorse behind GROUP BY domain pruning,
/// where one query fans out into one probe per candidate group value.
///
/// When a single RSPN covers the query (paper Cases 1/2) all probes are
/// registered on one [`ProbePlan`] and the member is swept **once**, tiles
/// parallelized (`|J| · E[1/F' · 1_{C ∧ target=v} · ∏N_T]` per value).
/// Otherwise every value's combine plan is registered on one shared plan
/// (Case-3 combination is planned symbolically, so the whole batch still
/// costs one sweep per touched member).
pub fn estimate_count_values(
    ens: &Ensemble,
    db: &Database,
    query: &Query,
    target: ColumnRef,
    values: &[deepdb_storage::Value],
) -> Result<Vec<f64>, DeepDbError> {
    query.validate(db)?;
    let qtables: BTreeSet<TableId> = query.tables.iter().copied().collect();
    let eq_pred = |v: &deepdb_storage::Value| value_predicate(target.table, target.column, *v);

    // Representative predicate set for RSPN selection (the choice is
    // identical for every value: only the constant differs).
    let mut selector_preds = query.predicates.clone();
    if let Some(v) = values.first() {
        selector_preds.push(eq_pred(v));
    }
    let single = crate::cache::covering_member(ens, &qtables, &selector_preds).and_then(|idx| {
        // The whole batch must translate against this one RSPN. The shared
        // predicates are translated once into a base query; each value only
        // appends its own equality predicate.
        let rspn = &ens.rspns()[idx];
        let base = count_fraction_query(rspn, &qtables, &query.predicates, false)
            .ok()
            .map(|(q, _)| q)?;
        let mut plan = ProbePlan::new();
        let mut handles = Vec::with_capacity(values.len());
        for v in values {
            let mut q = base.clone();
            match rspn.add_predicate(&mut q, &eq_pred(v)) {
                Ok(()) => handles.push(plan.register(idx, q)),
                Err(_) => return None,
            }
        }
        Some((idx, plan, handles))
    });

    if let Some((idx, plan, handles)) = single {
        let j = ens.rspns()[idx].full_join_count() as f64;
        let results = plan.execute(ens);
        return Ok(handles
            .into_iter()
            .map(|h| (results[h] * j).max(0.0))
            .collect());
    }

    // Case 3 (or translation-failure) fallback: prepare the combine plan
    // once and register every value's bundle set on ONE shared plan — still
    // one fused sweep per touched member for the whole batch.
    let mut count_q = query.clone();
    count_q.aggregate = Aggregate::CountStar;
    let template =
        crate::cache::grouped_template(ens, db, &count_q, std::slice::from_ref(&target))?;
    let mut plan = ProbePlan::new();
    let mut deferred = Vec::with_capacity(values.len());
    for v in values {
        deferred.push(template.register_group(&mut plan, ens, &[eq_pred(v)])?);
    }
    let results = plan.execute(ens);
    deferred
        .iter()
        .map(|d| Ok(d.count.resolve(&results)?.value.max(0.0)))
        .collect()
}

/// Equality predicate for a concrete value; NULL group keys become `IS NULL`
/// (an `=` comparison against NULL is SQL-unknown and would drop the group).
pub(crate) fn value_predicate(
    table: TableId,
    column: deepdb_storage::ColId,
    v: deepdb_storage::Value,
) -> Predicate {
    match v {
        deepdb_storage::Value::Null => {
            Predicate::new(table, column, deepdb_storage::PredOp::IsNull)
        }
        _ => Predicate::new(
            table,
            column,
            deepdb_storage::PredOp::Cmp(deepdb_storage::CmpOp::Eq, v),
        ),
    }
}

/// Maximum number of disjuncts accepted by [`estimate_count_disjunction`]
/// (inclusion–exclusion enumerates 2^k − 1 conjunctive subqueries).
pub const MAX_DISJUNCTS: usize = 10;

/// Estimate `COUNT(*)` of a query whose WHERE clause is
/// `C ∧ (D₁ ∨ D₂ ∨ … ∨ Dₖ)` — `query.predicates` is the conjunctive part
/// `C`, each `disjuncts[i]` is one conjunction `Dᵢ` — via the
/// inclusion–exclusion principle the paper points to in §4.1:
///
/// `COUNT(∨ᵢ Dᵢ) = Σ_{∅≠S} (−1)^{|S|+1} · COUNT(∧_{i∈S} Dᵢ)`.
///
/// All 2^k − 1 conjunctive terms are registered on **one** probe plan —
/// terms needing Case-3 combination register their combine plans on the same
/// plan — so the whole disjunction costs one sweep per touched member.
/// Variances of the terms are summed (the terms reuse the same models, so
/// this over-states independence; documented approximation). The estimate is
/// clamped to ≥ 0.
pub fn estimate_count_disjunction(
    ens: &Ensemble,
    db: &Database,
    query: &Query,
    disjuncts: &[Vec<Predicate>],
) -> Result<Estimate, DeepDbError> {
    if disjuncts.is_empty() {
        return estimate_count(ens, db, query);
    }
    if disjuncts.len() > MAX_DISJUNCTS {
        return Err(DeepDbError::Unsupported(format!(
            "inclusion-exclusion supports at most {MAX_DISJUNCTS} disjuncts, got {}",
            disjuncts.len()
        )));
    }
    query.validate(db)?;
    // Term enumeration, per-term validation (disjunct predicates can
    // reference tables outside the FROM list), registration, and the signed
    // inclusion–exclusion resolution all live in the shared cache-routed
    // builder so repeated disjunction shapes reuse one plan artifact.
    crate::cache::scalar_estimate(ens, db, query, crate::cache::ArtifactKind::Count, disjuncts)
}

/// Estimate `AVG(col)` with tuple-factor normalization (paper §4.2).
pub fn estimate_avg(ens: &Ensemble, db: &Database, query: &Query) -> Result<Estimate, DeepDbError> {
    query.validate(db)?;
    let Aggregate::Avg(target) = query.aggregate else {
        return Err(DeepDbError::Unsupported(
            "estimate_avg requires an AVG aggregate".into(),
        ));
    };
    crate::cache::scalar_estimate(ens, db, query, crate::cache::ArtifactKind::Avg(target), &[])
}

/// Estimate `SUM(col)` = COUNT × AVG (paper §4.2). The COUNT probes (over
/// non-NULL summands) and the AVG numerator/denominator/moment probes are
/// fused into one plan — one sweep per touched member even when COUNT and
/// AVG pick different members.
pub fn estimate_sum(ens: &Ensemble, db: &Database, query: &Query) -> Result<Estimate, DeepDbError> {
    query.validate(db)?;
    let Aggregate::Sum(target) = query.aggregate else {
        return Err(DeepDbError::Unsupported(
            "estimate_sum requires a SUM aggregate".into(),
        ));
    };
    // The non-NULL COUNT restriction and the fused COUNT/AVG registration
    // live in the shared cache-routed builder.
    crate::cache::scalar_estimate(ens, db, query, crate::cache::ArtifactKind::Sum(target), &[])
}

/// Pick the best RSPN whose tables cover all of `qtables` (greedy RDC
/// strategy; smaller RSPNs win ties to avoid needless normalization, and
/// among same-size candidates the lowest member index wins — selection is
/// reproducible across runs).
pub(crate) fn best_covering_rspn(
    ens: &Ensemble,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Option<usize> {
    let mut best: Option<(f64, isize, usize)> = None;
    for (i, rspn) in ens.rspns().iter().enumerate() {
        if !qtables.iter().all(|t| rspn.tables().contains(t)) {
            continue;
        }
        let score = rspn.strategy_score(preds);
        let size_penalty = -(rspn.tables().len() as isize);
        let key = (score, size_penalty, i);
        // Strictly-better keys only: on a full tie the first (lowest-index)
        // candidate is kept.
        if best.is_none_or(|(s, p, _)| (score, size_penalty) > (s, p)) {
            best = Some(key);
        }
    }
    best.map(|(_, _, i)| i)
}

// ---------------------------------------------------------------------------
// Deferred probe bundles: register on a ProbePlan now, resolve to Estimates
// after one fused execute().
// ---------------------------------------------------------------------------

/// Deferred `E[1/F'(Q,J) · 1_C · ∏N_T]` with variance: the point probe,
/// plus — when tuple-factor normalization is active — the probability factor
/// and the second-moment probe (three probes, same member, one sweep).
/// Fields are crate-visible so `combine.rs` can assemble the same bundle
/// shape for its Case-3 extension steps.
pub(crate) struct DeferredFraction {
    pub(crate) n: u64,
    /// The fraction probe (moment functions applied).
    pub(crate) point: ProbeHandle,
    /// `P(C ∧ ∏N_T)` — same query without the moment functions.
    pub(crate) prob: Option<ProbeHandle>,
    /// Squared-moment probe for the Koenig–Huygens variance.
    pub(crate) sq: Option<ProbeHandle>,
}

impl DeferredFraction {
    pub(crate) fn resolve(&self, r: &ProbeResults) -> Estimate {
        let n = self.n;
        let (Some(prob), Some(sq)) = (self.prob, self.sq) else {
            // No tuple-factor normalization: the fraction *is* the
            // probability (binomial variance, paper §5.1).
            let p = r[self.point].clamp(0.0, 1.0);
            if p <= 0.0 {
                return Estimate::exact(0.0);
            }
            return Estimate::probability(p, n);
        };
        let p = r[prob].clamp(0.0, 1.0);
        if p <= 0.0 {
            return Estimate::exact(0.0);
        }
        let e_g1c = r[self.point]; // E[g·1_C]
        let e_g2c = r[sq]; // E[g²·1_C]
        let n_eff = (n as f64 * p).max(1.0);
        let cond = Estimate::conditional_expectation(e_g1c / p, e_g2c / p, n_eff);
        cond.product(Estimate::probability(p, n))
    }
}

/// Register the probes of one count fraction on RSPN member `idx` (the
/// split into a binomial predicate part and a Koenig–Huygens
/// conditional-expectation part follows paper §5.1). Thin wrapper over
/// [`CountTemplate`] — whose probe recipe lives in
/// [`fraction_bundle_queries`] — with no deferred group predicates.
pub(crate) fn register_fraction(
    plan: &mut ProbePlan,
    ens: &Ensemble,
    idx: usize,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Result<DeferredFraction, DeepDbError> {
    Ok(CountTemplate::build(ens, idx, qtables, preds)?
        .register(plan, ens, &[])?
        .fraction)
}

/// Deferred Theorem-1 count on a single covering member:
/// `|J| · E[1/F' · 1_C · ∏N_T]`.
pub(crate) struct DeferredCount {
    j: f64,
    fraction: DeferredFraction,
}

impl DeferredCount {
    pub(crate) fn resolve(&self, r: &ProbeResults) -> Estimate {
        self.fraction.resolve(r).scale(self.j)
    }
}

/// A deferred COUNT that always resolves from the plan's results: either a
/// Theorem-1 bundle on one covering member (Cases 1/2) or a symbolic
/// multi-RSPN combination (Case 3) — there is no eager arm left.
pub(crate) enum DeferredCountExpr {
    Covered(DeferredCount),
    Combined(CombineExpr),
}

impl DeferredCountExpr {
    pub(crate) fn resolve(&self, r: &ProbeResults) -> Result<Estimate, DeepDbError> {
        match self {
            DeferredCountExpr::Covered(d) => Ok(d.resolve(r)),
            DeferredCountExpr::Combined(e) => e.resolve(r),
        }
    }
}

/// Register a full COUNT estimate on `plan`: Theorem 1 when one RSPN covers
/// the query tables (Cases 1/2), otherwise the symbolic Case-3 combine plan
/// — either way every probe rides the caller's fused sweep. Translation
/// failures propagate as errors.
pub(crate) fn register_count(
    plan: &mut ProbePlan,
    ens: &Ensemble,
    db: &Database,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Result<DeferredCountExpr, DeepDbError> {
    CountSource::prepare(ens, db, qtables, preds, preds)?.register(plan, ens, &[])
}

/// Where a COUNT's probes come from: a single covering member's translated
/// bundle, or a planned multi-RSPN combination. Prepared once per query
/// (GROUP BY re-registers it per group with the group's value predicates).
enum CountSource {
    Covered(CountTemplate),
    Combined(CombinePlan),
}

impl CountSource {
    fn prepare(
        ens: &Ensemble,
        db: &Database,
        qtables: &BTreeSet<TableId>,
        shared_preds: &[Predicate],
        selector_preds: &[Predicate],
    ) -> Result<Self, DeepDbError> {
        match best_covering_rspn(ens, qtables, selector_preds) {
            Some(idx) => Ok(CountSource::Covered(CountTemplate::build(
                ens,
                idx,
                qtables,
                shared_preds,
            )?)),
            None => Ok(CountSource::Combined(CombinePlan::build(
                ens,
                db,
                qtables,
                shared_preds,
                selector_preds,
            )?)),
        }
    }

    fn register(
        &self,
        plan: &mut ProbePlan,
        ens: &Ensemble,
        group_preds: &[Predicate],
    ) -> Result<DeferredCountExpr, DeepDbError> {
        Ok(match self {
            CountSource::Covered(t) => {
                DeferredCountExpr::Covered(t.register(plan, ens, group_preds)?)
            }
            CountSource::Combined(c) => {
                DeferredCountExpr::Combined(c.register(plan, ens, group_preds)?)
            }
        })
    }
}

/// Deferred AVG via normalized conditional expectation (paper §4.2):
/// numerator `E[A/F' · 1_C]`, denominator `E[1_{A not null}/F' · 1_C]`, and
/// the second moment `E[(A/F')²·1_C]` for the Koenig–Huygens variance.
pub(crate) struct DeferredAvg {
    n: u64,
    num: ProbeHandle,
    den: ProbeHandle,
    sq: ProbeHandle,
}

impl DeferredAvg {
    pub(crate) fn resolve(&self, r: &ProbeResults) -> Estimate {
        let (den, num, e2) = (r[self.den], r[self.num], r[self.sq]);
        if den <= 0.0 {
            return Estimate::exact(0.0);
        }
        let n_eff = (self.n as f64 * den).max(1.0);
        Estimate::conditional_expectation(num / den, e2 / den, n_eff)
    }
}

/// Register an AVG estimate: choose the RSPN containing the aggregate column
/// with the best predicate coverage; predicates on tables outside that RSPN
/// are ignored (approximation noted in the paper). Thin wrapper over
/// [`AvgTemplate`] with no deferred group predicates.
pub(crate) fn register_avg(
    plan: &mut ProbePlan,
    ens: &Ensemble,
    tables: &[TableId],
    preds: &[Predicate],
    target: ColumnRef,
) -> Result<DeferredAvg, DeepDbError> {
    AvgTemplate::build(ens, tables, preds, preds, target)?.register(plan, ens, &[])
}

/// A deferred (aggregate, count) pair for one scalar (or one GROUP BY group)
/// subquery — what `aqp` fuses across all groups of a query. Every arm,
/// Case-3 combinations included, resolves purely from the plan's results.
pub(crate) struct DeferredScalar {
    pub(crate) count: DeferredCountExpr,
    agg: DeferredAggKind,
}

pub(crate) enum DeferredAggKind {
    /// Aggregate is the COUNT itself.
    Count,
    Avg(DeferredAvg),
    Sum {
        count_nn: DeferredCountExpr,
        avg: DeferredAvg,
    },
}

/// Register all probes of one scalar aggregate query (COUNT plus the
/// aggregate's own probes) on `plan`.
pub(crate) fn register_scalar(
    plan: &mut ProbePlan,
    ens: &Ensemble,
    db: &Database,
    query: &Query,
) -> Result<DeferredScalar, DeepDbError> {
    ScalarTemplate::prepare(ens, db, query, &[])?.register_group(plan, ens, &[])
}

// ---------------------------------------------------------------------------
// Scalar templates: GROUP BY enumeration registers the same probe bundle
// once per group, with only the group-value predicates changing. A
// `ScalarTemplate` performs the member selection and translates the shared
// (non-group) predicates into base `SpnQuery`s ONCE; each group then clones
// the bases and appends just its own per-value predicates — O(groups ×
// group columns) instead of O(groups × all predicates) translation work.
// ---------------------------------------------------------------------------

/// Pre-translated probe bases for a family of scalar queries that differ
/// only in appended group-value predicates. Built by
/// [`ScalarTemplate::prepare`]; consumed once per group via
/// [`ScalarTemplate::register_group`]. The scalar path is the degenerate
/// no-group-columns case, so both paths share one translation. Counts that
/// need Case-3 combination hold a prepared [`CombinePlan`], so even
/// multi-RSPN GROUP BY registers every group on the one shared plan.
pub(crate) struct ScalarTemplate {
    count: CountSource,
    agg: AggTemplate,
}

/// Base queries of one deferred Theorem-1 count on a fixed member.
struct CountTemplate {
    idx: usize,
    j: f64,
    n: u64,
    point: SpnQuery,
    prob: Option<SpnQuery>,
    sq: Option<SpnQuery>,
}

/// Base queries of one deferred AVG on a fixed member.
struct AvgTemplate {
    idx: usize,
    n: u64,
    num: SpnQuery,
    den: SpnQuery,
    sq: SpnQuery,
}

enum AggTemplate {
    Count,
    Avg(AvgTemplate),
    Sum {
        count_nn: CountSource,
        avg: AvgTemplate,
    },
}

/// Translate the base queries of one Theorem-1 fraction bundle against a
/// member: the point probe, plus — when tuple-factor normalization is
/// active — the probability factor (same query, moment functions replaced
/// by `One`) and the squared-moment probe. The **single source** of the
/// point/prob/sq recipe: [`CountTemplate::build`] (Cases 1/2) and the
/// combine planner's per-step bundles (Case 3) both delegate here, which is
/// what keeps the planned path bitwise-equal to the eager oracle.
pub(crate) fn fraction_bundle_queries(
    rspn: &crate::rspn::Rspn,
    set: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Result<(SpnQuery, Option<SpnQuery>, Option<SpnQuery>), DeepDbError> {
    let (point, factors) = count_fraction_query(rspn, set, preds, false)?;
    let (prob, sq) = if factors.is_empty() {
        (None, None)
    } else {
        let mut prob_q = point.clone();
        for &f in &factors {
            prob_q.set_func(f, LeafFunc::One);
        }
        let (sq_q, _) = count_fraction_query(rspn, set, preds, true)?;
        (Some(prob_q), Some(sq_q))
    };
    Ok((point, prob, sq))
}

impl CountTemplate {
    /// Translate the shared predicates of one count bundle against member
    /// `idx` ([`register_fraction`] delegates here,
    /// [`fraction_bundle_queries`] holds the probe recipe).
    fn build(
        ens: &Ensemble,
        idx: usize,
        qtables: &BTreeSet<TableId>,
        preds: &[Predicate],
    ) -> Result<Self, DeepDbError> {
        let rspn = &ens.rspns()[idx];
        let (point, prob, sq) = fraction_bundle_queries(rspn, qtables, preds)?;
        Ok(CountTemplate {
            idx,
            j: rspn.full_join_count() as f64,
            n: rspn.n_training(),
            point,
            prob,
            sq,
        })
    }

    fn register(
        &self,
        plan: &mut ProbePlan,
        ens: &Ensemble,
        group_preds: &[Predicate],
    ) -> Result<DeferredCount, DeepDbError> {
        let rspn = &ens.rspns()[self.idx];
        let extend = |base: &SpnQuery| -> Result<SpnQuery, DeepDbError> {
            let mut q = base.clone();
            for p in group_preds {
                rspn.add_predicate(&mut q, p)?;
            }
            Ok(q)
        };
        let point = plan.register(self.idx, extend(&self.point)?);
        let prob = match &self.prob {
            Some(b) => Some(plan.register(self.idx, extend(b)?)),
            None => None,
        };
        let sq = match &self.sq {
            Some(b) => Some(plan.register(self.idx, extend(b)?)),
            None => None,
        };
        Ok(DeferredCount {
            j: self.j,
            fraction: DeferredFraction {
                n: self.n,
                point,
                prob,
                sq,
            },
        })
    }
}

impl AvgTemplate {
    /// Member selection + shared-predicate translation of one AVG bundle
    /// (mirrors the former eager `register_avg` body). `selector_preds`
    /// drive the member choice (they include representative group
    /// predicates — scoring depends only on predicate columns, never on the
    /// group value); the base queries carry only the translated shared
    /// predicates.
    fn build(
        ens: &Ensemble,
        tables: &[TableId],
        preds: &[Predicate],
        selector_preds: &[Predicate],
        target: ColumnRef,
    ) -> Result<Self, DeepDbError> {
        let idx = best_rspn_with(ens, selector_preds, |r| {
            r.tables().contains(&target.table)
                && r.data_column(target.table, target.column).is_some()
        })
        .ok_or_else(|| {
            DeepDbError::NotAnswerable(format!(
                "no RSPN models AVG column ({}, {})",
                target.table, target.column
            ))
        })?;

        let rspn = &ens.rspns()[idx];
        let target_col = rspn
            .data_column(target.table, target.column)
            .expect("checked above");
        let present: BTreeSet<TableId> = tables
            .iter()
            .copied()
            .filter(|t| rspn.tables().contains(t))
            .collect();
        let usable: Vec<Predicate> = preds
            .iter()
            .filter(|p| rspn.tables().contains(&p.table))
            .cloned()
            .collect();

        let (mut num, _) = count_fraction_query(rspn, &present, &usable, false)?;
        num.set_func(target_col, LeafFunc::X);
        let (mut den, _) = count_fraction_query(rspn, &present, &usable, false)?;
        den.add_pred(target_col, LeafPred::IsNotNull);
        let (mut sq, _) = count_fraction_query(rspn, &present, &usable, true)?;
        sq.set_func(target_col, LeafFunc::X2);

        Ok(AvgTemplate {
            idx,
            n: rspn.n_training(),
            num,
            den,
            sq,
        })
    }

    fn register(
        &self,
        plan: &mut ProbePlan,
        ens: &Ensemble,
        group_preds: &[Predicate],
    ) -> Result<DeferredAvg, DeepDbError> {
        let rspn = &ens.rspns()[self.idx];
        let extend = |base: &SpnQuery| -> Result<SpnQuery, DeepDbError> {
            let mut q = base.clone();
            // Same filter the shared predicates went through: predicates on
            // tables outside this member are ignored (documented
            // approximation of the paper's AVG translation).
            for p in group_preds {
                if rspn.tables().contains(&p.table) {
                    rspn.add_predicate(&mut q, p)?;
                }
            }
            Ok(q)
        };
        Ok(DeferredAvg {
            n: self.n,
            num: plan.register(self.idx, extend(&self.num)?),
            den: plan.register(self.idx, extend(&self.den)?),
            sq: plan.register(self.idx, extend(&self.sq)?),
        })
    }
}

impl ScalarTemplate {
    /// Select members and translate the shared predicates of `query` once.
    /// `group_cols` are the GROUP BY columns whose per-value predicates will
    /// be appended group by group; member selection sees representative
    /// equality predicates on them (scores depend only on the columns) —
    /// which is also what lets one [`CombinePlan`] serve every group.
    pub(crate) fn prepare(
        ens: &Ensemble,
        db: &Database,
        query: &Query,
        group_cols: &[ColumnRef],
    ) -> Result<Self, DeepDbError> {
        let qtables: BTreeSet<TableId> = query.tables.iter().copied().collect();
        let rep: Vec<Predicate> = group_cols
            .iter()
            .map(|c| value_predicate(c.table, c.column, deepdb_storage::Value::Int(0)))
            .collect();
        let selector: Vec<Predicate> = query.predicates.iter().chain(rep.iter()).cloned().collect();

        let count = CountSource::prepare(ens, db, &qtables, &query.predicates, &selector)?;
        let agg = match query.aggregate {
            Aggregate::CountStar => AggTemplate::Count,
            Aggregate::Avg(target) => AggTemplate::Avg(AvgTemplate::build(
                ens,
                &query.tables,
                &query.predicates,
                &selector,
                target,
            )?),
            Aggregate::Sum(target) => {
                let nn = Predicate::new(
                    target.table,
                    target.column,
                    deepdb_storage::PredOp::IsNotNull,
                );
                let mut nn_base = query.predicates.clone();
                nn_base.push(nn.clone());
                let mut nn_selector = selector.clone();
                nn_selector.push(nn);
                AggTemplate::Sum {
                    count_nn: CountSource::prepare(ens, db, &qtables, &nn_base, &nn_selector)?,
                    avg: AvgTemplate::build(
                        ens,
                        &query.tables,
                        &query.predicates,
                        &selector,
                        target,
                    )?,
                }
            }
        };
        Ok(ScalarTemplate { count, agg })
    }

    /// Register one group's probe bundle: clone the translated bases and
    /// append only this group's value predicates.
    pub(crate) fn register_group(
        &self,
        plan: &mut ProbePlan,
        ens: &Ensemble,
        group_preds: &[Predicate],
    ) -> Result<DeferredScalar, DeepDbError> {
        let count = self.count.register(plan, ens, group_preds)?;
        let agg = match &self.agg {
            AggTemplate::Count => DeferredAggKind::Count,
            AggTemplate::Avg(t) => DeferredAggKind::Avg(t.register(plan, ens, group_preds)?),
            AggTemplate::Sum { count_nn, avg } => DeferredAggKind::Sum {
                count_nn: count_nn.register(plan, ens, group_preds)?,
                avg: avg.register(plan, ens, group_preds)?,
            },
        };
        Ok(DeferredScalar { count, agg })
    }
}

/// Resolve a [`DeferredScalar`] into `(aggregate, count)` estimates. Every
/// arm reads the caller's probe results — there is no eager fallback path
/// left, so resolution never sweeps an arena.
pub(crate) fn resolve_scalar(
    deferred: &DeferredScalar,
    r: &ProbeResults,
) -> Result<(Estimate, Estimate), DeepDbError> {
    let count = deferred.count.resolve(r)?;
    let agg = match &deferred.agg {
        DeferredAggKind::Count => count,
        DeferredAggKind::Avg(avg) => avg.resolve(r),
        DeferredAggKind::Sum { count_nn, avg } => count_nn.resolve(r)?.product(avg.resolve(r)),
    };
    Ok((agg, count))
}

/// Best RSPN satisfying a shape filter, by strategy score. Deterministic:
/// only a strictly better score displaces the incumbent, so the lowest
/// member index wins ties (the same rule as compiled MPE tie-breaking) and
/// plan construction is reproducible across runs.
pub(crate) fn best_rspn_with(
    ens: &Ensemble,
    preds: &[Predicate],
    accept: impl Fn(&crate::rspn::Rspn) -> bool,
) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for (i, rspn) in ens.rspns().iter().enumerate() {
        if !accept(rspn) {
            continue;
        }
        let handled: Vec<Predicate> = preds
            .iter()
            .filter(|p| rspn.tables().contains(&p.table))
            .cloned()
            .collect();
        let score = rspn.strategy_score(&handled);
        if best.is_none_or(|(s, _)| score > s) {
            best = Some((score, i));
        }
    }
    best.map(|(_, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::{EnsembleBuilder, EnsembleParams, EnsembleStrategy};
    use deepdb_storage::fixtures::{correlated_customer_order, paper_customer_order};
    use deepdb_storage::{execute, CmpOp, PredOp, Value};

    fn params(sample: usize) -> EnsembleParams {
        EnsembleParams {
            sample_size: sample,
            correlation_sample: 1_500,
            ..EnsembleParams::default()
        }
    }

    /// Relative check helper: estimate within `tol`× of truth.
    fn assert_close(est: f64, truth: f64, tol: f64, label: &str) {
        let q = if est > truth {
            est / truth.max(1e-9)
        } else {
            truth / est.max(1e-9)
        };
        assert!(
            q <= tol,
            "{label}: estimate {est} vs truth {truth} (q-error {q:.3})"
        );
    }

    #[test]
    fn paper_q1_and_q2_via_joint_rspn() {
        let db = paper_customer_order();
        let mut p = params(40_000);
        p.rdc_threshold = 0.0; // force the joint RSPN
        let ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();

        // Q1: European customers = 2 (answered via Case 2).
        let q1 = Query::count(vec![c]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let est = estimate_count(&ens, &db, &q1).unwrap();
        assert_close(est.value, 2.0, 1.15, "Q1");

        // Q2: European online orders = 1 (Case 1).
        let q2 = Query::count(vec![c, o])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let est = estimate_count(&ens, &db, &q2).unwrap();
        assert_close(est.value, 1.0, 1.6, "Q2");
    }

    #[test]
    fn paper_q2_via_single_table_rspns_case_3() {
        let db = paper_customer_order();
        let mut p = params(40_000);
        p.strategy = EnsembleStrategy::SingleTables;
        let ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        // Paper §4.1 Case 3: |C|·E(1_EU·F_{C←O})·E(1_ONLINE) = 3·(2/3)·(1/2) = 1.
        let q2 = Query::count(vec![c, o])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let est = estimate_count(&ens, &db, &q2).unwrap();
        assert_close(est.value, 1.0, 1.3, "Q2 case 3");

        // Join count without predicates = 4 orders.
        let q = Query::count(vec![c, o]);
        let est = estimate_count(&ens, &db, &q).unwrap();
        assert_close(est.value, 4.0, 1.2, "join count case 3");
    }

    #[test]
    fn paper_q3_avg_with_factor_normalization() {
        let db = paper_customer_order();
        let mut p = params(40_000);
        p.rdc_threshold = 0.0;
        let ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        // AVG(c_age | EU) over the *customer* table must be 35, not the
        // join-weighted 20·2+50 / 3 — the tuple-factor normalization of §4.2.
        let q3 = Query::count(vec![c])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .aggregate(Aggregate::Avg(ColumnRef {
                table: c,
                column: 1,
            }));
        let est = estimate_avg(&ens, &db, &q3).unwrap();
        assert!((est.value - 35.0).abs() < 2.5, "AVG = {}", est.value);
    }

    #[test]
    fn statistical_accuracy_against_executor() {
        let db = correlated_customer_order(2500, 11);
        let ens = EnsembleBuilder::new(&db)
            .params(params(30_000))
            .build()
            .unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();

        let queries = [
            Query::count(vec![c]).filter(c, 1, PredOp::Cmp(CmpOp::Ge, Value::Int(50))),
            Query::count(vec![c, o]).filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0))),
            Query::count(vec![c, o])
                .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
                .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1))),
            Query::count(vec![c, o])
                .filter(c, 1, PredOp::Between(Value::Int(30), Value::Int(60)))
                .filter(o, 3, PredOp::Cmp(CmpOp::Gt, Value::Float(250.0))),
        ];
        for (i, q) in queries.iter().enumerate() {
            let truth = execute(&db, q).unwrap().scalar().count as f64;
            let est = estimate_cardinality(&ens, &db, q).unwrap();
            assert_close(est, truth.max(1.0), 1.35, &format!("workload query {i}"));
        }
    }

    #[test]
    fn sum_estimate_matches_executor() {
        let db = correlated_customer_order(2000, 13);
        let ens = EnsembleBuilder::new(&db)
            .params(params(30_000))
            .build()
            .unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)))
            .aggregate(Aggregate::Sum(ColumnRef {
                table: o,
                column: 3,
            }));
        let truth = execute(&db, &q).unwrap().scalar().sum;
        let est = estimate_sum(&ens, &db, &q).unwrap();
        let rel = (est.value - truth).abs() / truth.abs().max(1.0);
        assert!(rel < 0.35, "SUM rel error {rel}: {} vs {truth}", est.value);
    }

    #[test]
    fn count_estimate_carries_confidence_interval() {
        let db = correlated_customer_order(2000, 17);
        let ens = EnsembleBuilder::new(&db)
            .params(params(20_000))
            .build()
            .unwrap();
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).filter(c, 1, PredOp::Cmp(CmpOp::Lt, Value::Int(40)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        let est = estimate_count(&ens, &db, &q).unwrap();
        let (lo, hi) = est.confidence_interval(0.95);
        assert!(lo <= est.value && est.value <= hi);
        assert!(
            lo <= truth && truth <= hi * 1.1,
            "CI [{lo}, {hi}] should bracket {truth}"
        );
    }

    #[test]
    fn disjunction_via_inclusion_exclusion() {
        let db = correlated_customer_order(2500, 19);
        let ens = EnsembleBuilder::new(&db)
            .params(params(25_000))
            .build()
            .unwrap();
        let c = db.table_id("customer").unwrap();
        // region = EUROPE ∨ age < 30 (overlapping disjuncts).
        let base = Query::count(vec![c]);
        let d1 = vec![Predicate::new(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))];
        let d2 = vec![Predicate::new(c, 1, PredOp::Cmp(CmpOp::Lt, Value::Int(30)))];
        let est =
            crate::compile::estimate_count_disjunction(&ens, &db, &base, &[d1.clone(), d2.clone()])
                .unwrap();
        // Exact truth via inclusion-exclusion over exact conjunctive counts.
        let count = |preds: Vec<Predicate>| {
            let mut q = Query::count(vec![c]);
            q.predicates = preds;
            execute(&db, &q).unwrap().scalar().count as f64
        };
        let truth =
            count(d1.clone()) + count(d2.clone()) - count(d1.iter().chain(&d2).cloned().collect());
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.1, "disjunction estimate {} vs {truth}", est.value);
        // Union is at least as large as each disjunct alone.
        let single = estimate_count(&ens, &db, &{
            let mut q = Query::count(vec![c]);
            q.predicates = d1;
            q
        })
        .unwrap();
        assert!(est.value >= single.value * 0.95);
    }

    #[test]
    fn empty_disjunct_list_falls_back_to_conjunction() {
        let db = paper_customer_order();
        let mut p = params(5_000);
        p.rdc_threshold = 0.0;
        let ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]);
        let a = estimate_count(&ens, &db, &q).unwrap();
        let b = crate::compile::estimate_count_disjunction(&ens, &db, &q, &[]).unwrap();
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn impossible_predicates_estimate_near_zero() {
        let db = paper_customer_order();
        let mut p = params(5_000);
        p.rdc_threshold = 0.0;
        let ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).filter(c, 1, PredOp::Cmp(CmpOp::Gt, Value::Int(1000)));
        let est = estimate_count(&ens, &db, &q).unwrap();
        assert!(est.value < 0.1, "impossible predicate gave {}", est.value);
    }

    /// Member selection is deterministically tie-broken: with no predicates
    /// every candidate scores 0.0, and the lowest index must win — the same
    /// rule as compiled-MPE tie-breaking, so plan construction is
    /// reproducible across runs.
    #[test]
    fn best_rspn_with_breaks_ties_to_lowest_index() {
        let db = paper_customer_order();
        let mut p = params(4_000);
        p.strategy = EnsembleStrategy::SingleTables;
        let ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        assert!(ens.rspns().len() >= 2);
        // All members accepted, all scores tied at 0.0 → member 0.
        assert_eq!(best_rspn_with(&ens, &[], |_| true), Some(0));
        // A predicate only the orders member can handle breaks the tie.
        let o = db.table_id("orders").unwrap();
        let o_pred = vec![Predicate::new(
            o,
            2,
            deepdb_storage::PredOp::Cmp(CmpOp::Eq, Value::Int(0)),
        )];
        let orders_member = ens.rspns().iter().position(|r| r.tables() == [o]).unwrap();
        assert_eq!(best_rspn_with(&ens, &o_pred, |_| true), Some(orders_member));
    }

    /// Covering-member selection ties (same score, same size) also break to
    /// the lowest index.
    #[test]
    fn best_covering_rspn_is_deterministic() {
        let db = paper_customer_order();
        let mut p = params(4_000);
        p.strategy = EnsembleStrategy::SingleTables;
        let ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        let qtables = BTreeSet::from([c]);
        let picked = best_covering_rspn(&ens, &qtables, &[]);
        assert!(picked.is_some());
        for _ in 0..3 {
            assert_eq!(best_covering_rspn(&ens, &qtables, &[]), picked);
        }
    }
}
