//! Probabilistic query compilation (paper §4).
//!
//! Translates COUNT/AVG/SUM queries over FK joins into products of
//! expectations and probabilities against the RSPN ensemble:
//!
//! * **Case 1/2** — a single RSPN covers (a superset of) the query's tables:
//!   `|J| · E[1/F'(Q,J) · 1_C · ∏_{T∈Q} N_T]` (Theorem 1).
//! * **Case 3** — the query spans several RSPNs: a covered table set is
//!   extended edge by edge, multiplying either conditional count-fraction
//!   ratios (when one RSPN spans the overlap, Theorem 2) or explicit
//!   fan-out × selectivity terms built from raw tuple-factor columns (the
//!   paper's worked alternatives).
//!
//! RSPN choice is greedy by the sum of pairwise RDC values among the filter
//! columns an RSPN can handle ("Execution Strategy", §4.1).

use std::collections::BTreeSet;

use deepdb_spn::{LeafFunc, LeafPred};
use deepdb_storage::{Aggregate, ColumnRef, Database, Predicate, Query, TableId};

use crate::ensemble::Ensemble;
use crate::estimate::Estimate;
use crate::rspn::count_fraction_query;
use crate::DeepDbError;

/// Estimate `COUNT(*)` of an inner-join query (cardinality estimation /
/// COUNT AQP). Returns the point estimate with propagated variance.
pub fn estimate_count(
    ens: &mut Ensemble,
    db: &Database,
    query: &Query,
) -> Result<Estimate, DeepDbError> {
    query.validate(db)?;
    let qtables: BTreeSet<TableId> = query.tables.iter().copied().collect();

    // Case 1/2: one RSPN covering every query table.
    if let Some(idx) = best_covering_rspn(ens, &qtables, &query.predicates) {
        return single_rspn_count(ens, idx, &qtables, &query.predicates);
    }
    // Case 3: combine RSPNs.
    multi_rspn_count(ens, db, &qtables, &query.predicates)
}

/// Cardinality estimate clamped to ≥ 1 tuple (q-error convention).
pub fn estimate_cardinality(
    ens: &mut Ensemble,
    db: &Database,
    query: &Query,
) -> Result<f64, DeepDbError> {
    Ok(estimate_count(ens, db, query)?.value.max(1.0))
}

/// Batched point-count estimates for `query` extended with `target = v` for
/// each `v` in `values` — the workhorse behind GROUP BY domain pruning,
/// where one query fans out into one probe per candidate group value.
///
/// When a single RSPN covers the query (paper Cases 1/2) all probes are
/// translated up front and evaluated in **one** pass over the compiled arena
/// (`|J| · E[1/F' · 1_{C ∧ target=v} · ∏N_T]` per value). Otherwise this
/// falls back to one [`estimate_count`] per value (Case 3 needs per-value
/// RSPN combination).
pub fn estimate_count_values(
    ens: &mut Ensemble,
    db: &Database,
    query: &Query,
    target: ColumnRef,
    values: &[deepdb_storage::Value],
) -> Result<Vec<f64>, DeepDbError> {
    query.validate(db)?;
    let qtables: BTreeSet<TableId> = query.tables.iter().copied().collect();
    let eq_pred = |v: &deepdb_storage::Value| {
        Predicate::new(
            target.table,
            target.column,
            deepdb_storage::PredOp::Cmp(deepdb_storage::CmpOp::Eq, *v),
        )
    };

    // Representative predicate set for RSPN selection (the choice is
    // identical for every value: only the constant differs).
    let mut selector_preds = query.predicates.clone();
    if let Some(v) = values.first() {
        selector_preds.push(eq_pred(v));
    }
    let single = best_covering_rspn(ens, &qtables, &selector_preds).and_then(|idx| {
        // The whole batch must translate against this one RSPN.
        let rspn = &ens.rspns()[idx];
        let mut probes = Vec::with_capacity(values.len());
        for v in values {
            let mut preds = query.predicates.clone();
            preds.push(eq_pred(v));
            match count_fraction_query(rspn, &qtables, &preds, false) {
                Ok((q, _)) => probes.push(q),
                Err(_) => return None,
            }
        }
        Some((idx, probes))
    });

    if let Some((idx, probes)) = single {
        let j = ens.rspns()[idx].full_join_count() as f64;
        let fractions = ens.rspns_mut()[idx].expect_batch(&probes);
        return Ok(fractions.into_iter().map(|f| (f * j).max(0.0)).collect());
    }

    // Case 3 fallback: one full estimate per value.
    let mut out = Vec::with_capacity(values.len());
    for v in values {
        let mut sub = query.clone();
        sub.predicates.push(eq_pred(v));
        out.push(estimate_count(ens, db, &sub)?.value.max(0.0));
    }
    Ok(out)
}

/// Maximum number of disjuncts accepted by [`estimate_count_disjunction`]
/// (inclusion–exclusion enumerates 2^k − 1 conjunctive subqueries).
pub const MAX_DISJUNCTS: usize = 10;

/// Estimate `COUNT(*)` of a query whose WHERE clause is
/// `C ∧ (D₁ ∨ D₂ ∨ … ∨ Dₖ)` — `query.predicates` is the conjunctive part
/// `C`, each `disjuncts[i]` is one conjunction `Dᵢ` — via the
/// inclusion–exclusion principle the paper points to in §4.1:
///
/// `COUNT(∨ᵢ Dᵢ) = Σ_{∅≠S} (−1)^{|S|+1} · COUNT(∧_{i∈S} Dᵢ)`.
///
/// Variances of the 2^k − 1 conjunctive terms are summed (the terms reuse
/// the same models, so this over-states independence; documented
/// approximation). The estimate is clamped to ≥ 0.
pub fn estimate_count_disjunction(
    ens: &mut Ensemble,
    db: &Database,
    query: &Query,
    disjuncts: &[Vec<Predicate>],
) -> Result<Estimate, DeepDbError> {
    if disjuncts.is_empty() {
        return estimate_count(ens, db, query);
    }
    if disjuncts.len() > MAX_DISJUNCTS {
        return Err(DeepDbError::Unsupported(format!(
            "inclusion-exclusion supports at most {MAX_DISJUNCTS} disjuncts, got {}",
            disjuncts.len()
        )));
    }
    let k = disjuncts.len();
    let mut total = Estimate::exact(0.0);
    for mask in 1u32..(1 << k) {
        let mut sub = query.clone();
        for (i, d) in disjuncts.iter().enumerate() {
            if mask & (1 << i) != 0 {
                sub.predicates.extend(d.iter().cloned());
            }
        }
        let term = estimate_count(ens, db, &sub)?;
        let sign = if mask.count_ones() % 2 == 1 {
            1.0
        } else {
            -1.0
        };
        total = total.add(term.scale(sign));
    }
    total.value = total.value.max(0.0);
    Ok(total)
}

/// Estimate `AVG(col)` with tuple-factor normalization (paper §4.2).
pub fn estimate_avg(
    ens: &mut Ensemble,
    db: &Database,
    query: &Query,
) -> Result<Estimate, DeepDbError> {
    query.validate(db)?;
    let Aggregate::Avg(target) = query.aggregate else {
        return Err(DeepDbError::Unsupported(
            "estimate_avg requires an AVG aggregate".into(),
        ));
    };
    avg_over_ensemble(ens, &query.tables, &query.predicates, target)
}

/// Estimate `SUM(col)` = COUNT × AVG (paper §4.2).
pub fn estimate_sum(
    ens: &mut Ensemble,
    db: &Database,
    query: &Query,
) -> Result<Estimate, DeepDbError> {
    query.validate(db)?;
    let Aggregate::Sum(target) = query.aggregate else {
        return Err(DeepDbError::Unsupported(
            "estimate_sum requires a SUM aggregate".into(),
        ));
    };
    let mut count_q = query.clone();
    count_q.aggregate = Aggregate::CountStar;
    // COUNT must only include rows where the summand is non-NULL.
    count_q.predicates.push(Predicate::new(
        target.table,
        target.column,
        deepdb_storage::PredOp::IsNotNull,
    ));
    let count = estimate_count(ens, db, &count_q)?;
    let avg = avg_over_ensemble(ens, &query.tables, &query.predicates, target)?;
    Ok(count.product(avg))
}

/// Pick the best RSPN whose tables cover all of `qtables` (greedy RDC
/// strategy; smaller RSPNs win ties to avoid needless normalization).
fn best_covering_rspn(
    ens: &Ensemble,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Option<usize> {
    let mut best: Option<(f64, isize, usize)> = None;
    for (i, rspn) in ens.rspns().iter().enumerate() {
        if !qtables.iter().all(|t| rspn.tables().contains(t)) {
            continue;
        }
        let score = rspn.strategy_score(preds);
        let size_penalty = -(rspn.tables().len() as isize);
        let key = (score, size_penalty, i);
        if best.is_none_or(|(s, p, _)| (score, size_penalty) > (s, p)) {
            best = Some(key);
        }
    }
    best.map(|(_, _, i)| i)
}

/// Theorem-1 estimate on one RSPN: `|J| · E[1/F' · 1_C · ∏N_T]`, with the
/// variance split into a binomial predicate part and a Koenig–Huygens
/// conditional-expectation part (paper §5.1).
fn single_rspn_count(
    ens: &mut Ensemble,
    idx: usize,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Result<Estimate, DeepDbError> {
    let fraction = count_fraction(ens, idx, qtables, preds)?;
    let j = ens.rspns()[idx].full_join_count() as f64;
    Ok(fraction.scale(j))
}

/// `E[1/F'(Q,J) · 1_C · ∏N_T]` with variance, as an [`Estimate`].
///
/// The point estimate, its probability factor, and its second-moment probe
/// are three expectation queries over the same RSPN — evaluated as **one**
/// batched pass over the compiled arena instead of three recursive walks.
fn count_fraction(
    ens: &mut Ensemble,
    idx: usize,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Result<Estimate, DeepDbError> {
    let rspn = &ens.rspns()[idx];
    let (q, factors) = count_fraction_query(rspn, qtables, preds, false)?;
    let rspn = &mut ens.rspns_mut()[idx];
    let n = rspn.n_training();

    if factors.is_empty() {
        // No tuple-factor normalization: the fraction *is* the probability.
        let p = rspn.expect(&q).clamp(0.0, 1.0);
        if p <= 0.0 {
            return Ok(Estimate::exact(0.0));
        }
        return Ok(Estimate::probability(p, n));
    }

    // P(C ∧ ∏N_T): same query without the moment functions.
    let mut prob_q = q.clone();
    for &f in &factors {
        prob_q.set_func(f, LeafFunc::One);
    }
    let rspn_ref = &ens.rspns()[idx];
    let (q_sq, _) = count_fraction_query(rspn_ref, qtables, preds, true)?;
    let rspn = &mut ens.rspns_mut()[idx];
    let probes = rspn.expect_batch(&[prob_q, q, q_sq]);
    let p = probes[0].clamp(0.0, 1.0);
    if p <= 0.0 {
        return Ok(Estimate::exact(0.0));
    }
    let e_g1c = probes[1]; // E[g·1_C]
    let e_g2c = probes[2]; // E[g²·1_C]
    let n_eff = (n as f64 * p).max(1.0);
    let cond = Estimate::conditional_expectation(e_g1c / p, e_g2c / p, n_eff);
    Ok(cond.product(Estimate::probability(p, n)))
}

/// Case 3: extend a covered table set across FK edges, multiplying
/// conditional ratios (Theorem 2).
fn multi_rspn_count(
    ens: &mut Ensemble,
    db: &Database,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Result<Estimate, DeepDbError> {
    // Start with the RSPN overlapping the query that scores best.
    let mut start: Option<(f64, usize)> = None;
    for (i, rspn) in ens.rspns().iter().enumerate() {
        let overlap = rspn.tables().iter().filter(|t| qtables.contains(t)).count();
        if overlap == 0 {
            continue;
        }
        let handled: Vec<Predicate> = preds
            .iter()
            .filter(|p| rspn.tables().contains(&p.table))
            .cloned()
            .collect();
        let score = rspn.strategy_score(&handled) + overlap as f64;
        if start.is_none_or(|(s, _)| score > s) {
            start = Some((score, i));
        }
    }
    let (_, start_idx) = start
        .ok_or_else(|| DeepDbError::NotAnswerable("no RSPN overlaps the query tables".into()))?;

    let mut covered: BTreeSet<TableId> = ens.rspns()[start_idx]
        .tables()
        .iter()
        .filter(|t| qtables.contains(t))
        .copied()
        .collect();
    let covered_preds: Vec<Predicate> = preds
        .iter()
        .filter(|p| covered.contains(&p.table))
        .cloned()
        .collect();
    let mut est = single_rspn_count(ens, start_idx, &covered.clone(), &covered_preds)?;

    let mut guard = 0;
    while covered != *qtables {
        guard += 1;
        if guard > qtables.len() + 2 {
            return Err(DeepDbError::NotAnswerable(format!(
                "could not extend coverage beyond {covered:?} for query {qtables:?}"
            )));
        }
        // Find an FK edge from a covered table to an uncovered query table.
        let Some((u, v, fk)) = qtables.iter().find_map(|&v| {
            if covered.contains(&v) {
                return None;
            }
            covered
                .iter()
                .find_map(|&u| db.edge_between(u, v).map(|fk| (u, v, *fk)))
        }) else {
            return Err(DeepDbError::NotAnswerable(format!(
                "query tables {qtables:?} not FK-connected through {covered:?}"
            )));
        };

        // Prefer an RSPN spanning both sides of the edge (Theorem 2 with a
        // non-empty overlap).
        let spanning = best_rspn_with(ens, preds, |r| {
            r.tables().contains(&u) && r.tables().contains(&v)
        });
        if let Some(b) = spanning {
            let b_tables: BTreeSet<TableId> = ens.rspns()[b].tables().iter().copied().collect();
            let overlap: BTreeSet<TableId> = covered.intersection(&b_tables).copied().collect();
            let mut extended = overlap.clone();
            // Absorb every uncovered query table the RSPN can reach.
            for t in b_tables.iter() {
                if qtables.contains(t) {
                    extended.insert(*t);
                }
            }
            let num_preds: Vec<Predicate> = preds
                .iter()
                .filter(|p| extended.contains(&p.table))
                .cloned()
                .collect();
            let den_preds: Vec<Predicate> = preds
                .iter()
                .filter(|p| overlap.contains(&p.table))
                .cloned()
                .collect();
            let num = count_fraction(ens, b, &extended, &num_preds)?;
            let den = count_fraction(ens, b, &overlap, &den_preds)?;
            est = est.product(num.divide(den));
            covered.extend(extended);
            continue;
        }

        // Disjoint RSPNs: fan-out from the covered side times conditional
        // selectivity on the new side (the paper's Q2 factorization).
        if fk.parent_table == u {
            // Downward: E(F(Q_cov)·F_{u←v}) / E(F(Q_cov)) from an RSPN with
            // the raw factor column, then P(preds_v) from an RSPN over v.
            let a = best_rspn_with(ens, preds, |r| r.tables().contains(&u) && r.has_factor(&fk))
                .ok_or_else(|| {
                    DeepDbError::NotAnswerable(format!(
                        "no RSPN stores tuple factor for edge {u}->{v}"
                    ))
                })?;
            let cov_a: BTreeSet<TableId> = ens.rspns()[a]
                .tables()
                .iter()
                .filter(|t| covered.contains(t))
                .copied()
                .collect();
            let a_preds: Vec<Predicate> = preds
                .iter()
                .filter(|p| cov_a.contains(&p.table))
                .cloned()
                .collect();
            let fanout = factor_weighted_ratio(ens, a, &cov_a, &a_preds, &fk, None)?;

            let b = best_rspn_with(ens, preds, |r| r.tables().contains(&v))
                .ok_or_else(|| DeepDbError::NotAnswerable(format!("no RSPN models table {v}")))?;
            let v_set = BTreeSet::from([v]);
            let v_preds: Vec<Predicate> = preds.iter().filter(|p| p.table == v).cloned().collect();
            let num = count_fraction(ens, b, &v_set, &v_preds)?;
            let den = count_fraction(ens, b, &v_set, &[])?;
            est = est.product(fanout).product(num.divide(den));
        } else {
            // Upward to the parent v: no row multiplication; weight v's rows
            // by their child counts (the paper's alternative formula):
            // E(1_{preds_v} · F_{v←u}) / E(F_{v←u}).
            let a = best_rspn_with(ens, preds, |r| r.tables().contains(&v) && r.has_factor(&fk))
                .ok_or_else(|| {
                    DeepDbError::NotAnswerable(format!(
                        "no RSPN stores tuple factor for edge {v}<-{u}"
                    ))
                })?;
            let v_set = BTreeSet::from([v]);
            let v_preds: Vec<Predicate> = preds.iter().filter(|p| p.table == v).cloned().collect();
            let ratio = factor_weighted_ratio(ens, a, &v_set, &[], &fk, Some(&v_preds))?;
            est = est.product(ratio);
        }
        covered.insert(v);
    }
    Ok(est)
}

/// Raw tuple-factor ratios for the disjoint-RSPN extensions of Case 3.
///
/// * Fan-out (`extra_num_preds = None`): `E[F(set)·F_fk·1_C] / E[F(set)·1_C]`
///   — the expected number of new-side partners per covered row.
/// * Weighted selectivity (`extra_num_preds = Some(vp)`):
///   `E[F_fk·1_{vp}·F(set)·1_C] / E[F_fk·F(set)·1_C]` — the fraction of
///   child rows whose parent satisfies `vp` (the paper's alternative Q2
///   formula).
fn factor_weighted_ratio(
    ens: &mut Ensemble,
    idx: usize,
    set: &BTreeSet<TableId>,
    preds: &[Predicate],
    fk: &deepdb_storage::ForeignKey,
    extra_num_preds: Option<&[Predicate]>,
) -> Result<Estimate, DeepDbError> {
    let rspn = &ens.rspns()[idx];
    let factor_col = rspn
        .factor_column(fk)
        .ok_or_else(|| DeepDbError::NotAnswerable("missing factor column".into()))?;

    let (mut num_q, _) = count_fraction_query(rspn, set, preds, false)?;
    num_q.set_func(factor_col, LeafFunc::X);
    if let Some(extra) = extra_num_preds {
        for p in extra {
            rspn.add_predicate(&mut num_q, p)?;
        }
    }
    let (mut den_q, _) = count_fraction_query(rspn, set, preds, false)?;
    if extra_num_preds.is_some() {
        // Weighted selectivity: denominator keeps the factor weight.
        den_q.set_func(factor_col, LeafFunc::X);
    }
    // Second moment of the weighted quantity for the variance.
    let (mut sq_q, _) = count_fraction_query(rspn, set, preds, true)?;
    sq_q.set_func(factor_col, LeafFunc::X2);
    if let Some(extra) = extra_num_preds {
        for p in extra {
            rspn.add_predicate(&mut sq_q, p)?;
        }
    }

    let rspn = &mut ens.rspns_mut()[idx];
    let n = rspn.n_training();
    // Numerator, denominator, and second moment in one batched arena pass.
    let probes = rspn.expect_batch(&[num_q, den_q, sq_q]);
    let (num, den, e2_raw) = (probes[0], probes[1], probes[2]);
    if den <= 0.0 {
        return Ok(Estimate::exact(0.0));
    }
    let ratio = num / den;
    let n_eff = (n as f64 * den.min(1.0)).max(1.0);
    if extra_num_preds.is_some() {
        // Weighted fraction in [0,1]: binomial-style variance.
        let p = ratio.clamp(0.0, 1.0);
        Ok(Estimate {
            value: ratio,
            variance: p * (1.0 - p) / n_eff,
        })
    } else {
        // Expected fan-out: Koenig–Huygens on the weighted measure.
        let e2 = e2_raw / den;
        Ok(Estimate::conditional_expectation(
            ratio,
            e2.max(ratio * ratio),
            n_eff,
        ))
    }
}

/// Best RSPN satisfying a shape filter, by strategy score.
fn best_rspn_with(
    ens: &Ensemble,
    preds: &[Predicate],
    accept: impl Fn(&crate::rspn::Rspn) -> bool,
) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for (i, rspn) in ens.rspns().iter().enumerate() {
        if !accept(rspn) {
            continue;
        }
        let handled: Vec<Predicate> = preds
            .iter()
            .filter(|p| rspn.tables().contains(&p.table))
            .cloned()
            .collect();
        let score = rspn.strategy_score(&handled);
        if best.is_none_or(|(s, _)| score > s) {
            best = Some((score, i));
        }
    }
    best.map(|(_, i)| i)
}

/// AVG via normalized conditional expectation (paper §4.2): choose the RSPN
/// containing the aggregate column with the best predicate coverage;
/// predicates on tables outside that RSPN are ignored (approximation noted
/// in the paper).
fn avg_over_ensemble(
    ens: &mut Ensemble,
    tables: &[TableId],
    preds: &[Predicate],
    target: ColumnRef,
) -> Result<Estimate, DeepDbError> {
    let idx = best_rspn_with(ens, preds, |r| {
        r.tables().contains(&target.table) && r.data_column(target.table, target.column).is_some()
    })
    .ok_or_else(|| {
        DeepDbError::NotAnswerable(format!(
            "no RSPN models AVG column ({}, {})",
            target.table, target.column
        ))
    })?;

    let rspn = &ens.rspns()[idx];
    let target_col = rspn
        .data_column(target.table, target.column)
        .expect("checked above");
    let present: BTreeSet<TableId> = tables
        .iter()
        .copied()
        .filter(|t| rspn.tables().contains(t))
        .collect();
    let usable: Vec<Predicate> = preds
        .iter()
        .filter(|p| rspn.tables().contains(&p.table))
        .cloned()
        .collect();

    // Numerator: E[A/F' · 1_C]; denominator: E[1_{A not null}/F' · 1_C].
    let (mut num_q, _) = count_fraction_query(rspn, &present, &usable, false)?;
    num_q.set_func(target_col, LeafFunc::X);
    let (mut den_q, _) = count_fraction_query(rspn, &present, &usable, false)?;
    den_q.add_pred(target_col, LeafPred::IsNotNull);
    // Second moment for the Koenig–Huygens variance: E[(A/F')²·1_C].
    let (mut sq_q, _) = count_fraction_query(rspn, &present, &usable, true)?;
    sq_q.set_func(target_col, LeafFunc::X2);

    let rspn = &mut ens.rspns_mut()[idx];
    let n = rspn.n_training();
    // One batched pass for E[A/F'·1_C], the not-NULL mass, and E[(A)²/F'²·1_C].
    let probes = rspn.expect_batch(&[den_q, num_q, sq_q]);
    let (den, num, e2) = (probes[0], probes[1], probes[2]);
    if den <= 0.0 {
        return Ok(Estimate::exact(0.0));
    }
    let n_eff = (n as f64 * den).max(1.0);
    Ok(Estimate::conditional_expectation(
        num / den,
        e2 / den,
        n_eff,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::{EnsembleBuilder, EnsembleParams, EnsembleStrategy};
    use deepdb_storage::fixtures::{correlated_customer_order, paper_customer_order};
    use deepdb_storage::{execute, CmpOp, PredOp, Value};

    fn params(sample: usize) -> EnsembleParams {
        EnsembleParams {
            sample_size: sample,
            correlation_sample: 1_500,
            ..EnsembleParams::default()
        }
    }

    /// Relative check helper: estimate within `tol`× of truth.
    fn assert_close(est: f64, truth: f64, tol: f64, label: &str) {
        let q = if est > truth {
            est / truth.max(1e-9)
        } else {
            truth / est.max(1e-9)
        };
        assert!(
            q <= tol,
            "{label}: estimate {est} vs truth {truth} (q-error {q:.3})"
        );
    }

    #[test]
    fn paper_q1_and_q2_via_joint_rspn() {
        let db = paper_customer_order();
        let mut p = params(40_000);
        p.rdc_threshold = 0.0; // force the joint RSPN
        let mut ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();

        // Q1: European customers = 2 (answered via Case 2).
        let q1 = Query::count(vec![c]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let est = estimate_count(&mut ens, &db, &q1).unwrap();
        assert_close(est.value, 2.0, 1.15, "Q1");

        // Q2: European online orders = 1 (Case 1).
        let q2 = Query::count(vec![c, o])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let est = estimate_count(&mut ens, &db, &q2).unwrap();
        assert_close(est.value, 1.0, 1.6, "Q2");
    }

    #[test]
    fn paper_q2_via_single_table_rspns_case_3() {
        let db = paper_customer_order();
        let mut p = params(40_000);
        p.strategy = EnsembleStrategy::SingleTables;
        let mut ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        // Paper §4.1 Case 3: |C|·E(1_EU·F_{C←O})·E(1_ONLINE) = 3·(2/3)·(1/2) = 1.
        let q2 = Query::count(vec![c, o])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let est = estimate_count(&mut ens, &db, &q2).unwrap();
        assert_close(est.value, 1.0, 1.3, "Q2 case 3");

        // Join count without predicates = 4 orders.
        let q = Query::count(vec![c, o]);
        let est = estimate_count(&mut ens, &db, &q).unwrap();
        assert_close(est.value, 4.0, 1.2, "join count case 3");
    }

    #[test]
    fn paper_q3_avg_with_factor_normalization() {
        let db = paper_customer_order();
        let mut p = params(40_000);
        p.rdc_threshold = 0.0;
        let mut ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        // AVG(c_age | EU) over the *customer* table must be 35, not the
        // join-weighted 20·2+50 / 3 — the tuple-factor normalization of §4.2.
        let q3 = Query::count(vec![c])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .aggregate(Aggregate::Avg(ColumnRef {
                table: c,
                column: 1,
            }));
        let est = estimate_avg(&mut ens, &db, &q3).unwrap();
        assert!((est.value - 35.0).abs() < 2.5, "AVG = {}", est.value);
    }

    #[test]
    fn statistical_accuracy_against_executor() {
        let db = correlated_customer_order(2500, 11);
        let mut ens = EnsembleBuilder::new(&db)
            .params(params(30_000))
            .build()
            .unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();

        let queries = [
            Query::count(vec![c]).filter(c, 1, PredOp::Cmp(CmpOp::Ge, Value::Int(50))),
            Query::count(vec![c, o]).filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0))),
            Query::count(vec![c, o])
                .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
                .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1))),
            Query::count(vec![c, o])
                .filter(c, 1, PredOp::Between(Value::Int(30), Value::Int(60)))
                .filter(o, 3, PredOp::Cmp(CmpOp::Gt, Value::Float(250.0))),
        ];
        for (i, q) in queries.iter().enumerate() {
            let truth = execute(&db, q).unwrap().scalar().count as f64;
            let est = estimate_cardinality(&mut ens, &db, q).unwrap();
            assert_close(est, truth.max(1.0), 1.35, &format!("workload query {i}"));
        }
    }

    #[test]
    fn sum_estimate_matches_executor() {
        let db = correlated_customer_order(2000, 13);
        let mut ens = EnsembleBuilder::new(&db)
            .params(params(30_000))
            .build()
            .unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)))
            .aggregate(Aggregate::Sum(ColumnRef {
                table: o,
                column: 3,
            }));
        let truth = execute(&db, &q).unwrap().scalar().sum;
        let est = estimate_sum(&mut ens, &db, &q).unwrap();
        let rel = (est.value - truth).abs() / truth.abs().max(1.0);
        assert!(rel < 0.35, "SUM rel error {rel}: {} vs {truth}", est.value);
    }

    #[test]
    fn count_estimate_carries_confidence_interval() {
        let db = correlated_customer_order(2000, 17);
        let mut ens = EnsembleBuilder::new(&db)
            .params(params(20_000))
            .build()
            .unwrap();
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).filter(c, 1, PredOp::Cmp(CmpOp::Lt, Value::Int(40)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        let est = estimate_count(&mut ens, &db, &q).unwrap();
        let (lo, hi) = est.confidence_interval(0.95);
        assert!(lo <= est.value && est.value <= hi);
        assert!(
            lo <= truth && truth <= hi * 1.1,
            "CI [{lo}, {hi}] should bracket {truth}"
        );
    }

    #[test]
    fn disjunction_via_inclusion_exclusion() {
        let db = correlated_customer_order(2500, 19);
        let mut ens = EnsembleBuilder::new(&db)
            .params(params(25_000))
            .build()
            .unwrap();
        let c = db.table_id("customer").unwrap();
        // region = EUROPE ∨ age < 30 (overlapping disjuncts).
        let base = Query::count(vec![c]);
        let d1 = vec![Predicate::new(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))];
        let d2 = vec![Predicate::new(c, 1, PredOp::Cmp(CmpOp::Lt, Value::Int(30)))];
        let est = crate::compile::estimate_count_disjunction(
            &mut ens,
            &db,
            &base,
            &[d1.clone(), d2.clone()],
        )
        .unwrap();
        // Exact truth via inclusion-exclusion over exact conjunctive counts.
        let count = |preds: Vec<Predicate>| {
            let mut q = Query::count(vec![c]);
            q.predicates = preds;
            execute(&db, &q).unwrap().scalar().count as f64
        };
        let truth =
            count(d1.clone()) + count(d2.clone()) - count(d1.iter().chain(&d2).cloned().collect());
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.1, "disjunction estimate {} vs {truth}", est.value);
        // Union is at least as large as each disjunct alone.
        let single = estimate_count(&mut ens, &db, &{
            let mut q = Query::count(vec![c]);
            q.predicates = d1;
            q
        })
        .unwrap();
        assert!(est.value >= single.value * 0.95);
    }

    #[test]
    fn empty_disjunct_list_falls_back_to_conjunction() {
        let db = paper_customer_order();
        let mut p = params(5_000);
        p.rdc_threshold = 0.0;
        let mut ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]);
        let a = estimate_count(&mut ens, &db, &q).unwrap();
        let b = crate::compile::estimate_count_disjunction(&mut ens, &db, &q, &[]).unwrap();
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn impossible_predicates_estimate_near_zero() {
        let db = paper_customer_order();
        let mut p = params(5_000);
        p.rdc_threshold = 0.0;
        let mut ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).filter(c, 1, PredOp::Cmp(CmpOp::Gt, Value::Int(1000)));
        let est = estimate_count(&mut ens, &db, &q).unwrap();
        assert!(est.value < 0.1, "impossible predicate gave {}", est.value);
    }
}
