//! DeepDB core: Relational Sum-Product Networks, ensembles, and
//! probabilistic query compilation (the paper's primary contribution).
//!
//! * [`Rspn`] — an SPN learned over (a sample of) the full outer join of one
//!   or more tables, carrying the relational metadata (join indicators,
//!   tuple-factor columns, functional-dependency dictionaries) needed to
//!   answer relational queries (paper §3.2).
//! * [`Ensemble`] / [`EnsembleBuilder`] — base-ensemble construction from
//!   pairwise RDC table correlations plus budget-constrained ensemble
//!   optimization (paper §3.3, §5.3), direct insert/delete updates
//!   (paper §5.2) that patch each member's compiled arena **in place**
//!   (single-row and batched via `Ensemble::apply_insert_batch` — the
//!   engines are never stale, so interleaved update/query streams pay
//!   O(tree depth) per tuple, not a recompile per query), and the
//!   RDC-greedy execution strategy.
//! * [`compile`] — probabilistic query compilation of COUNT/SUM/AVG
//!   (+ GROUP BY) queries into products of expectations over the ensemble,
//!   covering the paper's Cases 1–3 including Theorems 1 and 2 (§4). All
//!   query entry points take `&Ensemble`; structural recompilation is an
//!   explicit maintenance call ([`Ensemble::recompile_models`]).
//! * [`combine`] — symbolic Case-3 planning: when no single RSPN covers the
//!   query, a `CombinePlan` walks the FK graph once, registers **all**
//!   extension steps' fraction bundles on the caller's probe plan, and
//!   resolves a `Scale`/`Product`/`Divide` expression tree afterwards — the
//!   retired eager per-step loop survives only as the differential-test
//!   oracle [`combine::multi_rspn_count`].
//! * [`ProbePlan`] — deferred probe plans: call sites register probes
//!   (expectations **and** max-product MPE probes) against ensemble members
//!   and resolve typed handles after a single `execute()`, which sweeps each
//!   touched member's compiled arena exactly once — both probe kinds ride
//!   the same sweep — with members/tiles evaluated concurrently on scoped
//!   threads.
//! * [`Estimate`] — point estimates with variances propagated per §5.1,
//!   yielding confidence intervals.
//! * ML tasks (regression via conditional expectation, classification via
//!   compiled max-product MPE) on the same models (§4.3), all on
//!   `&Ensemble` — no query path needs `&mut` — with batched entry points
//!   ([`ml::predict_classification_batch`], [`ml::predict_regression_batch`])
//!   that amortize one arena sweep over a whole batch of predictions. The
//!   recursive evaluator survives only as the differential-test oracle in
//!   `deepdb-spn`.

mod aqp;
pub mod cache;
pub mod combine;
pub mod compile;
mod ensemble;
mod error;
mod estimate;
mod fd;
pub mod joinorder;
pub mod ml;
mod plan;
mod rspn;
pub mod serve;

pub use aqp::{execute_aqp, AqpOutput, AqpResult};
pub use cache::{query_literals, CacheStats, PreparedQuery};
pub use ensemble::{Ensemble, EnsembleBuilder, EnsembleParams, EnsembleStrategy};
pub use error::DeepDbError;
pub use estimate::Estimate;
pub use fd::FunctionalDependency;
pub use joinorder::JoinOrderer;
pub use plan::{MpeHandle, ProbeHandle, ProbePlan, ProbeResults};
pub use rspn::Rspn;
pub use serve::{FaultPlan, FaultSite, ServeConfig, ServeFront, ServeStats};
