//! Symbolic join-combination planning for Case 3 (paper §4.1.2).
//!
//! When no single RSPN covers a query's tables, the count factorizes into a
//! product of per-edge terms: a Theorem-1 count on the start member, then —
//! per FK extension step — either a Theorem-2 conditional ratio (an RSPN
//! spans both sides of the edge) or explicit fan-out × selectivity terms
//! built from raw tuple-factor columns. Every *decision* in that
//! factorization (start member, edge order, spanning/fan-out/upward RSPN
//! choice) depends only on the schema graph, the ensemble's table coverage,
//! and the predicate *columns* — never on intermediate estimates. So the
//! whole combination can be planned once, symbolically:
//!
//! 1. **plan** — [`CombinePlan::build`] walks the FK graph exactly as the
//!    eager loop used to, but instead of evaluating each step it records a
//!    tree of [`PlanNode`]s whose leaves hold pre-translated base
//!    [`SpnQuery`] bundles (count fractions and factor-weighted ratios);
//! 2. **register** — [`CombinePlan::register`] clones the base queries,
//!    appends a group's value predicates (GROUP BY reuses one plan for every
//!    group), and enqueues *all* bundles of *all* steps on the **caller's**
//!    [`ProbePlan`], returning a symbolic [`CombineExpr`] of
//!    `Scale`/`Product`/`Divide` nodes over the registered handles;
//! 3. **resolve** — after the caller's single fused sweep per touched
//!    member, [`CombineExpr::resolve`] folds the probe results through the
//!    §5.1 variance algebra. Theorem-2 ratios with a degenerate (empty
//!    overlap) denominator resolve to a clean
//!    [`DeepDbError::NotAnswerable`] instead of propagating NaN/∞.
//!
//! The old eager per-step loop survives **only** as the differential-test
//! oracle [`multi_rspn_count`] (mirroring how the recursive SPN evaluator
//! survives as the oracle for the compiled arena): no production call path
//! reaches it, and `crates/core/tests/combine_plan.rs` proptest-enforces
//! that planned resolution is bitwise identical to it.

use std::collections::BTreeSet;

use deepdb_spn::{LeafFunc, SpnQuery};
use deepdb_storage::{Database, ForeignKey, Predicate, TableId};

use crate::compile::{
    best_rspn_with, fraction_bundle_queries, register_fraction, DeferredFraction,
};
use crate::ensemble::Ensemble;
use crate::estimate::Estimate;
use crate::plan::{ProbeHandle, ProbePlan, ProbeResults};
use crate::rspn::count_fraction_query;
use crate::DeepDbError;

/// Registered factor-weighted-ratio handles (the disjoint-RSPN Case-3
/// terms): `E[F_fk·…]/E[…]` fan-out, or the weighted selectivity of the
/// paper's alternative Q2 formula. Numerator, denominator, and second
/// moment ride the caller's fused sweep.
pub(crate) struct DeferredFactorRatio {
    n: u64,
    /// Weighted selectivity (`true`) vs. expected fan-out (`false`).
    weighted: bool,
    num: ProbeHandle,
    den: ProbeHandle,
    sq: ProbeHandle,
}

impl DeferredFactorRatio {
    fn resolve(&self, r: &ProbeResults) -> Estimate {
        let (num, den, e2_raw) = (r[self.num], r[self.den], r[self.sq]);
        if den <= 0.0 {
            return Estimate::exact(0.0);
        }
        let ratio = num / den;
        let n_eff = (self.n as f64 * den.min(1.0)).max(1.0);
        if self.weighted {
            // Weighted fraction in [0,1]: binomial-style variance.
            let p = ratio.clamp(0.0, 1.0);
            Estimate {
                value: ratio,
                variance: p * (1.0 - p) / n_eff,
            }
        } else {
            // Expected fan-out: Koenig–Huygens on the weighted measure.
            let e2 = e2_raw / den;
            Estimate::conditional_expectation(ratio, e2.max(ratio * ratio), n_eff)
        }
    }
}

/// Symbolic combination expression over probes already registered on the
/// caller's [`ProbePlan`]. Shapes mirror the eager oracle's fold order
/// exactly, so resolution is bitwise identical to it.
pub(crate) enum CombineExpr {
    /// A Theorem-1 count-fraction bundle on one member.
    Fraction(DeferredFraction),
    /// A raw tuple-factor ratio (fan-out or weighted selectivity).
    FactorRatio(DeferredFactorRatio),
    /// Multiply by an exact constant (the start member's `|J|`).
    Scale(f64, Box<CombineExpr>),
    Product(Box<CombineExpr>, Box<CombineExpr>),
    /// Theorem-2 conditional ratio; degenerate denominators are rejected.
    Divide(Box<CombineExpr>, Box<CombineExpr>),
}

impl CombineExpr {
    pub(crate) fn resolve(&self, r: &ProbeResults) -> Result<Estimate, DeepDbError> {
        Ok(match self {
            CombineExpr::Fraction(f) => f.resolve(r),
            CombineExpr::FactorRatio(f) => f.resolve(r),
            CombineExpr::Scale(c, e) => e.resolve(r)?.scale(*c),
            CombineExpr::Product(a, b) => a.resolve(r)?.product(b.resolve(r)?),
            CombineExpr::Divide(num, den) => theorem2_ratio(num.resolve(r)?, den.resolve(r)?)?,
        })
    }
}

/// Theorem-2 conditional ratio with the degenerate-denominator guard.
///
/// An empty numerator over an empty denominator is a genuinely empty
/// extension — the predicates admit no mass on the overlap, so the step
/// contributes an exact zero factor (this mirrors what [`Estimate::divide`]
/// always produced, bit for bit). A **non-zero** numerator over a zero, NaN,
/// or infinite denominator cannot be normalized into a conditional
/// probability; that is the case that used to leak 0/NaN/∞ garbage into the
/// product chain and now surfaces a clean
/// [`DeepDbError::NotAnswerable`] instead.
fn theorem2_ratio(num: Estimate, den: Estimate) -> Result<Estimate, DeepDbError> {
    if num.value == 0.0 && den.value.abs() < f64::EPSILON {
        return Ok(num.divide(den));
    }
    num.try_divide(den).ok_or_else(|| {
        DeepDbError::NotAnswerable(
            "Theorem-2 ratio denominator has no support (empty overlap under the given \
             predicates)"
                .into(),
        )
    })
}

/// Pre-translated base queries of one count-fraction bundle on a fixed
/// member — the combine-layer sibling of `compile::CountTemplate`, extended
/// with an `accept` set so GROUP BY value predicates are appended only to
/// the steps whose table set actually contains the grouping column (exactly
/// the per-step predicate filtering the eager loop applied).
struct FractionBundle {
    idx: usize,
    n: u64,
    point: SpnQuery,
    prob: Option<SpnQuery>,
    sq: Option<SpnQuery>,
    /// Tables whose per-group predicates this bundle absorbs.
    accept: BTreeSet<TableId>,
}

impl FractionBundle {
    fn build(
        ens: &Ensemble,
        idx: usize,
        set: &BTreeSet<TableId>,
        preds: &[Predicate],
        accept: BTreeSet<TableId>,
    ) -> Result<Self, DeepDbError> {
        let rspn = &ens.rspns()[idx];
        let (point, prob, sq) = fraction_bundle_queries(rspn, set, preds)?;
        Ok(FractionBundle {
            idx,
            n: rspn.n_training(),
            point,
            prob,
            sq,
            accept,
        })
    }

    fn register(
        &self,
        plan: &mut ProbePlan,
        ens: &Ensemble,
        group_preds: &[Predicate],
    ) -> Result<DeferredFraction, DeepDbError> {
        let rspn = &ens.rspns()[self.idx];
        let extend = |base: &SpnQuery| -> Result<SpnQuery, DeepDbError> {
            let mut q = base.clone();
            for p in group_preds {
                if self.accept.contains(&p.table) {
                    rspn.add_predicate(&mut q, p)?;
                }
            }
            Ok(q)
        };
        let point = plan.register(self.idx, extend(&self.point)?);
        let prob = match &self.prob {
            Some(b) => Some(plan.register(self.idx, extend(b)?)),
            None => None,
        };
        let sq = match &self.sq {
            Some(b) => Some(plan.register(self.idx, extend(b)?)),
            None => None,
        };
        Ok(DeferredFraction {
            n: self.n,
            point,
            prob,
            sq,
        })
    }
}

/// Pre-translated base queries of one factor-weighted ratio on a fixed
/// member (see the eager `factor_weighted_ratio` for the formulas).
struct FactorRatioBundle {
    idx: usize,
    n: u64,
    weighted: bool,
    num: SpnQuery,
    den: SpnQuery,
    sq: SpnQuery,
    /// Group predicates on these tables go to num, den, AND sq (the shared
    /// base-set predicates of the ratio).
    accept_all: BTreeSet<TableId>,
    /// Group predicates on these tables go to num and sq only (the
    /// weighted-selectivity extra numerator predicates).
    accept_num: BTreeSet<TableId>,
}

impl FactorRatioBundle {
    fn build(
        ens: &Ensemble,
        idx: usize,
        set: &BTreeSet<TableId>,
        preds: &[Predicate],
        fk: &ForeignKey,
        extra_num_preds: Option<&[Predicate]>,
    ) -> Result<Self, DeepDbError> {
        // Group-value predicates follow the same routing as the shared
        // predicates of each form: the fan-out's base-set predicates go to
        // all three probes, the weighted selectivity's new-side predicates
        // to numerator and second moment only.
        let (accept_all, accept_num) = if extra_num_preds.is_none() {
            (set.clone(), BTreeSet::new())
        } else {
            (BTreeSet::new(), set.clone())
        };
        let rspn = &ens.rspns()[idx];
        let factor_col = rspn
            .factor_column(fk)
            .ok_or_else(|| DeepDbError::NotAnswerable("missing factor column".into()))?;

        let (mut num_q, _) = count_fraction_query(rspn, set, preds, false)?;
        num_q.set_func(factor_col, LeafFunc::X);
        if let Some(extra) = extra_num_preds {
            for p in extra {
                rspn.add_predicate(&mut num_q, p)?;
            }
        }
        let (mut den_q, _) = count_fraction_query(rspn, set, preds, false)?;
        if extra_num_preds.is_some() {
            // Weighted selectivity: denominator keeps the factor weight.
            den_q.set_func(factor_col, LeafFunc::X);
        }
        // Second moment of the weighted quantity for the variance.
        let (mut sq_q, _) = count_fraction_query(rspn, set, preds, true)?;
        sq_q.set_func(factor_col, LeafFunc::X2);
        if let Some(extra) = extra_num_preds {
            for p in extra {
                rspn.add_predicate(&mut sq_q, p)?;
            }
        }
        Ok(FactorRatioBundle {
            idx,
            n: rspn.n_training(),
            weighted: extra_num_preds.is_some(),
            num: num_q,
            den: den_q,
            sq: sq_q,
            accept_all,
            accept_num,
        })
    }

    fn register(
        &self,
        plan: &mut ProbePlan,
        ens: &Ensemble,
        group_preds: &[Predicate],
    ) -> Result<DeferredFactorRatio, DeepDbError> {
        let rspn = &ens.rspns()[self.idx];
        let extend = |base: &SpnQuery, with_num: bool| -> Result<SpnQuery, DeepDbError> {
            let mut q = base.clone();
            for p in group_preds {
                if self.accept_all.contains(&p.table)
                    || (with_num && self.accept_num.contains(&p.table))
                {
                    rspn.add_predicate(&mut q, p)?;
                }
            }
            Ok(q)
        };
        Ok(DeferredFactorRatio {
            n: self.n,
            weighted: self.weighted,
            num: plan.register(self.idx, extend(&self.num, true)?),
            den: plan.register(self.idx, extend(&self.den, false)?),
            sq: plan.register(self.idx, extend(&self.sq, true)?),
        })
    }
}

/// Symbolic template tree over pre-translated bundles; [`CombinePlan`]
/// holds the root and `register` maps it into a [`CombineExpr`] with live
/// handles.
enum PlanNode {
    Fraction(FractionBundle),
    FactorRatio(FactorRatioBundle),
    Scale(f64, Box<PlanNode>),
    Product(Box<PlanNode>, Box<PlanNode>),
    Divide(Box<PlanNode>, Box<PlanNode>),
}

impl PlanNode {
    fn register(
        &self,
        plan: &mut ProbePlan,
        ens: &Ensemble,
        group_preds: &[Predicate],
    ) -> Result<CombineExpr, DeepDbError> {
        Ok(match self {
            PlanNode::Fraction(b) => CombineExpr::Fraction(b.register(plan, ens, group_preds)?),
            PlanNode::FactorRatio(b) => {
                CombineExpr::FactorRatio(b.register(plan, ens, group_preds)?)
            }
            PlanNode::Scale(c, e) => {
                CombineExpr::Scale(*c, Box::new(e.register(plan, ens, group_preds)?))
            }
            PlanNode::Product(a, b) => CombineExpr::Product(
                Box::new(a.register(plan, ens, group_preds)?),
                Box::new(b.register(plan, ens, group_preds)?),
            ),
            PlanNode::Divide(a, b) => CombineExpr::Divide(
                Box::new(a.register(plan, ens, group_preds)?),
                Box::new(b.register(plan, ens, group_preds)?),
            ),
        })
    }

    #[cfg_attr(not(test), allow(dead_code))]
    fn members(&self, out: &mut BTreeSet<usize>) {
        match self {
            PlanNode::Fraction(b) => {
                out.insert(b.idx);
            }
            PlanNode::FactorRatio(b) => {
                out.insert(b.idx);
            }
            PlanNode::Scale(_, e) => e.members(out),
            PlanNode::Product(a, b) | PlanNode::Divide(a, b) => {
                a.members(out);
                b.members(out);
            }
        }
    }
}

/// A planned Case-3 combination: built once per query (the decisions are
/// value-independent), registered once per GROUP BY group.
pub(crate) struct CombinePlan {
    root: PlanNode,
    start_member: usize,
}

impl CombinePlan {
    /// Walk the FK graph once and plan the full combination.
    ///
    /// `shared_preds` are translated into the base queries; `selector_preds`
    /// drive member scoring and may additionally contain representative
    /// GROUP BY predicates (scores depend only on predicate columns, so the
    /// representative value is irrelevant — this is what makes one plan
    /// valid for every group).
    pub(crate) fn build(
        ens: &Ensemble,
        db: &Database,
        qtables: &BTreeSet<TableId>,
        shared_preds: &[Predicate],
        selector_preds: &[Predicate],
    ) -> Result<Self, DeepDbError> {
        // Start with the RSPN overlapping the query that scores best
        // (deterministic: strictly-better score wins, lowest member index
        // breaks ties — the MPE lowest-child-wins rule).
        let mut start: Option<(f64, usize)> = None;
        for (i, rspn) in ens.rspns().iter().enumerate() {
            let overlap = rspn.tables().iter().filter(|t| qtables.contains(t)).count();
            if overlap == 0 {
                continue;
            }
            let handled: Vec<Predicate> = selector_preds
                .iter()
                .filter(|p| rspn.tables().contains(&p.table))
                .cloned()
                .collect();
            let score = rspn.strategy_score(&handled) + overlap as f64;
            if start.is_none_or(|(s, _)| score > s) {
                start = Some((score, i));
            }
        }
        let (_, start_idx) = start.ok_or_else(|| {
            DeepDbError::NotAnswerable("no RSPN overlaps the query tables".into())
        })?;

        let mut covered: BTreeSet<TableId> = ens.rspns()[start_idx]
            .tables()
            .iter()
            .filter(|t| qtables.contains(t))
            .copied()
            .collect();
        let covered_preds = filter_preds(shared_preds, &covered);
        let mut root = PlanNode::Scale(
            ens.rspns()[start_idx].full_join_count() as f64,
            Box::new(PlanNode::Fraction(FractionBundle::build(
                ens,
                start_idx,
                &covered,
                &covered_preds,
                covered.clone(),
            )?)),
        );

        let mut guard = 0;
        while covered != *qtables {
            guard += 1;
            if guard > qtables.len() + 2 {
                return Err(DeepDbError::NotAnswerable(format!(
                    "could not extend coverage beyond {covered:?} for query {qtables:?}"
                )));
            }
            // Find an FK edge from a covered table to an uncovered query
            // table (BTreeSet iteration makes the edge order deterministic).
            let Some((u, v, fk)) = qtables.iter().find_map(|&v| {
                if covered.contains(&v) {
                    return None;
                }
                covered
                    .iter()
                    .find_map(|&u| db.edge_between(u, v).map(|fk| (u, v, *fk)))
            }) else {
                return Err(DeepDbError::NotAnswerable(format!(
                    "query tables {qtables:?} not FK-connected through {covered:?}"
                )));
            };

            // Prefer an RSPN spanning both sides of the edge (Theorem 2 with
            // a non-empty overlap).
            let spanning = best_rspn_with(ens, selector_preds, |r| {
                r.tables().contains(&u) && r.tables().contains(&v)
            });
            if let Some(b) = spanning {
                let b_tables: BTreeSet<TableId> = ens.rspns()[b].tables().iter().copied().collect();
                let overlap: BTreeSet<TableId> = covered.intersection(&b_tables).copied().collect();
                let mut extended = overlap.clone();
                // Absorb every uncovered query table the RSPN can reach.
                for t in b_tables.iter() {
                    if qtables.contains(t) {
                        extended.insert(*t);
                    }
                }
                let num = FractionBundle::build(
                    ens,
                    b,
                    &extended,
                    &filter_preds(shared_preds, &extended),
                    extended.clone(),
                )?;
                let den = FractionBundle::build(
                    ens,
                    b,
                    &overlap,
                    &filter_preds(shared_preds, &overlap),
                    overlap.clone(),
                )?;
                root = PlanNode::Product(
                    Box::new(root),
                    Box::new(PlanNode::Divide(
                        Box::new(PlanNode::Fraction(num)),
                        Box::new(PlanNode::Fraction(den)),
                    )),
                );
                covered.extend(extended);
                continue;
            }

            // Disjoint RSPNs: fan-out from the covered side times
            // conditional selectivity on the new side (the paper's Q2
            // factorization).
            if fk.parent_table == u {
                // Downward: E(F(Q_cov)·F_{u←v}) / E(F(Q_cov)) from an RSPN
                // with the raw factor column, then P(preds_v) from an RSPN
                // over v.
                let a = best_rspn_with(ens, selector_preds, |r| {
                    r.tables().contains(&u) && r.has_factor(&fk)
                })
                .ok_or_else(|| {
                    DeepDbError::NotAnswerable(format!(
                        "no RSPN stores tuple factor for edge {u}->{v}"
                    ))
                })?;
                let cov_a: BTreeSet<TableId> = ens.rspns()[a]
                    .tables()
                    .iter()
                    .filter(|t| covered.contains(t))
                    .copied()
                    .collect();
                let fanout = FactorRatioBundle::build(
                    ens,
                    a,
                    &cov_a,
                    &filter_preds(shared_preds, &cov_a),
                    &fk,
                    None,
                )?;

                let b = best_rspn_with(ens, selector_preds, |r| r.tables().contains(&v))
                    .ok_or_else(|| {
                        DeepDbError::NotAnswerable(format!("no RSPN models table {v}"))
                    })?;
                let v_set = BTreeSet::from([v]);
                let v_preds: Vec<Predicate> = shared_preds
                    .iter()
                    .filter(|p| p.table == v)
                    .cloned()
                    .collect();
                let num = FractionBundle::build(ens, b, &v_set, &v_preds, v_set.clone())?;
                let den = FractionBundle::build(ens, b, &v_set, &[], BTreeSet::new())?;
                root = PlanNode::Product(
                    Box::new(PlanNode::Product(
                        Box::new(root),
                        Box::new(PlanNode::FactorRatio(fanout)),
                    )),
                    Box::new(PlanNode::Divide(
                        Box::new(PlanNode::Fraction(num)),
                        Box::new(PlanNode::Fraction(den)),
                    )),
                );
            } else {
                // Upward to the parent v: no row multiplication; weight v's
                // rows by their child counts (the paper's alternative
                // formula): E(1_{preds_v} · F_{v←u}) / E(F_{v←u}).
                let a = best_rspn_with(ens, selector_preds, |r| {
                    r.tables().contains(&v) && r.has_factor(&fk)
                })
                .ok_or_else(|| {
                    DeepDbError::NotAnswerable(format!(
                        "no RSPN stores tuple factor for edge {v}<-{u}"
                    ))
                })?;
                let v_set = BTreeSet::from([v]);
                let v_preds: Vec<Predicate> = shared_preds
                    .iter()
                    .filter(|p| p.table == v)
                    .cloned()
                    .collect();
                let ratio = FactorRatioBundle::build(ens, a, &v_set, &[], &fk, Some(&v_preds))?;
                root = PlanNode::Product(Box::new(root), Box::new(PlanNode::FactorRatio(ratio)));
            }
            covered.insert(v);
        }
        Ok(CombinePlan {
            root,
            start_member: start_idx,
        })
    }

    /// Register every bundle of every step on the caller's plan, appending
    /// this group's value predicates to the steps that absorb them, and
    /// return the symbolic expression over the live handles.
    pub(crate) fn register(
        &self,
        plan: &mut ProbePlan,
        ens: &Ensemble,
        group_preds: &[Predicate],
    ) -> Result<CombineExpr, DeepDbError> {
        self.root.register(plan, ens, group_preds)
    }

    /// Start member chosen by the planner (diagnostics / tie-break tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn start_member(&self) -> usize {
        self.start_member
    }

    /// Distinct ensemble members the planned combination touches.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn members(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        self.root.members(&mut out);
        out
    }
}

fn filter_preds(preds: &[Predicate], set: &BTreeSet<TableId>) -> Vec<Predicate> {
    preds
        .iter()
        .filter(|p| set.contains(&p.table))
        .cloned()
        .collect()
}

// ---------------------------------------------------------------------------
// Eager oracle — retired from production, retained for differential tests.
// ---------------------------------------------------------------------------

/// `E[1/F'(Q,J) · 1_C · ∏N_T]` with variance, evaluated immediately on
/// member `idx` (registration + one single-member sweep).
fn count_fraction(
    ens: &Ensemble,
    idx: usize,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Result<Estimate, DeepDbError> {
    let mut plan = ProbePlan::new();
    let deferred = register_fraction(&mut plan, ens, idx, qtables, preds)?;
    let results = plan.execute(ens);
    Ok(deferred.resolve(&results))
}

/// Theorem-1 estimate on one RSPN: `|J| · E[1/F' · 1_C · ∏N_T]`.
fn single_rspn_count(
    ens: &Ensemble,
    idx: usize,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Result<Estimate, DeepDbError> {
    let fraction = count_fraction(ens, idx, qtables, preds)?;
    let j = ens.rspns()[idx].full_join_count() as f64;
    Ok(fraction.scale(j))
}

/// **Differential-test oracle** — the retired eager Case-3 loop: extend a
/// covered table set across FK edges, evaluating each step immediately
/// (one throwaway probe plan and one sweep per step per member).
///
/// No production call path reaches this function: `estimate_count`, AQP
/// GROUP BY, SUM, and inclusion–exclusion all go through [`CombinePlan`],
/// which registers every step's bundles on one fused plan. It is kept
/// `pub` solely so `crates/core/tests/combine_plan.rs` and the
/// `join_combine` bench can assert the planned path resolves **bitwise**
/// identically to step-by-step eager evaluation (decision logic included:
/// both implementations must pick the same members and edges or values
/// diverge).
pub fn multi_rspn_count(
    ens: &Ensemble,
    db: &Database,
    qtables: &BTreeSet<TableId>,
    preds: &[Predicate],
) -> Result<Estimate, DeepDbError> {
    // Start with the RSPN overlapping the query that scores best (lowest
    // index wins ties, matching the planner).
    let mut start: Option<(f64, usize)> = None;
    for (i, rspn) in ens.rspns().iter().enumerate() {
        let overlap = rspn.tables().iter().filter(|t| qtables.contains(t)).count();
        if overlap == 0 {
            continue;
        }
        let handled: Vec<Predicate> = preds
            .iter()
            .filter(|p| rspn.tables().contains(&p.table))
            .cloned()
            .collect();
        let score = rspn.strategy_score(&handled) + overlap as f64;
        if start.is_none_or(|(s, _)| score > s) {
            start = Some((score, i));
        }
    }
    let (_, start_idx) = start
        .ok_or_else(|| DeepDbError::NotAnswerable("no RSPN overlaps the query tables".into()))?;

    let mut covered: BTreeSet<TableId> = ens.rspns()[start_idx]
        .tables()
        .iter()
        .filter(|t| qtables.contains(t))
        .copied()
        .collect();
    let covered_preds: Vec<Predicate> = preds
        .iter()
        .filter(|p| covered.contains(&p.table))
        .cloned()
        .collect();
    let mut est = single_rspn_count(ens, start_idx, &covered.clone(), &covered_preds)?;

    let mut guard = 0;
    while covered != *qtables {
        guard += 1;
        if guard > qtables.len() + 2 {
            return Err(DeepDbError::NotAnswerable(format!(
                "could not extend coverage beyond {covered:?} for query {qtables:?}"
            )));
        }
        // Find an FK edge from a covered table to an uncovered query table.
        let Some((u, v, fk)) = qtables.iter().find_map(|&v| {
            if covered.contains(&v) {
                return None;
            }
            covered
                .iter()
                .find_map(|&u| db.edge_between(u, v).map(|fk| (u, v, *fk)))
        }) else {
            return Err(DeepDbError::NotAnswerable(format!(
                "query tables {qtables:?} not FK-connected through {covered:?}"
            )));
        };

        // Prefer an RSPN spanning both sides of the edge (Theorem 2 with a
        // non-empty overlap).
        let spanning = best_rspn_with(ens, preds, |r| {
            r.tables().contains(&u) && r.tables().contains(&v)
        });
        if let Some(b) = spanning {
            let b_tables: BTreeSet<TableId> = ens.rspns()[b].tables().iter().copied().collect();
            let overlap: BTreeSet<TableId> = covered.intersection(&b_tables).copied().collect();
            let mut extended = overlap.clone();
            // Absorb every uncovered query table the RSPN can reach.
            for t in b_tables.iter() {
                if qtables.contains(t) {
                    extended.insert(*t);
                }
            }
            let num_preds: Vec<Predicate> = preds
                .iter()
                .filter(|p| extended.contains(&p.table))
                .cloned()
                .collect();
            let den_preds: Vec<Predicate> = preds
                .iter()
                .filter(|p| overlap.contains(&p.table))
                .cloned()
                .collect();
            // Both fractions of the Theorem-2 ratio in one fused sweep.
            let mut plan = ProbePlan::new();
            let num = register_fraction(&mut plan, ens, b, &extended, &num_preds)?;
            let den = register_fraction(&mut plan, ens, b, &overlap, &den_preds)?;
            let results = plan.execute(ens);
            let ratio = theorem2_ratio(num.resolve(&results), den.resolve(&results))?;
            est = est.product(ratio);
            covered.extend(extended);
            continue;
        }

        // Disjoint RSPNs: fan-out from the covered side times conditional
        // selectivity on the new side (the paper's Q2 factorization).
        if fk.parent_table == u {
            // Downward: E(F(Q_cov)·F_{u←v}) / E(F(Q_cov)) from an RSPN with
            // the raw factor column, then P(preds_v) from an RSPN over v.
            let a = best_rspn_with(ens, preds, |r| r.tables().contains(&u) && r.has_factor(&fk))
                .ok_or_else(|| {
                    DeepDbError::NotAnswerable(format!(
                        "no RSPN stores tuple factor for edge {u}->{v}"
                    ))
                })?;
            let cov_a: BTreeSet<TableId> = ens.rspns()[a]
                .tables()
                .iter()
                .filter(|t| covered.contains(t))
                .copied()
                .collect();
            let a_preds: Vec<Predicate> = preds
                .iter()
                .filter(|p| cov_a.contains(&p.table))
                .cloned()
                .collect();
            let fanout = factor_weighted_ratio(ens, a, &cov_a, &a_preds, &fk, None)?;

            let b = best_rspn_with(ens, preds, |r| r.tables().contains(&v))
                .ok_or_else(|| DeepDbError::NotAnswerable(format!("no RSPN models table {v}")))?;
            let v_set = BTreeSet::from([v]);
            let v_preds: Vec<Predicate> = preds.iter().filter(|p| p.table == v).cloned().collect();
            // Selectivity numerator and denominator fused on member b.
            let mut plan = ProbePlan::new();
            let num = register_fraction(&mut plan, ens, b, &v_set, &v_preds)?;
            let den = register_fraction(&mut plan, ens, b, &v_set, &[])?;
            let results = plan.execute(ens);
            let sel = theorem2_ratio(num.resolve(&results), den.resolve(&results))?;
            est = est.product(fanout).product(sel);
        } else {
            // Upward to the parent v: no row multiplication; weight v's rows
            // by their child counts (the paper's alternative formula):
            // E(1_{preds_v} · F_{v←u}) / E(F_{v←u}).
            let a = best_rspn_with(ens, preds, |r| r.tables().contains(&v) && r.has_factor(&fk))
                .ok_or_else(|| {
                    DeepDbError::NotAnswerable(format!(
                        "no RSPN stores tuple factor for edge {v}<-{u}"
                    ))
                })?;
            let v_set = BTreeSet::from([v]);
            let v_preds: Vec<Predicate> = preds.iter().filter(|p| p.table == v).cloned().collect();
            let ratio = factor_weighted_ratio(ens, a, &v_set, &[], &fk, Some(&v_preds))?;
            est = est.product(ratio);
        }
        covered.insert(v);
    }
    Ok(est)
}

/// Raw tuple-factor ratios for the disjoint-RSPN extensions of Case 3
/// (eager-oracle form; the planned path resolves the identical arithmetic
/// through [`DeferredFactorRatio`]).
///
/// * Fan-out (`extra_num_preds = None`): `E[F(set)·F_fk·1_C] / E[F(set)·1_C]`
///   — the expected number of new-side partners per covered row.
/// * Weighted selectivity (`extra_num_preds = Some(vp)`):
///   `E[F_fk·1_{vp}·F(set)·1_C] / E[F_fk·F(set)·1_C]` — the fraction of
///   child rows whose parent satisfies `vp` (the paper's alternative Q2
///   formula).
fn factor_weighted_ratio(
    ens: &Ensemble,
    idx: usize,
    set: &BTreeSet<TableId>,
    preds: &[Predicate],
    fk: &ForeignKey,
    extra_num_preds: Option<&[Predicate]>,
) -> Result<Estimate, DeepDbError> {
    let bundle = FactorRatioBundle::build(ens, idx, set, preds, fk, extra_num_preds)?;
    let mut plan = ProbePlan::new();
    let deferred = bundle.register(&mut plan, ens, &[])?;
    let results = plan.execute(ens);
    Ok(deferred.resolve(&results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::{EnsembleBuilder, EnsembleParams, EnsembleStrategy};
    use deepdb_storage::fixtures::paper_customer_order;
    use deepdb_storage::{CmpOp, PredOp, Value};

    fn singles_ensemble() -> (Database, Ensemble) {
        let db = paper_customer_order();
        let params = EnsembleParams {
            strategy: EnsembleStrategy::SingleTables,
            sample_size: 4_000,
            correlation_sample: 500,
            ..EnsembleParams::default()
        };
        let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
        (db, ens)
    }

    /// Start-member scoring ties (no predicates, equal overlap) break to the
    /// lowest member index — plan construction is reproducible across runs.
    #[test]
    fn start_member_ties_break_to_lowest_index() {
        let (db, ens) = singles_ensemble();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let qtables = BTreeSet::from([c, o]);
        let plan = CombinePlan::build(&ens, &db, &qtables, &[], &[]).unwrap();
        // Both single-table members overlap by exactly 1 and score 0.0 on an
        // empty predicate set; the planner must pick member 0.
        assert_eq!(plan.start_member(), 0);
        // And keep picking it on every rebuild.
        for _ in 0..3 {
            let again = CombinePlan::build(&ens, &db, &qtables, &[], &[]).unwrap();
            assert_eq!(again.start_member(), plan.start_member());
        }
    }

    /// A predicate only one member can handle moves the start off the tied
    /// default.
    #[test]
    fn start_member_follows_predicate_coverage() {
        let (db, ens) = singles_ensemble();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let qtables = BTreeSet::from([c, o]);
        let o_pred = vec![Predicate::new(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))];
        let plan = CombinePlan::build(&ens, &db, &qtables, &o_pred, &o_pred).unwrap();
        let orders_member = ens.rspns().iter().position(|r| r.tables() == [o]).unwrap();
        assert_eq!(plan.start_member(), orders_member);
    }

    /// Theorem-2 ratio guard: 0/0 extension steps stay a clean zero factor
    /// (bitwise what `divide` produced), while a non-zero numerator over a
    /// degenerate denominator surfaces `NotAnswerable` instead of 0/NaN/∞.
    #[test]
    fn theorem2_ratio_guards_degenerate_denominators() {
        let zero = Estimate::exact(0.0);
        let num = Estimate {
            value: 0.5,
            variance: 0.01,
        };
        // Empty-over-empty: exact zero factor, same bits as divide().
        let ok = theorem2_ratio(zero, zero).unwrap();
        let old = zero.divide(zero);
        assert_eq!(ok.value.to_bits(), old.value.to_bits());
        assert_eq!(ok.variance.to_bits(), old.variance.to_bits());
        // Non-zero numerator over empty/NaN/∞ denominators: NotAnswerable.
        for bad in [0.0, f64::NAN, f64::INFINITY] {
            match theorem2_ratio(num, Estimate::exact(bad)) {
                Err(DeepDbError::NotAnswerable(_)) => {}
                other => panic!("expected NotAnswerable for den {bad}, got {other:?}"),
            }
        }
        // Supported denominators match divide() bitwise.
        let den = Estimate {
            value: 0.25,
            variance: 0.001,
        };
        let a = theorem2_ratio(num, den).unwrap();
        let b = num.divide(den);
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.variance.to_bits(), b.variance.to_bits());
    }

    /// The planner touches both single-table members for the paper's Q2
    /// (customer fan-out + orders selectivity).
    #[test]
    fn plan_touches_every_member_of_the_combination() {
        let (db, ens) = singles_ensemble();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let qtables = BTreeSet::from([c, o]);
        let plan = CombinePlan::build(&ens, &db, &qtables, &[], &[]).unwrap();
        assert_eq!(plan.members().len(), 2);
    }
}
