//! RSPN ensembles: base construction, budget-constrained optimization, and
//! direct updates (paper §3.3, §5.2, §5.3).

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use deepdb_spn::rdc::{rdc, RdcParams};
use deepdb_spn::{SpnParams, WorkerPool};
use deepdb_storage::{
    ColId, Database, ForeignKey, JoinColumnRole, JoinTree, Query, TableId, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::{CacheStats, PlanCache, PreparedQuery, DEFAULT_PLAN_CACHE_CAPACITY};
use crate::fd::FunctionalDependency;
use crate::rspn::Rspn;
use crate::DeepDbError;

/// Which RSPNs the ensemble builder creates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnsembleStrategy {
    /// One RSPN per table, no joins — the paper's "cheap strategy" (§6.1).
    SingleTables,
    /// Base ensemble (correlated FK pairs) plus budget-driven larger RSPNs.
    Relational,
}

/// Hyper-parameters of ensemble construction. Defaults follow the paper:
/// RDC threshold 0.3, budget factor 0.5.
#[derive(Debug, Clone)]
pub struct EnsembleParams {
    pub strategy: EnsembleStrategy,
    /// Correlation threshold on the table dependency value (max pairwise
    /// attribute RDC) above which a joint RSPN is learned.
    pub rdc_threshold: f64,
    /// Extra learning budget relative to the base ensemble (paper §5.3);
    /// 0 = base ensemble only.
    pub budget_factor: f64,
    /// Training-sample rows per RSPN.
    pub sample_size: usize,
    /// Rows sampled for table-correlation tests.
    pub correlation_sample: usize,
    /// Largest table count of an optimized RSPN.
    pub max_rspn_tables: usize,
    /// SPN learning parameters.
    pub spn: SpnParams,
    pub seed: u64,
}

impl Default for EnsembleParams {
    fn default() -> Self {
        Self {
            strategy: EnsembleStrategy::Relational,
            rdc_threshold: 0.3,
            budget_factor: 0.5,
            sample_size: 50_000,
            correlation_sample: 3_000,
            max_rspn_tables: 3,
            spn: SpnParams::default(),
            seed: 0xD33D,
        }
    }
}

/// Builder for [`Ensemble`].
pub struct EnsembleBuilder<'a> {
    db: &'a Database,
    params: EnsembleParams,
    fds: Vec<FunctionalDependency>,
}

impl<'a> EnsembleBuilder<'a> {
    pub fn new(db: &'a Database) -> Self {
        Self {
            db,
            params: EnsembleParams::default(),
            fds: Vec::new(),
        }
    }

    pub fn params(mut self, params: EnsembleParams) -> Self {
        self.params = params;
        self
    }

    /// Declare a functional dependency `determinant → dependent` (paper
    /// §3.2): the dependent column is answered via a dictionary.
    pub fn functional_dependency(
        mut self,
        table: TableId,
        determinant: ColId,
        dependent: ColId,
    ) -> Self {
        self.fds.push(FunctionalDependency {
            table,
            determinant,
            dependent,
        });
        self
    }

    /// Learn the ensemble (offline phase, Figure 2).
    pub fn build(self) -> Result<Ensemble, DeepDbError> {
        let db = self.db;
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(p.seed);

        // 1. Table-pair dependency values over FK edges.
        let mut dependencies: HashMap<(TableId, TableId), f64> = HashMap::new();
        if p.strategy == EnsembleStrategy::Relational {
            for fk in db.foreign_keys() {
                let pair = [fk.parent_table, fk.child_table];
                let dep = table_dependency(db, &pair, p, &mut rng)?;
                dependencies.insert(ordered(fk.parent_table, fk.child_table), dep);
            }
        }

        // 2. Plan the table sets.
        let mut planned: Vec<Vec<TableId>> = Vec::new();
        match p.strategy {
            EnsembleStrategy::SingleTables => {
                planned.extend((0..db.n_tables()).map(|t| vec![t]));
            }
            EnsembleStrategy::Relational => {
                let mut covered: BTreeSet<TableId> = BTreeSet::new();
                for fk in db.foreign_keys() {
                    let dep = dependencies[&ordered(fk.parent_table, fk.child_table)];
                    if dep >= p.rdc_threshold {
                        planned.push(vec![fk.parent_table, fk.child_table]);
                        covered.insert(fk.parent_table);
                        covered.insert(fk.child_table);
                    }
                }
                for t in 0..db.n_tables() {
                    if !covered.contains(&t) {
                        planned.push(vec![t]);
                    }
                }
            }
        }

        // Cost proxy: cols(r)² · rows(r) (paper §5.3).
        let cost = |tables: &[TableId]| -> f64 {
            let cols: usize = tables
                .iter()
                .map(|&t| db.table(t).schema().n_columns())
                .sum();
            let rows: usize = tables.iter().map(|&t| db.table(t).n_rows()).sum();
            (cols * cols) as f64 * rows.max(1) as f64
        };
        let base_cost: f64 = planned.iter().map(|ts| cost(ts)).sum();

        // 3. Ensemble optimization: larger RSPNs under the budget (§5.3).
        if p.strategy == EnsembleStrategy::Relational && p.budget_factor > 0.0 {
            let mut candidates = connected_subsets(db, 3, p.max_rspn_tables);
            candidates.retain(|c| !planned.iter().any(|existing| existing == c));
            // Mean pairwise dependency; pairs without a precomputed value are
            // measured on the candidate's own join sample.
            let mut scored: Vec<(f64, f64, Vec<TableId>)> = Vec::new();
            for cand in candidates {
                let mut mean = 0.0;
                let mut pairs = 0.0;
                let mut sample_cache: Option<HashMap<(TableId, TableId), f64>> = None;
                for i in 0..cand.len() {
                    for j in (i + 1)..cand.len() {
                        let key = ordered(cand[i], cand[j]);
                        let dep = match dependencies.get(&key) {
                            Some(&d) => d,
                            None => {
                                if sample_cache.is_none() {
                                    sample_cache =
                                        Some(candidate_dependencies(db, &cand, p, &mut rng)?);
                                }
                                *sample_cache.as_ref().unwrap().get(&key).unwrap_or(&0.0)
                            }
                        };
                        mean += dep;
                        pairs += 1.0;
                    }
                }
                if pairs > 0.0 {
                    scored.push((mean / pairs, cost(&cand), cand));
                }
            }
            // Highest mean RDC first; cheaper first among ties.
            scored.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            });
            let budget = p.budget_factor * base_cost;
            let mut spent = 0.0;
            for (_, c, cand) in scored {
                if spent + c > budget {
                    continue;
                }
                spent += c;
                planned.push(cand);
            }
        }

        // 4. Learn every planned RSPN.
        let mut rspns = Vec::with_capacity(planned.len());
        for (i, tables) in planned.iter().enumerate() {
            let tree = JoinTree::new(db, tables)?;
            // Sampling is with replacement: for joins smaller than the budget
            // we still draw enough rows (64× the join size, at least 4096) so
            // the empirical distribution converges to the exact one.
            let n = p
                .sample_size
                .min((tree.full_count().saturating_mul(64)).max(4096) as usize)
                .max(1);
            let mut sample_rng = StdRng::seed_from_u64(p.seed ^ (0xA11CE + i as u64));
            let sample = tree.sample(db, n, &mut sample_rng);
            let mut spn_params = p.spn.clone();
            spn_params.seed = p
                .seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15);
            rspns.push(Rspn::learn(&sample, db, &self.fds, &spn_params)?);
        }

        // 5. Caches for the update path.
        let mut factor_caches: HashMap<ForeignKey, HashMap<i64, u32>> = HashMap::new();
        for fk in db.foreign_keys() {
            let factors = db.tuple_factors(fk);
            let parent = db.table(fk.parent_table);
            let pk = parent.schema().primary_key().expect("FK parents have PKs");
            let mut map = HashMap::with_capacity(parent.n_rows());
            #[allow(clippy::needless_range_loop)]
            for r in 0..parent.n_rows() {
                if let Some(k) = parent.column(pk).i64_at(r) {
                    map.insert(k, factors[r]);
                }
            }
            factor_caches.insert(*fk, map);
        }
        let mut pk_caches: HashMap<TableId, HashMap<i64, u32>> = HashMap::new();
        for t in 0..db.n_tables() {
            let table = db.table(t);
            if let Some(pk) = table.schema().primary_key() {
                let mut map = HashMap::with_capacity(table.n_rows());
                for r in 0..table.n_rows() {
                    if let Some(k) = table.column(pk).i64_at(r) {
                        map.insert(k, r as u32);
                    }
                }
                pk_caches.insert(t, map);
            }
        }

        let row_counts = (0..db.n_tables())
            .map(|t| db.table(t).n_rows() as u64)
            .collect();
        Ok(Ensemble {
            rspns,
            dependencies,
            factor_caches,
            pk_caches,
            row_counts,
            params: self.params,
            update_rng: StdRng::seed_from_u64(0x0BDA7E5),
            updates_absorbed: 0,
            probe_threads: 0,
            pool: WorkerPool::new(),
            plan_epoch: AtomicU64::new(0),
            plan_cache: PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY),
        })
    }
}

/// A learned ensemble of RSPNs representing one database (Figure 2).
pub struct Ensemble {
    rspns: Vec<Rspn>,
    /// Table-pair dependency values measured during construction.
    dependencies: HashMap<(TableId, TableId), f64>,
    /// FK → (parent key → child count); maintained under updates.
    factor_caches: HashMap<ForeignKey, HashMap<i64, u32>>,
    /// Table → (pk → row id); maintained under updates.
    pk_caches: HashMap<TableId, HashMap<i64, u32>>,
    row_counts: Vec<u64>,
    params: EnsembleParams,
    update_rng: StdRng,
    updates_absorbed: u64,
    /// Worker-thread cap for probe-plan execution; 0 = auto (available
    /// parallelism). Runtime-only, not part of snapshots.
    probe_threads: usize,
    /// Persistent sweep worker pool: every probe-plan execution (AQP,
    /// cardinality, classification batches) reuses these workers and their
    /// pinned evaluator scratch instead of spawning threads per call.
    /// Workers spawn lazily on the first parallel sweep and park between
    /// jobs. Runtime-only, not part of snapshots.
    pool: WorkerPool,
    /// Plan-cache invalidation epoch: bumped by [`Ensemble::recompile_models`]
    /// and every coverage-/count-changing maintenance operation. Every cache
    /// key and [`crate::PreparedQuery`] embeds the epoch at creation, so
    /// stale plans can never be reused. Atomic so concurrent serving can
    /// observe (and [`Ensemble::invalidate_plans`] can bump) it through
    /// `&Ensemble`. Runtime-only, not part of snapshots.
    plan_epoch: AtomicU64,
    /// Shape-keyed LRU cache of plan artifacts, grouped templates, and
    /// member-selection preludes (see [`crate::cache`]). Runtime-only, not
    /// part of snapshots.
    plan_cache: PlanCache,
}

fn ordered(a: TableId, b: TableId) -> (TableId, TableId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Max pairwise attribute RDC between two tables over a join sample
/// (paper §3.3 — the dependency value).
fn table_dependency(
    db: &Database,
    tables: &[TableId; 2],
    p: &EnsembleParams,
    rng: &mut StdRng,
) -> Result<f64, DeepDbError> {
    let deps = candidate_dependencies(db, tables, p, rng)?;
    Ok(*deps.get(&ordered(tables[0], tables[1])).unwrap_or(&0.0))
}

/// Pairwise table dependency values over the join sample of a candidate
/// table set.
fn candidate_dependencies(
    db: &Database,
    tables: &[TableId],
    p: &EnsembleParams,
    rng: &mut StdRng,
) -> Result<HashMap<(TableId, TableId), f64>, DeepDbError> {
    let tree = JoinTree::new(db, tables)?;
    let n = p
        .correlation_sample
        .min(tree.full_count().max(1) as usize)
        .max(1);
    let sample = tree.sample(db, n, rng);
    // Attribute columns per table.
    let mut by_table: HashMap<TableId, Vec<usize>> = HashMap::new();
    for (i, c) in sample.columns.iter().enumerate() {
        if let JoinColumnRole::Data { table, .. } = c.role {
            by_table.entry(table).or_default().push(i);
        }
    }
    let rdc_params = RdcParams::default();
    let mut out = HashMap::new();
    for i in 0..tables.len() {
        for j in (i + 1)..tables.len() {
            let (a, b) = (tables[i], tables[j]);
            let mut max_rdc: f64 = 0.0;
            for &ca in by_table.get(&a).map_or(&Vec::new(), |v| v) {
                for &cb in by_table.get(&b).map_or(&Vec::new(), |v| v) {
                    let v = rdc(&sample.data[ca], &sample.data[cb], &rdc_params);
                    max_rdc = max_rdc.max(v);
                }
            }
            out.insert(ordered(a, b), max_rdc);
        }
    }
    Ok(out)
}

/// Connected subsets of the FK graph with sizes in `[min, max]`.
fn connected_subsets(db: &Database, min: usize, max: usize) -> Vec<Vec<TableId>> {
    let n = db.n_tables();
    let mut results: BTreeSet<Vec<TableId>> = BTreeSet::new();
    // Grow connected sets by BFS over the subset lattice — schemas are small
    // (≤ ~10 tables), so this is cheap.
    let mut frontier: Vec<BTreeSet<TableId>> = (0..n).map(|t| BTreeSet::from([t])).collect();
    for _ in 1..max {
        let mut next = Vec::new();
        for set in &frontier {
            for fk in db.foreign_keys() {
                for (inside, outside) in [
                    (fk.parent_table, fk.child_table),
                    (fk.child_table, fk.parent_table),
                ] {
                    if set.contains(&inside) && !set.contains(&outside) {
                        let mut grown = set.clone();
                        grown.insert(outside);
                        if grown.len() >= min {
                            results.insert(grown.iter().copied().collect());
                        }
                        if grown.len() < max {
                            next.push(grown);
                        }
                    }
                }
            }
        }
        next.sort();
        next.dedup();
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    results.into_iter().collect()
}

impl Ensemble {
    /// The ensemble's members. Every query path — expectations and MPE —
    /// works on `&Rspn`; there is deliberately no `rspns_mut()` (mutation
    /// goes through the update/maintenance entry points below).
    pub fn rspns(&self) -> &[Rspn] {
        &self.rspns
    }

    pub fn params(&self) -> &EnsembleParams {
        &self.params
    }

    /// Rows currently in a table (maintained under updates).
    pub fn table_rows(&self, t: TableId) -> u64 {
        self.row_counts.get(t).copied().unwrap_or(0)
    }

    /// Dependency value measured between two tables, if known.
    pub fn dependency(&self, a: TableId, b: TableId) -> Option<f64> {
        self.dependencies.get(&ordered(a, b)).copied()
    }

    /// Total number of tuples absorbed through the update path.
    pub fn updates_absorbed(&self) -> u64 {
        self.updates_absorbed
    }

    /// Sum of model sizes (diagnostics).
    pub fn total_model_size(&self) -> usize {
        self.rspns.iter().map(Rspn::model_size).sum()
    }

    /// Recompile any RSPN arena engine that was structurally invalidated —
    /// the **explicit maintenance entry point** of the engine lifecycle.
    /// Updates ([`Ensemble::apply_insert`] / [`Ensemble::apply_delete`] and
    /// the batched [`Ensemble::apply_insert_batch`]) patch the compiled
    /// arenas **in place**, so in steady state this is a no-op; call it
    /// after an operation that reports structural invalidation (future
    /// drift-driven adaptation, external model surgery). The query surface
    /// (`compile`/`aqp`/`ml`) is entirely `&Ensemble` and never recompiles
    /// behind your back.
    ///
    /// **Epoch contract:** recompilation may change model structure, so this
    /// bumps the plan epoch — every cached plan artifact and outstanding
    /// [`crate::PreparedQuery`] becomes stale (the latter fail their next
    /// `execute` with [`DeepDbError::StalePlan`]; cached artifacts simply
    /// never hit again and age out of the LRU).
    pub fn recompile_models(&mut self) {
        for rspn in &mut self.rspns {
            rspn.ensure_compiled();
        }
        self.bump_plan_epoch();
    }

    /// Cap the worker threads used to execute probe plans; `0` restores the
    /// default (available parallelism).
    pub fn set_probe_threads(&mut self, threads: usize) {
        self.probe_threads = threads;
    }

    /// Worker threads probe-plan execution may use: the explicit cap from
    /// [`Ensemble::set_probe_threads`], or the host default
    /// ([`deepdb_spn::default_threads`]) when unset.
    pub fn probe_thread_budget(&self) -> usize {
        if self.probe_threads > 0 {
            self.probe_threads
        } else {
            deepdb_spn::default_threads()
        }
    }

    /// The ensemble's persistent sweep worker pool. Probe-plan execution
    /// submits its fused sweeps here; the workers (and their pinned
    /// evaluator scratch) live as long as the ensemble and park idle
    /// between jobs.
    pub fn worker_pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Execute a [`crate::ProbePlan`]: one fused arena sweep per touched
    /// member with tiles spread over the probe-thread budget. Pure `&self`
    /// — updates keep the engines patched in place, and structural
    /// recompilation is the caller's explicit
    /// [`Ensemble::recompile_models`] maintenance call.
    pub fn execute_plan(&self, plan: &crate::ProbePlan) -> crate::ProbeResults {
        plan.execute(self)
    }

    /// Current plan-cache invalidation epoch. Bumped by
    /// [`Ensemble::recompile_models`] and every update/maintenance call;
    /// cache keys and [`crate::PreparedQuery`] handles embed it.
    pub fn plan_epoch(&self) -> u64 {
        self.plan_epoch.load(Ordering::Acquire)
    }

    fn bump_plan_epoch(&self) {
        self.plan_epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Advance the plan epoch through a shared reference, invalidating every
    /// cached plan artifact and outstanding [`crate::PreparedQuery`] without
    /// touching the models — the escape hatch for external model surgery
    /// and the chaos harness's mid-flight "maintenance landed" injection.
    /// Regular maintenance ([`Ensemble::recompile_models`], the update
    /// entry points) bumps the epoch itself; calling this as well is
    /// harmless (plans just go stale twice).
    pub fn invalidate_plans(&self) {
        self.bump_plan_epoch();
    }

    pub(crate) fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Hit/miss/eviction/occupancy counters of the plan cache.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// Resize the plan cache (`0` disables caching entirely — every query
    /// plans cold, with no lookup or bind-discovery overhead). Clears all
    /// entries and counters.
    pub fn set_plan_cache_capacity(&self, capacity: usize) {
        self.plan_cache.set_capacity(capacity);
    }

    /// Prepare a scalar aggregate query for repeated execution with varying
    /// literals: planning, translation, and literal-bind discovery happen
    /// once, then [`crate::PreparedQuery::execute`] rebinds literal slots in
    /// place and sweeps with zero planning work and zero steady-state
    /// allocations. See the [`crate::cache`] module docs for the lifecycle.
    pub fn prepare(&self, db: &Database, query: &Query) -> Result<PreparedQuery, DeepDbError> {
        crate::cache::prepare(self, db, query)
    }

    /// Insert a row into the database **and** absorb it into every affected
    /// RSPN (paper Algorithm 1 + §6.1 update protocol). The row is appended
    /// to `db` first; the model update follows, patching each affected
    /// member's compiled arena in place — the engines are never stale, so an
    /// interleaved update/query stream pays O(tree depth) per tuple instead
    /// of a full recompile per query.
    pub fn apply_insert(
        &mut self,
        db: &mut Database,
        table: TableId,
        values: &[Value],
    ) -> Result<(), DeepDbError> {
        db.table_mut(table).push_row(values)?;
        self.absorb_insert(db, table, values)
    }

    /// Insert a batch of rows into one table and absorb them into the
    /// models, fanning each member's accumulated tuple batch to it in one
    /// routed traversal (one weight renormalization per touched sum node for
    /// the whole batch). Bookkeeping (PK/factor caches, |J| maintenance,
    /// sampling decisions) runs row by row in insertion order, so the result
    /// is bitwise identical to the same sequence of
    /// [`Ensemble::apply_insert`] calls.
    pub fn apply_insert_batch(
        &mut self,
        db: &mut Database,
        table: TableId,
        rows: &[Vec<Value>],
    ) -> Result<(), DeepDbError> {
        let mut batches: Vec<Vec<Vec<f64>>> = vec![Vec::new(); self.rspns.len()];
        for values in rows {
            db.table_mut(table).push_row(values)?;
            self.bookkeep_insert(db, table, values, &mut batches)?;
        }
        self.fan_insert_batches(batches);
        Ok(())
    }

    /// Absorb an already-inserted row into the models. `db` must already
    /// contain the row (as its last row of `table`).
    pub fn absorb_insert(
        &mut self,
        db: &Database,
        table: TableId,
        values: &[Value],
    ) -> Result<(), DeepDbError> {
        let mut batches: Vec<Vec<Vec<f64>>> = vec![Vec::new(); self.rspns.len()];
        self.bookkeep_insert(db, table, values, &mut batches)?;
        self.fan_insert_batches(batches);
        Ok(())
    }

    /// Patch each member's tree + arena with its accumulated tuple batch.
    fn fan_insert_batches(&mut self, batches: Vec<Vec<Vec<f64>>>) {
        for (i, batch) in batches.into_iter().enumerate() {
            if !batch.is_empty() {
                self.rspns[i].insert_rows(&batch);
            }
        }
    }

    /// The non-model half of an insert: cache/|J| maintenance plus the
    /// sampled assembly of each affected member's join row(s), pushed into
    /// `batches` instead of applied immediately so callers can fold a whole
    /// batch into one model update per member.
    fn bookkeep_insert(
        &mut self,
        db: &Database,
        table: TableId,
        values: &[Value],
        batches: &mut [Vec<Vec<f64>>],
    ) -> Result<(), DeepDbError> {
        // (Index loop below: the body borrows `self` mutably for the RNG and
        // join-row assembly, so iterating `self.rspns` directly won't borrow.)
        self.bump_plan_epoch();
        self.updates_absorbed += 1;
        self.row_counts[table] += 1;
        let new_row = db.table(table).n_rows() - 1;

        // Maintain pk cache.
        if let Some(pk) = db.table(table).schema().primary_key() {
            if let Some(k) = values[pk].as_i64() {
                self.pk_caches
                    .entry(table)
                    .or_default()
                    .insert(k, new_row as u32);
            }
        }
        // Maintain factor caches; remember pre-increment factors for |J|.
        let mut old_parent_factor: HashMap<ForeignKey, u32> = HashMap::new();
        for fk in db.foreign_keys() {
            if fk.child_table == table {
                if let Some(k) = values[fk.child_col].as_i64() {
                    let entry = self
                        .factor_caches
                        .entry(*fk)
                        .or_default()
                        .entry(k)
                        .or_insert(0);
                    old_parent_factor.insert(*fk, *entry);
                    *entry += 1;
                }
            } else if fk.parent_table == table {
                if let Some(k) =
                    values[db.table(table).schema().primary_key().unwrap_or(0)].as_i64()
                {
                    self.factor_caches
                        .entry(*fk)
                        .or_default()
                        .entry(k)
                        .or_insert(0);
                }
            }
        }

        #[allow(clippy::needless_range_loop)]
        for i in 0..self.rspns.len() {
            if !self.rspns[i].tables().contains(&table) {
                continue;
            }
            // |J| bookkeeping.
            let n_tables = self.rspns[i].tables().len();
            if n_tables == 1 {
                self.rspns[i].bump_full_join_count(1);
            } else if n_tables == 2 {
                let internal = self.rspns[i].internal_edges().to_vec();
                let fk = internal[0];
                if fk.parent_table == table {
                    // New parent row appears once (NULL-padded).
                    self.rspns[i].bump_full_join_count(1);
                } else {
                    // New child row: replaces the padded row when it is the
                    // parent's first child, otherwise adds one.
                    let delta = i64::from(old_parent_factor.get(&fk).copied().unwrap_or(0) >= 1);
                    self.rspns[i].bump_full_join_count(delta);
                }
            } else {
                self.rspns[i].bump_full_join_count(1);
                self.rspns[i].mark_join_count_dirty();
            }

            // Sampled model update at the training sample rate. Rates above
            // one (oversampled small joins) insert multiple sample rows so
            // the per-tuple mass matches the training distribution.
            let copies = sampled_copies(self.rspns[i].sample_rate(), &mut self.update_rng);
            if copies > 0 {
                if let Some(row) = self.assemble_join_row(db, i, table, values) {
                    for _ in 0..copies {
                        batches[i].push(row.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Delete a row (by id) from the database **and** the models.
    pub fn apply_delete(
        &mut self,
        db: &mut Database,
        table: TableId,
        row: usize,
    ) -> Result<(), DeepDbError> {
        let values = db.table(table).row_values(row);
        // Model update first (needs parent rows still present in db).
        self.bump_plan_epoch();
        self.updates_absorbed += 1;
        self.row_counts[table] = self.row_counts[table].saturating_sub(1);

        let mut old_parent_factor: HashMap<ForeignKey, u32> = HashMap::new();
        for fk in db.foreign_keys() {
            if fk.child_table == table {
                if let Some(k) = values[fk.child_col].as_i64() {
                    if let Some(entry) = self.factor_caches.entry(*fk).or_default().get_mut(&k) {
                        old_parent_factor.insert(*fk, *entry);
                        *entry = entry.saturating_sub(1);
                    }
                }
            }
        }

        for i in 0..self.rspns.len() {
            if !self.rspns[i].tables().contains(&table) {
                continue;
            }
            let n_tables = self.rspns[i].tables().len();
            if n_tables == 1 {
                self.rspns[i].bump_full_join_count(-1);
            } else if n_tables == 2 {
                let fk = self.rspns[i].internal_edges()[0];
                if fk.parent_table == table {
                    self.rspns[i].bump_full_join_count(-1);
                } else {
                    let delta = -i64::from(old_parent_factor.get(&fk).copied().unwrap_or(0) > 1);
                    self.rspns[i].bump_full_join_count(delta);
                }
            } else {
                self.rspns[i].bump_full_join_count(-1);
                self.rspns[i].mark_join_count_dirty();
            }
            let copies = sampled_copies(self.rspns[i].sample_rate(), &mut self.update_rng);
            if copies > 0 {
                if let Some(join_row) = self.assemble_join_row(db, i, table, &values) {
                    for _ in 0..copies {
                        self.rspns[i].delete_row(&join_row);
                    }
                }
            }
        }

        // Physical delete + pk-cache repair (swap_remove moves the last row).
        if let Some(pk) = db.table(table).schema().primary_key() {
            if let Some(k) = values[pk].as_i64() {
                self.pk_caches.entry(table).or_default().remove(&k);
            }
            let last = db.table(table).n_rows() - 1;
            if row != last {
                if let Some(moved_key) = db.table(table).column(pk).i64_at(last) {
                    self.pk_caches
                        .entry(table)
                        .or_default()
                        .insert(moved_key, row as u32);
                }
            }
        }
        db.table_mut(table).swap_remove_row(row)?;
        Ok(())
    }

    /// Recompute exact full-outer-join counts for RSPNs whose incremental
    /// bookkeeping went stale (3+-table joins).
    pub fn refresh_join_counts(&mut self, db: &Database) -> Result<(), DeepDbError> {
        self.bump_plan_epoch();
        for rspn in &mut self.rspns {
            if rspn.join_count_dirty() {
                let tree = JoinTree::new(db, rspn.tables())?;
                rspn.set_full_join_count(tree.full_count());
            }
        }
        Ok(())
    }

    /// Assemble the full-outer-join row induced by inserting `values` into
    /// `table`, in the RSPN's column order: the tuple itself, its FK parents
    /// (transitively, within the RSPN's join tree), NULL elsewhere.
    fn assemble_join_row(
        &self,
        db: &Database,
        rspn_idx: usize,
        table: TableId,
        values: &[Value],
    ) -> Option<Vec<f64>> {
        let rspn = &self.rspns[rspn_idx];
        // Present tables: the tuple's table plus its ancestors via internal
        // FK edges (children of the new tuple cannot exist yet).
        let mut present: HashMap<TableId, RowSource<'_>> = HashMap::new();
        present.insert(table, RowSource::New(values));
        loop {
            let mut grown = false;
            for fk in rspn.internal_edges() {
                if present.contains_key(&fk.parent_table) {
                    continue;
                }
                let Some(child_src) = present.get(&fk.child_table) else {
                    continue;
                };
                let key = match child_src {
                    RowSource::New(vals) => vals[fk.child_col].as_i64(),
                    RowSource::Existing(t, r) => db.table(*t).column(fk.child_col).i64_at(*r),
                }?;
                let row = *self.pk_caches.get(&fk.parent_table)?.get(&key)?;
                present.insert(
                    fk.parent_table,
                    RowSource::Existing(fk.parent_table, row as usize),
                );
                grown = true;
            }
            if !grown {
                break;
            }
        }

        let mut out = Vec::with_capacity(rspn.columns().len());
        for meta in rspn.columns() {
            let v = match meta.role {
                JoinColumnRole::Data { table: t, col } => match present.get(&t) {
                    Some(RowSource::New(vals)) => vals[col].as_f64().unwrap_or(f64::NAN),
                    Some(RowSource::Existing(tt, r)) => db.table(*tt).column(col).f64_or_nan(*r),
                    None => f64::NAN,
                },
                JoinColumnRole::Indicator { table: t } => {
                    f64::from(u8::from(present.contains_key(&t)))
                }
                JoinColumnRole::TupleFactor { fk, clamped } => {
                    match present.get(&fk.parent_table) {
                        None => 1.0,
                        Some(src) => {
                            let pk_col = db
                                .table(fk.parent_table)
                                .schema()
                                .primary_key()
                                .unwrap_or(0);
                            let key = match src {
                                RowSource::New(vals) => vals[pk_col].as_i64(),
                                RowSource::Existing(t, r) => db.table(*t).column(pk_col).i64_at(*r),
                            };
                            let f = key
                                .and_then(|k| self.factor_caches.get(&fk).and_then(|m| m.get(&k)))
                                .copied()
                                .unwrap_or(0) as f64;
                            if clamped {
                                f.max(1.0)
                            } else {
                                f
                            }
                        }
                    }
                }
            };
            out.push(v);
        }
        Some(out)
    }
}

/// Number of sample-row copies one real tuple maps to at the given rate:
/// `floor(rate)` plus one more with probability `fract(rate)`.
fn sampled_copies(rate: f64, rng: &mut StdRng) -> usize {
    rate.floor() as usize + usize::from(rng.gen::<f64>() < rate.fract())
}

// ---------------------------------------------------------------------------
// Snapshots: ensembles persist like indexes (paper §2 likens offline ensemble
// creation to bulk-loading an index). Hand-rolled wire format, no serializer
// dependency. The update RNG is reseeded on load (it only drives sampling
// decisions).
// ---------------------------------------------------------------------------

const ENSEMBLE_MAGIC: &[u8; 5] = b"DENS1";

impl Ensemble {
    /// Serialize the ensemble (models, caches, and parameters).
    pub fn save(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        use deepdb_spn::wire::*;
        w.write_all(ENSEMBLE_MAGIC)?;
        write_u32(w, self.rspns.len() as u32)?;
        for rspn in &self.rspns {
            rspn.write_to(w)?;
        }
        write_u32(w, self.dependencies.len() as u32)?;
        for (&(a, b), &v) in &self.dependencies {
            write_u64(w, a as u64)?;
            write_u64(w, b as u64)?;
            write_f64(w, v)?;
        }
        write_u32(w, self.factor_caches.len() as u32)?;
        for (fk, map) in &self.factor_caches {
            for v in [fk.child_table, fk.child_col, fk.parent_table, fk.parent_col] {
                write_u64(w, v as u64)?;
            }
            write_u32(w, map.len() as u32)?;
            for (&k, &c) in map {
                write_i64(w, k)?;
                write_u32(w, c)?;
            }
        }
        write_u32(w, self.pk_caches.len() as u32)?;
        for (&t, map) in &self.pk_caches {
            write_u64(w, t as u64)?;
            write_u32(w, map.len() as u32)?;
            for (&k, &row) in map {
                write_i64(w, k)?;
                write_u32(w, row)?;
            }
        }
        write_u64s(w, &self.row_counts)?;
        // Parameters (needed so updates behave identically after a reload).
        let p = &self.params;
        write_u8(w, u8::from(p.strategy == EnsembleStrategy::Relational))?;
        write_f64(w, p.rdc_threshold)?;
        write_f64(w, p.budget_factor)?;
        write_u64(w, p.sample_size as u64)?;
        write_u64(w, p.correlation_sample as u64)?;
        write_u64(w, p.max_rspn_tables as u64)?;
        write_f64(w, p.spn.rdc_threshold)?;
        write_f64(w, p.spn.min_instance_ratio)?;
        write_u64(w, p.spn.rdc_sample_rows as u64)?;
        write_u64(w, p.spn.max_distinct_exact as u64)?;
        write_u64(w, p.spn.n_bins as u64)?;
        write_u64(w, p.spn.kmeans_iters as u64)?;
        write_u64(w, p.spn.max_depth as u64)?;
        write_u64(w, p.spn.seed)?;
        write_u64(w, p.seed)?;
        write_u64(w, self.updates_absorbed)
    }

    /// Deserialize an ensemble written by [`Ensemble::save`].
    pub fn load(r: &mut impl std::io::Read) -> std::io::Result<Ensemble> {
        use deepdb_spn::wire::*;
        let mut magic = [0u8; 5];
        r.read_exact(&mut magic)?;
        if &magic != ENSEMBLE_MAGIC {
            return Err(corrupt("ensemble magic"));
        }
        let n_rspns = read_u32(r)? as usize;
        if n_rspns > 1 << 12 {
            return Err(corrupt("rspn count"));
        }
        let rspns: Vec<Rspn> = (0..n_rspns)
            .map(|_| Rspn::read_from(r))
            .collect::<std::io::Result<_>>()?;
        let n_deps = read_u32(r)? as usize;
        let mut dependencies = HashMap::new();
        for _ in 0..n_deps {
            let a = read_u64(r)? as usize;
            let b = read_u64(r)? as usize;
            dependencies.insert((a, b), read_f64(r)?);
        }
        let n_fc = read_u32(r)? as usize;
        let mut factor_caches = HashMap::new();
        for _ in 0..n_fc {
            let fk = ForeignKey {
                child_table: read_u64(r)? as usize,
                child_col: read_u64(r)? as usize,
                parent_table: read_u64(r)? as usize,
                parent_col: read_u64(r)? as usize,
            };
            let n = read_u32(r)? as usize;
            // Cap the preallocation: `n` is attacker-/corruption-controlled
            // (up to u32::MAX); the map still grows to the real entry count,
            // but a bit-flipped length can no longer demand gigabytes up
            // front — it just runs into EOF below.
            let mut map = HashMap::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let k = read_i64(r)?;
                map.insert(k, read_u32(r)?);
            }
            factor_caches.insert(fk, map);
        }
        let n_pk = read_u32(r)? as usize;
        let mut pk_caches = HashMap::new();
        for _ in 0..n_pk {
            let t = read_u64(r)? as usize;
            let n = read_u32(r)? as usize;
            // Same corruption-bounded preallocation cap as factor caches.
            let mut map = HashMap::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let k = read_i64(r)?;
                map.insert(k, read_u32(r)?);
            }
            pk_caches.insert(t, map);
        }
        let row_counts = read_u64s(r)?;
        let strategy = if read_u8(r)? != 0 {
            EnsembleStrategy::Relational
        } else {
            EnsembleStrategy::SingleTables
        };
        let rdc_threshold = read_f64(r)?;
        let budget_factor = read_f64(r)?;
        let sample_size = read_u64(r)? as usize;
        let correlation_sample = read_u64(r)? as usize;
        let max_rspn_tables = read_u64(r)? as usize;
        let mut spn = SpnParams {
            rdc_threshold: read_f64(r)?,
            min_instance_ratio: read_f64(r)?,
            rdc_sample_rows: read_u64(r)? as usize,
            ..SpnParams::default()
        };
        spn.max_distinct_exact = read_u64(r)? as usize;
        spn.n_bins = read_u64(r)? as usize;
        spn.kmeans_iters = read_u64(r)? as usize;
        spn.max_depth = read_u64(r)? as usize;
        spn.seed = read_u64(r)?;
        let seed = read_u64(r)?;
        let updates_absorbed = read_u64(r)?;
        Ok(Ensemble {
            rspns,
            dependencies,
            factor_caches,
            pk_caches,
            row_counts,
            params: EnsembleParams {
                strategy,
                rdc_threshold,
                budget_factor,
                sample_size,
                correlation_sample,
                max_rspn_tables,
                spn,
                seed,
            },
            update_rng: StdRng::seed_from_u64(seed ^ 0x0BDA7E5),
            updates_absorbed,
            probe_threads: 0,
            pool: WorkerPool::new(),
            plan_epoch: AtomicU64::new(0),
            plan_cache: PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY),
        })
    }

    /// Convenience: save to a file path.
    pub fn save_to_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.save(&mut f)
    }

    /// Convenience: load from a file path.
    pub fn load_from_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Ensemble> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        Ensemble::load(&mut f)
    }
}

enum RowSource<'a> {
    New(&'a [Value]),
    Existing(TableId, usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::fixtures::{correlated_customer_order, paper_customer_order};

    fn small_params() -> EnsembleParams {
        EnsembleParams {
            sample_size: 8_000,
            correlation_sample: 1_500,
            ..EnsembleParams::default()
        }
    }

    #[test]
    fn base_ensemble_learns_joint_rspn_for_correlated_tables() {
        let db = correlated_customer_order(1500, 3);
        let ens = EnsembleBuilder::new(&db)
            .params(small_params())
            .build()
            .unwrap();
        // Region↔channel correlation is strong by construction → one joint RSPN.
        assert!(
            ens.rspns().iter().any(|r| r.tables().len() == 2),
            "expected a joint customer-orders RSPN; deps = {:?}",
            ens.dependency(0, 1)
        );
        assert!(ens.dependency(0, 1).unwrap() >= 0.3);
    }

    #[test]
    fn single_table_strategy_covers_every_table() {
        let db = correlated_customer_order(500, 5);
        let mut p = small_params();
        p.strategy = EnsembleStrategy::SingleTables;
        let ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
        assert_eq!(ens.rspns().len(), db.n_tables());
        assert!(ens.rspns().iter().all(|r| r.tables().len() == 1));
    }

    #[test]
    fn connected_subsets_enumerates_chains() {
        // chain a ← b ← c: only {a,b,c} at size 3.
        let mut db = Database::new("chain");
        db.create_table(deepdb_storage::TableSchema::new("a").pk("id"))
            .unwrap();
        db.create_table(
            deepdb_storage::TableSchema::new("b")
                .pk("id")
                .col("aid", deepdb_storage::Domain::Key),
        )
        .unwrap();
        db.create_table(
            deepdb_storage::TableSchema::new("c")
                .pk("id")
                .col("bid", deepdb_storage::Domain::Key),
        )
        .unwrap();
        db.add_foreign_key("b", "aid", "a").unwrap();
        db.add_foreign_key("c", "bid", "b").unwrap();
        let subs = connected_subsets(&db, 3, 3);
        assert_eq!(subs, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn inserts_update_counts_and_distributions() {
        let mut db = paper_customer_order();
        let mut params = small_params();
        params.sample_size = 5_000;
        params.rdc_threshold = 0.0; // force the joint RSPN on the tiny fixture
        let mut ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
        let joint = ens
            .rspns()
            .iter()
            .position(|r| r.tables().len() == 2)
            .unwrap();
        assert_eq!(ens.rspns()[joint].full_join_count(), 5);

        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        // New customer 4 (no orders): |J| grows by 1.
        ens.apply_insert(&mut db, c, &[Value::Int(4), Value::Int(33), Value::Int(1)])
            .unwrap();
        assert_eq!(ens.rspns()[joint].full_join_count(), 6);
        assert_eq!(ens.table_rows(c), 4);
        // First order of customer 2: replaces its padded row, |J| unchanged.
        ens.apply_insert(&mut db, o, &[Value::Int(5), Value::Int(2), Value::Int(0)])
            .unwrap();
        assert_eq!(ens.rspns()[joint].full_join_count(), 6);
        // Second order of customer 2: adds a row.
        ens.apply_insert(&mut db, o, &[Value::Int(6), Value::Int(2), Value::Int(1)])
            .unwrap();
        assert_eq!(ens.rspns()[joint].full_join_count(), 7);
        // Incremental bookkeeping must match an exact recount.
        let tree = JoinTree::new(&db, &[c, o]).unwrap();
        assert_eq!(tree.full_count(), 7);
        db.validate_integrity().unwrap();
    }

    #[test]
    fn delete_reverses_insert_bookkeeping() {
        let mut db = paper_customer_order();
        let mut params = small_params();
        params.rdc_threshold = 0.0;
        let mut ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
        let joint = ens
            .rspns()
            .iter()
            .position(|r| r.tables().len() == 2)
            .unwrap();
        let o = db.table_id("orders").unwrap();
        ens.apply_insert(&mut db, o, &[Value::Int(9), Value::Int(1), Value::Int(0)])
            .unwrap();
        assert_eq!(ens.rspns()[joint].full_join_count(), 6);
        let row = db.table(o).find_pk(9).unwrap();
        ens.apply_delete(&mut db, o, row).unwrap();
        assert_eq!(ens.rspns()[joint].full_join_count(), 5);
        assert_eq!(db.table(o).n_rows(), 4);
        db.validate_integrity().unwrap();
    }

    #[test]
    fn snapshot_round_trip_preserves_estimates_and_updates() {
        let db = correlated_customer_order(1200, 21);
        let mut params = small_params();
        params.rdc_threshold = 0.0;
        let original = EnsembleBuilder::new(&db).params(params).build().unwrap();

        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        let mut restored = Ensemble::load(&mut buf.as_slice()).unwrap();

        assert_eq!(original.rspns().len(), restored.rspns().len());
        assert_eq!(original.table_rows(0), restored.table_rows(0));
        // Identical estimates through the full compilation pipeline.
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = deepdb_storage::Query::count(vec![c, o]).filter(
            c,
            2,
            deepdb_storage::PredOp::Cmp(deepdb_storage::CmpOp::Eq, Value::Int(0)),
        );
        let a = crate::compile::estimate_count(&original, &db, &q).unwrap();
        let b = crate::compile::estimate_count(&restored, &db, &q).unwrap();
        assert_eq!(a.value, b.value);
        assert_eq!(a.variance, b.variance);
        // Restored ensembles keep absorbing updates.
        let mut db2 = db.clone();
        restored
            .apply_insert(
                &mut db2,
                o,
                &[
                    Value::Int(999_999),
                    Value::Int(1),
                    Value::Int(0),
                    Value::Float(5.0),
                ],
            )
            .unwrap();
        assert_eq!(restored.table_rows(o), original.table_rows(o) + 1);
    }

    #[test]
    fn snapshot_rejects_garbage() {
        assert!(Ensemble::load(&mut &b"not a snapshot"[..]).is_err());
    }

    #[test]
    fn optimized_ensemble_respects_budget_zero() {
        let db = correlated_customer_order(800, 9);
        let mut p = small_params();
        p.budget_factor = 0.0;
        let base = EnsembleBuilder::new(&db).params(p.clone()).build().unwrap();
        // Two-table schema: optimization can add nothing anyway, but budget 0
        // must never add RSPNs beyond the base plan.
        assert!(base.rspns().iter().all(|r| r.tables().len() <= 2));
    }
}
