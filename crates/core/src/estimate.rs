//! Point estimates with propagated variances (paper §5.1).
//!
//! Probabilistic query compilation expresses every answer as a product of
//! probabilities and conditional expectations. Each factor carries a
//! variance — binomial for probabilities, Koenig–Huygens standard error for
//! conditional expectations — and products combine with
//! `V(XY) = V(X)V(Y) + V(X)E(Y)² + V(Y)E(X)²` under the paper's independence
//! assumption. Assuming normality of the final estimator yields confidence
//! intervals.

/// A point estimate with an estimator variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    pub value: f64,
    pub variance: f64,
}

impl Estimate {
    /// An exactly-known constant.
    pub fn exact(value: f64) -> Self {
        Self {
            value,
            variance: 0.0,
        }
    }

    /// A probability factor `p` estimated from `n` training rows: binomial
    /// estimator variance `p(1-p)/n`.
    pub fn probability(p: f64, n: u64) -> Self {
        let p = p.clamp(0.0, 1.0);
        let var = if n == 0 {
            0.0
        } else {
            p * (1.0 - p) / n as f64
        };
        Self {
            value: p,
            variance: var,
        }
    }

    /// A conditional expectation `E(X|C)` with second moment `E(X²|C)`,
    /// estimated from `n_effective ≈ n·P(C)` rows: Koenig–Huygens variance
    /// over the effective sample.
    pub fn conditional_expectation(e: f64, e_sq: f64, n_effective: f64) -> Self {
        let var_x = (e_sq - e * e).max(0.0);
        let var = if n_effective >= 1.0 {
            var_x / n_effective
        } else {
            var_x
        };
        Self {
            value: e,
            variance: var,
        }
    }

    /// Product of independent estimates:
    /// `V(XY) = V(X)V(Y) + V(X)E(Y)² + V(Y)E(X)²`.
    pub fn product(self, other: Estimate) -> Estimate {
        Estimate {
            value: self.value * other.value,
            variance: self.variance * other.variance
                + self.variance * other.value * other.value
                + other.variance * self.value * self.value,
        }
    }

    /// Scale by an exact constant: variance scales by `c²`.
    pub fn scale(self, c: f64) -> Estimate {
        Estimate {
            value: self.value * c,
            variance: self.variance * c * c,
        }
    }

    /// Sum of independent estimates (used for difference-of-aggregates and
    /// group recombination).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Estimate) -> Estimate {
        Estimate {
            value: self.value + other.value,
            variance: self.variance + other.variance,
        }
    }

    /// Ratio `self / other`, propagating first-order (delta-method) variance.
    pub fn divide(self, other: Estimate) -> Estimate {
        if other.value.abs() < f64::EPSILON {
            return Estimate {
                value: 0.0,
                variance: self.variance,
            };
        }
        let value = self.value / other.value;
        let rel = self.variance / (self.value * self.value).max(f64::EPSILON)
            + other.variance / (other.value * other.value).max(f64::EPSILON);
        Estimate {
            value,
            variance: (value * value * rel).max(0.0),
        }
    }

    /// Guarded [`Estimate::divide`] for ratios whose denominator must carry
    /// actual support — the Theorem-2 conditional ratios of multi-RSPN
    /// combination. Returns `None` when the denominator is degenerate (zero
    /// within `f64::EPSILON`, NaN, or infinite — e.g. the overlap fraction
    /// of an extension step resolved to an empty estimate), so callers can
    /// surface a clean `NotAnswerable` instead of propagating NaN/∞ through
    /// the product chain. For well-supported denominators the result is
    /// bitwise identical to [`Estimate::divide`].
    pub fn try_divide(self, other: Estimate) -> Option<Estimate> {
        if !other.value.is_finite() || other.value.abs() < f64::EPSILON {
            return None;
        }
        Some(self.divide(other))
    }

    /// Standard deviation of the estimator.
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }

    /// Two-sided normal confidence interval at the given confidence level
    /// (e.g. 0.95).
    pub fn confidence_interval(&self, confidence: f64) -> (f64, f64) {
        let z = normal_quantile(0.5 + confidence.clamp(0.0, 0.9999) / 2.0);
        let half = z * self.std_dev();
        (self.value - half, self.value + half)
    }
}

/// Inverse standard-normal CDF (Acklam's rational approximation, |ε| < 1e-9).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&p) && p > 0.0,
        "quantile requires p in (0,1)"
    );
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_variance_is_binomial() {
        let e = Estimate::probability(0.25, 100);
        assert!((e.variance - 0.25 * 0.75 / 100.0).abs() < 1e-15);
        assert_eq!(Estimate::probability(0.5, 0).variance, 0.0);
    }

    #[test]
    fn product_of_exact_is_exact() {
        let a = Estimate::exact(3.0).product(Estimate::exact(4.0));
        assert_eq!(a.value, 12.0);
        assert_eq!(a.variance, 0.0);
    }

    #[test]
    fn product_variance_formula() {
        let x = Estimate {
            value: 2.0,
            variance: 0.1,
        };
        let y = Estimate {
            value: 5.0,
            variance: 0.2,
        };
        let p = x.product(y);
        assert!((p.value - 10.0).abs() < 1e-12);
        let want = 0.1 * 0.2 + 0.1 * 25.0 + 0.2 * 4.0;
        assert!((p.variance - want).abs() < 1e-12);
    }

    #[test]
    fn ci_contains_point_and_widens_with_variance() {
        let narrow = Estimate {
            value: 100.0,
            variance: 1.0,
        };
        let wide = Estimate {
            value: 100.0,
            variance: 25.0,
        };
        let (nl, nh) = narrow.confidence_interval(0.95);
        let (wl, wh) = wide.confidence_interval(0.95);
        assert!(nl < 100.0 && 100.0 < nh);
        assert!(wh - wl > nh - nl);
        // 95% CI half-width for σ=1 is ≈1.96.
        assert!((nh - 100.0 - 1.96).abs() < 0.01);
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-5);
    }

    #[test]
    fn divide_delta_method() {
        let num = Estimate {
            value: 10.0,
            variance: 1.0,
        };
        let den = Estimate {
            value: 2.0,
            variance: 0.0,
        };
        let r = num.divide(den);
        assert!((r.value - 5.0).abs() < 1e-12);
        // V(X/c) = V(X)/c².
        assert!((r.variance - 0.25).abs() < 1e-12);
        let zero = num.divide(Estimate::exact(0.0));
        assert_eq!(zero.value, 0.0);
    }

    #[test]
    fn try_divide_rejects_degenerate_denominators() {
        let num = Estimate {
            value: 10.0,
            variance: 1.0,
        };
        // Zero, NaN, and infinite denominators are all rejected instead of
        // producing 0/NaN/∞ ratios.
        assert!(num.try_divide(Estimate::exact(0.0)).is_none());
        assert!(num.try_divide(Estimate::exact(f64::NAN)).is_none());
        assert!(num.try_divide(Estimate::exact(f64::INFINITY)).is_none());
        assert!(num
            .try_divide(Estimate::exact(f64::EPSILON / 2.0))
            .is_none());
        // A supported denominator matches divide() bitwise.
        let den = Estimate {
            value: 2.0,
            variance: 0.25,
        };
        let a = num.try_divide(den).unwrap();
        let b = num.divide(den);
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.variance.to_bits(), b.variance.to_bits());
    }

    #[test]
    fn koenig_huygens_conditional_variance() {
        // X|C uniform on {0,1}: E=0.5, E(X²)=0.5, Var=0.25; n_eff=25 → 0.01.
        let e = Estimate::conditional_expectation(0.5, 0.5, 25.0);
        assert!((e.variance - 0.01).abs() < 1e-12);
    }
}
