//! Deferred probe plans: collect every SPN probe of a SQL query first, then
//! sweep each touched RSPN member exactly once.
//!
//! Probabilistic query compilation (paper §4) answers one SQL query with
//! many independent expectation probes — count fractions, probability
//! factors, squared moments, one numerator/denominator pair per AVG, and one
//! probe bundle per GROUP BY group. Classification (paper §4.3) adds a
//! second probe kind: **max-product MPE probes**, answered by the same arena
//! in the (max, ×) semiring. Issuing probes eagerly costs one arena pass per
//! call site; a [`ProbePlan`] inverts control instead:
//!
//! 1. **register** — call sites enqueue [`SpnQuery`] expectation probes
//!    ([`ProbePlan::register`]) and MPE probes ([`ProbePlan::register_mpe`])
//!    against an ensemble member index and hold on to the returned typed
//!    handles (plain indices; no borrow of the ensemble is kept);
//! 2. **fuse** — the plan groups probes by member, preserving registration
//!    order within each member and probe kind;
//! 3. **sweep** — [`ProbePlan::execute`] runs **one fused sweep per touched
//!    member** covering both probe kinds, with the tiles of all members
//!    load-balanced across the ensemble's **persistent worker pool**
//!    ([`deepdb_spn::WorkerPool`], owned by
//!    [`Ensemble`](crate::Ensemble)): workers keep pinned evaluator
//!    scratch, claim tiles off an atomic cursor, and park between plans, so
//!    repeated plan executions pay no spawn cost; members and tiles
//!    evaluate concurrently, results are bitwise identical for any thread
//!    count;
//! 4. **resolve** — handles index into the returned [`ProbeResults`]
//!    ([`ProbeResults::value`] for expectations, [`ProbeResults::mpe_value`]
//!    / [`ProbeResults::mpe_outcome`] for MPE probes).
//!
//! The per-query probe *count* is unchanged by planning; what drops is the
//! number of arena passes (one per touched member) and the wall-clock on
//! multi-member / multi-group / batched-prediction workloads, which now
//! scale across cores.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use deepdb_spn::{
    ActiveSet, CancelFlag, MpeOutcome, MpeProbe, SpnQuery, SweepJob, TileFaultFn, SWEEP_TILE,
};

use crate::ensemble::Ensemble;

/// Process-unique plan ids so a handle can never silently read another
/// plan's results.
static PLAN_IDS: AtomicU64 = AtomicU64::new(0);

/// Ticket for one registered expectation probe; redeem against the
/// [`ProbeResults`] of the plan that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeHandle {
    /// Plan that issued the handle (cross-plan lookups panic).
    plan: u64,
    /// Ensemble member (RSPN index) the probe runs against.
    member: usize,
    /// Position within that member's expectation-probe batch.
    slot: usize,
}

impl ProbeHandle {
    /// Ensemble member this probe targets.
    pub fn member(&self) -> usize {
        self.member
    }
}

/// Ticket for one registered max-product (MPE) probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpeHandle {
    plan: u64,
    member: usize,
    /// Position within that member's MPE-probe batch.
    slot: usize,
}

impl MpeHandle {
    /// Ensemble member this probe targets.
    pub fn member(&self) -> usize {
        self.member
    }
}

/// One member's deferred probes, both kinds, in registration order.
#[derive(Debug, Clone)]
struct MemberProbes {
    member: usize,
    expect: Vec<SpnQuery>,
    mpe: Vec<MpeProbe>,
}

impl MemberProbes {
    /// Union of the SPN columns any probe in this batch constrains or
    /// targets, sorted ascending — the column set a pruned sweep of this
    /// member must keep active. Literal-independent: rebinding a plan's
    /// literals never changes which columns carry slots, so the set (and any
    /// [`ActiveSet`] derived from it) is valid across rebinds of the same
    /// shape.
    fn constrained_columns(&self) -> Vec<usize> {
        let mut cols = std::collections::BTreeSet::new();
        for q in &self.expect {
            cols.extend(q.active_columns());
        }
        for p in &self.mpe {
            cols.extend(p.query.active_columns());
            // The target leaf must stay active so the max-product aux
            // tracking sees it; pruned subtrees then never hold the target.
            cols.insert(p.target);
        }
        cols.into_iter().collect()
    }
}

/// A batch of deferred probes, grouped by RSPN member.
#[derive(Debug, Clone)]
pub struct ProbePlan {
    id: u64,
    /// Per-member batches in first-registration order of the member.
    members: Vec<MemberProbes>,
}

impl Default for ProbePlan {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbePlan {
    pub fn new() -> Self {
        Self {
            id: PLAN_IDS.fetch_add(1, Ordering::Relaxed),
            members: Vec::new(),
        }
    }

    fn member_entry(&mut self, member: usize) -> &mut MemberProbes {
        match self.members.iter().position(|m| m.member == member) {
            Some(i) => &mut self.members[i],
            None => {
                self.members.push(MemberProbes {
                    member,
                    expect: Vec::new(),
                    mpe: Vec::new(),
                });
                self.members.last_mut().expect("just pushed")
            }
        }
    }

    /// Enqueue one expectation probe against ensemble member `member`; the
    /// handle resolves to its value after [`ProbePlan::execute`].
    pub fn register(&mut self, member: usize, probe: SpnQuery) -> ProbeHandle {
        let plan = self.id;
        let entry = self.member_entry(member);
        entry.expect.push(probe);
        ProbeHandle {
            plan,
            member,
            slot: entry.expect.len() - 1,
        }
    }

    /// Enqueue one max-product probe (most probable value of SPN column
    /// `target` given the evidence in `probe`) against member `member`. The
    /// probe rides the **same fused sweep** as the member's expectation
    /// probes — a classification batch costs no extra arena passes.
    pub fn register_mpe(&mut self, member: usize, target: usize, probe: SpnQuery) -> MpeHandle {
        let plan = self.id;
        let entry = self.member_entry(member);
        entry.mpe.push(MpeProbe::new(target, probe));
        MpeHandle {
            plan,
            member,
            slot: entry.mpe.len() - 1,
        }
    }

    /// Total probes registered so far (both kinds).
    pub fn n_probes(&self) -> usize {
        self.members
            .iter()
            .map(|m| m.expect.len() + m.mpe.len())
            .sum()
    }

    /// Distinct ensemble members the plan touches.
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// Member indices the plan touches, in first-registration order —
    /// accounting for tests/benches that assert how a query's probes (e.g.
    /// all steps of a Case-3 combine plan) fan out across the ensemble.
    pub fn members(&self) -> Vec<usize> {
        self.members.iter().map(|m| m.member).collect()
    }

    /// Probes registered against one member (both kinds) — 0 if the plan
    /// does not touch it.
    pub fn probes_for_member(&self, member: usize) -> usize {
        self.members
            .iter()
            .find(|m| m.member == member)
            .map_or(0, |m| m.expect.len() + m.mpe.len())
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Execute the plan: one fused arena sweep per touched member, tiles
    /// parallelized over the ensemble's probe-thread budget. Every member's
    /// engine must be compiled — updates patch the arenas in place, so this
    /// holds in steady state; after a structural invalidation run the
    /// explicit maintenance call [`Ensemble::recompile_models`] first.
    pub fn execute(&self, ens: &Ensemble) -> ProbeResults {
        self.execute_with_threads(ens, ens.probe_thread_budget())
    }

    /// Like [`ProbePlan::execute`] with an explicit worker-thread cap
    /// (`0` = the ensemble's budget). `threads <= 1` runs inline; results
    /// are identical either way.
    pub fn execute_with_threads(&self, ens: &Ensemble, threads: usize) -> ProbeResults {
        self.execute_guarded(ens, threads, None, None)
    }

    /// Like [`ProbePlan::execute_with_threads`], with serving hooks: a
    /// cooperative [`CancelFlag`] checked at every tile claim (deadline
    /// enforcement — a cancelled execution's outputs are garbage, so the
    /// caller must check the flag before trusting them) and a
    /// deterministic tile fault hook (chaos testing). With both `None`
    /// this *is* `execute_with_threads`, bitwise.
    pub fn execute_guarded(
        &self,
        ens: &Ensemble,
        threads: usize,
        cancel: Option<&CancelFlag>,
        fault: Option<&TileFaultFn<'_>>,
    ) -> ProbeResults {
        let mut results: Vec<MemberResults> = self
            .members
            .iter()
            .map(|m| MemberResults {
                member: m.member,
                values: vec![0.0; m.expect.len()],
                mpe: vec![MpeOutcome::default(); m.mpe.len()],
            })
            .collect();
        let threads = if threads == 0 {
            ens.probe_thread_budget()
        } else {
            threads
        };
        // Waking workers is only worth it once there is more than one
        // tile's worth of work — tiny plans (scalar COUNT/AVG/SUM bundles,
        // single predictions, even across several members) run inline.
        let threads = if self.n_probes() <= SWEEP_TILE {
            1
        } else {
            threads
        };
        // Query-scoped pruning: sweep only the sub-DAG whose scope
        // intersects the batch's constrained/target columns, seeding the
        // boundary from the arena's neutral tables (bitwise identical to the
        // full sweep). The active sets are shape-keyed in the plan cache, so
        // the steady-state serving path pays no per-query discovery; with
        // the cache disabled the cold path stays honest and sweeps in full.
        let actives: Vec<Option<Arc<ActiveSet>>> = if ens.plan_cache().enabled() {
            self.members
                .iter()
                .map(|m| {
                    Some(crate::cache::active_set_for(
                        ens,
                        m.member,
                        &m.constrained_columns(),
                    ))
                })
                .collect()
        } else {
            vec![None; self.members.len()]
        };
        let jobs: Vec<SweepJob<'_>> = self
            .members
            .iter()
            .zip(results.iter_mut())
            .zip(actives.iter())
            .map(|((m, r), a)| SweepJob {
                spn: ens.rspns()[m.member].engine(),
                queries: &m.expect,
                out: &mut r.values,
                mpe: &m.mpe,
                mpe_out: &mut r.mpe,
                cancel,
                fault,
                active: a.as_deref(),
            })
            .collect();
        ens.worker_pool().sweep(jobs, threads);
        ProbeResults {
            plan: self.id,
            members: results,
        }
    }

    /// Cross-query fusion: append every probe of `other` into this plan's
    /// per-member batches, returning a [`PlanStitch`] that records where
    /// each of `other`'s per-member slices landed. After executing `self`
    /// once (one fused sweep per touched member covering *all* absorbed
    /// clients), [`ProbeResults::extract`] demuxes a per-client
    /// `ProbeResults` whose plan id is `other.id` — so handles and
    /// resolvers issued against `other` resolve against it unchanged.
    ///
    /// Registration order within each member is preserved per client, and
    /// a probe's value depends only on its own `SpnQuery` and the semiring
    /// sweep (never on batch-mates), so the fused values are bitwise
    /// identical to executing `other` alone.
    pub(crate) fn absorb(&mut self, other: &ProbePlan) -> PlanStitch {
        let mut parts = Vec::with_capacity(other.members.len());
        for m in &other.members {
            let entry = self.member_entry(m.member);
            parts.push(StitchPart {
                member: m.member,
                expect_off: entry.expect.len(),
                expect_len: m.expect.len(),
                mpe_off: entry.mpe.len(),
                mpe_len: m.mpe.len(),
            });
            entry.expect.extend(m.expect.iter().cloned());
            entry.mpe.extend(m.mpe.iter().cloned());
        }
        PlanStitch {
            plan: other.id,
            parts,
        }
    }

    /// Whether two plans have identical probe *structure*: same member
    /// sequence, same per-member probe counts, and pairwise shape-equal
    /// expectation probes ([`SpnQuery::same_shape`]) — everything except the
    /// literal `f64` values. Layout-equal plans expose identical
    /// [`ProbePlan::flat_literals`] walks, which is what lets the plan cache
    /// diff two builds of the same query shape and record literal binds.
    pub(crate) fn same_layout(&self, other: &ProbePlan) -> bool {
        self.members.len() == other.members.len()
            && self.members.iter().zip(&other.members).all(|(a, b)| {
                a.member == b.member
                    && a.expect.len() == b.expect.len()
                    && a.mpe.len() == b.mpe.len()
                    && a.expect.iter().zip(&b.expect).all(|(x, y)| x.same_shape(y))
            })
    }

    /// Append every literal of every expectation probe to `out`, in the
    /// canonical flat order: members in first-registration order, probes in
    /// registration order, literals in [`SpnQuery::for_each_literal`] order.
    pub(crate) fn flat_literals(&self, out: &mut Vec<f64>) {
        for m in &self.members {
            for q in &m.expect {
                q.for_each_literal(|v| out.push(v));
            }
        }
    }

    /// Overwrite bound literal slots in place: `binds` maps flat literal
    /// positions (the [`ProbePlan::flat_literals`] order) to indices into
    /// `literals`, sorted ascending by position. Unbound positions (plan
    /// constants: ±∞ range endpoints, join-indicator values, translated
    /// representatives) are left untouched. Allocation-free.
    pub(crate) fn rebind_literals(&mut self, binds: &[(u32, u32)], literals: &[f64]) {
        let mut next = 0usize;
        let mut pos = 0u32;
        for m in &mut self.members {
            for q in &mut m.expect {
                q.for_each_literal_mut(|slot| {
                    if next < binds.len() && binds[next].0 == pos {
                        *slot = literals[binds[next].1 as usize];
                        next += 1;
                    }
                    pos += 1;
                });
            }
        }
        debug_assert_eq!(next, binds.len(), "bind positions out of range");
    }

    /// A pre-sized result holder for [`ProbePlan::execute_into`] — allocate
    /// once at prepare time, reuse for every execution.
    pub(crate) fn blank_results(&self) -> ProbeResults {
        ProbeResults {
            plan: self.id,
            members: self
                .members
                .iter()
                .map(|m| MemberResults {
                    member: m.member,
                    values: vec![0.0; m.expect.len()],
                    mpe: vec![MpeOutcome::default(); m.mpe.len()],
                })
                .collect(),
        }
    }

    /// Execute the plan inline on the calling thread into pre-sized
    /// `results`, reusing grow-only sweep scratch: the zero-allocation hot
    /// path of a [`PreparedQuery`](crate::PreparedQuery). One fused sweep
    /// per touched member, each member owning its own [`InlineSweep`] so the
    /// leaf-value tables keep their per-model shape across executions
    /// (sharing one table across differently-shaped models would realloc on
    /// every alternation). Bitwise identical to [`ProbePlan::execute`] (the
    /// per-tile arithmetic is shared with the pooled path).
    /// `actives` carries one pruning [`ActiveSet`] per plan member in member
    /// order (as built by [`ProbePlan::member_columns`] at prepare time);
    /// empty means sweep every member in full.
    pub(crate) fn execute_into(
        &self,
        ens: &Ensemble,
        sweeps: &mut Vec<deepdb_spn::InlineSweep>,
        actives: &[Arc<ActiveSet>],
        results: &mut ProbeResults,
    ) {
        assert_eq!(results.plan, self.id, "results belong to a different plan");
        debug_assert!(
            actives.is_empty() || actives.len() == self.members.len(),
            "active sets must align with plan members"
        );
        if sweeps.len() < self.members.len() {
            sweeps.resize_with(self.members.len(), deepdb_spn::InlineSweep::new);
        }
        for (i, ((m, r), sweep)) in self
            .members
            .iter()
            .zip(results.members.iter_mut())
            .zip(sweeps.iter_mut())
            .enumerate()
        {
            sweep.sweep(
                ens.rspns()[m.member].engine(),
                &m.expect,
                &mut r.values,
                &m.mpe,
                &mut r.mpe,
                actives.get(i).map(|a| a.as_ref()),
            );
        }
    }

    /// `(member, constrained-column union)` per plan member, in member
    /// order — the inputs a caller needs to pin one [`ActiveSet`] per member
    /// (e.g. a prepared query at prepare time).
    pub(crate) fn member_columns(&self) -> Vec<(usize, Vec<usize>)> {
        self.members
            .iter()
            .map(|m| (m.member, m.constrained_columns()))
            .collect()
    }
}

/// One absorbed client's footprint inside one member batch of a fused
/// serving plan.
#[derive(Debug, Clone)]
struct StitchPart {
    member: usize,
    expect_off: usize,
    expect_len: usize,
    mpe_off: usize,
    mpe_len: usize,
}

/// Where one absorbed client plan's probes landed inside a fused serving
/// plan — the demux map consumed by [`ProbeResults::extract`].
#[derive(Debug, Clone)]
pub(crate) struct PlanStitch {
    /// Id of the absorbed (client) plan; extracted results carry it.
    plan: u64,
    parts: Vec<StitchPart>,
}

#[derive(Debug, Clone)]
struct MemberResults {
    member: usize,
    values: Vec<f64>,
    mpe: Vec<MpeOutcome>,
}

/// Resolved probe values, indexed by [`ProbeHandle`] / [`MpeHandle`].
#[derive(Debug, Clone)]
pub struct ProbeResults {
    plan: u64,
    members: Vec<MemberResults>,
}

impl ProbeResults {
    /// Value of a registered expectation probe. Panics if the handle was
    /// issued by a different plan.
    pub fn value(&self, h: ProbeHandle) -> f64 {
        *self.lookup(h)
    }

    /// Most probable value resolved by a registered MPE probe (`None` when
    /// the model holds no leaf for the target, or that leaf is empty).
    pub fn mpe_value(&self, h: MpeHandle) -> Option<f64> {
        self.mpe_outcome(h).value
    }

    /// Full outcome (max-product evidence score + value) of an MPE probe.
    pub fn mpe_outcome(&self, h: MpeHandle) -> MpeOutcome {
        assert_eq!(
            h.plan, self.plan,
            "MPE handle {h:?} was issued by a different plan"
        );
        self.members
            .iter()
            .find(|m| m.member == h.member)
            .and_then(|m| m.mpe.get(h.slot))
            .copied()
            .unwrap_or_else(|| panic!("MPE handle {h:?} does not belong to these results"))
    }

    /// Demux one absorbed client's slice of a fused serving sweep back into
    /// a standalone `ProbeResults` carrying the client plan's id — the
    /// client's own handles and resolvers index it directly.
    pub(crate) fn extract(&self, stitch: &PlanStitch) -> ProbeResults {
        let members = stitch
            .parts
            .iter()
            .map(|p| {
                let m = self
                    .members
                    .iter()
                    .find(|m| m.member == p.member)
                    .expect("stitch member missing from fused results");
                MemberResults {
                    member: p.member,
                    values: m.values[p.expect_off..p.expect_off + p.expect_len].to_vec(),
                    mpe: m.mpe[p.mpe_off..p.mpe_off + p.mpe_len].to_vec(),
                }
            })
            .collect();
        ProbeResults {
            plan: stitch.plan,
            members,
        }
    }

    fn lookup(&self, h: ProbeHandle) -> &f64 {
        assert_eq!(
            h.plan, self.plan,
            "probe handle {h:?} was issued by a different plan"
        );
        self.members
            .iter()
            .find(|m| m.member == h.member)
            .and_then(|m| m.values.get(h.slot))
            .unwrap_or_else(|| panic!("probe handle {h:?} does not belong to these results"))
    }
}

impl std::ops::Index<ProbeHandle> for ProbeResults {
    type Output = f64;

    fn index(&self, h: ProbeHandle) -> &f64 {
        self.lookup(h)
    }
}
