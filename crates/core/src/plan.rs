//! Deferred probe plans: collect every SPN probe of a SQL query first, then
//! sweep each touched RSPN member exactly once.
//!
//! Probabilistic query compilation (paper §4) answers one SQL query with
//! many independent expectation probes — count fractions, probability
//! factors, squared moments, one numerator/denominator pair per AVG, and one
//! probe bundle per GROUP BY group. Issuing them eagerly costs one arena
//! pass per call site; a [`ProbePlan`] inverts control instead:
//!
//! 1. **register** — call sites enqueue [`SpnQuery`] probes against an
//!    ensemble member index and hold on to the returned [`ProbeHandle`]s
//!    (plain indices; no borrow of the ensemble is kept);
//! 2. **fuse** — the plan groups probes by member, preserving registration
//!    order within each member;
//! 3. **sweep** — [`ProbePlan::execute`] runs **one fused
//!    [`deepdb_spn::BatchEvaluator`] sweep per touched member**, with the
//!    tiles of all members load-balanced across a scoped worker pool
//!    ([`deepdb_spn::sweep_models`]); members and tiles evaluate
//!    concurrently, results are bitwise identical for any thread count;
//! 4. **resolve** — handles index into the returned [`ProbeResults`].
//!
//! The per-query probe *count* is unchanged by planning; what drops is the
//! number of arena passes (one per touched member) and the wall-clock on
//! multi-member / multi-group workloads, which now scale across cores.

use std::sync::atomic::{AtomicU64, Ordering};

use deepdb_spn::{sweep_models, SpnQuery, SweepJob, SWEEP_TILE};

use crate::ensemble::Ensemble;

/// Process-unique plan ids so a handle can never silently read another
/// plan's results.
static PLAN_IDS: AtomicU64 = AtomicU64::new(0);

/// Ticket for one registered probe; redeem against the [`ProbeResults`] of
/// the plan that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeHandle {
    /// Plan that issued the handle (cross-plan lookups panic).
    plan: u64,
    /// Ensemble member (RSPN index) the probe runs against.
    member: usize,
    /// Position within that member's probe batch.
    slot: usize,
}

impl ProbeHandle {
    /// Ensemble member this probe targets.
    pub fn member(&self) -> usize {
        self.member
    }
}

/// A batch of deferred probes, grouped by RSPN member.
#[derive(Debug, Clone)]
pub struct ProbePlan {
    id: u64,
    /// `(member, probes)` in first-registration order of the member.
    members: Vec<(usize, Vec<SpnQuery>)>,
}

impl Default for ProbePlan {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbePlan {
    pub fn new() -> Self {
        Self {
            id: PLAN_IDS.fetch_add(1, Ordering::Relaxed),
            members: Vec::new(),
        }
    }

    /// Enqueue one probe against ensemble member `member`; the handle
    /// resolves to its value after [`ProbePlan::execute`].
    pub fn register(&mut self, member: usize, probe: SpnQuery) -> ProbeHandle {
        let entry = match self.members.iter().position(|(m, _)| *m == member) {
            Some(i) => &mut self.members[i],
            None => {
                self.members.push((member, Vec::new()));
                self.members.last_mut().expect("just pushed")
            }
        };
        entry.1.push(probe);
        ProbeHandle {
            plan: self.id,
            member,
            slot: entry.1.len() - 1,
        }
    }

    /// Total probes registered so far.
    pub fn n_probes(&self) -> usize {
        self.members.iter().map(|(_, p)| p.len()).sum()
    }

    /// Distinct ensemble members the plan touches.
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Execute the plan: one fused arena sweep per touched member, tiles
    /// parallelized over the ensemble's probe-thread budget. Every member's
    /// engine must be compiled (the public query entry points call
    /// [`Ensemble::recompile_models`] first; external callers can use
    /// [`Ensemble::execute_plan`], which does it for them).
    pub fn execute(&self, ens: &Ensemble) -> ProbeResults {
        self.execute_with_threads(ens, ens.probe_thread_budget())
    }

    /// Like [`ProbePlan::execute`] with an explicit worker-thread cap.
    /// `threads <= 1` runs inline; results are identical either way.
    pub fn execute_with_threads(&self, ens: &Ensemble, threads: usize) -> ProbeResults {
        let mut results: Vec<(usize, Vec<f64>)> = self
            .members
            .iter()
            .map(|(m, probes)| (*m, vec![0.0; probes.len()]))
            .collect();
        // Spawning is only worth it once there is more than one tile's worth
        // of work — tiny plans (scalar COUNT/AVG/SUM bundles, even across
        // several members) run inline.
        let threads = if self.n_probes() <= SWEEP_TILE {
            1
        } else {
            threads
        };
        let jobs: Vec<SweepJob<'_>> = self
            .members
            .iter()
            .zip(results.iter_mut())
            .map(|((m, probes), (_, out))| SweepJob {
                spn: ens.rspns()[*m].engine(),
                queries: probes,
                out,
            })
            .collect();
        sweep_models(jobs, threads);
        ProbeResults {
            plan: self.id,
            members: results,
        }
    }
}

/// Resolved probe values, indexed by [`ProbeHandle`].
#[derive(Debug, Clone)]
pub struct ProbeResults {
    plan: u64,
    members: Vec<(usize, Vec<f64>)>,
}

impl ProbeResults {
    /// Value of a registered probe. Panics if the handle was issued by a
    /// different plan.
    pub fn value(&self, h: ProbeHandle) -> f64 {
        *self.lookup(h)
    }

    fn lookup(&self, h: ProbeHandle) -> &f64 {
        assert_eq!(
            h.plan, self.plan,
            "probe handle {h:?} was issued by a different plan"
        );
        self.members
            .iter()
            .find(|(m, _)| *m == h.member)
            .and_then(|(_, vals)| vals.get(h.slot))
            .unwrap_or_else(|| panic!("probe handle {h:?} does not belong to these results"))
    }
}

impl std::ops::Index<ProbeHandle> for ProbeResults {
    type Output = f64;

    fn index(&self, h: ProbeHandle) -> &f64 {
        self.lookup(h)
    }
}
