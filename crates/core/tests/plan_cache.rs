//! Plan-cache and prepared-query correctness suite.
//!
//! The cache's contract is **bitwise transparency**: for every supported
//! query, (a) a cold plan (cache disabled), (b) the miss that inserts the
//! artifact, (c) a hit that rebinds a cached artifact with *different
//! literal history*, and (d) a [`deepdb_core::PreparedQuery`] execution must
//! all produce bit-identical estimates — across randomized predicates
//! (NULLs included) and Case-3 multi-RSPN combination. On top of that:
//! hit/miss accounting ([`deepdb_core::CacheStats`]) and epoch-based
//! invalidation (a stale plan is never reused; outstanding prepared queries
//! fail with `StalePlan`).

use std::sync::{Mutex, MutexGuard, OnceLock};

use deepdb_core::compile::{
    estimate_avg, estimate_count, estimate_count_disjunction, estimate_sum,
};
use deepdb_core::{
    execute_aqp, query_literals, DeepDbError, Ensemble, EnsembleBuilder, EnsembleParams,
    EnsembleStrategy, Estimate,
};
use deepdb_storage::fixtures::correlated_customer_order;
use deepdb_storage::{Aggregate, CmpOp, ColumnRef, Database, PredOp, Predicate, Query, Value};
use proptest::prelude::*;

/// Tests that toggle the shared ensemble's cache capacity serialize through
/// this lock so a concurrent test never observes the wrong cache state.
fn capacity_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Two single-table members: two-table queries exercise Case-3 combination.
fn single_tables() -> &'static (Database, Ensemble) {
    static CELL: OnceLock<(Database, Ensemble)> = OnceLock::new();
    CELL.get_or_init(|| {
        let db = correlated_customer_order(1200, 77);
        let params = EnsembleParams {
            strategy: EnsembleStrategy::SingleTables,
            sample_size: 10_000,
            correlation_sample: 1_000,
            ..EnsembleParams::default()
        };
        let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
        (db, ens)
    })
}

fn fresh_ensemble(seed: u64) -> (Database, Ensemble) {
    let db = correlated_customer_order(800, seed);
    let params = EnsembleParams {
        strategy: EnsembleStrategy::SingleTables,
        sample_size: 8_000,
        correlation_sample: 800,
        ..EnsembleParams::default()
    };
    let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
    (db, ens)
}

/// Build one randomized predicate from a spec tuple. Columns: customer.1
/// (c_age, discrete), customer.2 (c_region, categorical), orders.2
/// (o_channel), orders.3 (o_amount, continuous). `op_kind` cycles through
/// comparison / BETWEEN / IN / NULL shapes, with occasional NULL literals.
fn spec_predicate(two_tables: bool, spec: (u8, u8, i64, i64)) -> Predicate {
    let (col_sel, op_kind, a, b) = spec;
    let (table, column, lo, hi) = match col_sel % if two_tables { 4 } else { 2 } {
        0 => (0, 1, 18i64, 90i64), // c_age
        1 => (0, 2, 0, 2),         // c_region
        2 => (1, 2, 0, 1),         // o_channel
        _ => (1, 3, 0, 400),       // o_amount
    };
    let clamp = |v: i64| Value::Int(lo + v.rem_euclid(hi - lo + 1));
    let op = match op_kind % 8 {
        0 => PredOp::Cmp(CmpOp::Eq, clamp(a)),
        1 => PredOp::Cmp(CmpOp::Le, clamp(a)),
        2 => PredOp::Cmp(CmpOp::Ge, clamp(a)),
        3 => PredOp::Between(clamp(a.min(b)), clamp(a.max(b))),
        4 => PredOp::In(vec![clamp(a), clamp(b), Value::Null]),
        5 => PredOp::IsNotNull,
        6 => PredOp::IsNull,
        // NULL literal in a comparison: SQL-unknown, structurally distinct.
        _ => PredOp::Cmp(CmpOp::Eq, Value::Null),
    };
    Predicate::new(table, column, op)
}

/// Vary only the literals of a predicate (same shape, shifted values) — the
/// "different literal history" used to poison cached artifacts before
/// re-running the original query.
fn shift_literals(p: &Predicate) -> Predicate {
    let bump = |v: &Value| match v {
        Value::Null => Value::Null,
        Value::Int(i) => Value::Int(i + 1),
        Value::Float(f) => Value::Float(f + 1.0),
    };
    let op = match &p.op {
        PredOp::Cmp(op, v) => PredOp::Cmp(*op, bump(v)),
        PredOp::Between(lo, hi) => PredOp::Between(bump(lo), bump(hi)),
        PredOp::In(vs) => PredOp::In(vs.iter().map(bump).collect()),
        other => other.clone(),
    };
    Predicate::new(p.table, p.column, op)
}

/// Assert cold ≡ miss ≡ hit-after-different-literals ≡ prepared, bitwise.
fn assert_transparent(
    db: &Database,
    ens: &Ensemble,
    query: &Query,
    run: impl Fn(&Ensemble) -> Result<Estimate, DeepDbError>,
) {
    // Cold reference: cache disabled entirely.
    ens.set_plan_cache_capacity(0);
    let cold = run(ens);
    ens.set_plan_cache_capacity(256);

    // Miss (inserts the artifact), then poison the entry's literal history
    // with a same-shape different-literal query, then a true hit.
    let miss = run(ens);
    let mut shifted = query.clone();
    shifted.predicates = query.predicates.iter().map(shift_literals).collect();
    let _ = run_shifted(ens, db, &shifted, query);
    let hit = run(ens);

    match (&cold, &miss, &hit) {
        (Ok(c), Ok(m), Ok(h)) => {
            assert_eq!(c.value.to_bits(), m.value.to_bits(), "miss != cold");
            assert_eq!(c.variance.to_bits(), m.variance.to_bits());
            assert_eq!(c.value.to_bits(), h.value.to_bits(), "hit != cold");
            assert_eq!(c.variance.to_bits(), h.variance.to_bits());
        }
        (Err(_), Err(_), Err(_)) => {}
        other => panic!("cold/miss/hit disagree on success: {other:?}"),
    }

    // Prepared execution (scalar aggregates only, answerable queries only).
    if let (true, Ok(want)) = (query.group_by.is_empty(), &cold) {
        let mut prepared = ens.prepare(db, query).expect("valid query prepares");
        let lits = query_literals(query);
        for round in 0..2 {
            let got = prepared.execute(ens, db, &lits).unwrap();
            assert_eq!(
                got.value.to_bits(),
                want.value.to_bits(),
                "prepared round {round} != cold"
            );
            assert_eq!(got.variance.to_bits(), want.variance.to_bits());
        }
    }
}

/// Run the shifted-literal twin through the same entry point (ignoring its
/// result — it exists only to overwrite the cached artifact's literals).
fn run_shifted(ens: &Ensemble, db: &Database, shifted: &Query, original: &Query) -> Option<f64> {
    let r = match original.aggregate {
        Aggregate::CountStar => estimate_count(ens, db, shifted),
        Aggregate::Avg(_) => estimate_avg(ens, db, shifted),
        Aggregate::Sum(_) => estimate_sum(ens, db, shifted),
    };
    r.ok().map(|e| e.value)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// COUNT over one or two tables (two tables = Case-3 combination on the
    /// single-table ensemble): cold ≡ miss ≡ hit ≡ prepared, bitwise, under
    /// randomized predicates including NULL literals and NULL-op shapes.
    #[test]
    fn count_cache_is_bitwise_transparent(
        two_tables_sel in 0u8..2,
        specs in prop::collection::vec((0u8..8, 0u8..8, -5i64..500, -5i64..500), 0..4),
    ) {
        let _guard = capacity_lock();
        let two_tables = two_tables_sel == 1;
        let (db, ens) = single_tables();
        let mut q = Query::count(if two_tables { vec![0, 1] } else { vec![0] });
        for &s in &specs {
            q.predicates.push(spec_predicate(two_tables, s));
        }
        assert_transparent(db, ens, &q, |e| estimate_count(e, db, &q));
    }

    /// AVG and SUM artifacts (fused count/avg bundles) stay transparent.
    #[test]
    fn avg_sum_cache_is_bitwise_transparent(
        sum_sel in 0u8..2,
        specs in prop::collection::vec((0u8..8, 0u8..6, -5i64..500, -5i64..500), 0..3),
    ) {
        let _guard = capacity_lock();
        let sum = sum_sel == 1;
        let (db, ens) = single_tables();
        let target = ColumnRef { table: 1, column: 3 };
        let agg = if sum { Aggregate::Sum(target) } else { Aggregate::Avg(target) };
        let mut q = Query::count(vec![0, 1]).aggregate(agg);
        for &s in &specs {
            q.predicates.push(spec_predicate(true, s));
        }
        let run = |e: &Ensemble| if sum { estimate_sum(e, db, &q) } else { estimate_avg(e, db, &q) };
        assert_transparent(db, ens, &q, run);
    }

    /// Inclusion–exclusion disjunction artifacts (one plan, 2^k − 1 signed
    /// terms) stay transparent across literal rebinds.
    #[test]
    fn disjunction_cache_is_bitwise_transparent(
        base in (0u8..8, 0u8..6, -5i64..500, -5i64..500),
        d1 in (0u8..8, 0u8..5, -5i64..500, -5i64..500),
        d2 in (0u8..8, 0u8..5, -5i64..500, -5i64..500),
    ) {
        let _guard = capacity_lock();
        let (db, ens) = single_tables();
        let mut q = Query::count(vec![0]);
        q.predicates.push(spec_predicate(false, base));
        let disjuncts = vec![vec![spec_predicate(false, d1)], vec![spec_predicate(false, d2)]];

        ens.set_plan_cache_capacity(0);
        let cold = estimate_count_disjunction(ens, db, &q, &disjuncts);
        ens.set_plan_cache_capacity(256);
        let miss = estimate_count_disjunction(ens, db, &q, &disjuncts);
        // Poison with shifted literals (base + disjuncts), then hit.
        let mut sq = q.clone();
        sq.predicates = q.predicates.iter().map(shift_literals).collect();
        let sd: Vec<Vec<Predicate>> = disjuncts
            .iter()
            .map(|d| d.iter().map(shift_literals).collect())
            .collect();
        let _ = estimate_count_disjunction(ens, db, &sq, &sd);
        let hit = estimate_count_disjunction(ens, db, &q, &disjuncts);
        match (&cold, &miss, &hit) {
            (Ok(c), Ok(m), Ok(h)) => {
                prop_assert_eq!(c.value.to_bits(), m.value.to_bits(), "miss != cold");
                prop_assert_eq!(c.value.to_bits(), h.value.to_bits(), "hit != cold");
                prop_assert_eq!(c.variance.to_bits(), h.variance.to_bits());
            }
            (Err(_), Err(_), Err(_)) => {}
            other => prop_assert!(false, "cold/miss/hit disagree: {:?}", other),
        }
    }
}

/// AQP GROUP BY rides the template tier: repeated grouped queries must stay
/// bitwise identical to the cache-disabled path and actually hit the cache.
#[test]
fn grouped_aqp_template_cache_transparent_and_hits() {
    let (db, ens) = fresh_ensemble(31);
    let q = Query::count(vec![0, 1])
        .aggregate(Aggregate::Avg(ColumnRef {
            table: 1,
            column: 3,
        }))
        .group(0, 2);

    ens.set_plan_cache_capacity(0);
    let cold = execute_aqp(&ens, &db, &q).unwrap();
    ens.set_plan_cache_capacity(256);
    let miss = execute_aqp(&ens, &db, &q).unwrap();
    let before = ens.plan_cache_stats();
    let hit = execute_aqp(&ens, &db, &q).unwrap();
    let after = ens.plan_cache_stats();
    assert!(
        after.hits > before.hits,
        "repeat GROUP BY must hit the template tier: {after:?} vs {before:?}"
    );

    for out in [&miss, &hit] {
        let (a, b) = (cold.groups(), out.groups());
        assert_eq!(a.len(), b.len());
        for ((ka, ra), (kb, rb)) in a.iter().zip(b) {
            assert_eq!(ka, kb);
            assert_eq!(ra.value.to_bits(), rb.value.to_bits());
            assert_eq!(ra.ci_low.to_bits(), rb.ci_low.to_bits());
            assert_eq!(ra.ci_high.to_bits(), rb.ci_high.to_bits());
        }
    }
}

/// Satellite 2: hit/miss/entry accounting. A fresh shape misses once and
/// hits on every repeat; distinct shapes occupy distinct entries.
#[test]
fn cache_stats_count_hits_and_misses() {
    let (db, ens) = fresh_ensemble(53);
    let q1 = Query::count(vec![0]).filter(0, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
    // Same shape, different literal — must share q1's artifact.
    let q1b = Query::count(vec![0]).filter(0, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)));
    // Different shape (operator differs).
    let q2 = Query::count(vec![0]).filter(0, 2, PredOp::Cmp(CmpOp::Le, Value::Int(1)));

    let s0 = ens.plan_cache_stats();
    assert_eq!((s0.hits, s0.misses, s0.entries), (0, 0, 0), "starts empty");

    estimate_count(&ens, &db, &q1).unwrap();
    let s1 = ens.plan_cache_stats();
    assert_eq!(s1.hits, 0);
    assert_eq!(s1.misses, 1);
    assert_eq!(s1.entries, 1);

    estimate_count(&ens, &db, &q1b).unwrap();
    estimate_count(&ens, &db, &q1).unwrap();
    let s2 = ens.plan_cache_stats();
    assert_eq!(s2.hits, 2, "literal-only variants hit the same artifact");
    assert_eq!(s2.misses, 1);
    assert_eq!(s2.entries, 1);

    estimate_count(&ens, &db, &q2).unwrap();
    let s3 = ens.plan_cache_stats();
    assert_eq!(s3.misses, 2, "new shape misses");
    assert_eq!(s3.entries, 2);

    // Prepared queries go through the same artifact tier.
    let mut p = ens.prepare(&db, &q1).unwrap();
    assert!(p.is_bound(), "discoverable shape must bind");
    let s4 = ens.plan_cache_stats();
    assert_eq!(s4.hits, s3.hits + 1, "prepare of a seen shape is a hit");
    p.execute(&ens, &db, &query_literals(&q1)).unwrap();
    let s5 = ens.plan_cache_stats();
    assert_eq!(
        (s5.hits, s5.misses),
        (s4.hits, s4.misses),
        "prepared execute never touches the cache"
    );
}

/// LRU eviction: overflowing a tiny cache evicts the least-recently-used
/// entry and counts it.
#[test]
fn lru_evicts_oldest_shape() {
    let (db, ens) = fresh_ensemble(59);
    ens.set_plan_cache_capacity(2);
    let q = |op: CmpOp| Query::count(vec![0]).filter(0, 1, PredOp::Cmp(op, Value::Int(40)));
    estimate_count(&ens, &db, &q(CmpOp::Le)).unwrap(); // A
    estimate_count(&ens, &db, &q(CmpOp::Ge)).unwrap(); // B
    estimate_count(&ens, &db, &q(CmpOp::Le)).unwrap(); // touch A → B is LRU
    estimate_count(&ens, &db, &q(CmpOp::Lt)).unwrap(); // C evicts B
    let s = ens.plan_cache_stats();
    assert_eq!(s.evictions, 1);
    assert_eq!(s.entries, 2);
    let hits = s.hits;
    estimate_count(&ens, &db, &q(CmpOp::Le)).unwrap(); // A survived
    assert_eq!(ens.plan_cache_stats().hits, hits + 1);
    estimate_count(&ens, &db, &q(CmpOp::Ge)).unwrap(); // B was evicted
    assert_eq!(ens.plan_cache_stats().misses, s.misses + 1);
}

/// Epoch invalidation: every maintenance operation bumps the plan epoch, so
/// (a) outstanding prepared queries fail with `StalePlan`, (b) a cached
/// artifact from the old epoch is never reused — the post-update estimate
/// equals a cold plan on the updated ensemble, bitwise.
#[test]
fn epoch_invalidation_never_reuses_stale_plans() {
    let q = Query::count(vec![0]).filter(0, 1, PredOp::Cmp(CmpOp::Le, Value::Int(40)));
    fn customer_row(id: i64) -> Vec<Value> {
        vec![Value::Int(id), Value::Int(30), Value::Int(1)]
    }

    type Maintenance = fn(&mut Ensemble, &mut Database);
    let ops: Vec<(&str, Maintenance)> = vec![
        ("recompile_models", |e, _| e.recompile_models()),
        ("apply_insert", |e, db| {
            e.apply_insert(db, 0, &customer_row(900_001)).unwrap()
        }),
        ("apply_insert_batch", |e, db| {
            e.apply_insert_batch(db, 0, &[customer_row(900_002), customer_row(900_003)])
                .unwrap()
        }),
        ("absorb_insert", |e, db| {
            db.table_mut(0).push_row(&customer_row(900_004)).unwrap();
            e.absorb_insert(db, 0, &customer_row(900_004)).unwrap()
        }),
        ("apply_delete", |e, db| e.apply_delete(db, 0, 5).unwrap()),
        ("refresh_join_counts", |e, db| {
            e.refresh_join_counts(db).unwrap()
        }),
    ];

    for (name, op) in ops {
        let (mut db, mut ens) = fresh_ensemble(61);
        // Seed the cache and a prepared query at the old epoch.
        estimate_count(&ens, &db, &q).unwrap();
        let mut prepared = ens.prepare(&db, &q).unwrap();
        let epoch_before = ens.plan_epoch();

        op(&mut ens, &mut db);
        assert!(
            ens.plan_epoch() > epoch_before,
            "{name} must bump the plan epoch"
        );
        assert!(
            matches!(
                prepared.execute(&ens, &db, &query_literals(&q)),
                Err(DeepDbError::StalePlan)
            ),
            "{name}: stale prepared query must be rejected"
        );

        // Old-epoch artifact is unreachable: the warm path re-plans and
        // matches a fully cold plan on the updated ensemble.
        let warm = estimate_count(&ens, &db, &q).unwrap();
        ens.set_plan_cache_capacity(0);
        let cold = estimate_count(&ens, &db, &q).unwrap();
        assert_eq!(
            warm.value.to_bits(),
            cold.value.to_bits(),
            "{name}: warm post-update estimate must equal cold re-plan"
        );

        // Re-preparing against the new epoch works and agrees with cold.
        ens.set_plan_cache_capacity(256);
        let mut fresh = ens.prepare(&db, &q).unwrap();
        let got = fresh.execute(&ens, &db, &query_literals(&q)).unwrap();
        assert_eq!(got.value.to_bits(), cold.value.to_bits(), "{name}");
    }
}

/// The pruning active-set side table: populated by warm executions, keyed
/// per (member, column-set), excluded from hit/miss/entry accounting, and
/// cleared wholesale the first time it is touched after **any** of the six
/// maintenance operations bumps the plan epoch — so a pruned sweep can
/// never run over a sub-DAG marked for a retired model generation.
#[test]
fn active_set_side_table_tracks_epochs() {
    let q = Query::count(vec![0]).filter(0, 1, PredOp::Cmp(CmpOp::Le, Value::Int(40)));
    let q2 = Query::count(vec![0]).filter(0, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)));
    fn customer_row(id: i64) -> Vec<Value> {
        vec![Value::Int(id), Value::Int(30), Value::Int(1)]
    }

    type Maintenance = fn(&mut Ensemble, &mut Database);
    let ops: Vec<(&str, Maintenance)> = vec![
        ("recompile_models", |e, _| e.recompile_models()),
        ("apply_insert", |e, db| {
            e.apply_insert(db, 0, &customer_row(910_001)).unwrap()
        }),
        ("apply_insert_batch", |e, db| {
            e.apply_insert_batch(db, 0, &[customer_row(910_002), customer_row(910_003)])
                .unwrap()
        }),
        ("absorb_insert", |e, db| {
            db.table_mut(0).push_row(&customer_row(910_004)).unwrap();
            e.absorb_insert(db, 0, &customer_row(910_004)).unwrap()
        }),
        ("apply_delete", |e, db| e.apply_delete(db, 0, 5).unwrap()),
        ("refresh_join_counts", |e, db| {
            e.refresh_join_counts(db).unwrap()
        }),
    ];

    for (name, op) in ops {
        let (mut db, mut ens) = fresh_ensemble(67);

        estimate_count(&ens, &db, &q).unwrap();
        let s1 = ens.plan_cache_stats();
        assert!(s1.active_sets >= 1, "{name}: warm run caches a set: {s1:?}");
        assert_eq!(
            (s1.misses, s1.entries),
            (1, 1),
            "{name}: active sets never count as plan entries"
        );

        // Repeats reuse the cached sets; accounting sees only the artifact.
        estimate_count(&ens, &db, &q).unwrap();
        let s2 = ens.plan_cache_stats();
        assert_eq!(s2.active_sets, s1.active_sets, "{name}: repeat reuses");
        assert_eq!((s2.hits, s2.misses), (s1.hits + 1, s1.misses), "{name}");

        // A different constrained-column set occupies its own key.
        estimate_count(&ens, &db, &q2).unwrap();
        let s3 = ens.plan_cache_stats();
        assert!(s3.active_sets > s2.active_sets, "{name}: new column set");

        // The maintenance op retires the whole side table: the next warm
        // run starts from empty and rebuilds only its own sets, and its
        // estimate still equals a cold plan on the updated ensemble.
        op(&mut ens, &mut db);
        let warm = estimate_count(&ens, &db, &q).unwrap();
        let s4 = ens.plan_cache_stats();
        assert_eq!(
            s4.active_sets, s1.active_sets,
            "{name}: stale sets dropped, only the live query's rebuilt"
        );
        ens.set_plan_cache_capacity(0);
        let cold = estimate_count(&ens, &db, &q).unwrap();
        assert_eq!(
            warm.value.to_bits(),
            cold.value.to_bits(),
            "{name}: pruned warm estimate after epoch bump must equal cold"
        );
    }
}

/// Prepared queries reject wrong literal arity, and rebinding actually
/// changes the answer (matching a cold plan of the rebound query).
#[test]
fn prepared_rebinding_matches_cold_plans_per_literal_set() {
    let _guard = capacity_lock();
    let (db, ens) = single_tables();
    let template = |age: i64| {
        Query::count(vec![0]).filter(0, 1, PredOp::Between(Value::Int(20), Value::Int(age)))
    };
    let mut prepared = ens.prepare(db, &template(40)).unwrap();
    assert!(prepared.is_bound());
    assert_eq!(prepared.n_literals(), 2);
    assert!(matches!(
        prepared.execute(ens, db, &[20.0]),
        Err(DeepDbError::Unsupported(_))
    ));
    for age in [25i64, 40, 60, 85] {
        let q = template(age);
        let got = prepared.execute(ens, db, &query_literals(&q)).unwrap();
        ens.set_plan_cache_capacity(0);
        let cold = estimate_count(ens, db, &q).unwrap();
        ens.set_plan_cache_capacity(256);
        assert_eq!(got.value.to_bits(), cold.value.to_bits(), "age {age}");
        assert_eq!(got.variance.to_bits(), cold.variance.to_bits());
    }
}

/// GROUP BY queries are not preparable (they go through `execute_aqp`).
#[test]
fn prepare_rejects_group_by() {
    let (db, ens) = single_tables();
    let q = Query::count(vec![0]).group(0, 2);
    assert!(matches!(
        ens.prepare(db, &q),
        Err(DeepDbError::Unsupported(_))
    ));
}
