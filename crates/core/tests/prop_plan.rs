//! Differential property suite for the deferred probe-plan layer: a plan's
//! fused, (optionally) multi-threaded execution must agree **bitwise** with
//! the eager per-call path — a query's value never depends on tile-mates,
//! member grouping, or worker scheduling. Covers NULL predicates, every
//! moment slot, GROUP BY plans with NULL groups, and the acceptance
//! invariant that `execute_aqp` GROUP BY sweeps each touched RSPN member
//! exactly once.

use std::sync::OnceLock;

use deepdb_core::{
    execute_aqp, Ensemble, EnsembleBuilder, EnsembleParams, EnsembleStrategy, ProbePlan,
};
use deepdb_spn::{LeafFunc, LeafPred, SpnQuery};
use deepdb_storage::fixtures::correlated_customer_order;
use deepdb_storage::{
    execute, Aggregate, CmpOp, ColumnRef, Database, Domain, PredOp, Query, TableSchema, Value,
};
use proptest::prelude::*;

/// Shared two-member (single-table strategy) ensemble so the plan executor
/// fans probes across more than one RSPN.
fn two_member_ensemble() -> &'static (Database, Ensemble) {
    static CELL: OnceLock<(Database, Ensemble)> = OnceLock::new();
    CELL.get_or_init(|| {
        let db = correlated_customer_order(1200, 77);
        let params = EnsembleParams {
            strategy: EnsembleStrategy::SingleTables,
            sample_size: 10_000,
            correlation_sample: 1_000,
            ..EnsembleParams::default()
        };
        let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
        (db, ens)
    })
}

/// Shared joint-RSPN ensemble for the AQP-level tests.
fn joint_ensemble() -> &'static (Database, Ensemble) {
    static CELL: OnceLock<(Database, Ensemble)> = OnceLock::new();
    CELL.get_or_init(|| {
        let db = correlated_customer_order(2000, 21);
        let params = EnsembleParams {
            sample_size: 20_000,
            correlation_sample: 1_500,
            rdc_threshold: 0.0,
            ..EnsembleParams::default()
        };
        let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
        (db, ens)
    })
}

const FUNCS: [LeafFunc; 5] = [
    LeafFunc::One,
    LeafFunc::X,
    LeafFunc::X2,
    LeafFunc::InvClamp1,
    LeafFunc::InvSqClamp1,
];

/// Build one probe against member `member` of `ens` from slot specs
/// `(col_sel, pred_kind, v, func_kind)`.
fn build_probe(ens: &Ensemble, member: usize, specs: &[(u8, u8, i64, u8)]) -> SpnQuery {
    let rspn = &ens.rspns()[member];
    let n_cols = rspn.columns().len();
    let mut q = rspn.new_query();
    for &(col_sel, pred_kind, v, func_kind) in specs {
        let col = col_sel as usize % n_cols;
        let v = v as f64;
        match pred_kind % 7 {
            0 => {}
            1 => q.add_pred(col, LeafPred::eq(v)),
            2 => q.add_pred(col, LeafPred::le(v)),
            3 => q.add_pred(col, LeafPred::ge(v)),
            4 => q.add_pred(col, LeafPred::IsNull),
            5 => q.add_pred(col, LeafPred::IsNotNull),
            _ => q.add_pred(
                col,
                LeafPred::Range {
                    lo: v,
                    hi: v + 25.0,
                    lo_incl: true,
                    hi_incl: v as i64 % 2 == 0,
                },
            ),
        }
        if func_kind % 6 != 0 {
            q.set_func(col, FUNCS[func_kind as usize % FUNCS.len()]);
        }
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Plan-executed probe values ≡ the eager per-call path (`Rspn::expect`),
    /// bitwise, for 1 and 4 worker threads — including NULL predicates and
    /// every moment slot, across multiple members, straddling the sweep
    /// tile width (32).
    #[test]
    fn plan_matches_eager_path_bitwise(
        probes in prop::collection::vec(
            (0u8..2, prop::collection::vec((0u8..8, 0u8..7, -10i64..160, 0u8..6), 0..4)),
            1..90,
        ),
    ) {
        let (_, ens) = two_member_ensemble();
        let mut plan = ProbePlan::new();
        let mut eager = Vec::with_capacity(probes.len());
        let mut handles = Vec::with_capacity(probes.len());
        for (member_sel, specs) in &probes {
            let member = *member_sel as usize % ens.rspns().len();
            let q = build_probe(ens, member, specs);
            eager.push(ens.rspns()[member].expect(&q));
            handles.push(plan.register(member, q));
        }
        for threads in [1usize, 4] {
            let results = plan.execute_with_threads(ens, threads);
            for (i, &h) in handles.iter().enumerate() {
                prop_assert_eq!(
                    results[h].to_bits(),
                    eager[i].to_bits(),
                    "probe {} with {} threads: plan {} vs eager {}",
                    i, threads, results[h], eager[i]
                );
            }
        }
    }
}

/// 1-thread and N-thread execution of the same plan agree exactly, probe by
/// probe, on a batch spanning many tiles and both members.
#[test]
fn thread_count_determinism_is_exact() {
    let (_, ens) = two_member_ensemble();
    let mut plan = ProbePlan::new();
    let mut handles = Vec::new();
    for i in 0..300i64 {
        let member = (i % 2) as usize;
        let specs = [
            (i as u8, (i % 7) as u8, i % 90, (i % 6) as u8),
            (
                (i / 3) as u8,
                ((i + 3) % 7) as u8,
                5 + i % 40,
                ((i + 2) % 6) as u8,
            ),
        ];
        let q = build_probe(ens, member, &specs);
        handles.push(plan.register(member, q));
    }
    let baseline = plan.execute_with_threads(ens, 1);
    for threads in [2usize, 3, 4, 8] {
        let got = plan.execute_with_threads(ens, threads);
        for &h in &handles {
            assert_eq!(
                got[h].to_bits(),
                baseline[h].to_bits(),
                "{threads}-thread execution diverged from 1-thread"
            );
        }
    }
}

/// The fused GROUP BY plan returns exactly the same estimates as issuing
/// each group's scalar query on its own (both paths share probe arithmetic,
/// so equality is exact, not approximate) — for AVG and SUM aggregates,
/// which carry count, numerator, denominator, and moment probes.
#[test]
fn grouped_plan_matches_per_group_scalar_queries() {
    let (db, ens) = joint_ensemble();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    for aggregate in [
        Aggregate::CountStar,
        Aggregate::Avg(ColumnRef {
            table: o,
            column: 3,
        }),
        Aggregate::Sum(ColumnRef {
            table: o,
            column: 3,
        }),
    ] {
        let grouped = Query::count(vec![c, o]).aggregate(aggregate).group(c, 2);
        let ens_a = clone_for_test(ens);
        let out = execute_aqp(&ens_a, db, &grouped).unwrap();
        let groups = out.groups();
        assert!(!groups.is_empty(), "grouped result should not be empty");
        for (key, got) in groups {
            let scalar = Query::count(vec![c, o]).aggregate(aggregate).filter(
                c,
                2,
                PredOp::Cmp(CmpOp::Eq, key[0]),
            );
            let ens_b = clone_for_test(ens);
            let want = execute_aqp(&ens_b, db, &scalar).unwrap();
            let want = want.scalar().unwrap();
            assert_eq!(got.value.to_bits(), want.value.to_bits(), "group {key:?}");
            assert_eq!(got.ci_low.to_bits(), want.ci_low.to_bits());
            assert_eq!(got.ci_high.to_bits(), want.ci_high.to_bits());
            assert_eq!(got.count_estimate.to_bits(), want.count_estimate.to_bits());
        }
    }
}

/// GROUP BY over a nullable column enumerates the NULL group and matches
/// the ground-truth executor (SQL groups NULLs together).
#[test]
fn grouped_plan_covers_null_groups() {
    let mut db = Database::new("nullable_groups");
    db.create_table(
        TableSchema::new("t")
            .pk("id")
            .nullable_col("cat", Domain::categorical(["A", "B"]))
            .col("x", Domain::Discrete),
    )
    .unwrap();
    // Deterministic mix: every 4th row has a NULL category.
    for i in 0..400i64 {
        let cat = if i % 4 == 0 {
            Value::Null
        } else {
            Value::Int(i % 2)
        };
        db.insert("t", &[Value::Int(i), cat, Value::Int(10 + (i * 7) % 50)])
            .unwrap();
    }
    let t = db.table_id("t").unwrap();
    let ens = EnsembleBuilder::new(&db)
        .params(EnsembleParams {
            sample_size: 12_000,
            correlation_sample: 500,
            ..EnsembleParams::default()
        })
        .build()
        .unwrap();

    let q = Query::count(vec![t]).group(t, 1);
    let truth = execute(&db, &q).unwrap();
    let out = execute_aqp(&ens, &db, &q).unwrap();
    let groups = out.groups();
    assert_eq!(
        groups.len(),
        truth.groups().len(),
        "group count incl. NULL group; got {groups:?}"
    );
    for (key, res) in groups {
        let want = truth
            .groups()
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, a)| a.count as f64)
            .unwrap_or_else(|| panic!("estimated group {key:?} missing from truth"));
        let rel = (res.value - want).abs() / want.max(1.0);
        assert!(rel < 0.25, "group {key:?}: {} vs {want}", res.value);
    }
    assert!(
        groups.iter().any(|(k, _)| k[0] == Value::Null),
        "NULL group must be enumerated"
    );
}

/// Acceptance invariant: a GROUP BY query issues exactly one fused arena
/// sweep per touched RSPN member, no matter how many groups it enumerates.
#[test]
fn groupby_costs_one_sweep_per_touched_member() {
    let (db, ens) = joint_ensemble();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    let ens = clone_for_test(ens);
    let q = Query::count(vec![c, o])
        .aggregate(Aggregate::Avg(ColumnRef {
            table: o,
            column: 3,
        }))
        .group(c, 2);

    let before: Vec<u64> = ens.rspns().iter().map(|r| r.probe_passes()).collect();
    let out = execute_aqp(&ens, db, &q).unwrap();
    assert!(
        out.groups().len() >= 2,
        "needs multiple groups to be meaningful"
    );
    let after: Vec<u64> = ens.rspns().iter().map(|r| r.probe_passes()).collect();

    let deltas: Vec<u64> = before.iter().zip(&after).map(|(b, a)| a - b).collect();
    assert!(
        deltas.iter().all(|&d| d <= 1),
        "a member was swept more than once: {deltas:?}"
    );
    assert!(
        deltas.iter().sum::<u64>() >= 1,
        "at least one member must have been swept"
    );
}

/// The ML regression path costs exactly one sweep, including its no-support
/// fallback probes (they ride in the same fused plan) — on `&Ensemble`.
#[test]
fn regression_costs_one_sweep_even_without_support() {
    let (db, ens) = joint_ensemble();
    let c = db.table_id("customer").unwrap();
    let ens = clone_for_test(ens);

    for features in [
        vec![(2usize, Value::Int(0))],
        // Impossible evidence: region 77 was never observed → fallback path.
        vec![(2usize, Value::Int(77))],
    ] {
        let before: Vec<u64> = ens.rspns().iter().map(|r| r.probe_passes()).collect();
        deepdb_core::ml::predict_regression(&ens, db, c, 1, &features).unwrap();
        let after: Vec<u64> = ens.rspns().iter().map(|r| r.probe_passes()).collect();
        let total: u64 = before.iter().zip(&after).map(|(b, a)| a - b).sum();
        assert_eq!(total, 1, "regression with features {features:?}");
    }
}

/// Ensembles are cheap to clone for isolated sweep-count bookkeeping; going
/// through a snapshot round-trip also exercises load-path plan execution.
fn clone_for_test(ens: &Ensemble) -> Ensemble {
    let mut buf = Vec::new();
    ens.save(&mut buf).unwrap();
    Ensemble::load(&mut buf.as_slice()).unwrap()
}
