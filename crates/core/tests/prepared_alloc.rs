//! Acceptance check: the prepared-query execute path performs **zero heap
//! allocations** in steady state. A counting `#[global_allocator]` wraps the
//! system allocator; after a short warmup (thread-local evaluator scratch and
//! the inline sweep's grow-only leaf-value tables reach capacity), repeated
//! `PreparedQuery::execute` calls must not allocate at all.
//!
//! Everything runs in ONE `#[test]` so no concurrently running test can
//! pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use deepdb_core::{query_literals, EnsembleBuilder, EnsembleParams, EnsembleStrategy, JoinOrderer};
use deepdb_storage::fixtures::correlated_customer_order;
use deepdb_storage::{CmpOp, PredOp, Query, Value};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; only adds a relaxed counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn prepared_execute_steady_state_allocates_nothing() {
    let db = correlated_customer_order(900, 13);
    let params = EnsembleParams {
        strategy: EnsembleStrategy::SingleTables,
        sample_size: 8_000,
        correlation_sample: 800,
        ..EnsembleParams::default()
    };
    let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();

    // Covered single-table COUNT and a Case-3 two-table COUNT (the
    // single-table ensemble must combine both members).
    let scenarios = [
        Query::count(vec![0])
            .filter(0, 1, PredOp::Between(Value::Int(20), Value::Int(60)))
            .filter(0, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1))),
        Query::count(vec![0, 1])
            .filter(0, 1, PredOp::Cmp(CmpOp::Le, Value::Int(55)))
            .filter(1, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0))),
    ];

    for (si, query) in scenarios.iter().enumerate() {
        let mut prepared = ens.prepare(&db, query).unwrap();
        assert!(prepared.is_bound(), "scenario {si} must bind");
        let mut literals = query_literals(query);

        // Warmup: grow the inline sweep tables and thread-local scratch.
        for _ in 0..3 {
            prepared.execute(&ens, &db, &literals).unwrap();
        }

        // Steady state: vary a literal each round (forcing real rebinds) and
        // demand zero allocations across 10 executions.
        let mut sink = 0.0;
        let before = ALLOCS.load(Ordering::Relaxed);
        for round in 0..10 {
            literals[0] = 20.0 + round as f64;
            sink += prepared.execute(&ens, &db, &literals).unwrap().value;
        }
        let allocs = ALLOCS.load(Ordering::Relaxed) - before;
        assert_eq!(
            allocs, 0,
            "scenario {si}: prepared execute allocated {allocs} times in steady state"
        );
        assert!(sink.is_finite());
    }

    // Join-order enumerator scoring rides the same path: after one warm call
    // per subset shape (which prepares and memoizes the sub-query), repeated
    // `subset_estimate` calls with fresh literals must not allocate either —
    // this is what keeps per-query planning overhead flat.
    let mut orderer = JoinOrderer::new();
    let mut query = Query::count(vec![0, 1])
        .filter(0, 1, PredOp::Cmp(CmpOp::Le, Value::Int(55)))
        .filter(1, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
    let subsets: [&[usize]; 3] = [&[0], &[1], &[0, 1]];
    for _ in 0..3 {
        for s in subsets {
            orderer.subset_estimate(&ens, &db, &query, s);
        }
    }
    assert_eq!(orderer.shapes(), 3);

    let mut sink = 0.0;
    let before = ALLOCS.load(Ordering::Relaxed);
    for round in 0..10 {
        // Mutating the literal in place changes the binding, not the shape.
        query.predicates[0].op = PredOp::Cmp(CmpOp::Le, Value::Int(30 + round));
        for s in subsets {
            sink += orderer.subset_estimate(&ens, &db, &query, s);
        }
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "subset_estimate allocated {allocs} times in steady state"
    );
    assert_eq!(orderer.shapes(), 3, "rebinds must not mint new shapes");
    assert!(sink.is_finite());
}
