//! Deterministic chaos suite for the serving front-end.
//!
//! Each case seeds a [`FaultPlan`] injecting panics, delays, and plan-epoch
//! bumps at the four named sites (admission, cache lookup, tile start,
//! combine resolve) and drives a swarm of concurrent clients — 64 in the
//! full run, fewer under `DEEPDB_FAST` — through one shared
//! [`ServeFront`]. The robustness contract under fire:
//!
//! * every request returns a **bitwise-correct answer** (equal to the
//!   unfused, fault-free single-query path) or a **typed error**
//!   (`Overloaded` / `DeadlineExceeded` / `StalePlan` / `QueryPanicked`) —
//!   never a wrong answer;
//! * nothing hangs (a watchdog aborts the process if a case stalls);
//! * no torn state: after the chaos rounds, the same ensemble (same worker
//!   pool, same plan cache) answers everything bitwise-correctly again.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

use deepdb_core::compile::{estimate_avg, estimate_count, estimate_sum};
use deepdb_core::{
    DeepDbError, Ensemble, EnsembleBuilder, EnsembleParams, EnsembleStrategy, Estimate, FaultPlan,
    ServeConfig, ServeFront,
};
use deepdb_storage::fixtures::correlated_customer_order;
use deepdb_storage::{Aggregate, CmpOp, ColumnRef, Database, PredOp, Query, Value};
use proptest::prelude::*;

fn fast() -> bool {
    std::env::var_os("DEEPDB_FAST").is_some()
}

fn chaos_cases() -> u32 {
    if fast() {
        3
    } else {
        8
    }
}

fn n_clients() -> usize {
    if fast() {
        16
    } else {
        64
    }
}

const ROUNDS: usize = 3;
const N_SHAPES: usize = 12;

/// Two single-table members: two-table shapes exercise Case-3 combination.
fn fixture() -> &'static (Database, Ensemble) {
    static CELL: OnceLock<(Database, Ensemble)> = OnceLock::new();
    CELL.get_or_init(|| {
        let db = correlated_customer_order(800, 33);
        let params = EnsembleParams {
            strategy: EnsembleStrategy::SingleTables,
            sample_size: 8_000,
            correlation_sample: 800,
            ..EnsembleParams::default()
        };
        let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
        (db, ens)
    })
}

fn shape_query(db: &Database, i: usize) -> Query {
    let customer = db.table_id("customer").unwrap();
    let orders = db.table_id("orders").unwrap();
    match i % 6 {
        0 => Query::count(vec![customer]).filter(
            customer,
            1,
            PredOp::Cmp(CmpOp::Le, Value::Int(30 + (i as i64 % 40))),
        ),
        1 => Query::count(vec![customer, orders]).filter(
            orders,
            2,
            PredOp::Cmp(CmpOp::Eq, Value::Int(i as i64 % 2)),
        ),
        2 => Query::count(vec![orders])
            .aggregate(Aggregate::Avg(ColumnRef {
                table: orders,
                column: 3,
            }))
            .filter(orders, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(i as i64 % 2))),
        3 => Query::count(vec![orders])
            .aggregate(Aggregate::Sum(ColumnRef {
                table: orders,
                column: 3,
            }))
            .filter(
                orders,
                3,
                PredOp::Cmp(CmpOp::Ge, Value::Int(40 + (i as i64 % 120))),
            ),
        4 => Query::count(vec![customer, orders])
            .filter(
                customer,
                2,
                PredOp::Cmp(CmpOp::Eq, Value::Int(i as i64 % 3)),
            )
            .filter(orders, 3, PredOp::Cmp(CmpOp::Le, Value::Int(250))),
        _ => Query::count(vec![customer]).filter(
            customer,
            2,
            PredOp::Cmp(CmpOp::Eq, Value::Int(i as i64 % 3)),
        ),
    }
}

/// Fault-free, unfused baselines, computed once. Epoch bumps and panics
/// never mutate model state, so these stay valid through every chaos case.
fn baselines() -> &'static Vec<Estimate> {
    static CELL: OnceLock<Vec<Estimate>> = OnceLock::new();
    CELL.get_or_init(|| {
        let (db, ens) = fixture();
        (0..N_SHAPES)
            .map(|i| {
                let q = shape_query(db, i);
                match q.aggregate {
                    Aggregate::CountStar => estimate_count(ens, db, &q).unwrap(),
                    Aggregate::Avg(_) => estimate_avg(ens, db, &q).unwrap(),
                    Aggregate::Sum(_) => estimate_sum(ens, db, &q).unwrap(),
                }
            })
            .collect()
    })
}

fn bits_eq(a: &Estimate, b: &Estimate) -> bool {
    a.value.to_bits() == b.value.to_bits() && a.variance.to_bits() == b.variance.to_bits()
}

/// Abort the whole process (tests can't unwind out of a hung join) if `f`
/// doesn't finish within `secs` — the no-hang assertion.
fn with_watchdog<T>(secs: u64, f: impl FnOnce() -> T) -> T {
    let done = Arc::new(AtomicBool::new(false));
    let watched = Arc::clone(&done);
    std::thread::spawn(move || {
        let start = Instant::now();
        while !watched.load(Ordering::Relaxed) {
            if start.elapsed() > Duration::from_secs(secs) {
                eprintln!("chaos watchdog: case exceeded {secs}s — serving front hung; aborting");
                std::process::abort();
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    });
    let out = f();
    done.store(true, Ordering::Relaxed);
    out
}

/// Injected faults are expected panics — silence their default-hook
/// backtraces so real failures stay visible in the output.
fn quiet_injected_panics() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(|s| s.as_str()));
            if msg.is_some_and(|m| m.contains("injected")) {
                return;
            }
            default(info);
        }));
    });
}

/// One chaos case: a seeded fault plan, a swarm of clients, full contract
/// checking, then a fault-free convergence round on the same ensemble.
fn run_chaos_case(seed: u64) {
    quiet_injected_panics();
    let (db, ens) = fixture();
    let refs = baselines();
    let clients = n_clients();

    let faults = FaultPlan::new(seed)
        .with_panics(10)
        .with_delays(24, Duration::from_micros(200))
        .with_epoch_bumps(8);
    let front = ServeFront::with_config(
        ens,
        db,
        ServeConfig {
            // Tighter than the client count so overload sheds load under
            // the injected delays.
            queue_capacity: clients.max(8) - 4,
            max_batch: clients,
            window: Duration::from_micros(300),
            threads: 0,
        },
    )
    .with_faults(faults);

    with_watchdog(120, || {
        let barrier = Barrier::new(clients);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let front = &front;
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        for r in 0..ROUNDS {
                            let shape = (c * ROUNDS + r + seed as usize) % N_SHAPES;
                            let q = shape_query(db, shape);
                            // Mixed deadline profiles: none, generous, tight.
                            let deadline = match (c + r) % 3 {
                                0 => None,
                                1 => Some(Duration::from_secs(30)),
                                _ => Some(Duration::from_millis(2)),
                            };
                            match front.serve(&q, deadline) {
                                Ok(e) => {
                                    assert!(
                                        bits_eq(&e, &refs[shape]),
                                        "WRONG ANSWER under chaos (seed {seed}, client {c}, \
                                         round {r}, shape {shape}): {e:?} vs {:?}",
                                        refs[shape]
                                    );
                                }
                                Err(
                                    DeepDbError::Overloaded
                                    | DeepDbError::DeadlineExceeded
                                    | DeepDbError::StalePlan
                                    | DeepDbError::QueryPanicked(_),
                                ) => {}
                                Err(other) => {
                                    panic!("untyped failure under chaos (seed {seed}): {other:?}")
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });

        // Accounting sanity: everything admitted was released again.
        assert_eq!(front.in_flight(), 0, "leaked admission slots");
        // Every request ends in exactly one of: admitted, shed at the
        // admission queue, or killed by a fault injected before admission
        // (those also count as query panics — hence the inequality pair).
        let stats = front.stats();
        let total = (clients * ROUNDS) as u64;
        assert!(
            stats.admitted + stats.rejected_overloaded <= total,
            "double-counted requests: {stats:?}"
        );
        assert!(
            stats.admitted + stats.rejected_overloaded + stats.query_panics >= total,
            "lost requests: {stats:?}"
        );

        // Convergence: the same ensemble — same worker pool, same plan
        // cache, epoch wherever the chaos left it — serves everything
        // bitwise-correctly with the faults gone.
        let clean = ServeFront::new(ens, db);
        for (i, want) in refs.iter().enumerate() {
            let got = clean.serve(&shape_query(db, i), None).unwrap();
            assert!(
                bits_eq(&got, want),
                "torn state after chaos (seed {seed}, shape {i}): {got:?} vs {want:?}"
            );
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    /// The headline chaos property: under seeded panics, delays, and epoch
    /// churn, every concurrent client gets a bitwise-correct answer or a
    /// typed error, nothing hangs, and no state tears.
    #[test]
    fn swarm_under_injected_faults_upholds_the_serving_contract(seed in 0u64..u64::MAX) {
        run_chaos_case(seed);
    }
}

/// Pin two known seeds so regressions reproduce without proptest's RNG
/// (one is the all-defaults seed the docs mention).
#[test]
fn pinned_seeds_reproduce() {
    run_chaos_case(0);
    run_chaos_case(0xDEEBDB);
}
