//! Corrupted ensemble-snapshot fuzzing: `Ensemble::load` must treat the
//! byte stream as hostile. Truncations and bit flips of a valid snapshot
//! either fail cleanly with a typed `InvalidData` error or load into an
//! ensemble that still answers queries — never a panic, never an unbounded
//! allocation.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use deepdb_core::{compile, Ensemble, EnsembleBuilder, EnsembleParams, EnsembleStrategy};
use deepdb_storage::fixtures::correlated_customer_order;
use deepdb_storage::{CmpOp, Database, PredOp, Query, Value};
use proptest::prelude::*;

fn db() -> &'static Database {
    static CELL: OnceLock<Database> = OnceLock::new();
    CELL.get_or_init(|| correlated_customer_order(300, 11))
}

/// A small two-member ensemble, serialized once.
fn snapshot() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let params = EnsembleParams {
            strategy: EnsembleStrategy::SingleTables,
            sample_size: 3_000,
            correlation_sample: 300,
            ..EnsembleParams::default()
        };
        let ens = EnsembleBuilder::new(db()).params(params).build().unwrap();
        let mut buf = Vec::new();
        ens.save(&mut buf).unwrap();
        buf
    })
}

/// Load `bytes` and, if it parses, run a real query against the decoded
/// ensemble — whatever state survived the corruption must not panic.
fn load_and_exercise(bytes: &[u8]) -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(|| {
        if let Ok(ens) = Ensemble::load(&mut &bytes[..]) {
            let db = db();
            let customer = db.table_id("customer").unwrap();
            let orders = db.table_id("orders").unwrap();
            let single = Query::count(vec![customer]).filter(
                customer,
                2,
                PredOp::Cmp(CmpOp::Eq, Value::Int(0)),
            );
            let join = Query::count(vec![customer, orders]).filter(
                orders,
                2,
                PredOp::Cmp(CmpOp::Eq, Value::Int(0)),
            );
            // Errors (NotAnswerable etc.) are fine; panics are not.
            let _ = compile::estimate_cardinality(&ens, db, &single);
            let _ = compile::estimate_cardinality(&ens, db, &join);
        }
    }))
    .map_err(|_| "panicked".to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strict prefix of an ensemble snapshot is rejected cleanly.
    #[test]
    fn truncated_ensembles_fail_cleanly(cut_seed in 0usize..usize::MAX) {
        let buf = snapshot();
        let cut = cut_seed % buf.len();
        prop_assert!(load_and_exercise(&buf[..cut]).is_ok(), "panicked at cut {cut}");
        prop_assert!(
            Ensemble::load(&mut &buf[..cut]).is_err(),
            "strict prefix of length {cut} parsed"
        );
    }

    /// Bit-flipped ensemble snapshots never panic: rejected, or loaded into
    /// a state that still answers (or cleanly refuses) queries.
    #[test]
    fn bit_flipped_ensembles_never_panic(
        flips in prop::collection::vec((0usize..usize::MAX, 0u32..8), 1..8),
        cut_seed in prop::option::of(0usize..usize::MAX),
    ) {
        let mut buf = snapshot().to_vec();
        for &(off, bit) in &flips {
            let i = off % buf.len();
            buf[i] ^= 1 << bit;
        }
        if let Some(cs) = cut_seed {
            buf.truncate(cs % (buf.len() + 1));
        }
        prop_assert!(
            load_and_exercise(&buf).is_ok(),
            "panicked on flips {flips:?} cut {cut_seed:?}"
        );
    }
}
