//! Property tests for the estimate algebra (§5.1) and query compilation on
//! randomized databases.

use deepdb_core::Estimate;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Variances never go negative through the §5.1 combinators.
    #[test]
    fn variance_nonnegative(
        v1 in 0.0f64..10.0, e1 in -100.0f64..100.0,
        v2 in 0.0f64..10.0, e2 in -100.0f64..100.0,
        c in -10.0f64..10.0,
    ) {
        let a = Estimate { value: e1, variance: v1 };
        let b = Estimate { value: e2, variance: v2 };
        prop_assert!(a.product(b).variance >= 0.0);
        prop_assert!(a.scale(c).variance >= 0.0);
        prop_assert!(a.add(b).variance >= 0.0);
        prop_assert!(a.divide(b).variance >= 0.0);
    }

    /// The product combinator is commutative and has exact(1) as identity.
    #[test]
    fn product_algebra(
        v1 in 0.0f64..10.0, e1 in -100.0f64..100.0,
        v2 in 0.0f64..10.0, e2 in -100.0f64..100.0,
    ) {
        let a = Estimate { value: e1, variance: v1 };
        let b = Estimate { value: e2, variance: v2 };
        let ab = a.product(b);
        let ba = b.product(a);
        prop_assert!((ab.value - ba.value).abs() < 1e-9);
        prop_assert!((ab.variance - ba.variance).abs() < 1e-9);
        let id = a.product(Estimate::exact(1.0));
        prop_assert!((id.value - a.value).abs() < 1e-12);
        prop_assert!((id.variance - a.variance).abs() < 1e-12);
    }

    /// Scaling: V(cX) = c²·V(X), E(cX) = c·E(X).
    #[test]
    fn scaling_law(v in 0.0f64..10.0, e in -50.0f64..50.0, c in -20.0f64..20.0) {
        let a = Estimate { value: e, variance: v };
        let s = a.scale(c);
        prop_assert!((s.value - c * e).abs() < 1e-9);
        prop_assert!((s.variance - c * c * v).abs() < 1e-9);
    }

    /// Confidence intervals are symmetric around the estimate and nested
    /// across confidence levels.
    #[test]
    fn ci_nesting(v in 0.0f64..100.0, e in -1000.0f64..1000.0) {
        let a = Estimate { value: e, variance: v };
        let (l90, h90) = a.confidence_interval(0.90);
        let (l99, h99) = a.confidence_interval(0.99);
        prop_assert!((e - l90 - (h90 - e)).abs() < 1e-6, "symmetry");
        prop_assert!(l99 <= l90 && h90 <= h99, "nesting");
    }

    /// Binomial probability estimates tighten with more samples.
    #[test]
    fn probability_variance_decreases_in_n(p in 0.01f64..0.99, n in 10u64..100_000) {
        let small = Estimate::probability(p, n);
        let large = Estimate::probability(p, n * 10);
        prop_assert!(large.variance < small.variance);
        prop_assert!((small.value - p).abs() < 1e-12);
    }
}
