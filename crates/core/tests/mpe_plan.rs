//! Acceptance tests for compiled, plan-fused MPE classification: a K-row
//! prediction batch costs exactly one arena sweep on the touched member
//! (evidence-support and fallback probes included), and results are exactly
//! identical for any probe-thread count — the serving-traffic guarantees of
//! the max-product engine.

use deepdb_core::ml::{predict_classification, predict_classification_batch};
use deepdb_core::{Ensemble, EnsembleBuilder, EnsembleParams};
use deepdb_storage::fixtures::correlated_customer_order;
use deepdb_storage::{Database, Value};

fn build() -> (Database, Ensemble) {
    let db = correlated_customer_order(2000, 21);
    let params = EnsembleParams {
        sample_size: 20_000,
        correlation_sample: 1_500,
        rdc_threshold: 0.0,
        ..EnsembleParams::default()
    };
    let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
    (db, ens)
}

/// Evidence rows mixing supported ages, unsupported ages (fallback path),
/// and empty evidence; sized well past one sweep tile (32).
fn evidence_rows(k: usize) -> Vec<Vec<(usize, Value)>> {
    (0..k)
        .map(|i| match i % 9 {
            8 => Vec::new(),
            7 => vec![(1usize, Value::Int(999))], // never observed
            m => vec![(1usize, Value::Int(20 + m as i64 * 10))],
        })
        .collect()
}

#[test]
fn classification_batch_costs_one_sweep_per_touched_member() {
    let (db, ens) = build();
    let c = db.table_id("customer").unwrap();
    let rows = evidence_rows(64);

    let before: Vec<u64> = ens.rspns().iter().map(|r| r.probe_passes()).collect();
    let preds = predict_classification_batch(&ens, &db, c, 2, &rows).unwrap();
    assert_eq!(preds.len(), rows.len());
    assert!(preds.iter().all(Option::is_some));
    let after: Vec<u64> = ens.rspns().iter().map(|r| r.probe_passes()).collect();

    let deltas: Vec<u64> = before.iter().zip(&after).map(|(b, a)| a - b).collect();
    assert_eq!(
        deltas.iter().sum::<u64>(),
        1,
        "a 64-row prediction batch must cost exactly one sweep total \
         (one per touched member); got per-member deltas {deltas:?}"
    );
}

#[test]
fn classification_batch_is_thread_count_deterministic() {
    let (db, ens) = build();
    let c = db.table_id("customer").unwrap();
    // > 32 evidence rows → > 64 fused probes, so multi-thread execution
    // actually splits the batch into several tiles.
    let rows = evidence_rows(50);

    let mut ens = ens;
    ens.set_probe_threads(1);
    let baseline = predict_classification_batch(&ens, &db, c, 2, &rows).unwrap();
    for threads in [2usize, 3, 4, 8] {
        ens.set_probe_threads(threads);
        let got = predict_classification_batch(&ens, &db, c, 2, &rows).unwrap();
        assert_eq!(
            got, baseline,
            "{threads}-thread classification diverged from 1-thread"
        );
    }
}

#[test]
fn classification_batch_matches_per_row_calls_across_snapshots() {
    let (db, ens) = build();
    let c = db.table_id("customer").unwrap();
    let rows = evidence_rows(18);
    let batch = predict_classification_batch(&ens, &db, c, 2, &rows).unwrap();

    // A snapshot round-trip (recompiled arenas on load) answers identically.
    let mut buf = Vec::new();
    ens.save(&mut buf).unwrap();
    let restored = Ensemble::load(&mut buf.as_slice()).unwrap();
    for (row, want) in rows.iter().zip(&batch) {
        let got = predict_classification(&restored, &db, c, 2, row).unwrap();
        assert_eq!(got, *want, "evidence {row:?}");
    }
}
