//! Differential and accounting suite for the symbolic Case-3 combine
//! planner: the planned path (all extension steps registered on one fused
//! probe plan) must agree **bitwise** with the retained eager oracle
//! (`deepdb_core::combine::multi_rspn_count`, one throwaway plan + sweep per
//! step), and a multi-RSPN GROUP BY query must cost exactly one arena sweep
//! per touched member. Covers the spanning Theorem-2 case (pair-RSPN
//! ensembles over a 3-table chain), the downward fan-out and upward
//! factor-weighted cases (single-table ensembles), NULL predicates and NULL
//! groups, and the degenerate-denominator guard.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use deepdb_core::{
    combine, compile, execute_aqp, Ensemble, EnsembleBuilder, EnsembleParams, EnsembleStrategy,
};
use deepdb_storage::{
    execute, CmpOp, ColumnRef, Database, Domain, PredOp, Predicate, Query, TableId, TableSchema,
    Value,
};
use proptest::prelude::*;

/// 3-table FK chain `nation ← customer ← orders` with a nullable customer
/// segment column, correlated enough that estimates are meaningful and small
/// enough that ensembles build fast. Deterministic.
fn chain_db() -> Database {
    let mut db = Database::new("chain3");
    db.create_table(
        TableSchema::new("nation")
            .pk("n_id")
            .col("n_region", Domain::categorical(["EU", "AS", "AM", "AF"])),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("customer")
            .pk("c_id")
            .col("n_id", Domain::Key)
            .col("c_age", Domain::Discrete)
            .nullable_col("c_segment", Domain::categorical(["A", "B", "C"])),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("orders")
            .pk("o_id")
            .col("c_id", Domain::Key)
            .col("o_channel", Domain::categorical(["ONLINE", "STORE"]))
            .col("o_amount", Domain::Continuous),
    )
    .unwrap();
    db.add_foreign_key("customer", "n_id", "nation").unwrap();
    db.add_foreign_key("orders", "c_id", "customer").unwrap();

    let mut state = 0x5EEDu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for n in 1..=5i64 {
        db.insert("nation", &[Value::Int(n), Value::Int((n - 1) % 4)])
            .unwrap();
    }
    let mut order_id = 1i64;
    for c in 1..=300i64 {
        let nation = 1 + (next() * 5.0) as i64;
        let age = 18 + ((nation * 13) as f64 + next() * 40.0) as i64;
        let segment = if next() < 0.2 {
            Value::Null
        } else {
            Value::Int((next() * 3.0) as i64)
        };
        db.insert(
            "customer",
            &[Value::Int(c), Value::Int(nation), Value::Int(age), segment],
        )
        .unwrap();
        let n_orders = (next() * if age > 50 { 4.0 } else { 2.0 }) as i64;
        for _ in 0..n_orders {
            let channel = i64::from(next() < 0.6);
            db.insert(
                "orders",
                &[
                    Value::Int(order_id),
                    Value::Int(c),
                    Value::Int(channel),
                    Value::Float(10.0 + next() * 200.0),
                ],
            )
            .unwrap();
            order_id += 1;
        }
    }
    db
}

/// Single-table members only: every multi-table query is Case 3 through the
/// downward fan-out / upward factor-weighted branches.
fn singles() -> &'static (Database, Ensemble) {
    static CELL: OnceLock<(Database, Ensemble)> = OnceLock::new();
    CELL.get_or_init(|| {
        let db = chain_db();
        let params = EnsembleParams {
            strategy: EnsembleStrategy::SingleTables,
            sample_size: 8_000,
            correlation_sample: 500,
            ..EnsembleParams::default()
        };
        let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
        (db, ens)
    })
}

/// One pair RSPN per FK edge ({nation,customer}, {customer,orders}): the
/// full 3-table query is Case 3 through the spanning Theorem-2 branch.
fn pairs() -> &'static (Database, Ensemble) {
    static CELL: OnceLock<(Database, Ensemble)> = OnceLock::new();
    CELL.get_or_init(|| {
        let db = chain_db();
        let params = EnsembleParams {
            strategy: EnsembleStrategy::Relational,
            rdc_threshold: 0.0, // force a pair RSPN on every FK edge
            budget_factor: 0.0, // no larger RSPNs: keep the 3-table query Case 3
            sample_size: 8_000,
            correlation_sample: 500,
            ..EnsembleParams::default()
        };
        let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
        assert!(
            ens.rspns().iter().all(|r| r.tables().len() <= 2),
            "fixture must not cover the 3-table query with one member"
        );
        (db, ens)
    })
}

/// Predicate generator over the chain schema: `(slot_sel, op_sel, value)`
/// picks a (table, column) among the modeled columns — including the
/// nullable segment — and an operator including IS NULL / IS NOT NULL /
/// BETWEEN, with values straying outside the observed domains.
fn make_pred(db: &Database, slot_sel: u8, op_sel: u8, v: i64) -> Predicate {
    let n = db.table_id("nation").unwrap();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    let (table, col) = match slot_sel % 5 {
        0 => (n, 1),
        1 => (c, 2),
        2 => (c, 3),
        3 => (o, 2),
        _ => (o, 3),
    };
    let op = match op_sel % 6 {
        0 => PredOp::Cmp(CmpOp::Eq, Value::Int(v)),
        1 => PredOp::Cmp(CmpOp::Le, Value::Int(v)),
        2 => PredOp::Cmp(CmpOp::Ge, Value::Int(v)),
        3 => PredOp::IsNull,
        4 => PredOp::IsNotNull,
        _ => PredOp::Between(Value::Int(v), Value::Int(v + 20)),
    };
    Predicate::new(table, col, op)
}

/// Planned vs. oracle comparison for one Case-3 query: both must agree on
/// answerability, and when both answer, value AND variance must be bitwise
/// identical.
fn assert_planned_matches_oracle(
    db: &Database,
    ens: &Ensemble,
    tables: Vec<TableId>,
    preds: Vec<Predicate>,
) {
    let qtables: BTreeSet<TableId> = tables.iter().copied().collect();
    let mut query = Query::count(tables);
    query.predicates = preds.clone();
    let planned = compile::estimate_count(ens, db, &query);
    let oracle = combine::multi_rspn_count(ens, db, &qtables, &preds);
    match (planned, oracle) {
        (Ok(p), Ok(e)) => {
            assert_eq!(
                p.value.to_bits(),
                e.value.to_bits(),
                "planned {} vs oracle {} for preds {preds:?}",
                p.value,
                e.value
            );
            assert_eq!(
                p.variance.to_bits(),
                e.variance.to_bits(),
                "variances diverged for preds {preds:?}"
            );
        }
        (Err(_), Err(_)) => {}
        (p, e) => panic!("answerability diverged for preds {preds:?}: planned {p:?}, oracle {e:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Downward/upward factor cases: single-table ensemble, randomized
    /// 2- and 3-table queries with randomized predicates (incl. NULLs and
    /// out-of-domain constants) — planned resolution ≡ eager oracle bitwise.
    #[test]
    fn planned_matches_eager_oracle_factor_cases(
        tables_sel in 0u8..3,
        preds in prop::collection::vec((0u8..8, 0u8..8, -5i64..90), 0..4),
    ) {
        let (db, ens) = singles();
        let n = db.table_id("nation").unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let tables = match tables_sel {
            0 => vec![c, o],
            1 => vec![n, c],
            _ => vec![n, c, o],
        };
        let preds: Vec<Predicate> = preds
            .iter()
            .map(|&(s, op, v)| make_pred(db, s, op, v))
            .filter(|p| tables.contains(&p.table))
            .collect();
        assert_planned_matches_oracle(db, ens, tables, preds);
    }

    /// Spanning Theorem-2 case: pair-RSPN ensemble, the full 3-table chain
    /// query — planned resolution ≡ eager oracle bitwise.
    #[test]
    fn planned_matches_eager_oracle_spanning_case(
        preds in prop::collection::vec((0u8..8, 0u8..8, -5i64..90), 0..4),
    ) {
        let (db, ens) = pairs();
        let n = db.table_id("nation").unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let preds: Vec<Predicate> = preds
            .iter()
            .map(|&(s, op, v)| make_pred(db, s, op, v))
            .collect();
        assert_planned_matches_oracle(db, ens, vec![n, c, o], preds);
    }
}

/// Acceptance invariant (the tentpole's headline win): a multi-RSPN (Case-3)
/// GROUP BY query registers every group's combine plan on ONE shared probe
/// plan, so the whole grouped result costs exactly one fused sweep per
/// touched member — not O(groups × steps) passes.
#[test]
fn case3_groupby_costs_one_sweep_per_touched_member() {
    let (db, ens) = singles();
    let ens = clone_for_test(ens);
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    // COUNT over customer ⋈ orders grouped by the nullable segment: no
    // single member covers {c,o}, so every group's count is a combine plan.
    let q = Query::count(vec![c, o]).group(c, 3);

    let before: Vec<u64> = ens.rspns().iter().map(|r| r.probe_passes()).collect();
    let out = execute_aqp(&ens, db, &q).unwrap();
    let after: Vec<u64> = ens.rspns().iter().map(|r| r.probe_passes()).collect();

    assert!(
        out.groups().len() >= 3,
        "needs several groups to be meaningful, got {:?}",
        out.groups()
    );
    assert!(
        out.groups().iter().any(|(k, _)| k[0] == Value::Null),
        "NULL group must be enumerated through the combine path"
    );
    let deltas: Vec<u64> = before.iter().zip(&after).map(|(b, a)| a - b).collect();
    assert!(
        deltas.iter().all(|&d| d <= 1),
        "a member was swept more than once for a grouped Case-3 query: {deltas:?}"
    );
    // The combination spans at least the customer and orders members.
    assert!(
        deltas.iter().sum::<u64>() >= 2,
        "a Case-3 combination must touch multiple members: {deltas:?}"
    );
}

/// A scalar Case-3 COUNT also costs one sweep per touched member (all
/// extension steps fused), and agrees with the ground-truth executor within
/// a loose statistical bound.
#[test]
fn case3_scalar_count_is_fused_and_sane() {
    let (db, ens) = singles();
    let ens = clone_for_test(ens);
    let n = db.table_id("nation").unwrap();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    let q = Query::count(vec![n, c, o]).filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));

    let before: Vec<u64> = ens.rspns().iter().map(|r| r.probe_passes()).collect();
    let est = compile::estimate_count(&ens, db, &q).unwrap();
    let after: Vec<u64> = ens.rspns().iter().map(|r| r.probe_passes()).collect();
    let deltas: Vec<u64> = before.iter().zip(&after).map(|(b, a)| a - b).collect();
    assert!(
        deltas.iter().all(|&d| d <= 1),
        "scalar Case-3 swept a member more than once: {deltas:?}"
    );
    assert!(deltas.iter().sum::<u64>() >= 2);

    let truth = execute(db, &q).unwrap().scalar().count as f64;
    let q_err = (est.value.max(1.0) / truth.max(1.0)).max(truth.max(1.0) / est.value.max(1.0));
    assert!(
        q_err < 2.5,
        "3-table combine estimate {} vs truth {truth} (q-error {q_err:.2})",
        est.value
    );
}

/// The fused multi-value Case-3 path (`estimate_count_values`, the GROUP BY
/// domain-pruning workhorse) returns bitwise the same per-value counts as
/// running the eager oracle once per value.
#[test]
fn count_values_case3_matches_per_value_oracle() {
    let (db, ens) = singles();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    let qtables: BTreeSet<TableId> = [c, o].into_iter().collect();
    let base = Query::count(vec![c, o]).filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)));
    let target = ColumnRef {
        table: c,
        column: 3,
    };
    let values = [Value::Int(0), Value::Int(1), Value::Int(2), Value::Null];

    let planned = compile::estimate_count_values(ens, db, &base, target, &values).unwrap();
    for (v, got) in values.iter().zip(&planned) {
        let mut preds = base.predicates.clone();
        preds.push(match v {
            Value::Null => Predicate::new(c, 3, PredOp::IsNull),
            _ => Predicate::new(c, 3, PredOp::Cmp(CmpOp::Eq, *v)),
        });
        let want = combine::multi_rspn_count(ens, db, &qtables, &preds)
            .unwrap()
            .value
            .max(0.0);
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "value {v:?}: planned {got} vs oracle {want}"
        );
    }
}

/// Degenerate denominators end to end: an impossible predicate on the
/// Theorem-2 overlap empties numerator AND denominator, which must resolve
/// to a clean zero count (not NaN, not a panic) on both paths.
#[test]
fn empty_overlap_resolves_to_clean_zero() {
    let (db, ens) = pairs();
    let n = db.table_id("nation").unwrap();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    // c_segment = 77 was never observed: zero mass on the overlap.
    let q = Query::count(vec![n, c, o]).filter(c, 3, PredOp::Cmp(CmpOp::Eq, Value::Int(77)));
    let qtables: BTreeSet<TableId> = [n, c, o].into_iter().collect();

    let planned = compile::estimate_count(ens, db, &q);
    let oracle = combine::multi_rspn_count(ens, db, &qtables, &q.predicates);
    match (planned, oracle) {
        (Ok(p), Ok(e)) => {
            assert!(p.value.is_finite(), "planned must not leak NaN/∞");
            assert!(p.value.abs() < 1e-6, "impossible overlap gave {}", p.value);
            assert_eq!(p.value.to_bits(), e.value.to_bits());
        }
        // Both paths may also agree the ratio is unanswerable.
        (Err(deepdb_core::DeepDbError::NotAnswerable(_)), Err(_)) => {}
        (p, e) => panic!("paths diverged: planned {p:?}, oracle {e:?}"),
    }
}

/// Multi-RSPN GROUP BY groups resolve bitwise identically to issuing each
/// group's scalar COUNT on its own — the combine template's per-group
/// registration appends exactly the predicates the scalar path translates.
#[test]
fn case3_grouped_counts_match_per_group_scalars() {
    let (db, ens) = singles();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    let q = Query::count(vec![c, o]).group(c, 3);
    let out = execute_aqp(ens, db, &q).unwrap();
    assert!(!out.groups().is_empty());
    for (key, got) in out.groups() {
        let scalar = match key[0] {
            Value::Null => Query::count(vec![c, o]).filter(c, 3, PredOp::IsNull),
            v => Query::count(vec![c, o]).filter(c, 3, PredOp::Cmp(CmpOp::Eq, v)),
        };
        let want = compile::estimate_count(ens, db, &scalar).unwrap();
        assert_eq!(
            got.count_estimate.to_bits(),
            want.value.to_bits(),
            "group {key:?}"
        );
    }
}

/// Plan determinism across snapshot round-trips: the same Case-3 query on a
/// reloaded ensemble resolves to bitwise the same estimate (member
/// tie-breaking and edge order are reproducible).
#[test]
fn combine_is_deterministic_across_reloads() {
    let (db, ens) = singles();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    let q = Query::count(vec![c, o]).filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
    let a = compile::estimate_count(ens, db, &q).unwrap();
    for _ in 0..3 {
        let reloaded = clone_for_test(ens);
        let b = compile::estimate_count(&reloaded, db, &q).unwrap();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.variance.to_bits(), b.variance.to_bits());
    }
}

/// Case-3 GROUP BY also survives the Grouped aggregate kinds: AVG and SUM
/// ride the same shared plan and match the executor loosely.
#[test]
fn case3_grouped_sum_tracks_executor() {
    let (db, ens) = singles();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    let q = Query::count(vec![c, o])
        .aggregate(deepdb_storage::Aggregate::Sum(ColumnRef {
            table: o,
            column: 3,
        }))
        .group(c, 3);
    let truth = execute(db, &q).unwrap();
    let out = execute_aqp(ens, db, &q).unwrap();
    assert!(!out.groups().is_empty());
    for (key, res) in out.groups() {
        let t = truth
            .groups()
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, a)| a.sum)
            .unwrap_or(0.0);
        let rel = (res.value - t).abs() / t.abs().max(1.0);
        assert!(
            rel < 0.6,
            "group {key:?}: {} vs {t} (rel {rel:.2})",
            res.value
        );
    }
}

/// Ensembles are cheap to snapshot-clone for isolated sweep-count
/// bookkeeping (also exercises load-path combine planning).
fn clone_for_test(ens: &Ensemble) -> Ensemble {
    let mut buf = Vec::new();
    ens.save(&mut buf).unwrap();
    Ensemble::load(&mut buf.as_slice()).unwrap()
}
