//! Integration suite for the concurrent serving front-end
//! ([`deepdb_core::ServeFront`]): cross-client probe fusion (one fused
//! sweep per touched member per window, bitwise-equal to unfused
//! execution), bounded-admission backpressure, deadline handling with
//! graceful window degradation, panic isolation with pool self-healing,
//! and `StalePlan` recovery under real and injected maintenance races.

use std::sync::{Barrier, OnceLock};
use std::time::Duration;

use deepdb_core::compile::{estimate_avg, estimate_count, estimate_sum};
use deepdb_core::{
    compile, query_literals, DeepDbError, Ensemble, EnsembleBuilder, EnsembleParams,
    EnsembleStrategy, Estimate, FaultPlan, FaultSite, ServeConfig, ServeFront,
};
use deepdb_storage::fixtures::correlated_customer_order;
use deepdb_storage::{Aggregate, CmpOp, ColumnRef, Database, PredOp, Query, Value};

/// Two single-table members, so two-table queries exercise Case-3
/// combination (both members touched by one fused plan).
fn fixture() -> &'static (Database, Ensemble) {
    static CELL: OnceLock<(Database, Ensemble)> = OnceLock::new();
    CELL.get_or_init(|| {
        let db = correlated_customer_order(1000, 21);
        let params = EnsembleParams {
            strategy: EnsembleStrategy::SingleTables,
            sample_size: 10_000,
            correlation_sample: 1_000,
            ..EnsembleParams::default()
        };
        let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
        (db, ens)
    })
}

/// A small pool of distinct query shapes: single-table and two-table
/// (Case-3) counts, an AVG, and a SUM.
fn shape_query(db: &Database, i: usize) -> Query {
    let customer = db.table_id("customer").unwrap();
    let orders = db.table_id("orders").unwrap();
    match i % 6 {
        0 => Query::count(vec![customer]).filter(
            customer,
            1,
            PredOp::Cmp(CmpOp::Le, Value::Int(40 + (i as i64 % 30))),
        ),
        1 => Query::count(vec![customer, orders]).filter(
            orders,
            2,
            PredOp::Cmp(CmpOp::Eq, Value::Int(i as i64 % 2)),
        ),
        2 => Query::count(vec![orders])
            .aggregate(Aggregate::Avg(ColumnRef {
                table: orders,
                column: 3,
            }))
            .filter(orders, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(i as i64 % 2))),
        3 => Query::count(vec![orders])
            .aggregate(Aggregate::Sum(ColumnRef {
                table: orders,
                column: 3,
            }))
            .filter(
                orders,
                3,
                PredOp::Cmp(CmpOp::Ge, Value::Int(50 + (i as i64 % 100))),
            ),
        4 => Query::count(vec![customer, orders])
            .filter(
                customer,
                2,
                PredOp::Cmp(CmpOp::Eq, Value::Int(i as i64 % 3)),
            )
            .filter(orders, 3, PredOp::Cmp(CmpOp::Le, Value::Int(200))),
        _ => Query::count(vec![customer]).filter(
            customer,
            2,
            PredOp::Cmp(CmpOp::Eq, Value::Int(i as i64 % 3)),
        ),
    }
}

/// Unfused reference: the canonical single-query paths.
fn reference(db: &Database, ens: &Ensemble, q: &Query) -> Estimate {
    match q.aggregate {
        Aggregate::CountStar => estimate_count(ens, db, q).unwrap(),
        Aggregate::Avg(_) => estimate_avg(ens, db, q).unwrap(),
        Aggregate::Sum(_) => estimate_sum(ens, db, q).unwrap(),
    }
}

fn bits_eq(a: &Estimate, b: &Estimate) -> bool {
    a.value.to_bits() == b.value.to_bits() && a.variance.to_bits() == b.variance.to_bits()
}

/// K concurrent clients arriving together are served by ONE fused sweep per
/// touched member, and every answer is bitwise-equal to the unfused
/// single-query path.
#[test]
fn fused_batch_is_bitwise_equal_and_sweeps_each_member_once() {
    let (db, ens) = fixture();
    const K: usize = 6;
    let front = ServeFront::with_config(
        ens,
        db,
        ServeConfig {
            window: Duration::from_secs(1),
            max_batch: K,
            ..ServeConfig::default()
        },
    );
    let queries: Vec<Query> = (0..K).map(|i| shape_query(db, i)).collect();
    let refs: Vec<Estimate> = queries.iter().map(|q| reference(db, ens, q)).collect();

    let before: Vec<u64> = ens.rspns().iter().map(|r| r.probe_passes()).collect();
    let barrier = Barrier::new(K);
    let got: Vec<Estimate> = std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                let barrier = &barrier;
                let front = &front;
                s.spawn(move || {
                    barrier.wait();
                    front.serve(q, None).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (g, r) in got.iter().zip(&refs) {
        assert!(bits_eq(g, r), "fused {g:?} != unfused {r:?}");
    }
    let stats = front.stats();
    assert_eq!(stats.batches, 1, "expected one fused batch: {stats:?}");
    assert_eq!(stats.fused_requests, K as u64);
    // One fused sweep per member across all K clients (the reference runs
    // above are not counted: `before` was snapshotted after them).
    let after: Vec<u64> = ens.rspns().iter().map(|r| r.probe_passes()).collect();
    for (m, (&b, &a)) in before.iter().zip(&after).enumerate() {
        assert!(a - b <= 1, "member {m} swept {} times for one batch", a - b);
    }
    assert!(
        after.iter().zip(&before).any(|(&a, &b)| a == b + 1),
        "no member swept at all"
    );
}

/// Admission is bounded: with capacity 1, a second concurrent request is
/// rejected with `Overloaded` before any work happens, and the occupant
/// still completes.
#[test]
fn overloaded_backpressure_rejects_beyond_capacity() {
    let (db, ens) = fixture();
    let front = ServeFront::with_config(
        ens,
        db,
        ServeConfig {
            queue_capacity: 1,
            window: Duration::from_millis(300),
            max_batch: 8,
            ..ServeConfig::default()
        },
    );
    let q = shape_query(db, 0);
    let want = reference(db, ens, &q);
    std::thread::scope(|s| {
        let occupant = s.spawn(|| front.serve(&q, None));
        // Wait until the occupant is admitted and holding its slot.
        while front.in_flight() == 0 {
            std::thread::yield_now();
        }
        let rejected = front.serve(&q, None);
        assert_eq!(rejected, Err(DeepDbError::Overloaded));
        assert!(rejected.unwrap_err().is_retryable());
        let got = occupant.join().unwrap().unwrap();
        assert!(bits_eq(&got, &want));
    });
    assert_eq!(front.stats().rejected_overloaded, 1);
}

/// An expired deadline surfaces as `DeadlineExceeded` (the sweep is
/// cancelled cooperatively), shrinks the batching window, and clean
/// batches restore it.
#[test]
fn deadline_miss_shrinks_window_and_clean_batches_restore_it() {
    let (db, ens) = fixture();
    let front = ServeFront::with_config(
        ens,
        db,
        ServeConfig {
            window: Duration::from_millis(64),
            max_batch: 8,
            ..ServeConfig::default()
        },
    );
    let q = shape_query(db, 1);
    assert_eq!(front.effective_window(), Duration::from_millis(64));
    let r = front.serve(&q, Some(Duration::ZERO));
    assert_eq!(r, Err(DeepDbError::DeadlineExceeded));
    assert!(front.effective_window() < Duration::from_millis(64));
    assert!(front.stats().deadline_misses >= 1);

    // Clean traffic restores the window step by step.
    let want = reference(db, ens, &q);
    for _ in 0..4 {
        let got = front.serve(&q, None).unwrap();
        assert!(bits_eq(&got, &want));
    }
    assert_eq!(front.effective_window(), Duration::from_millis(64));
}

/// A panic inside the fused sweep fails only the client whose isolated
/// re-execution still faults; co-batched peers complete bitwise-correctly
/// and the pool keeps serving afterwards.
#[test]
fn sweep_panic_is_isolated_to_one_client_and_pool_self_heals() {
    let (db, ens) = fixture();
    const K: usize = 3;
    // Budget 2: the fused sweep panics once, then exactly one isolated
    // re-execution panics; everything after behaves.
    let faults = FaultPlan::new(5)
        .with_panics(1024)
        .with_panic_budget(2)
        .only_at(FaultSite::TileStart);
    let front = ServeFront::with_config(
        ens,
        db,
        ServeConfig {
            window: Duration::from_secs(1),
            max_batch: K,
            threads: 1, // sequential tiles: deterministic budget spend
            ..ServeConfig::default()
        },
    )
    .with_faults(faults);
    let queries: Vec<Query> = (0..K).map(|i| shape_query(db, i)).collect();
    let refs: Vec<Estimate> = queries.iter().map(|q| reference(db, ens, q)).collect();

    let barrier = Barrier::new(K);
    let got: Vec<Result<Estimate, DeepDbError>> = std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                let barrier = &barrier;
                let front = &front;
                s.spawn(move || {
                    barrier.wait();
                    front.serve(q, None)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut panicked = 0;
    for (r, want) in got.iter().zip(&refs) {
        match r {
            Ok(e) => assert!(bits_eq(e, want), "survivor got {e:?}, want {want:?}"),
            Err(DeepDbError::QueryPanicked(_)) => panicked += 1,
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert_eq!(panicked, 1, "exactly one client absorbs the fault: {got:?}");
    let stats = front.stats();
    assert_eq!(stats.isolated_fallbacks, K as u64);
    assert_eq!(stats.query_panics, 1);

    // Budget exhausted: the same front (same pool) keeps answering
    // bitwise-correctly — the panic poisoned nothing.
    for (q, want) in queries.iter().zip(&refs) {
        let got = front.serve(q, None).unwrap();
        assert!(bits_eq(&got, want));
    }
}

/// Injected epoch churn on every sweep: the internal one-shot retry fires,
/// and when maintenance never settles the request surfaces `StalePlan` —
/// never a stale answer.
#[test]
fn churning_maintenance_surfaces_stale_plan_after_one_retry() {
    let (db, ens) = fixture();
    let faults = FaultPlan::new(3)
        .with_epoch_bumps(1024)
        .only_at(FaultSite::TileStart);
    let front = ServeFront::with_config(
        ens,
        db,
        ServeConfig {
            window: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .with_faults(faults);
    let q = shape_query(db, 0);
    let r = front.serve(&q, None);
    assert_eq!(r, Err(DeepDbError::StalePlan));
    assert!(front.stats().stale_retries >= 1);
}

/// Real maintenance race: clients hammer the front while another thread
/// bumps the plan epoch. Every client gets a bitwise-correct answer or a
/// typed `StalePlan` — never a wrong answer — and serving recovers fully
/// once maintenance stops.
#[test]
fn concurrent_epoch_bumps_never_produce_wrong_answers() {
    let (db, ens) = fixture();
    let front = ServeFront::with_config(
        ens,
        db,
        ServeConfig {
            window: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    );
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 12;
    let queries: Vec<Query> = (0..CLIENTS).map(|i| shape_query(db, i)).collect();
    let refs: Vec<Estimate> = queries.iter().map(|q| reference(db, ens, q)).collect();

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let stop = &stop;
        let maintenance = s.spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                ens.invalidate_plans();
                std::thread::sleep(Duration::from_micros(300));
            }
        });
        let handles: Vec<_> = queries
            .iter()
            .zip(&refs)
            .map(|(q, want)| {
                let front = &front;
                s.spawn(move || {
                    let mut ok = 0usize;
                    let mut stale = 0usize;
                    for _ in 0..ROUNDS {
                        match front.serve(q, None) {
                            Ok(e) => {
                                assert!(bits_eq(&e, want), "wrong answer under churn");
                                ok += 1;
                            }
                            Err(DeepDbError::StalePlan) => stale += 1,
                            Err(other) => panic!("unexpected error under churn: {other:?}"),
                        }
                    }
                    (ok, stale)
                })
            })
            .collect();
        let tallies: Vec<(usize, usize)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        maintenance.join().unwrap();
        let total_ok: usize = tallies.iter().map(|t| t.0).sum();
        assert!(total_ok > 0, "churn starved every request: {tallies:?}");
    });

    // Maintenance settled: everything answers again.
    for (q, want) in queries.iter().zip(&refs) {
        let got = front.serve(q, None).unwrap();
        assert!(bits_eq(&got, want));
    }
}

/// `serve_prepared` transparently re-prepares on `StalePlan` (one shot):
/// after maintenance invalidates every plan, the same handle still answers
/// bitwise-correctly.
#[test]
fn serve_prepared_repreparess_once_on_stale_plan() {
    let (db, ens) = fixture();
    let front = ServeFront::new(ens, db);
    let q = shape_query(db, 4);
    let lits = query_literals(&q);
    let want = reference(db, ens, &q);

    let mut prepared = ens.prepare(db, &q).unwrap();
    let first = front.serve_prepared(&mut prepared, &lits, None).unwrap();
    assert!(bits_eq(&first, &want));

    // Maintenance lands between executions: the raw handle would fail
    // `StalePlan`, the front re-prepares and answers.
    ens.invalidate_plans();
    let before = front.stats().stale_retries;
    let second = front.serve_prepared(&mut prepared, &lits, None).unwrap();
    assert!(bits_eq(&second, &want));
    assert_eq!(front.stats().stale_retries, before + 1);

    // The re-prepared handle is current again: no further retries needed.
    let third = front.serve_prepared(&mut prepared, &lits, None).unwrap();
    assert!(bits_eq(&third, &want));
    assert_eq!(front.stats().stale_retries, before + 1);
}

/// GROUP BY is typed out of the scalar serving path.
#[test]
fn group_by_is_rejected_with_unsupported() {
    let (db, ens) = fixture();
    let front = ServeFront::new(ens, db);
    let customer = db.table_id("customer").unwrap();
    let q = Query::count(vec![customer]).group(customer, 2);
    match front.serve(&q, None) {
        Err(DeepDbError::Unsupported(_)) => {}
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

/// The ensemble-level cache and the serving path agree with AQP's central
/// dispatcher for the same query (sanity that serve uses the same
/// artifacts, not a divergent code path).
#[test]
fn serve_matches_compile_entry_points_bitwise() {
    let (db, ens) = fixture();
    let front = ServeFront::with_config(
        ens,
        db,
        ServeConfig {
            window: Duration::ZERO, // singleton batches
            ..ServeConfig::default()
        },
    );
    for i in 0..12 {
        let q = shape_query(db, i);
        let want = reference(db, ens, &q);
        let got = front.serve(&q, None).unwrap();
        assert!(bits_eq(&got, &want), "shape {i}: {got:?} vs {want:?}");
    }
    // estimate_cardinality is the COUNT fast path; cross-check one shape.
    let q = shape_query(db, 1);
    let card = compile::estimate_cardinality(ens, db, &q).unwrap();
    let got = front.serve(&q, None).unwrap();
    assert_eq!(card.to_bits(), got.value.to_bits());
}
