//! Core-level acceptance tests for in-place arena maintenance: an
//! interleaved update/query stream must (a) never recompile on the hot path
//! — the per-member `Rspn::probe_passes` counters survive updates — and
//! (b) produce estimates bitwise identical to a freshly recompiled model
//! (a snapshot round-trip rebuilds every arena from the tree). The batched
//! ensemble entry point must match the sequential one bitwise.

use deepdb_core::{execute_aqp, Ensemble, EnsembleBuilder, EnsembleParams};
use deepdb_storage::fixtures::correlated_customer_order;
use deepdb_storage::{Aggregate, CmpOp, ColumnRef, Database, PredOp, Query, Value};

fn setup() -> (Database, Ensemble) {
    let db = correlated_customer_order(1500, 33);
    let params = EnsembleParams {
        sample_size: 12_000,
        correlation_sample: 1_000,
        rdc_threshold: 0.0, // force the joint RSPN
        ..EnsembleParams::default()
    };
    let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
    (db, ens)
}

fn snapshot_round_trip(ens: &Ensemble) -> Ensemble {
    let mut buf = Vec::new();
    ens.save(&mut buf).unwrap();
    Ensemble::load(&mut buf.as_slice()).unwrap()
}

fn workload(c: usize, o: usize) -> Vec<Query> {
    vec![
        Query::count(vec![c]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0))),
        Query::count(vec![c, o])
            .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)))
            .aggregate(Aggregate::Avg(ColumnRef {
                table: o,
                column: 3,
            })),
        Query::count(vec![c, o])
            .aggregate(Aggregate::Sum(ColumnRef {
                table: o,
                column: 3,
            }))
            .group(c, 2),
    ]
}

/// Interleaved inserts and queries: every estimate after every burst matches
/// the recompiled-from-tree baseline bit for bit, and no member is ever
/// recompiled (sweep counters keep counting monotonically).
#[test]
fn interleaved_update_stream_matches_recompile_bitwise() {
    let (mut db, mut ens) = setup();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    let queries = workload(c, o);

    let mut next_cust = 1_000_000i64;
    let mut next_order = 2_000_000i64;
    let mut passes_floor: Vec<u64> = ens.rspns().iter().map(|r| r.probe_passes()).collect();

    for burst in 0..4 {
        // A burst of direct updates (customers and orders).
        for k in 0..40 {
            next_cust += 1;
            ens.apply_insert(
                &mut db,
                c,
                &[
                    Value::Int(next_cust),
                    Value::Int(20 + (k % 50)),
                    Value::Int(k % 2),
                ],
            )
            .unwrap();
            next_order += 1;
            ens.apply_insert(
                &mut db,
                o,
                &[
                    Value::Int(next_order),
                    Value::Int(next_cust),
                    Value::Int((k + burst) % 2),
                    Value::Float(100.0 + k as f64),
                ],
            )
            .unwrap();
        }

        // The update path must not have reset any sweep counter (a recompile
        // would have): counters only ever grow.
        let passes_now: Vec<u64> = ens.rspns().iter().map(|r| r.probe_passes()).collect();
        for (i, (&floor, &now)) in passes_floor.iter().zip(&passes_now).enumerate() {
            assert!(
                now >= floor,
                "member {i} lost probe passes after updates ({now} < {floor}): \
                 the hot path recompiled"
            );
        }

        // Queries on the patched engines ≡ queries on a recompiled model.
        let baseline = snapshot_round_trip(&ens);
        for (qi, q) in queries.iter().enumerate() {
            let got = execute_aqp(&ens, &db, q).unwrap();
            let want = execute_aqp(&baseline, &db, q).unwrap();
            match (&got, &want) {
                (deepdb_core::AqpOutput::Scalar(g), deepdb_core::AqpOutput::Scalar(w)) => {
                    assert_eq!(g.value.to_bits(), w.value.to_bits(), "burst {burst} q{qi}");
                    assert_eq!(g.ci_low.to_bits(), w.ci_low.to_bits());
                    assert_eq!(g.ci_high.to_bits(), w.ci_high.to_bits());
                }
                (deepdb_core::AqpOutput::Grouped(g), deepdb_core::AqpOutput::Grouped(w)) => {
                    assert_eq!(g.len(), w.len(), "burst {burst} q{qi} group count");
                    for ((gk, gr), (wk, wr)) in g.iter().zip(w.iter()) {
                        assert_eq!(gk, wk);
                        assert_eq!(gr.value.to_bits(), wr.value.to_bits());
                        assert_eq!(gr.count_estimate.to_bits(), wr.count_estimate.to_bits());
                    }
                }
                _ => panic!("shape mismatch"),
            }
        }
        passes_floor = ens.rspns().iter().map(|r| r.probe_passes()).collect();
    }
}

/// `apply_insert_batch` ≡ the same sequence of `apply_insert` calls, bitwise
/// — model state (training-row counts, |J|), bookkeeping, and estimates.
#[test]
fn batched_ensemble_updates_match_sequential_bitwise() {
    let (db, ens) = setup();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();

    let rows: Vec<Vec<Value>> = (0..120)
        .map(|k| {
            vec![
                Value::Int(3_000_000 + k),
                Value::Int(18 + (k % 60)),
                Value::Int(k % 2),
            ]
        })
        .collect();

    let mut db_seq = db.clone();
    let mut ens_seq = snapshot_round_trip(&ens);
    for row in &rows {
        ens_seq.apply_insert(&mut db_seq, c, row).unwrap();
    }

    let mut db_batch = db.clone();
    let mut ens_batch = snapshot_round_trip(&ens);
    ens_batch
        .apply_insert_batch(&mut db_batch, c, &rows)
        .unwrap();

    assert_eq!(ens_seq.updates_absorbed(), ens_batch.updates_absorbed());
    assert_eq!(ens_seq.table_rows(c), ens_batch.table_rows(c));
    for (a, b) in ens_seq.rspns().iter().zip(ens_batch.rspns()) {
        assert_eq!(a.n_training(), b.n_training(), "model mass diverged");
        assert_eq!(a.full_join_count(), b.full_join_count());
    }
    for (qi, q) in workload(c, o).iter().enumerate() {
        let a = execute_aqp(&ens_seq, &db_seq, q).unwrap();
        let b = execute_aqp(&ens_batch, &db_batch, q).unwrap();
        match (&a, &b) {
            (deepdb_core::AqpOutput::Scalar(x), deepdb_core::AqpOutput::Scalar(y)) => {
                assert_eq!(x.value.to_bits(), y.value.to_bits(), "q{qi}");
            }
            (deepdb_core::AqpOutput::Grouped(x), deepdb_core::AqpOutput::Grouped(y)) => {
                assert_eq!(x.len(), y.len());
                for ((xk, xr), (yk, yr)) in x.iter().zip(y.iter()) {
                    assert_eq!(xk, yk);
                    assert_eq!(xr.value.to_bits(), yr.value.to_bits(), "q{qi}");
                }
            }
            _ => panic!("shape mismatch"),
        }
    }
}

/// Deleting a row that routes to drained model mass leaves the member
/// consistent (ensemble-level view of the empty-cluster fix): |J| and table
/// bookkeeping still apply, but the model is never desynchronized.
#[test]
fn ensemble_delete_keeps_models_consistent() {
    let (mut db, mut ens) = setup();
    let o = db.table_id("orders").unwrap();

    // Insert and then delete a burst of orders; the estimates must return to
    // the (bitwise) pre-insert state only if every delete routed cleanly —
    // which check-then-apply guarantees for tuples we just inserted.
    let c_tbl = db.table_id("customer").unwrap();
    let q = Query::count(vec![c_tbl, o]).filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
    let before = execute_aqp(&ens, &db, &q).unwrap().scalar().unwrap();

    let mut pks = Vec::new();
    for k in 0..30 {
        let pk = 4_000_000 + k;
        ens.apply_insert(
            &mut db,
            o,
            &[
                Value::Int(pk),
                Value::Int(1 + (k % 5)),
                Value::Int(0),
                Value::Float(50.0),
            ],
        )
        .unwrap();
        pks.push(pk);
    }
    let mid = execute_aqp(&ens, &db, &q).unwrap().scalar().unwrap();
    assert!(mid.value >= before.value, "inserts must raise the count");

    for pk in pks {
        let row = db.table(o).find_pk(pk).unwrap();
        ens.apply_delete(&mut db, o, row).unwrap();
    }
    db.validate_integrity().unwrap();
    let after = execute_aqp(&ens, &db, &q).unwrap().scalar().unwrap();
    // Sampled absorption may skip some tuples, but whatever was absorbed was
    // reversed along the same routes; the estimate lands close to `before`.
    let rel = (after.value - before.value).abs() / before.value.max(1.0);
    assert!(rel < 0.05, "{} vs {}", after.value, before.value);
}
