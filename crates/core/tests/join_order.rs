//! Order-equivalence and accounting suite for cardinality-driven join
//! ordering: any scan order the optimizer chooses must produce **exactly**
//! the listed-order `QueryOutput` (scalar and grouped, NULL groups
//! included) — ordering may only change how much intermediate work the
//! executor does, never the answer. Exact `==` on outputs is sound here
//! because every compared aggregate input is integer-valued (integer sums
//! below 2^53 are order-independent in f64). Also covers the enumerator's
//! `CacheStats::optimizer_estimates` accounting, subset-shape memoization
//! across rebinds, and the `explain` renderer.

use std::sync::OnceLock;

use deepdb_core::{Ensemble, EnsembleBuilder, EnsembleParams, EnsembleStrategy, JoinOrderer};
use deepdb_data::{imdb, joblight, Scale};
use deepdb_storage::optimizer::{explain, JoinOrderSpace, TrueCardinality};
use deepdb_storage::{
    execute_ordered, execute_ordered_with_stats, execute_with_indexes, plan_order, Aggregate,
    CmpOp, ColumnRef, Database, Domain, Indexes, PredOp, Predicate, Query, TableSchema, Value,
};
use proptest::prelude::*;

/// 3-table FK chain `nation ← customer ← orders` (same construction as the
/// combine-plan suite) with a nullable customer segment so grouped queries
/// exercise NULL groups. `c_age` is integer-valued: safe for exact SUM/AVG
/// comparison across join orders.
fn chain_db() -> Database {
    let mut db = Database::new("chain3");
    db.create_table(
        TableSchema::new("nation")
            .pk("n_id")
            .col("n_region", Domain::categorical(["EU", "AS", "AM", "AF"])),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("customer")
            .pk("c_id")
            .col("n_id", Domain::Key)
            .col("c_age", Domain::Discrete)
            .nullable_col("c_segment", Domain::categorical(["A", "B", "C"])),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("orders")
            .pk("o_id")
            .col("c_id", Domain::Key)
            .col("o_channel", Domain::categorical(["ONLINE", "STORE"]))
            .col("o_amount", Domain::Continuous),
    )
    .unwrap();
    db.add_foreign_key("customer", "n_id", "nation").unwrap();
    db.add_foreign_key("orders", "c_id", "customer").unwrap();

    let mut state = 0x5EEDu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for n in 1..=5i64 {
        db.insert("nation", &[Value::Int(n), Value::Int((n - 1) % 4)])
            .unwrap();
    }
    let mut order_id = 1i64;
    for c in 1..=300i64 {
        let nation = 1 + (next() * 5.0) as i64;
        let age = 18 + ((nation * 13) as f64 + next() * 40.0) as i64;
        let segment = if next() < 0.2 {
            Value::Null
        } else {
            Value::Int((next() * 3.0) as i64)
        };
        db.insert(
            "customer",
            &[Value::Int(c), Value::Int(nation), Value::Int(age), segment],
        )
        .unwrap();
        let n_orders = (next() * if age > 50 { 4.0 } else { 2.0 }) as i64;
        for _ in 0..n_orders {
            let channel = i64::from(next() < 0.6);
            db.insert(
                "orders",
                &[
                    Value::Int(order_id),
                    Value::Int(c),
                    Value::Int(channel),
                    Value::Float(10.0 + next() * 200.0),
                ],
            )
            .unwrap();
            order_id += 1;
        }
    }
    db
}

fn chain() -> &'static (Database, Ensemble, Indexes) {
    static CELL: OnceLock<(Database, Ensemble, Indexes)> = OnceLock::new();
    CELL.get_or_init(|| {
        let db = chain_db();
        let params = EnsembleParams {
            strategy: EnsembleStrategy::SingleTables,
            sample_size: 6_000,
            correlation_sample: 500,
            ..EnsembleParams::default()
        };
        let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
        let idx = Indexes::build(&db);
        (db, ens, idx)
    })
}

/// Tiny synthetic IMDb + single-table ensemble + prebuilt indexes for the
/// JOB-style multi-join fixtures.
fn imdb_fixture() -> &'static (Database, Ensemble, Indexes) {
    static CELL: OnceLock<(Database, Ensemble, Indexes)> = OnceLock::new();
    CELL.get_or_init(|| {
        let db = imdb::generate(Scale {
            factor: 0.02,
            seed: 7,
        });
        let params = EnsembleParams {
            strategy: EnsembleStrategy::SingleTables,
            sample_size: 8_000,
            correlation_sample: 400,
            ..EnsembleParams::default()
        };
        let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
        let idx = Indexes::build(&db);
        (db, ens, idx)
    })
}

/// Random predicate over the chain's filterable columns (NULL tests and
/// out-of-domain constants included).
fn make_pred(db: &Database, slot_sel: u8, op_sel: u8, v: i64) -> Predicate {
    let n = db.table_id("nation").unwrap();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    let (table, col) = match slot_sel % 4 {
        0 => (n, 1),
        1 => (c, 2),
        2 => (c, 3),
        _ => (o, 2),
    };
    let op = match op_sel % 6 {
        0 => PredOp::Cmp(CmpOp::Eq, Value::Int(v)),
        1 => PredOp::Cmp(CmpOp::Le, Value::Int(v)),
        2 => PredOp::Cmp(CmpOp::Ge, Value::Int(v)),
        3 => PredOp::IsNull,
        4 => PredOp::IsNotNull,
        _ => PredOp::Between(Value::Int(v), Value::Int(v + 20)),
    };
    Predicate::new(table, col, op)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Estimator-chosen order ≡ listed order ≡ worst enumerated order on the
    /// 3-table chain, for every FROM rotation, randomized predicates, all
    /// three aggregates, and scalar/grouped output (NULL groups included).
    #[test]
    fn estimator_order_matches_listed_order_exactly(
        rot in 0usize..3,
        preds in prop::collection::vec((0u8..8, 0u8..8, -5i64..90), 0..4),
        agg_sel in 0u8..3,
        group_sel in 0u8..3,
    ) {
        let (db, ens, idx) = chain();
        let n = db.table_id("nation").unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let tables = match rot {
            0 => vec![n, c, o],
            1 => vec![o, c, n],
            _ => vec![c, n, o],
        };
        let age = ColumnRef { table: c, column: 2 };
        let mut q = Query::count(tables).aggregate(match agg_sel {
            0 => Aggregate::CountStar,
            1 => Aggregate::Sum(age),
            _ => Aggregate::Avg(age),
        });
        q.predicates = preds.iter().map(|&(s, op, v)| make_pred(db, s, op, v)).collect();
        match group_sel {
            0 => {}
            1 => q = q.group(c, 3), // nullable segment → NULL groups
            _ => q = q.group(n, 1),
        }

        let listed = execute_with_indexes(db, &q, Some(idx)).unwrap();

        // RSPN-estimated best order.
        let mut orderer = JoinOrderer::new();
        let chosen_order = orderer.optimize(ens, db, &q).unwrap();
        let chosen = execute_ordered(db, &q, Some(idx), &chosen_order).unwrap();
        prop_assert_eq!(&listed, &chosen);

        // Ground-truth-priced best AND worst orders: the executor must be
        // order-invariant across the whole enumerated space.
        let mut truth = TrueCardinality::new(Some(idx));
        let space = JoinOrderSpace::new(db, &q, &mut truth).unwrap();
        for order in [space.best(), space.worst()] {
            let out = execute_ordered(db, &q, Some(idx), &order).unwrap();
            prop_assert_eq!(&listed, &out);
        }
    }
}

/// JOB-style multi-join templates on the synthetic IMDb: RSPN-chosen orders
/// are output-equal to the listed order, scalar and grouped (the nullable
/// `season_nr` group column produces NULL groups), and actual per-level
/// cardinalities line up with the executed order.
#[test]
fn job_multi_orders_are_output_equal_on_imdb() {
    let (db, ens, idx) = imdb_fixture();
    let title = db.table_id("title").unwrap();
    let mut orderer = JoinOrderer::new();
    let mut null_groups_seen = false;
    for nq in joblight::job_multi(db, 3).into_iter().take(6) {
        let listed = execute_with_indexes(db, &nq.query, Some(idx)).unwrap();
        let order = orderer.optimize(ens, db, &nq.query).unwrap();
        let (chosen, stats) = execute_ordered_with_stats(db, &nq.query, Some(idx), &order).unwrap();
        assert_eq!(listed, chosen, "{}", nq.name);
        assert_eq!(stats.order, order.tables, "{}", nq.name);
        assert_eq!(
            *stats.rows_per_level.last().unwrap(),
            chosen.scalar().count,
            "{}: last level must count the qualifying join rows",
            nq.name
        );

        // Grouped variant on the nullable season column.
        let gq = nq.query.clone().group(title, 3);
        let glisted = execute_with_indexes(db, &gq, Some(idx)).unwrap();
        let gorder = orderer.optimize(ens, db, &gq).unwrap();
        let gchosen = execute_ordered(db, &gq, Some(idx), &gorder).unwrap();
        assert_eq!(glisted, gchosen, "{} grouped", nq.name);
        null_groups_seen |= glisted
            .groups()
            .iter()
            .any(|(key, _)| key.iter().any(|v| matches!(v, Value::Null)));
    }
    assert!(
        null_groups_seen,
        "fixtures must exercise at least one NULL group"
    );
}

/// Enumerator accounting: one `optimizer_estimates` tick per connected
/// subset, subset shapes memoized across literal rebinds, and the priced
/// listed order never beats the DP's best. Uses a private ensemble so
/// concurrently running tests cannot skew the counters.
#[test]
fn enumerator_estimates_are_accounted_and_shapes_memoized() {
    let db = chain_db();
    let params = EnsembleParams {
        strategy: EnsembleStrategy::SingleTables,
        sample_size: 2_000,
        correlation_sample: 300,
        ..EnsembleParams::default()
    };
    let ens = EnsembleBuilder::new(&db).params(params).build().unwrap();
    let n = db.table_id("nation").unwrap();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    let q = Query::count(vec![o, c, n])
        .filter(c, 2, PredOp::Cmp(CmpOp::Le, Value::Int(50)))
        .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)));

    let mut orderer = JoinOrderer::new();
    let before = ens.plan_cache_stats().optimizer_estimates;
    let space = orderer.space(&ens, &db, &q).unwrap();
    // Connected subsets of the chain n–c–o: {n}, {c}, {o}, {n,c}, {c,o},
    // {n,c,o} — {n,o} is not FK-adjacent.
    assert_eq!(space.n_estimates(), 6);
    assert_eq!(
        ens.plan_cache_stats().optimizer_estimates - before,
        6,
        "every enumerator estimate must be accounted"
    );
    assert_eq!(orderer.shapes(), 6);

    // Same shape, new literals: prepared sub-queries rebind — shape count
    // stays put, estimates are accounted again.
    let q2 = Query::count(vec![o, c, n])
        .filter(c, 2, PredOp::Cmp(CmpOp::Le, Value::Int(30)))
        .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
    let space2 = orderer.space(&ens, &db, &q2).unwrap();
    assert_eq!(ens.plan_cache_stats().optimizer_estimates - before, 12);
    assert_eq!(orderer.shapes(), 6, "rebinds must not mint new shapes");

    // The listed order is priced from the same table and can't beat best.
    for s in [&space, &space2] {
        let listed = s.order_for(&plan_order(&db, &q.tables).unwrap()).unwrap();
        assert!(s.best().cost <= listed.cost);
        assert!(listed.cost <= s.worst().cost || listed.cost == s.worst().cost);
    }
}

/// The explain renderer shows the chosen order with estimated vs actual
/// cardinalities per step.
#[test]
fn explain_renders_estimates_against_actuals() {
    let (db, ens, idx) = chain();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    let n = db.table_id("nation").unwrap();
    let q = Query::count(vec![o, c, n]).filter(c, 2, PredOp::Cmp(CmpOp::Le, Value::Int(45)));
    let mut orderer = JoinOrderer::new();
    let order = orderer.optimize(ens, db, &q).unwrap();
    let (_, stats) = execute_ordered_with_stats(db, &q, Some(idx), &order).unwrap();
    let rendered = explain(db, &order, &stats);
    for t in &order.tables {
        assert!(
            rendered.contains(db.table(*t).schema().name()),
            "missing table name in:\n{rendered}"
        );
    }
    assert!(rendered.contains("est/actual"), "{rendered}");
    assert!(rendered.contains("estimated cost"), "{rendered}");
}
