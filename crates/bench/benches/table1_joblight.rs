//! **Table 1** — Estimation errors for the JOB-light benchmark.
//!
//! Reproduces: median / 90th / 95th / max q-errors on 70 JOB-light-style
//! queries over the synthetic IMDb for DeepDB, MCSN, Postgres-style, IBJS,
//! and Random Sampling, plus the training-time comparison of §6.1
//! ("Training Time").
//!
//! Paper reference values (real IMDb): DeepDB 1.27 / 2.50 / 3.16 / 39.66;
//! MCSN 3.22 / 65 / 143 / 717; Postgres 6.84 / 162 / 817 / 3477;
//! IBJS 1.67 / 72 / 333 / 6949; Random Sampling 5.05 / 73 / 10371 / 49187.

use std::time::Instant;

use deepdb_baselines::ibjs::Ibjs;
use deepdb_baselines::mcsn::Mcsn;
use deepdb_baselines::postgres::PostgresEstimator;
use deepdb_baselines::sampling::RandomSampling;
use deepdb_bench::{
    build_ensemble, default_ensemble_params, fmt_dur, percentiles, print_table, qerror,
};
use deepdb_core::compile::estimate_cardinality;
use deepdb_data::{ground_truth_cardinalities, imdb, joblight};
use deepdb_storage::Indexes;

fn main() {
    let scale = deepdb_bench::bench_scale(1.0);
    println!(
        "Table 1: JOB-light estimation errors (scale {:.2}, seed {})",
        scale.factor, scale.seed
    );

    let db = imdb::generate(scale);
    println!(
        "IMDb-synth: {} titles, {} total rows",
        db.table(db.table_id("title").unwrap()).n_rows(),
        db.total_rows()
    );
    let workload = joblight::job_light(&db, scale.seed);
    let truths = ground_truth_cardinalities(&db, &workload);

    // DeepDB: data-driven ensemble (no workload needed).
    let (ensemble, deepdb_time) = build_ensemble(&db, default_ensemble_params(scale.seed));

    // MCSN: workload-driven — training queries limited to ≤ 3 tables (§6.1).
    let n_train = if deepdb_bench::fast_mode() { 200 } else { 1500 };
    let train_queries: Vec<_> =
        joblight::synthetic(&db, &[2, 3], &[1, 2, 3], n_train / 6, scale.seed ^ 0xAB)
            .into_iter()
            .map(|nq| nq.query)
            .collect();
    let t0 = Instant::now();
    let mcsn = Mcsn::train(
        &db,
        &train_queries,
        if deepdb_bench::fast_mode() { 10 } else { 60 },
        scale.seed,
    );
    let mcsn_total = t0.elapsed();

    // Non-learned baselines.
    let postgres = PostgresEstimator::analyze(&db);
    let indexes = Indexes::build(&db);
    let mut ibjs = Ibjs::new(&db, &indexes, 1000, scale.seed ^ 0x1B);
    let sampling = RandomSampling::build(&db, 0.01, scale.seed ^ 0x5A).expect("sampling");

    let mut q_deepdb = Vec::new();
    let mut q_mcsn = Vec::new();
    let mut q_pg = Vec::new();
    let mut q_ibjs = Vec::new();
    let mut q_rs = Vec::new();
    let mut est_latency_us = Vec::new();
    for (nq, &truth) in workload.iter().zip(&truths) {
        let t = Instant::now();
        let est = estimate_cardinality(&ensemble, &db, &nq.query).expect("deepdb estimate");
        est_latency_us.push(t.elapsed().as_secs_f64() * 1e6);
        q_deepdb.push(qerror(est, truth));
        q_mcsn.push(qerror(mcsn.estimate(&db, &nq.query), truth));
        q_pg.push(qerror(postgres.estimate(&db, &nq.query), truth));
        q_ibjs.push(qerror(ibjs.estimate(&nq.query), truth));
        q_rs.push(qerror(sampling.estimate(&nq.query), truth));
    }

    let mut rows = Vec::new();
    for (name, qs) in [
        ("DeepDB (ours)", &mut q_deepdb),
        ("MCSN", &mut q_mcsn),
        ("Postgres", &mut q_pg),
        ("IBJS", &mut q_ibjs),
        ("Random Sampling", &mut q_rs),
    ] {
        let (med, p90, p95, max) = percentiles(qs);
        rows.push(vec![
            name.to_string(),
            format!("{med:.2}"),
            format!("{p90:.2}"),
            format!("{p95:.2}"),
            format!("{max:.2}"),
        ]);
    }
    print_table(
        "Table 1: Estimation Errors for the JOB-light Benchmark (q-errors)",
        &["estimator", "median", "90th", "95th", "max"],
        &rows,
    );

    print_table(
        "Training time (§6.1)",
        &["system", "data collection", "model training", "total"],
        &[
            vec![
                "DeepDB ensemble".into(),
                "-".into(),
                fmt_dur(deepdb_time),
                fmt_dur(deepdb_time),
            ],
            vec![
                format!("MCSN ({} labeled queries)", train_queries.len()),
                fmt_dur(mcsn.label_collection_time),
                fmt_dur(mcsn.training_time),
                fmt_dur(mcsn_total),
            ],
        ],
    );

    let mut lat = est_latency_us;
    let (lmed, l90, _, lmax) = percentiles(&mut lat);
    println!(
        "\nDeepDB estimation latency: median {lmed:.0}µs, 90th {l90:.0}µs, max {lmax:.0}µs \
         (paper: µs to ms)"
    );
}
