//! **Table 2** — Estimation errors for JOB-light after updates.
//!
//! Learns the base ensemble (budget factor 0, as in the paper) on a share of
//! the synthetic IMDb, streams the held-out tuples through the direct RSPN
//! update path (paper Algorithm 1), and re-evaluates the JOB-light q-errors.
//! Both the random split and the temporal (production-year) split are
//! reproduced, plus the update-throughput claim of §6.1 (≈55k tuples/s at a
//! 1% sample rate in the paper's setup).
//!
//! Paper shape: q-errors change only marginally even at 40% updates.

use std::time::Instant;

use deepdb_bench::{default_ensemble_params, percentiles, print_table, qerror};
use deepdb_core::compile::estimate_cardinality;
use deepdb_core::EnsembleBuilder;
use deepdb_data::{ground_truth_cardinalities, imdb, joblight, updates};

fn main() {
    let scale = deepdb_bench::bench_scale(0.5);
    println!(
        "Table 2: updates (scale {:.2}, seed {})",
        scale.factor, scale.seed
    );
    // Base ensemble only (budget factor 0), as in the paper's Table 2.
    let mut params = default_ensemble_params(scale.seed);
    params.budget_factor = 0.0;

    let mut rows_random = Vec::new();
    let mut rows_temporal = Vec::new();
    let mut throughput = Vec::new();

    let shares = [0.0, 0.05, 0.10, 0.20, 0.40];
    for (mode, rows_out) in [
        ("random", &mut rows_random),
        ("temporal", &mut rows_temporal),
    ] {
        for &share in &shares {
            let (mut db, stream, label) = if mode == "random" {
                let (db, stream) = updates::split_imdb_random(scale, share, scale.seed ^ 0x42);
                (db, stream, format!("{:.0}%", share * 100.0))
            } else {
                let cutoff = updates::cutoff_for_fraction(scale, share);
                let (db, stream, real_share) = updates::split_imdb_temporal(scale, cutoff);
                (
                    db,
                    stream,
                    format!("<{cutoff} ({:.1}%)", real_share * 100.0),
                )
            };
            let mut ensemble = EnsembleBuilder::new(&db)
                .params(params.clone())
                .build()
                .expect("ensemble");

            // Stream the held-out tuples through the update path.
            let n_updates = stream.len();
            let t0 = Instant::now();
            for (table, values) in stream {
                ensemble
                    .apply_insert(&mut db, table, &values)
                    .expect("update");
            }
            let elapsed = t0.elapsed();
            if n_updates > 0 {
                throughput.push(n_updates as f64 / elapsed.as_secs_f64());
            }
            ensemble.refresh_join_counts(&db).expect("refresh");

            // Evaluate JOB-light on the fully updated database.
            let workload = joblight::job_light(&db, scale.seed);
            let truths = ground_truth_cardinalities(&db, &workload);
            let mut qs: Vec<f64> = workload
                .iter()
                .zip(&truths)
                .map(|(nq, &t)| {
                    qerror(
                        estimate_cardinality(&ensemble, &db, &nq.query).expect("estimate"),
                        t,
                    )
                })
                .collect();
            let (med, p90, p95, _) = percentiles(&mut qs);
            rows_out.push(vec![
                label,
                format!("{med:.2}"),
                format!("{p90:.2}"),
                format!("{p95:.2}"),
            ]);
        }
    }

    print_table(
        "Table 2a: q-errors after updates — random split (held-out share)",
        &["split", "median", "90th", "95th"],
        &rows_random,
    );
    print_table(
        "Table 2b: q-errors after updates — temporal split (production year)",
        &["split", "median", "90th", "95th"],
        &rows_temporal,
    );

    let full = imdb::generate(scale);
    let avg_tp = throughput.iter().sum::<f64>() / throughput.len().max(1) as f64;
    println!(
        "\nUpdate throughput: {:.0} tuples/s average over {} runs \
         (paper: ~55k/s at 1% sample rate); database rows: {}",
        avg_tp,
        throughput.len(),
        full.total_rows()
    );
}
