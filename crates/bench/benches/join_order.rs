//! `join_order`: RSPN cardinality estimates driving the storage executor's
//! join order on JOB-style IMDb workloads.
//!
//! Three execution lanes over the same workload, all through the identical
//! `execute_ordered` machinery so only the scan order differs:
//!
//! * **listed** — the FROM-list BFS order (`plan_order`), i.e. what the
//!   executor did before the optimizer existed. `job_multi` deliberately
//!   lists the unfiltered `cast_info` first, so this order is realistic-bad.
//! * **estimated** — the order the `JoinOrderer` picks from RSPN cardinality
//!   estimates (prepared sub-queries, rebinding-only in steady state).
//! * **worst** — the most expensive enumerated order, bounding the space.
//!
//! Every compared order is asserted **output-equal** on every query before
//! any timing. A separate lane times planning itself (enumerate + estimate +
//! DP) in the warm steady state. Writes `BENCH_join_order.json`; the
//! acceptance gates (non-fast runs) are `listed/estimated ≥ 1.3×` on at
//! least one JOB-style workload and planning overhead `< 20%` of the won
//! runtime. `DEEPDB_FAST=1` shrinks the fixture and rep counts for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use deepdb_bench::default_ensemble_params;
use deepdb_core::JoinOrderer;
use deepdb_data::{imdb, imdb_workloads, Scale};
use deepdb_storage::{
    execute_ordered, plan_order, Database, Indexes, JoinOrder, Query, QueryOutput,
};

fn fast() -> bool {
    std::env::var("DEEPDB_FAST").is_ok_and(|v| v == "1")
}

/// Median ns over `reps` runs of `f`.
fn median_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct PlannedQuery {
    query: Query,
    listed: JoinOrder,
    estimated: JoinOrder,
    worst: JoinOrder,
}

fn run_all(
    db: &Database,
    idx: &Indexes,
    lane: impl Fn(&PlannedQuery) -> &JoinOrder,
    qs: &[PlannedQuery],
) -> f64 {
    let mut acc = 0.0;
    for pq in qs {
        acc += execute_ordered(db, &pq.query, Some(idx), lane(pq))
            .expect("execute")
            .scalar()
            .count as f64;
    }
    acc
}

fn bench_join_order(c: &mut Criterion) {
    let scale = Scale {
        factor: if fast() { 0.05 } else { 1.0 },
        seed: 42,
    };
    let db = imdb::generate(scale);
    let ens = deepdb_core::EnsembleBuilder::new(&db)
        .params(default_ensemble_params(scale.seed))
        .build()
        .expect("ensemble");
    let idx = Indexes::build(&db);
    let reps = if fast() { 3 } else { 9 };

    let mut orderer = JoinOrderer::new();
    let mut rows = Vec::new();
    for (wname, queries) in imdb_workloads(&db, scale.seed) {
        // Plan every query once: listed order priced from the same estimate
        // table as best/worst, so all three lanes share one enumeration.
        let planned: Vec<PlannedQuery> = queries
            .iter()
            .map(|nq| {
                let space = orderer.space(&ens, &db, &nq.query).expect("space");
                let listed_tables = plan_order(&db, &nq.query.tables).expect("plan_order");
                PlannedQuery {
                    query: nq.query.clone(),
                    listed: space.order_for(&listed_tables).expect("listed order"),
                    estimated: space.best(),
                    worst: space.worst(),
                }
            })
            .collect();

        // Acceptance before timing: every compared order is output-equal.
        for (nq, pq) in queries.iter().zip(&planned) {
            let outs: Vec<QueryOutput> = [&pq.listed, &pq.estimated, &pq.worst]
                .iter()
                .map(|o| execute_ordered(&db, &pq.query, Some(&idx), o).expect("execute"))
                .collect();
            assert_eq!(outs[0], outs[1], "{wname}/{}: estimated != listed", nq.name);
            assert_eq!(outs[0], outs[2], "{wname}/{}: worst != listed", nq.name);
        }

        if wname == "job_multi" {
            c.bench_function("join_order/job_multi/listed", |b| {
                b.iter(|| run_all(&db, &idx, |p| &p.listed, &planned))
            });
            c.bench_function("join_order/job_multi/estimated", |b| {
                b.iter(|| run_all(&db, &idx, |p| &p.estimated, &planned))
            });
            c.bench_function("join_order/job_multi/plan", |b| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for pq in &planned {
                        acc += orderer
                            .optimize(&ens, &db, &pq.query)
                            .expect("optimize")
                            .cost;
                    }
                    acc
                })
            });
        }

        let listed_ms = median_ns(reps, || run_all(&db, &idx, |p| &p.listed, &planned)) / 1e6;
        let est_ms = median_ns(reps, || run_all(&db, &idx, |p| &p.estimated, &planned)) / 1e6;
        let worst_ms = median_ns(reps, || run_all(&db, &idx, |p| &p.worst, &planned)) / 1e6;
        // Warm steady-state planning: every shape is memoized by now, so this
        // times enumerate + rebind-estimate + DP only.
        let plan_ms = median_ns(reps, || {
            let mut acc = 0.0;
            for pq in &planned {
                acc += orderer
                    .optimize(&ens, &db, &pq.query)
                    .expect("optimize")
                    .cost;
            }
            acc
        }) / 1e6;

        let speedup = listed_ms / est_ms.max(1e-9);
        let won_ms = (listed_ms - est_ms).max(0.0);
        let overhead = plan_ms / won_ms.max(1e-9);
        println!(
            "{wname}: {} queries, listed {listed_ms:.2} ms, estimated {est_ms:.2} ms, \
             worst {worst_ms:.2} ms, plan {plan_ms:.3} ms, speedup {speedup:.2}x, \
             plan overhead {:.1}% of won runtime",
            planned.len(),
            overhead * 100.0
        );
        rows.push((
            wname,
            planned.len(),
            listed_ms,
            est_ms,
            worst_ms,
            plan_ms,
            speedup,
            overhead,
        ));
    }

    if !fast() {
        // The acceptance gates from the issue: the RSPN-chosen order must be
        // ≥1.3× faster than the listed order on at least one JOB-style
        // workload, with planning overhead under 20% of the won runtime.
        let winner = rows
            .iter()
            .filter(|r| r.6 >= 1.3)
            .max_by(|a, b| a.6.partial_cmp(&b.6).unwrap());
        let winner = winner.unwrap_or_else(|| {
            panic!("no workload reached the 1.3x gate: {rows:?}");
        });
        assert!(
            winner.7 < 0.20,
            "{}: planning overhead {:.1}% must stay under 20% of won runtime",
            winner.0,
            winner.7 * 100.0
        );
    }

    let host = std::thread::available_parallelism().map_or(1, |x| x.get());
    let mut json = String::from("{\n  \"bench\": \"join_order\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"scale_factor\": {},\n", scale.factor));
    json.push_str(&format!(
        "  \"optimizer_estimates\": {},\n",
        ens.plan_cache_stats().optimizer_estimates
    ));
    json.push_str("  \"results\": [\n");
    for (i, (wname, n, listed_ms, est_ms, worst_ms, plan_ms, speedup, overhead)) in
        rows.iter().enumerate()
    {
        json.push_str(&format!(
            "    {{\"workload\": \"{wname}\", \"queries\": {n}, \
             \"listed_ms\": {listed_ms:.3}, \"estimated_ms\": {est_ms:.3}, \
             \"worst_ms\": {worst_ms:.3}, \"plan_ms\": {plan_ms:.3}, \
             \"listed_over_estimated\": {speedup:.2}, \
             \"plan_overhead_fraction\": {overhead:.3}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join_order.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }
    println!("{json}");
}

criterion_group! {
    name = benches;
    config = {
        let (samples, secs) = if fast() { (5, 1) } else { (15, 3) };
        Criterion::default()
            .sample_size(samples)
            .measurement_time(std::time::Duration::from_secs(secs))
            .warm_up_time(std::time::Duration::from_millis(if fast() { 100 } else { 500 }))
    };
    targets = bench_join_order
}
criterion_main!(benches);
