//! `plan_cache`: the cross-query plan cache and the `PreparedQuery` API vs.
//! cold planning, at 1 / 8 / 64 distinct query shapes.
//!
//! Three lanes over the same shape pool of two-table Case-3 COUNT queries
//! (single-table RSPNs, so every query combines two members):
//!
//! * **planned-cold** — plan cache capacity 0 (full bypass): every call pays
//!   planning + translation + sentinel-free build, exactly the pre-cache
//!   behavior.
//! * **planned-cached** — default cache, warmed: every call is a shape hit
//!   that only rebinds literal slots into a shared artifact.
//! * **prepared** — `Ensemble::prepare` once per shape outside the timer;
//!   the loop only rebinds literals and executes (zero planning work, zero
//!   steady-state allocation).
//!
//! All three lanes are asserted **bitwise identical** per shape before any
//! timing. Writes `BENCH_plan_cache.json` with ns/query per lane and the
//! `cold_over_prepared` ratio (the acceptance gate is ≥ 1.5×).
//! `DEEPDB_FAST=1` shrinks the fixture and rep counts for the CI smoke run.

use criterion::{criterion_group, criterion_main, Criterion};
use deepdb_core::{
    compile, query_literals, Ensemble, EnsembleBuilder, EnsembleParams, EnsembleStrategy,
    PreparedQuery,
};
use deepdb_storage::fixtures::correlated_customer_order;
use deepdb_storage::{CmpOp, Database, PredOp, Query, Value};

fn fast() -> bool {
    std::env::var("DEEPDB_FAST").is_ok_and(|v| v == "1")
}

fn fixture() -> (Database, Ensemble) {
    let n = if fast() { 600 } else { 4_000 };
    let db = correlated_customer_order(n, 41);
    let params = EnsembleParams {
        strategy: EnsembleStrategy::SingleTables, // two-table COUNTs are Case 3
        sample_size: if fast() { 4_000 } else { 16_000 },
        correlation_sample: 500,
        ..EnsembleParams::default()
    };
    let ens = EnsembleBuilder::new(&db)
        .params(params)
        .build()
        .expect("ensemble");
    (db, ens)
}

/// Shape `i` mixes operators over four columns by mixed-radix decomposition
/// (4 age ops × 3 region ops × 2 channel ops × 3 amount ops = 72 distinct
/// shapes), so any prefix of the pool has pairwise-distinct cache keys.
/// Literal *values* also vary with `i`, but those never enter the key.
fn shape_query(i: usize) -> Query {
    let (cu, o) = (0usize, 1usize);
    let mut q = Query::count(vec![cu, o]);
    let age_lit = 22 + (i as i64 % 17);
    q = match i % 4 {
        0 => q.filter(cu, 1, PredOp::Cmp(CmpOp::Eq, Value::Int(age_lit))),
        1 => q.filter(cu, 1, PredOp::Cmp(CmpOp::Le, Value::Int(age_lit + 20))),
        2 => q.filter(cu, 1, PredOp::Cmp(CmpOp::Ge, Value::Int(age_lit))),
        _ => q.filter(
            cu,
            1,
            PredOp::Between(Value::Int(age_lit), Value::Int(age_lit + 15)),
        ),
    };
    q = match (i / 4) % 3 {
        0 => q,
        1 => q.filter(cu, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(i as i64 % 3))),
        _ => q.filter(
            cu,
            2,
            PredOp::In(vec![
                Value::Int(i as i64 % 3),
                Value::Int((i as i64 + 1) % 3),
            ]),
        ),
    };
    if (i / 12) % 2 == 1 {
        q = q.filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(i as i64 % 2)));
    }
    match (i / 24) % 3 {
        0 => q,
        1 => q.filter(o, 3, PredOp::Cmp(CmpOp::Le, Value::Float(120.0 + i as f64))),
        _ => q.filter(o, 3, PredOp::Cmp(CmpOp::Ge, Value::Float(40.0 + i as f64))),
    }
}

/// Median ns over `reps` runs of `f`.
fn median_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_plan_cache(c: &mut Criterion) {
    let reps = if fast() { 7 } else { 21 };
    let (db, ens) = fixture();
    let pool: Vec<Query> = (0..64).map(shape_query).collect();
    let prepare_all = |queries: &[Query]| -> Vec<(PreparedQuery, Vec<f64>)> {
        queries
            .iter()
            .map(|q| (ens.prepare(&db, q).expect("prepare"), query_literals(q)))
            .collect()
    };

    // Acceptance first: cold ≡ cached ≡ prepared, bitwise, on every shape.
    ens.set_plan_cache_capacity(0);
    let cold_all: Vec<_> = pool
        .iter()
        .map(|q| compile::estimate_count(&ens, &db, q).expect("cold"))
        .collect();
    ens.set_plan_cache_capacity(256);
    for q in &pool {
        compile::estimate_count(&ens, &db, q).expect("warm"); // populate
    }
    let mut prepared_all = prepare_all(&pool);
    for (i, (q, cold)) in pool.iter().zip(&cold_all).enumerate() {
        let cached = compile::estimate_count(&ens, &db, q).expect("cached");
        assert_eq!(
            cold.value.to_bits(),
            cached.value.to_bits(),
            "shape {i}: cold {} vs cached {}",
            cold.value,
            cached.value
        );
        assert_eq!(cold.variance.to_bits(), cached.variance.to_bits());
        let (prep, lits) = &mut prepared_all[i];
        let pe = prep.execute(&ens, &db, lits).expect("prepared");
        assert_eq!(
            cold.value.to_bits(),
            pe.value.to_bits(),
            "shape {i}: cold {} vs prepared {}",
            cold.value,
            pe.value
        );
        assert_eq!(cold.variance.to_bits(), pe.variance.to_bits());
    }
    let stats = ens.plan_cache_stats();
    assert!(
        stats.hits >= 64,
        "warm pool must hit on every shape (stats: {stats:?})"
    );

    let mut rows = Vec::new();
    for shapes in [1usize, 8, 64] {
        let queries = &pool[..shapes];

        ens.set_plan_cache_capacity(0);
        c.bench_function(&format!("plan_cache/{shapes}/planned_cold"), |b| {
            b.iter(|| {
                for q in queries {
                    compile::estimate_count(&ens, &db, q).expect("cold");
                }
            })
        });
        let cold_ns = median_ns(reps, || {
            for q in queries {
                compile::estimate_count(&ens, &db, q).expect("cold");
            }
        }) / shapes as f64;

        ens.set_plan_cache_capacity(256);
        for q in queries {
            compile::estimate_count(&ens, &db, q).expect("warm");
        }
        c.bench_function(&format!("plan_cache/{shapes}/planned_cached"), |b| {
            b.iter(|| {
                for q in queries {
                    compile::estimate_count(&ens, &db, q).expect("cached");
                }
            })
        });
        let cached_ns = median_ns(reps, || {
            for q in queries {
                compile::estimate_count(&ens, &db, q).expect("cached");
            }
        }) / shapes as f64;

        let mut prepared = prepare_all(queries);
        c.bench_function(&format!("plan_cache/{shapes}/prepared"), |b| {
            b.iter(|| {
                for (prep, lits) in prepared.iter_mut() {
                    prep.execute(&ens, &db, lits).expect("prepared");
                }
            })
        });
        let prepared_ns = median_ns(reps, || {
            for (prep, lits) in prepared.iter_mut() {
                prep.execute(&ens, &db, lits).expect("prepared");
            }
        }) / shapes as f64;

        rows.push((shapes, cold_ns, cached_ns, prepared_ns));
    }

    // The acceptance gate: prepared execution must beat cold planning by
    // ≥ 1.5× ns/query on repeated shapes (it is typically far above that).
    for &(shapes, cold_ns, _, prepared_ns) in &rows {
        assert!(
            cold_ns >= 1.5 * prepared_ns,
            "{shapes} shapes: prepared ({prepared_ns:.0} ns) must be ≥1.5x \
             faster than planned-cold ({cold_ns:.0} ns)"
        );
    }

    let host = std::thread::available_parallelism().map_or(1, |x| x.get());
    let mut json = String::from("{\n  \"bench\": \"plan_cache\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"ensemble_members\": {},\n", ens.rspns().len()));
    json.push_str("  \"results\": [\n");
    for (i, (shapes, cold_ns, cached_ns, prepared_ns)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shapes\": {shapes}, \"planned_cold_ns_per_query\": {cold_ns:.0}, \
             \"planned_cached_ns_per_query\": {cached_ns:.0}, \
             \"prepared_ns_per_query\": {prepared_ns:.0}, \
             \"cold_over_cached\": {:.2}, \"cold_over_prepared\": {:.2}}}{}\n",
            cold_ns / cached_ns.max(1.0),
            cold_ns / prepared_ns.max(1.0),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plan_cache.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }
    println!("{json}");
}

criterion_group! {
    name = benches;
    config = {
        let (samples, secs) = if fast() { (5, 1) } else { (15, 3) };
        Criterion::default()
            .sample_size(samples)
            .measurement_time(std::time::Duration::from_secs(secs))
            .warm_up_time(std::time::Duration::from_millis(if fast() { 100 } else { 500 }))
    };
    targets = bench_plan_cache
}
criterion_main!(benches);
