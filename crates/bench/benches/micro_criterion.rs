//! Criterion micro-benchmarks backing the paper's latency/throughput
//! claims:
//!
//! * cardinality-estimation latency (§6.1: "µs to ms"),
//! * AQP latency (§6.2: ≤31 ms Flights, ≤293 ms SSB),
//! * RSPN update throughput (§6.1: ~55k tuples/s),
//! * SPN inference and ground-truth executor baselines for context.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deepdb_bench::default_ensemble_params;
use deepdb_core::compile::estimate_cardinality;
use deepdb_core::{execute_aqp, EnsembleBuilder};
use deepdb_data::{flights, imdb, joblight, Scale};
use deepdb_storage::{execute, Value};

fn bench_cardinality_latency(c: &mut Criterion) {
    let scale = Scale { factor: 0.2, seed: 42 };
    let db = imdb::generate(scale);
    let mut ens = EnsembleBuilder::new(&db)
        .params(default_ensemble_params(scale.seed))
        .build()
        .expect("ensemble");
    let workload = joblight::job_light(&db, scale.seed);
    let mut i = 0;
    c.bench_function("cardinality_estimate_joblight", |b| {
        b.iter(|| {
            let q = &workload[i % workload.len()].query;
            i += 1;
            std::hint::black_box(estimate_cardinality(&mut ens, &db, q).expect("estimate"))
        })
    });
    // Ground-truth executor for comparison (what the estimate replaces).
    let mut j = 0;
    c.bench_function("ground_truth_executor_joblight", |b| {
        b.iter(|| {
            let q = &workload[j % workload.len()].query;
            j += 1;
            std::hint::black_box(execute(&db, q).expect("execute").scalar().count)
        })
    });
}

fn bench_aqp_latency(c: &mut Criterion) {
    let scale = Scale { factor: 0.2, seed: 42 };
    let db = flights::generate(scale);
    let mut ens = EnsembleBuilder::new(&db)
        .params(default_ensemble_params(scale.seed))
        .build()
        .expect("ensemble");
    let queries = flights::queries(&db);
    let mut i = 0;
    c.bench_function("aqp_flights_query", |b| {
        b.iter(|| {
            let q = &queries[i % queries.len()].query;
            i += 1;
            std::hint::black_box(execute_aqp(&mut ens, &db, q).expect("aqp"))
        })
    });
}

fn bench_update_throughput(c: &mut Criterion) {
    let scale = Scale { factor: 0.1, seed: 42 };
    c.bench_function("rspn_insert_order_row", |b| {
        b.iter_batched(
            || {
                let db = deepdb_storage::fixtures::correlated_customer_order(2000, 7);
                let ens = EnsembleBuilder::new(&db)
                    .params(default_ensemble_params(scale.seed))
                    .build()
                    .expect("ensemble");
                (db, ens, 1_000_000i64)
            },
            |(mut db, mut ens, base_id)| {
                let o = db.table_id("orders").unwrap();
                for k in 0..100 {
                    ens.apply_insert(
                        &mut db,
                        o,
                        &[
                            Value::Int(base_id + k),
                            Value::Int(1 + (k % 1500)),
                            Value::Int(k % 2),
                            Value::Float(99.0),
                        ],
                    )
                    .expect("insert");
                }
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_cardinality_latency, bench_aqp_latency, bench_update_throughput
}
criterion_main!(benches);
