//! Criterion micro-benchmarks backing the paper's latency/throughput
//! claims:
//!
//! * cardinality-estimation latency (§6.1: "µs to ms"),
//! * AQP latency (§6.2: ≤31 ms Flights, ≤293 ms SSB),
//! * RSPN update throughput (§6.1: ~55k tuples/s),
//! * SPN inference and ground-truth executor baselines for context,
//! * `batched_vs_recursive`: the arena [`BatchEvaluator`] against the
//!   recursive oracle at batch sizes 1/16/256, with a machine-readable
//!   `BENCH_spn_batch.json` summary so the perf trajectory is tracked.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deepdb_bench::default_ensemble_params;
use deepdb_core::compile::estimate_cardinality;
use deepdb_core::{execute_aqp, EnsembleBuilder};
use deepdb_data::{flights, imdb, joblight, Scale};
use deepdb_spn::{
    BatchEvaluator, ColumnMeta, CompiledSpn, DataView, LeafFunc, LeafPred, Spn, SpnParams, SpnQuery,
};
use deepdb_storage::{execute_with_indexes, Indexes, Value};

fn bench_cardinality_latency(c: &mut Criterion) {
    let scale = Scale {
        factor: 0.2,
        seed: 42,
    };
    let db = imdb::generate(scale);
    let ens = EnsembleBuilder::new(&db)
        .params(default_ensemble_params(scale.seed))
        .build()
        .expect("ensemble");
    let workload = joblight::job_light(&db, scale.seed);
    let mut i = 0;
    c.bench_function("cardinality_estimate_joblight", |b| {
        b.iter(|| {
            let q = &workload[i % workload.len()].query;
            i += 1;
            std::hint::black_box(estimate_cardinality(&ens, &db, q).expect("estimate"))
        })
    });
    // Ground-truth executor for comparison (what the estimate replaces);
    // indexes are built once and reused, as a real system would.
    let indexes = Indexes::build(&db);
    let mut j = 0;
    c.bench_function("ground_truth_executor_joblight", |b| {
        b.iter(|| {
            let q = &workload[j % workload.len()].query;
            j += 1;
            std::hint::black_box(
                execute_with_indexes(&db, q, Some(&indexes))
                    .expect("execute")
                    .scalar()
                    .count,
            )
        })
    });
}

fn bench_aqp_latency(c: &mut Criterion) {
    let scale = Scale {
        factor: 0.2,
        seed: 42,
    };
    let db = flights::generate(scale);
    let ens = EnsembleBuilder::new(&db)
        .params(default_ensemble_params(scale.seed))
        .build()
        .expect("ensemble");
    let queries = flights::queries(&db);
    let mut i = 0;
    c.bench_function("aqp_flights_query", |b| {
        b.iter(|| {
            let q = &queries[i % queries.len()].query;
            i += 1;
            std::hint::black_box(execute_aqp(&ens, &db, q).expect("aqp"))
        })
    });
}

fn bench_update_throughput(c: &mut Criterion) {
    let scale = Scale {
        factor: 0.1,
        seed: 42,
    };
    c.bench_function("rspn_insert_order_row", |b| {
        b.iter_batched(
            || {
                let db = deepdb_storage::fixtures::correlated_customer_order(2000, 7);
                let ens = EnsembleBuilder::new(&db)
                    .params(default_ensemble_params(scale.seed))
                    .build()
                    .expect("ensemble");
                (db, ens, 1_000_000i64)
            },
            |(mut db, mut ens, base_id)| {
                let o = db.table_id("orders").unwrap();
                for k in 0..100 {
                    ens.apply_insert(
                        &mut db,
                        o,
                        &[
                            Value::Int(base_id + k),
                            Value::Int(1 + (k % 1500)),
                            Value::Int(k % 2),
                            Value::Float(99.0),
                        ],
                    )
                    .expect("insert");
                }
            },
            BatchSize::LargeInput,
        )
    });
}

/// Hierarchically clustered multi-column fixture: all columns are driven by
/// a shared latent cluster id, so column splits fail and learning recurses
/// on row splits down to the minimum slice — producing a realistically deep
/// SPN (hundreds of nodes) like the paper's IMDb/SSB models, with a
/// tuple-factor-style column so the cardinality moment slots are exercised.
fn spn_batch_fixture() -> (Spn, CompiledSpn, Vec<SpnQuery>) {
    let n = 40_000;
    let mut state = 0xBA7C4u64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let mut cols: Vec<Vec<f64>> = (0..4).map(|_| Vec::with_capacity(n)).collect();
    for _ in 0..n {
        let c = (rng() * 64.0).floor(); // latent cluster 0..63
                                        // Every column tracks the latent id, so columns stay RDC-dependent
                                        // until a slice isolates one cluster — forcing deep row splits.
        cols[0].push(c * 10.0 + (rng() * 3.0).floor());
        cols[1].push(c * 7.0 + (rng() * 5.0).floor());
        cols[2].push(if rng() < 0.05 {
            f64::NAN
        } else {
            c * 3.0 + (rng() * 10.0).floor()
        });
        cols[3].push((c % 5.0) + (rng() * 2.0).floor()); // factor-like, may be 0
    }
    let meta = vec![
        ColumnMeta::discrete("region"),
        ColumnMeta::discrete("age"),
        ColumnMeta::discrete("amount"),
        ColumnMeta::discrete("factor"),
    ];
    let params = SpnParams {
        min_instance_ratio: 0.0025,
        ..SpnParams::default()
    };
    let spn = Spn::learn(DataView::new(&cols, &meta), &params);
    let compiled = spn.compile();

    // Cardinality-style probes: predicate conjunctions plus the Theorem-1
    // clamped-inverse normalization on the factor column.
    let mut queries = Vec::new();
    for v in 0..8i64 {
        queries.push(
            SpnQuery::new(4)
                .with_pred(0, LeafPred::eq((v * 80) as f64))
                .with_func(3, LeafFunc::InvClamp1),
        );
        queries.push(
            SpnQuery::new(4)
                .with_pred(0, LeafPred::ge((v * 70) as f64))
                .with_pred(1, LeafPred::le((300 + v * 10) as f64))
                .with_func(3, LeafFunc::InvClamp1),
        );
        queries.push(
            SpnQuery::new(4)
                .with_pred(1, LeafPred::lt((40 + v * 50) as f64))
                .with_pred(2, LeafPred::IsNotNull)
                .with_func(2, LeafFunc::X),
        );
        queries.push(
            SpnQuery::new(4)
                .with_pred(2, LeafPred::IsNull)
                .with_pred(0, LeafPred::le((v * 80) as f64)),
        );
    }
    (spn, compiled, queries)
}

/// Median ns per *query* over `reps` runs of `f` (which evaluates `batch`
/// queries per run).
fn median_ns_per_query(reps: usize, batch: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_batched_vs_recursive(c: &mut Criterion) {
    let (mut spn, compiled, queries) = spn_batch_fixture();
    let mut ev = BatchEvaluator::new();
    let sizes = [1usize, 16, 256];

    let mut summary = Vec::new();
    for &size in &sizes {
        let batch: Vec<SpnQuery> = (0..size)
            .map(|i| queries[i % queries.len()].clone())
            .collect();

        // The determinism contract the speedup rests on: SIMD kernels are
        // bitwise equal to the scalar reference path.
        let simd = ev.evaluate(&compiled, &batch);
        let scalar = ev.evaluate_scalar(&compiled, &batch);
        for (i, (a, b)) in simd.iter().zip(&scalar).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "batch {size}, query {i}");
        }

        c.bench_function(&format!("batched_vs_recursive/recursive_{size}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for q in &batch {
                    acc += spn.evaluate(q);
                }
                acc
            })
        });
        c.bench_function(&format!("batched_vs_recursive/batched_{size}"), |b| {
            b.iter(|| ev.evaluate(&compiled, &batch))
        });
        c.bench_function(
            &format!("batched_vs_recursive/batched_scalar_{size}"),
            |b| b.iter(|| ev.evaluate_scalar(&compiled, &batch)),
        );

        // Machine-readable summary (median of 64 runs each).
        let rec_ns = median_ns_per_query(64, size, || {
            let mut acc = 0.0;
            for q in &batch {
                acc += spn.evaluate(q);
            }
            acc
        });
        let bat_ns = median_ns_per_query(64, size, || ev.evaluate(&compiled, &batch)[0]);
        let sca_ns = median_ns_per_query(64, size, || ev.evaluate_scalar(&compiled, &batch)[0]);
        summary.push((size, rec_ns, bat_ns, sca_ns));
    }

    let mut json =
        String::from("{\n  \"bench\": \"spn_batched_vs_recursive\",\n  \"model_nodes\": ");
    json.push_str(&compiled.n_nodes().to_string());
    json.push_str(",\n  \"host_parallelism\": ");
    json.push_str(
        &std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .to_string(),
    );
    json.push_str(",\n  \"results\": [\n");
    for (i, (size, rec_ns, bat_ns, sca_ns)) in summary.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"batch_size\": {size}, \"recursive_ns_per_query\": {rec_ns:.1}, \
             \"batched_ns_per_query\": {bat_ns:.1}, \"scalar_ns_per_query\": {sca_ns:.1}, \
             \"speedup\": {:.2}, \"simd_vs_scalar\": {:.2}}}{}\n",
            rec_ns / bat_ns,
            sca_ns / bat_ns,
            if i + 1 < summary.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    // Anchor at the workspace root regardless of the bench's working dir.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spn_batch.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }
    println!("{json}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_batched_vs_recursive, bench_cardinality_latency, bench_aqp_latency, bench_update_throughput
}
criterion_main!(benches);
