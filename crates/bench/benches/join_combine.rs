//! `join_combine`: the symbolic Case-3 combine planner (all extension
//! steps of every group registered on ONE fused probe plan) vs. the
//! retained eager oracle (one throwaway plan + arena sweep per step per
//! group), at 1 / 8 / 64 groups over a 3-table Case-3 join.
//!
//! The fixture is a `nation ← customer ← orders` chain modeled by
//! single-table RSPNs only, so every multi-table COUNT combines three
//! members through the downward fan-out / upward factor-weighted branches —
//! exactly the queries the paper calls hardest (§4.1.2). The bench asserts
//! the planned per-group counts are **bitwise identical** to the eager
//! oracle before timing anything, then writes `BENCH_join_combine.json`
//! with ns/group for both paths (`eager_over_planned` ≥ 1 means the
//! planner wins). `DEEPDB_FAST=1` shrinks the fixture and rep counts for
//! the CI smoke run.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};
use deepdb_core::{combine, compile, Ensemble, EnsembleBuilder, EnsembleParams, EnsembleStrategy};
use deepdb_storage::{
    CmpOp, ColumnRef, Database, Domain, PredOp, Predicate, Query, TableSchema, Value,
};

fn fast() -> bool {
    std::env::var("DEEPDB_FAST").is_ok_and(|v| v == "1")
}

fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    }
}

/// 3-table chain whose customer `c_group` column carries 64 distinct values
/// (the GROUP BY domain) and whose other columns track a latent cluster so
/// SPN learning produces realistically deep models.
fn fixture() -> (Database, Ensemble) {
    let n_customers: i64 = if fast() { 1_500 } else { 8_000 };
    let mut db = Database::new("join_combine_fixture");
    db.create_table(
        TableSchema::new("nation")
            .pk("n_id")
            .col("n_region", Domain::Discrete),
    )
    .expect("fresh catalog");
    db.create_table(
        TableSchema::new("customer")
            .pk("c_id")
            .col("n_id", Domain::Key)
            .col("c_group", Domain::Discrete)
            .col("c_age", Domain::Discrete),
    )
    .expect("fresh catalog");
    db.create_table(
        TableSchema::new("orders")
            .pk("o_id")
            .col("c_id", Domain::Key)
            .col("o_channel", Domain::Discrete),
    )
    .expect("fresh catalog");
    db.add_foreign_key("customer", "n_id", "nation")
        .expect("valid fk");
    db.add_foreign_key("orders", "c_id", "customer")
        .expect("valid fk");

    let mut rng = lcg(0xC0FFEE);
    for n in 1..=8i64 {
        db.insert("nation", &[Value::Int(n), Value::Int((n - 1) % 4)])
            .expect("valid row");
    }
    let mut order_id = 1i64;
    for c in 1..=n_customers {
        let cluster = (rng() * 16.0).floor();
        let group = cluster * 4.0 + (rng() * 4.0).floor(); // 64 group values
        let nation = 1 + (rng() * 8.0) as i64;
        let age = 18 + (cluster * 3.0 + rng() * 10.0) as i64;
        db.insert(
            "customer",
            &[
                Value::Int(c),
                Value::Int(nation),
                Value::Int(group as i64),
                Value::Int(age),
            ],
        )
        .expect("valid row");
        for _ in 0..(rng() * 3.0) as i64 {
            db.insert(
                "orders",
                &[
                    Value::Int(order_id),
                    Value::Int(c),
                    Value::Int(i64::from(rng() < 0.5)),
                ],
            )
            .expect("valid row");
            order_id += 1;
        }
    }

    let params = EnsembleParams {
        strategy: EnsembleStrategy::SingleTables, // every join is Case 3
        sample_size: if fast() { 4_000 } else { 20_000 },
        correlation_sample: 500,
        ..EnsembleParams::default()
    };
    let ens = EnsembleBuilder::new(&db)
        .params(params)
        .build()
        .expect("ensemble");
    (db, ens)
}

/// Median ns over `reps` runs of `f`.
fn median_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_join_combine(c: &mut Criterion) {
    let reps = if fast() { 7 } else { 21 };
    let (db, ens) = fixture();
    let n = db.table_id("nation").unwrap();
    let cu = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    // The 3-table Case-3 join with one shared filter; groups come from
    // appending `c_group = v` per value.
    let base = Query::count(vec![n, cu, o]).filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
    let qtables: BTreeSet<usize> = [n, cu, o].into_iter().collect();
    let target = ColumnRef {
        table: cu,
        column: 2,
    };
    let all_values: Vec<Value> = (0..64).map(Value::Int).collect();

    // Planned path: every group's combine plan rides ONE fused probe plan.
    let planned =
        |values: &[Value]| compile::estimate_count_values(&ens, &db, &base, target, values);
    // Eager oracle: the retired per-step loop, one plan + sweep per step
    // per group.
    let eager = |values: &[Value]| -> Vec<f64> {
        values
            .iter()
            .map(|v| {
                let mut preds = base.predicates.clone();
                preds.push(Predicate::new(cu, 2, PredOp::Cmp(CmpOp::Eq, *v)));
                combine::multi_rspn_count(&ens, &db, &qtables, &preds)
                    .expect("oracle")
                    .value
                    .max(0.0)
            })
            .collect()
    };

    // Acceptance first: planned ≡ eager, bitwise, on every group count.
    let planned_all = planned(&all_values).expect("planned path");
    let eager_all = eager(&all_values);
    for (i, (p, e)) in planned_all.iter().zip(&eager_all).enumerate() {
        assert_eq!(
            p.to_bits(),
            e.to_bits(),
            "group {i}: planned {p} vs eager {e}"
        );
    }

    let mut rows = Vec::new();
    for groups in [1usize, 8, 64] {
        let values = &all_values[..groups];
        c.bench_function(&format!("join_combine/{groups}/planned"), |b| {
            b.iter(|| planned(values).expect("planned path"))
        });
        c.bench_function(&format!("join_combine/{groups}/eager"), |b| {
            b.iter(|| eager(values))
        });
        let planned_ns = median_ns(reps, || planned(values).expect("planned path")) / groups as f64;
        let eager_ns = median_ns(reps, || eager(values)) / groups as f64;
        rows.push((groups, planned_ns, eager_ns));
    }

    let host = std::thread::available_parallelism().map_or(1, |x| x.get());
    let model_nodes: usize = ens.rspns().iter().map(|r| r.model_size()).sum();
    let mut json = String::from("{\n  \"bench\": \"join_combine\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"ensemble_members\": {},\n", ens.rspns().len()));
    json.push_str(&format!("  \"model_nodes_total\": {model_nodes},\n"));
    json.push_str("  \"results\": [\n");
    for (i, (groups, planned_ns, eager_ns)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"groups\": {groups}, \"planned_ns_per_group\": {planned_ns:.0}, \
             \"eager_ns_per_group\": {eager_ns:.0}, \
             \"eager_over_planned\": {:.2}}}{}\n",
            eager_ns / planned_ns.max(1.0),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join_combine.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }
    println!("{json}");
}

criterion_group! {
    name = benches;
    config = {
        let (samples, secs) = if fast() { (5, 1) } else { (15, 3) };
        Criterion::default()
            .sample_size(samples)
            .measurement_time(std::time::Duration::from_secs(secs))
            .warm_up_time(std::time::Duration::from_millis(if fast() { 100 } else { 500 }))
    };
    targets = bench_join_combine
}
criterion_main!(benches);
