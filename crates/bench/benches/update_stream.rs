//! `update_stream`: interleaved direct updates and GROUP BY-shaped probe
//! batches, comparing **in-place arena patching** against the old dirty-flag
//! protocol (tree update + full recompile before the next query batch) at
//! two model sizes.
//!
//! The point of the patch path is architectural: per-update cost is
//! O(tree depth + touched bins) — independent of model size — while the
//! recompile baseline pays one full tree walk + arena rebuild per
//! update/query interleaving, i.e. O(model nodes). The JSON summary
//! (`BENCH_update_stream.json`) records both ns/update figures per model
//! size so the trajectory is machine-checkable; `DEEPDB_FAST=1` shrinks
//! models and rep counts for the CI smoke run.
//!
//! Each measured round inserts a tuple batch and then deletes the same batch
//! (restoring the model bit for bit, so reps are independent), with the
//! probe batch evaluated in between; the bench asserts the patched arena
//! stays bitwise identical to a full recompile throughout.

use criterion::{criterion_group, criterion_main, Criterion};
use deepdb_spn::{
    BatchEvaluator, ColumnMeta, DataView, LeafFunc, LeafPred, Spn, SpnParams, SpnQuery,
};

fn fast() -> bool {
    std::env::var("DEEPDB_FAST").is_ok_and(|v| v == "1")
}

fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    }
}

/// Hierarchically clustered 3-column table (group, a, b track a latent
/// cluster id) so learning recurses on row splits and yields a realistically
/// deep model; `g` carries 64 group values for the probe batches.
fn training_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<ColumnMeta>) {
    let mut rng = lcg(seed);
    let (mut g, mut a, mut b) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..n {
        let c = (rng() * 16.0).floor();
        g.push(c * 4.0 + (rng() * 4.0).floor());
        a.push(c * 7.0 + (rng() * 5.0).floor());
        b.push(c * 3.0 + (rng() * 10.0).floor());
    }
    (
        vec![g, a, b],
        vec![
            ColumnMeta::discrete("g"),
            ColumnMeta::discrete("a"),
            ColumnMeta::discrete("b"),
        ],
    )
}

fn learn(n: usize, min_instance_ratio: f64) -> Spn {
    let (cols, meta) = training_data(n, 0xBEEF ^ n as u64);
    let params = SpnParams {
        min_instance_ratio,
        ..SpnParams::default()
    };
    Spn::learn(DataView::new(&cols, &meta), &params)
}

/// Update batch drawn from the training distribution.
fn update_batch(k: usize, seed: u64) -> Vec<[f64; 3]> {
    let mut rng = lcg(seed);
    (0..k)
        .map(|_| {
            let c = (rng() * 16.0).floor();
            [
                c * 4.0 + (rng() * 4.0).floor(),
                c * 7.0 + (rng() * 5.0).floor(),
                c * 3.0 + (rng() * 10.0).floor(),
            ]
        })
        .collect()
}

/// GROUP BY-shaped probe batch: count + X-moment per group value.
fn probe_batch(n_groups: usize) -> Vec<SpnQuery> {
    let mut probes = Vec::with_capacity(n_groups * 2);
    for g in 0..n_groups {
        let gv = (g % 64) as f64;
        probes.push(SpnQuery::new(3).with_pred(0, LeafPred::eq(gv)));
        probes.push(
            SpnQuery::new(3)
                .with_pred(0, LeafPred::eq(gv))
                .with_func(1, LeafFunc::X),
        );
    }
    probes
}

/// Median ns over `reps` runs of `f`.
fn median_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct Row {
    label: &'static str,
    model_nodes: usize,
    rows: usize,
    patch_ns_per_update: f64,
    recompile_ns_per_update: f64,
}

fn bench_update_stream(c: &mut Criterion) {
    let (small_n, large_n) = if fast() {
        (1_500, 6_000)
    } else {
        (8_000, 40_000)
    };
    let reps = if fast() { 7 } else { 25 };
    let batch = 64usize;
    let sizes: [(&'static str, usize, f64); 2] =
        [("small", small_n, 0.03), ("large", large_n, 0.001)];

    let probes = probe_batch(32);
    let mut rows = Vec::new();
    for (label, n, ratio) in sizes {
        // Patch path and recompile baseline start from identical models.
        let mut patched = learn(n, ratio);
        let mut baseline = patched.clone();
        let mut arena = patched.compile();
        let model_nodes = patched.size();
        let mut ev = BatchEvaluator::new();
        let tuples = update_batch(batch, 0xD00D ^ n as u64);

        // One interleaved round per rep: absorb the batch, answer the probe
        // batch, drain the batch again (restores the model exactly, so reps
        // are stable). The patch path's arena is always query-ready; the
        // baseline pays a full recompile before each probe batch.
        c.bench_function(&format!("update_stream/{label}/patch"), |b| {
            b.iter(|| {
                patched.insert_batch(&mut arena, &tuples);
                let r = ev.evaluate(&arena, &probes);
                patched.delete_batch(&mut arena, &tuples);
                r
            })
        });
        c.bench_function(&format!("update_stream/{label}/recompile"), |b| {
            b.iter(|| {
                for t in &tuples {
                    baseline.insert(t);
                }
                let compiled = baseline.compile();
                let r = ev.evaluate(&compiled, &probes);
                for t in &tuples {
                    baseline.delete(t);
                }
                r
            })
        });

        // ns per update of the *update path itself* (insert + delete pair,
        // probes excluded): patching vs. tree-update + recompile.
        let patch_ns = median_ns(reps, || {
            patched.insert_batch(&mut arena, &tuples);
            patched.delete_batch(&mut arena, &tuples)
        }) / (2 * batch) as f64;
        let recompile_ns = median_ns(reps, || {
            for t in &tuples {
                baseline.insert(t);
            }
            let mid = baseline.compile();
            for t in &tuples {
                baseline.delete(t);
            }
            (mid.n_nodes(), baseline.compile().n_nodes())
        }) / (2 * batch) as f64;

        // Acceptance: after all the churn the patched arena is still bitwise
        // identical to a recompile of its tree, and both paths agree.
        assert!(
            arena.bitwise_eq(&patched.compile()),
            "{label}: patch drifted"
        );
        let want = ev.evaluate(&baseline.compile(), &probes);
        let got = ev.evaluate(&arena, &probes);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "{label}: paths diverged");
        }

        rows.push(Row {
            label,
            model_nodes,
            rows: n,
            patch_ns_per_update: patch_ns,
            recompile_ns_per_update: recompile_ns,
        });
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::from("{\n  \"bench\": \"update_stream\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"batch\": {batch},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"model_nodes\": {}, \"training_rows\": {}, \
             \"patch_ns_per_update\": {:.0}, \"recompile_ns_per_update\": {:.0}, \
             \"recompile_over_patch\": {:.2}}}{}\n",
            r.label,
            r.model_nodes,
            r.rows,
            r.patch_ns_per_update,
            r.recompile_ns_per_update,
            r.recompile_ns_per_update / r.patch_ns_per_update.max(1.0),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_update_stream.json"
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }
    println!("{json}");
}

criterion_group! {
    name = benches;
    config = {
        let (samples, secs) = if fast() { (5, 1) } else { (15, 3) };
        Criterion::default()
            .sample_size(samples)
            .measurement_time(std::time::Duration::from_secs(secs))
            .warm_up_time(std::time::Duration::from_millis(if fast() { 100 } else { 500 }))
    };
    targets = bench_update_stream
}
criterion_main!(benches);
