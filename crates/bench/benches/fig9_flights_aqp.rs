//! **Figure 9** — AQP on the Flights dataset: average relative error and
//! latency per query (F1.1–F5.2) for VerdictDB-style scrambles,
//! TABLESAMPLE, and DeepDB.
//!
//! Paper shape: DeepDB has the lowest relative error on every query —
//! dramatically so at low selectivities where sample-based approaches
//! starve — and its latencies are milliseconds while the sampling baselines
//! pay their scan each time. F5.2 (difference of two SUMs) is answered by
//! estimating both summands.

use std::time::Instant;

use deepdb_baselines::tablesample::TableSample;
use deepdb_baselines::verdict::VerdictDb;
use deepdb_bench::{
    build_ensemble, default_ensemble_params, fmt_dur, grouped_rel_error_pct, print_table,
    rel_error_pct,
};
use deepdb_core::{execute_aqp, AqpOutput};
use deepdb_data::flights;
use deepdb_storage::{execute, execute_with_indexes, Indexes, QueryOutput, Value};

fn fmt_pct(v: f64) -> String {
    if v.is_infinite() {
        "No result".into()
    } else {
        format!("{v:.2}%")
    }
}

fn main() {
    let scale = deepdb_bench::bench_scale(1.0);
    println!(
        "Figure 9: Flights AQP (scale {:.2}, seed {})",
        scale.factor, scale.seed
    );
    let db = flights::generate(scale);
    println!("flights rows: {}", db.total_rows());

    let (ensemble, train_time) = build_ensemble(&db, default_ensemble_params(scale.seed));
    println!("DeepDB ensemble training: {}", fmt_dur(train_time));
    let verdict = VerdictDb::build(&db, 0.01, scale.seed ^ 0x1).expect("verdict scrambles");
    println!("VerdictDB scramble build: {}", fmt_dur(verdict.build_time));
    let mut tablesample = TableSample::new(&db, 0.01, scale.seed ^ 0x2);

    // One set of prebuilt indexes serves every ground-truth execution.
    let indexes = Indexes::build(&db);
    let mut rows = Vec::new();
    let mut deepdb_max_latency = std::time::Duration::ZERO;
    for nq in flights::queries(&db) {
        let truth = execute_with_indexes(&db, &nq.query, Some(&indexes)).expect("ground truth");
        let grouped = !nq.query.group_by.is_empty();

        // VerdictDB.
        let (v_err, v_lat) = if grouped {
            let (groups, lat) = verdict.grouped_values(&nq.query);
            (
                grouped_rel_error_pct(&truth_groups(&truth, &nq.query), &groups),
                lat,
            )
        } else {
            let (est, lat) = verdict.aggregate_value(&nq.query);
            (rel_error_pct(est, scalar_truth(&truth, &nq.query)), lat)
        };
        // TABLESAMPLE.
        let (t_scalar, t_groups, t_lat) = tablesample.query(&nq.query);
        let t_err = if grouped {
            grouped_rel_error_pct(&truth_groups(&truth, &nq.query), &t_groups)
        } else {
            rel_error_pct(t_scalar, scalar_truth(&truth, &nq.query))
        };
        // DeepDB.
        let t0 = Instant::now();
        let out = execute_aqp(&ensemble, &db, &nq.query).expect("deepdb aqp");
        let d_lat = t0.elapsed();
        deepdb_max_latency = deepdb_max_latency.max(d_lat);
        let d_err = match &out {
            AqpOutput::Scalar(r) => rel_error_pct(Some(r.value), scalar_truth(&truth, &nq.query)),
            AqpOutput::Grouped(groups) => {
                let est: Vec<(Vec<Value>, Option<f64>)> = groups
                    .iter()
                    .map(|(k, r)| (k.clone(), Some(r.value)))
                    .collect();
                grouped_rel_error_pct(&truth_groups(&truth, &nq.query), &est)
            }
        };

        rows.push(vec![
            nq.name.clone(),
            fmt_pct(v_err),
            fmt_dur(v_lat),
            fmt_pct(t_err),
            fmt_dur(t_lat),
            fmt_pct(d_err),
            fmt_dur(d_lat),
        ]);
    }

    // F5.2: difference of two SUM aggregates.
    let (fa, fb) = flights::f52_pair(&db);
    let truth_a = execute(&db, &fa.query).expect("truth").scalar().sum;
    let truth_b = execute(&db, &fb.query).expect("truth").scalar().sum;
    let truth_diff = truth_a - truth_b;
    let (va, la) = verdict.aggregate_value(&fa.query);
    let (vb, lb) = verdict.aggregate_value(&fb.query);
    let v_diff = va.zip(vb).map(|(a, b)| a - b);
    let (ta, tga, lta) = tablesample.query(&fa.query);
    let (tb, _, ltb) = tablesample.query(&fb.query);
    let _ = tga;
    let t_diff = ta.zip(tb).map(|(a, b)| a - b);
    let t0 = Instant::now();
    let da = execute_aqp(&ensemble, &db, &fa.query)
        .expect("aqp")
        .scalar()
        .expect("scalar");
    let db_ = execute_aqp(&ensemble, &db, &fb.query)
        .expect("aqp")
        .scalar()
        .expect("scalar");
    let d_lat = t0.elapsed();
    deepdb_max_latency = deepdb_max_latency.max(d_lat);
    rows.push(vec![
        "F5.2".into(),
        fmt_pct(rel_error_pct(v_diff, truth_diff)),
        fmt_dur(la + lb),
        fmt_pct(rel_error_pct(t_diff, truth_diff)),
        fmt_dur(lta + ltb),
        fmt_pct(rel_error_pct(Some(da.value - db_.value), truth_diff)),
        fmt_dur(d_lat),
    ]);

    print_table(
        "Figure 9: average relative error and latency per Flights query",
        &[
            "query",
            "VerdictDB err",
            "lat",
            "Tablesample err",
            "lat",
            "DeepDB err",
            "lat",
        ],
        &rows,
    );
    println!(
        "\nDeepDB max AQP latency: {} (paper: 31ms max on Flights)",
        fmt_dur(deepdb_max_latency)
    );
}

fn scalar_truth(out: &QueryOutput, q: &deepdb_storage::Query) -> f64 {
    out.scalar().value_for(q.aggregate).unwrap_or(0.0)
}

fn truth_groups(out: &QueryOutput, q: &deepdb_storage::Query) -> Vec<(Vec<Value>, f64)> {
    out.groups()
        .iter()
        .filter_map(|(k, a)| a.value_for(q.aggregate).map(|v| (k.clone(), v)))
        .collect()
}
