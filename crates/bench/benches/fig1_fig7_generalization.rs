//! **Figure 1 + Figure 7** — Generalization to unseen join sizes.
//!
//! MCSN is trained only on queries with ≤ 3 joined tables (as in the paper,
//! where larger training joins are too expensive to label). Both learned
//! estimators are then evaluated on synthetic queries joining 4–6 tables
//! with 1–5 predicates:
//!
//! * Figure 1 reports the median q-error per join size (4/5/6 tables);
//! * Figure 7 reports the median q-error per (join size, #predicates) cell.
//!
//! Paper shape: MCSN error explodes by orders of magnitude beyond its
//! training join sizes; DeepDB stays near 1.

use deepdb_baselines::mcsn::Mcsn;
use deepdb_bench::{build_ensemble, default_ensemble_params, percentiles, print_table, qerror};
use deepdb_core::compile::estimate_cardinality;
use deepdb_data::{ground_truth_cardinalities, imdb, joblight};

fn main() {
    let scale = deepdb_bench::bench_scale(1.0);
    println!(
        "Figures 1 & 7: generalization (scale {:.2}, seed {})",
        scale.factor, scale.seed
    );
    let db = imdb::generate(scale);

    let (ensemble, _) = build_ensemble(&db, default_ensemble_params(scale.seed));

    // MCSN trained on ≤3-table queries only.
    let n_train = if deepdb_bench::fast_mode() { 180 } else { 1200 };
    let train: Vec<_> =
        joblight::synthetic(&db, &[2, 3], &[1, 2, 3], n_train / 6, scale.seed ^ 0x7)
            .into_iter()
            .map(|nq| nq.query)
            .collect();
    let mcsn = Mcsn::train(
        &db,
        &train,
        if deepdb_bench::fast_mode() { 10 } else { 60 },
        scale.seed,
    );

    // Evaluation grid: join sizes 4-6 × predicates 1-5.
    let per_cell = if deepdb_bench::fast_mode() { 2 } else { 5 };
    let grid = joblight::synthetic(
        &db,
        &[4, 5, 6],
        &[1, 2, 3, 4, 5],
        per_cell,
        scale.seed ^ 0x99,
    );
    let truths = ground_truth_cardinalities(&db, &grid);

    // Collect q-errors per cell.
    let mut cells: std::collections::BTreeMap<(usize, usize), (Vec<f64>, Vec<f64>)> =
        std::collections::BTreeMap::new();
    for (nq, &truth) in grid.iter().zip(&truths) {
        let tables = nq.query.tables.len();
        let preds = nq.query.predicates.len();
        let d = estimate_cardinality(&ensemble, &db, &nq.query).expect("deepdb");
        let m = mcsn.estimate(&db, &nq.query);
        let entry = cells.entry((tables, preds)).or_default();
        entry.0.push(qerror(d, truth));
        entry.1.push(qerror(m, truth));
    }

    // Figure 1: per join size.
    let mut fig1 = Vec::new();
    for t in [4usize, 5, 6] {
        let mut dd: Vec<f64> = Vec::new();
        let mut mc: Vec<f64> = Vec::new();
        for ((tt, _), (d, m)) in &cells {
            if *tt == t {
                dd.extend_from_slice(d);
                mc.extend_from_slice(m);
            }
        }
        let (dmed, ..) = percentiles(&mut dd);
        let (mmed, ..) = percentiles(&mut mc);
        fig1.push(vec![
            format!("{t}"),
            format!("{mmed:.2}"),
            format!("{dmed:.2}"),
        ]);
    }
    print_table(
        "Figure 1: median q-error per join size (tables)",
        &["tables", "MCSN", "DeepDB (ours)"],
        &fig1,
    );

    // Figure 7: per (join size, #predicates) cell.
    let mut fig7 = Vec::new();
    for ((t, p), (d, m)) in &mut cells {
        let (dmed, ..) = percentiles(d);
        let (mmed, ..) = percentiles(m);
        fig7.push(vec![
            format!("{t}-{p}"),
            format!("{mmed:.2}"),
            format!("{dmed:.2}"),
        ]);
    }
    print_table(
        "Figure 7: median q-errors per (join size - #filter predicates)",
        &["tables-preds", "MCSN", "DeepDB (ours)"],
        &fig7,
    );

    // Headline check: MCSN degrades with join size, DeepDB stays flat.
    let ratio = |t: usize| {
        let mut mc: Vec<f64> = cells
            .iter()
            .filter(|((tt, _), _)| *tt == t)
            .flat_map(|(_, (_, m))| m.clone())
            .collect();
        percentiles(&mut mc).0
    };
    println!(
        "\nMCSN median q-error growth 4→6 tables: {:.2}x",
        ratio(6) / ratio(4).max(1e-9)
    );
}
