//! **Figure 11** — True vs. predicted relative confidence-interval lengths
//! on the Flights and SSB queries.
//!
//! The "true" CI is the classical sample-based interval (binomial for
//! COUNT, CLT for AVG, product estimator for SUM) computed on as many
//! samples as the models train on; the predicted CI comes from DeepDB's
//! §5.1 variance propagation. Queries with fewer than 10 qualifying sample
//! rows are excluded, as in the paper. The F5.2 difference-of-SUMs case is
//! reported separately — the paper's known overestimation case.

use deepdb_baselines::sampling::sample_based_ci;
use deepdb_bench::{build_ensemble, default_ensemble_params, print_table};
use deepdb_core::{execute_aqp, AqpOutput, EnsembleBuilder};
use deepdb_data::{flights, ssb, NamedQuery};
use deepdb_storage::Database;

/// Relative CI length: (estimate − lower) / estimate (paper §6.2).
fn rel_ci(estimate: f64, lower: f64) -> f64 {
    if estimate.abs() < 1e-12 {
        0.0
    } else {
        100.0 * (estimate - lower) / estimate
    }
}

fn run(
    label: &str,
    db: &Database,
    ensemble: &mut deepdb_core::Ensemble,
    queries: &[NamedQuery],
    n_samples: usize,
    seed: u64,
) {
    let mut rows = Vec::new();
    for nq in queries {
        // Scalar reduction of grouped queries: CI comparison uses the
        // ungrouped aggregate (the paper's figure reports one bar per query).
        let mut q = nq.query.clone();
        q.group_by.clear();
        let Ok(truth_ci) = sample_based_ci(db, &q, n_samples, 0.95, seed) else {
            continue;
        };
        if truth_ci.qualifying < 10 {
            // Paper: excluded — the sample std-dev itself is too noisy.
            rows.push(vec![nq.name.clone(), "excluded (<10)".into(), "-".into()]);
            continue;
        }
        let out = execute_aqp(ensemble, db, &q).expect("aqp");
        let AqpOutput::Scalar(r) = out else {
            unreachable!("group_by cleared")
        };
        rows.push(vec![
            nq.name.clone(),
            format!("{:.2}%", rel_ci(truth_ci.estimate, truth_ci.ci_low)),
            format!("{:.2}%", rel_ci(r.value, r.ci_low)),
        ]);
    }
    print_table(
        &format!("Figure 11 ({label}): relative 95% CI length"),
        &["query", "sample-based (true)", "DeepDB (predicted)"],
        &rows,
    );
}

fn main() {
    let scale = deepdb_bench::bench_scale(1.0);
    println!(
        "Figure 11: confidence intervals (scale {:.2}, seed {})",
        scale.factor, scale.seed
    );
    let n_samples = if deepdb_bench::fast_mode() {
        20_000
    } else {
        100_000
    };

    // Flights.
    let fdb = flights::generate(scale);
    let (mut fens, _) = build_ensemble(&fdb, default_ensemble_params(scale.seed));
    run(
        "Flights",
        &fdb,
        &mut fens,
        &flights::queries(&fdb),
        n_samples,
        scale.seed ^ 0x11,
    );

    // F5.2: difference of two SUMs — CI overestimation case.
    let (fa, fb) = flights::f52_pair(&fdb);
    let ca = sample_based_ci(&fdb, &fa.query, n_samples, 0.95, scale.seed ^ 0x12).expect("ci");
    let cb = sample_based_ci(&fdb, &fb.query, n_samples, 0.95, scale.seed ^ 0x13).expect("ci");
    let da = execute_aqp(&fens, &fdb, &fa.query)
        .expect("aqp")
        .scalar()
        .expect("scalar");
    let dbv = execute_aqp(&fens, &fdb, &fb.query)
        .expect("aqp")
        .scalar()
        .expect("scalar");
    // Difference: variances add for the sample-based truth; DeepDB combines
    // the two independent estimates the same way (§5.1 assumption (i) fails
    // here because the summands share correlated attributes → overestimate).
    let true_est = ca.estimate - cb.estimate;
    let true_half =
        (((ca.estimate - ca.ci_low).powi(2) + (cb.estimate - cb.ci_low).powi(2)) as f64).sqrt();
    let d_est = da.value - dbv.value;
    let d_half = ((da.value - da.ci_low).powi(2) + (dbv.value - dbv.ci_low).powi(2)).sqrt();
    print_table(
        "Figure 11 (F5.2, difference of SUMs — the paper's overestimation case)",
        &["series", "estimate", "relative CI"],
        &[
            vec![
                "sample-based".into(),
                format!("{true_est:.0}"),
                format!("{:.2}%", 100.0 * true_half / true_est.abs().max(1e-9)),
            ],
            vec![
                "DeepDB".into(),
                format!("{d_est:.0}"),
                format!("{:.2}%", 100.0 * d_half / d_est.abs().max(1e-9)),
            ],
        ],
    );

    // SSB.
    let sdb = ssb::generate(scale);
    let c = sdb.table_id("customer").unwrap();
    let s = sdb.table_id("supplier").unwrap();
    let mut sens = EnsembleBuilder::new(&sdb)
        .params(default_ensemble_params(scale.seed))
        .functional_dependency(c, 2, 3)
        .functional_dependency(s, 2, 3)
        .build()
        .expect("ensemble");
    // S3.4 is near-empty at bench scale; the harness's <10-qualifying filter
    // handles it exactly like the paper's exclusion rule.
    run(
        "SSB",
        &sdb,
        &mut sens,
        &ssb::queries(&sdb),
        n_samples,
        scale.seed ^ 0x21,
    );
}
