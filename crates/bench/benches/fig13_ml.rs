//! **Figure 13** — Regression on the Flights dataset: RMSE and training
//! time for a CART regression tree, a neural network (MLP), and DeepDB's
//! conditional expectations over the AQP ensemble.
//!
//! Each of the six numeric attributes is predicted from all other columns.
//! DeepDB's "training time" is zero beyond the ensemble it already has for
//! AQP (the paper's headline for Exp. 3); tree and MLP are trained per
//! target.

use std::time::{Duration, Instant};

use deepdb_baselines::regtree::{RegressionTree, TreeParams};
use deepdb_bench::{build_ensemble, default_ensemble_params, fmt_dur, print_table};
use deepdb_core::ml::predict_regression;
use deepdb_data::flights;
use deepdb_nn::{Adam, Mlp};
use deepdb_storage::{Database, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All feature column ids (every modeled column except the target).
fn feature_cols(db: &Database, target: usize) -> Vec<usize> {
    let f = db.table_id("flights").expect("flights");
    (0..db.table(f).schema().n_columns())
        .filter(|&c| c != target && db.table(f).schema().columns()[c].domain.is_modelled())
        .collect()
}

fn main() {
    let scale = deepdb_bench::bench_scale(0.5);
    println!(
        "Figure 13: ML regression tasks (scale {:.2}, seed {})",
        scale.factor, scale.seed
    );
    let db = flights::generate(scale);
    let f = db.table_id("flights").expect("flights");
    let table = db.table(f);
    let n = table.n_rows();
    let n_test = if deepdb_bench::fast_mode() { 200 } else { 1000 };
    let n_train = (n - n_test).min(if deepdb_bench::fast_mode() {
        4_000
    } else {
        40_000
    });

    // DeepDB: reuse the AQP ensemble — no additional training (paper: "0s").
    let (ensemble, ensemble_time) = build_ensemble(&db, default_ensemble_params(scale.seed));
    println!(
        "AQP ensemble trained once in {} and reused for all regression tasks",
        fmt_dur(ensemble_time)
    );

    let mut rows = Vec::new();
    for (label, target) in flights::regression_targets() {
        let feats = feature_cols(&db, target);

        // Train/test matrices (train prefix, test suffix; NULL targets skipped).
        let row_feats = |r: usize| -> Vec<f64> {
            feats
                .iter()
                .map(|&c| table.column(c).f64_or_nan(r))
                .collect()
        };
        let mut x_train = Vec::new();
        let mut y_train = Vec::new();
        for r in 0..n_train {
            let y = table.column(target).f64_or_nan(r);
            if y.is_finite() {
                x_train.push(row_feats(r));
                y_train.push(y);
            }
        }
        let mut test_rows = Vec::new();
        for r in (n - n_test)..n {
            if table.column(target).f64_or_nan(r).is_finite() {
                test_rows.push(r);
            }
        }

        // Regression tree.
        let t0 = Instant::now();
        let tree = RegressionTree::fit(&x_train, &y_train, TreeParams::default());
        let tree_time = t0.elapsed();
        // MLP (z-scored features).
        let (means, stds) = normalize_stats(&x_train);
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(scale.seed);
        let mut mlp = Mlp::new(&[feats.len(), 32, 16, 1], &mut rng);
        let mut opt = Adam::new(1e-3);
        let y_mean = y_train.iter().sum::<f64>() / y_train.len().max(1) as f64;
        let y_std = (y_train.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>()
            / y_train.len().max(1) as f64)
            .sqrt()
            .max(1e-9);
        let epochs = if deepdb_bench::fast_mode() { 3 } else { 10 };
        for _ in 0..epochs {
            for (x, y) in x_train.iter().zip(&y_train) {
                mlp.train_mse(&zscore(x, &means, &stds), (y - y_mean) / y_std, &mut opt);
            }
        }
        let mlp_time = t0.elapsed();

        // Evaluate RMSE on the held-out suffix.
        let mut se_tree = 0.0;
        let mut se_mlp = 0.0;
        let mut se_deepdb = 0.0;
        for &r in &test_rows {
            let truth = table.column(target).f64_or_nan(r);
            let x = row_feats(r);
            se_tree += (tree.predict(&x) - truth).powi(2);
            let p = mlp.forward(&zscore(&x, &means, &stds))[0] * y_std + y_mean;
            se_mlp += (p - truth).powi(2);
            let evidence: Vec<(usize, Value)> =
                feats.iter().map(|&c| (c, table.value(r, c))).collect();
            let d = predict_regression(&ensemble, &db, f, target, &evidence)
                .expect("deepdb regression");
            se_deepdb += (d - truth).powi(2);
        }
        let m = test_rows.len().max(1) as f64;
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", (se_tree / m).sqrt()),
            format!("{:.2}", (se_mlp / m).sqrt()),
            format!("{:.2}", (se_deepdb / m).sqrt()),
            fmt_dur(tree_time),
            fmt_dur(mlp_time),
            fmt_dur(Duration::ZERO),
        ]);
    }
    print_table(
        "Figure 13: RMSE and per-target training time",
        &[
            "target",
            "Tree RMSE",
            "NN RMSE",
            "DeepDB RMSE",
            "Tree train",
            "NN train",
            "DeepDB train",
        ],
        &rows,
    );
    println!("\n(DeepDB per-target training is 0s: the AQP ensemble answers all tasks.)");
}

fn normalize_stats(x: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>) {
    let d = x.first().map_or(0, Vec::len);
    let mut means = vec![0.0; d];
    let mut stds = vec![0.0; d];
    let n = x.len().max(1) as f64;
    for row in x {
        for (m, v) in means.iter_mut().zip(row) {
            if v.is_finite() {
                *m += v;
            }
        }
    }
    for m in &mut means {
        *m /= n;
    }
    for row in x {
        for ((s, m), v) in stds.iter_mut().zip(&means).zip(row) {
            if v.is_finite() {
                *s += (v - m) * (v - m);
            }
        }
    }
    for s in &mut stds {
        *s = (*s / n).sqrt().max(1e-9);
    }
    (means, stds)
}

fn zscore(x: &[f64], means: &[f64], stds: &[f64]) -> Vec<f64> {
    x.iter()
        .zip(means)
        .zip(stds)
        .map(|((v, m), s)| if v.is_finite() { (v - m) / s } else { 0.0 })
        .collect()
}
