//! `mpe_batch`: compiled batched max-product inference (the classification
//! serving path) vs. per-row recursive MPE, at batch sizes 1/16/256.
//!
//! The compiled path sweeps the arena once per 32-probe tile with predicate
//! normalization hoisted per probe and resolves winning branches against the
//! arena's cached leaf modes; the recursive baseline walks the `Node` tree
//! per prediction, re-normalizing predicates at every leaf visit. The JSON
//! summary (`BENCH_mpe_batch.json`) records ns/prediction for the SIMD
//! compiled path, its scalar-kernel twin, and the recursive baseline per
//! batch size so the trajectory is machine-checkable; `DEEPDB_FAST=1`
//! shrinks the model and rep counts for the CI smoke run. The bench asserts
//! all paths return identical predictions (value equality, bitwise score
//! equality; SIMD ≡ scalar bitwise) before timing anything.

use criterion::{criterion_group, criterion_main, Criterion};
use deepdb_spn::{
    ColumnMeta, DataView, LeafPred, MaxProductEvaluator, MpeProbe, Spn, SpnParams, SpnQuery,
};

fn fast() -> bool {
    std::env::var("DEEPDB_FAST").is_ok_and(|v| v == "1")
}

fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    }
}

/// Hierarchically clustered 3-column table (class, a, b track a latent
/// cluster id) so learning yields a realistically deep model; `class` is the
/// classification target, `a`/`b` carry the evidence.
fn training_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<ColumnMeta>) {
    let mut rng = lcg(seed);
    let (mut class, mut a, mut b) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..n {
        let c = (rng() * 16.0).floor();
        class.push(c);
        a.push(c * 7.0 + (rng() * 5.0).floor());
        b.push(c * 3.0 + (rng() * 10.0).floor());
    }
    (
        vec![class, a, b],
        vec![
            ColumnMeta::discrete("class"),
            ColumnMeta::discrete("a"),
            ColumnMeta::discrete("b"),
        ],
    )
}

/// Evidence probes drawn from the training distribution (plus a few
/// no-support rows so the zero-score path is timed too).
fn probe_batch(k: usize, seed: u64) -> Vec<MpeProbe> {
    let mut rng = lcg(seed);
    (0..k)
        .map(|i| {
            let c = (rng() * 16.0).floor();
            let mut q =
                SpnQuery::new(3).with_pred(1, LeafPred::eq(c * 7.0 + (rng() * 5.0).floor()));
            if i % 3 == 0 {
                q.add_pred(2, LeafPred::ge(c * 3.0));
            }
            if i % 17 == 0 {
                q.add_pred(2, LeafPred::eq(-5.0)); // never observed
            }
            MpeProbe::new(0, q)
        })
        .collect()
}

/// Median ns over `reps` runs of `f`.
fn median_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_mpe_batch(c: &mut Criterion) {
    let n = if fast() { 4_000 } else { 30_000 };
    let reps = if fast() { 9 } else { 31 };
    let (cols, meta) = training_data(n, 0xBEEF ^ n as u64);
    let mut spn = Spn::learn(
        DataView::new(&cols, &meta),
        &SpnParams {
            min_instance_ratio: 0.003,
            ..SpnParams::default()
        },
    );
    let arena = spn.compile();
    let model_nodes = spn.size();
    let probes = probe_batch(256, 0xD00D);

    // Acceptance first: compiled ≡ recursive on every probe, and the SIMD
    // kernels ≡ the scalar reference path bitwise.
    let mut ev = MaxProductEvaluator::new();
    let compiled_out = ev.evaluate(&arena, &probes);
    let scalar_out = ev.evaluate_scalar(&arena, &probes);
    for (i, p) in probes.iter().enumerate() {
        let (score, value) = spn.mpe_outcome(p.target, &p.query);
        assert_eq!(compiled_out[i].value, value, "probe {i}: paths diverged");
        assert_eq!(
            compiled_out[i].score.to_bits(),
            score.to_bits(),
            "probe {i}: scores diverged"
        );
        assert_eq!(compiled_out[i], scalar_out[i], "probe {i}: simd vs scalar");
    }

    let mut rows = Vec::new();
    for batch in [1usize, 16, 256] {
        let slice = &probes[..batch];
        c.bench_function(&format!("mpe_batch/{batch}/compiled"), |b| {
            b.iter(|| ev.evaluate(&arena, slice))
        });
        c.bench_function(&format!("mpe_batch/{batch}/compiled_scalar"), |b| {
            b.iter(|| ev.evaluate_scalar(&arena, slice))
        });
        c.bench_function(&format!("mpe_batch/{batch}/recursive"), |b| {
            b.iter(|| {
                slice
                    .iter()
                    .map(|p| spn.most_probable_value(p.target, &p.query))
                    .collect::<Vec<_>>()
            })
        });
        let compiled_ns = median_ns(reps, || ev.evaluate(&arena, slice)) / batch as f64;
        let scalar_ns = median_ns(reps, || ev.evaluate_scalar(&arena, slice)) / batch as f64;
        let recursive_ns = median_ns(reps, || {
            slice
                .iter()
                .map(|p| spn.most_probable_value(p.target, &p.query))
                .collect::<Vec<_>>()
        }) / batch as f64;
        rows.push((batch, compiled_ns, scalar_ns, recursive_ns));
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::from("{\n  \"bench\": \"mpe_batch\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"model_nodes\": {model_nodes},\n"));
    json.push_str(&format!("  \"training_rows\": {n},\n"));
    json.push_str("  \"results\": [\n");
    for (i, (batch, compiled_ns, scalar_ns, recursive_ns)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"batch\": {batch}, \"compiled_ns_per_pred\": {compiled_ns:.0}, \
             \"scalar_ns_per_pred\": {scalar_ns:.0}, \
             \"recursive_ns_per_pred\": {recursive_ns:.0}, \
             \"recursive_over_compiled\": {:.2}, \"simd_vs_scalar\": {:.2}}}{}\n",
            recursive_ns / compiled_ns.max(1.0),
            scalar_ns / compiled_ns.max(1.0),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mpe_batch.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }
    println!("{json}");
}

criterion_group! {
    name = benches;
    config = {
        let (samples, secs) = if fast() { (5, 1) } else { (15, 3) };
        Criterion::default()
            .sample_size(samples)
            .measurement_time(std::time::Duration::from_secs(secs))
            .warm_up_time(std::time::Duration::from_millis(if fast() { 100 } else { 500 }))
    };
    targets = bench_mpe_batch
}
criterion_main!(benches);
