//! `serve_front`: concurrent serving throughput/latency at 1 / 8 / 64
//! clients, fused batching window vs. per-client execution.
//!
//! Two lanes over the same pool of two-table Case-3 COUNT shapes
//! (single-table RSPNs, so every query combines both members):
//!
//! * **per-client** — batching disabled (`window = 0`, `max_batch = 1`):
//!   every request plans through the cache and sweeps alone, the
//!   pre-serving behavior with admission control on top.
//! * **fused** — the batching window merges co-arriving clients' probes
//!   into one shared sweep per touched member per window
//!   (`max_batch = clients`, 200 µs window).
//!
//! Both lanes are asserted **bitwise identical** to the unfused
//! single-query compile path per shape before any timing. Writes
//! `BENCH_serve_front.json` with QPS and p99 latency per lane and client
//! count plus `host_parallelism`; the acceptance gate is fused ≥
//! per-client QPS at 8+ clients. `DEEPDB_FAST=1` shrinks the fixture and
//! request counts for the CI smoke run.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use deepdb_core::{
    compile, Ensemble, EnsembleBuilder, EnsembleParams, EnsembleStrategy, ServeConfig, ServeFront,
};
use deepdb_storage::fixtures::correlated_customer_order;
use deepdb_storage::{CmpOp, Database, PredOp, Query, Value};

fn fast() -> bool {
    std::env::var("DEEPDB_FAST").is_ok_and(|v| v == "1")
}

fn fixture() -> (Database, Ensemble) {
    let n = if fast() { 600 } else { 4_000 };
    let db = correlated_customer_order(n, 41);
    // Deep SPNs — a zero independence threshold treats every column pair as
    // dependent, forcing row splits down to small leaf slices, so the
    // per-member sweep is the dominant cost. That is the serving regime the
    // batching window exists for; model quality is irrelevant here (bitwise
    // agreement is asserted, not accuracy), hence also the few Lloyd
    // iterations.
    let spn = deepdb_spn::SpnParams {
        rdc_threshold: 0.0,
        min_instance_ratio: if fast() { 0.004 } else { 0.001 },
        kmeans_iters: 4,
        ..deepdb_spn::SpnParams::default()
    };
    let params = EnsembleParams {
        strategy: EnsembleStrategy::SingleTables, // two-table COUNTs are Case 3
        sample_size: n.max(4_000),
        correlation_sample: 500,
        spn,
        ..EnsembleParams::default()
    };
    let ens = EnsembleBuilder::new(&db)
        .params(params)
        .build()
        .expect("ensemble");
    (db, ens)
}

/// Same mixed-radix shape pool as the `plan_cache` bench: pairwise-distinct
/// cache keys, literals varying with `i`.
fn shape_query(i: usize) -> Query {
    let (cu, o) = (0usize, 1usize);
    let mut q = Query::count(vec![cu, o]);
    let age_lit = 22 + (i as i64 % 17);
    q = match i % 4 {
        0 => q.filter(cu, 1, PredOp::Cmp(CmpOp::Eq, Value::Int(age_lit))),
        1 => q.filter(cu, 1, PredOp::Cmp(CmpOp::Le, Value::Int(age_lit + 20))),
        2 => q.filter(cu, 1, PredOp::Cmp(CmpOp::Ge, Value::Int(age_lit))),
        _ => q.filter(
            cu,
            1,
            PredOp::Between(Value::Int(age_lit), Value::Int(age_lit + 15)),
        ),
    };
    q = match (i / 4) % 3 {
        0 => q,
        1 => q.filter(cu, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(i as i64 % 3))),
        _ => q.filter(
            cu,
            2,
            PredOp::In(vec![
                Value::Int(i as i64 % 3),
                Value::Int((i as i64 + 1) % 3),
            ]),
        ),
    };
    if (i / 12) % 2 == 1 {
        q = q.filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(i as i64 % 2)));
    }
    match (i / 24) % 3 {
        0 => q,
        1 => q.filter(o, 3, PredOp::Cmp(CmpOp::Le, Value::Float(120.0 + i as f64))),
        _ => q.filter(o, 3, PredOp::Cmp(CmpOp::Ge, Value::Float(40.0 + i as f64))),
    }
}

/// Drive `clients` synchronous clients for `per_client` requests each.
/// Returns (QPS over the whole run, p99 request latency in ns).
fn run_lane(
    front: &ServeFront<'_>,
    pool: &[Query],
    clients: usize,
    per_client: usize,
) -> (f64, f64) {
    let barrier = Barrier::new(clients + 1);
    let (mut latencies, wall) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = &barrier;
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(per_client);
                    barrier.wait();
                    for r in 0..per_client {
                        let q = &pool[(c + r * clients) % pool.len()];
                        let t0 = Instant::now();
                        front.serve(q, None).expect("serve");
                        lat.push(t0.elapsed().as_nanos() as f64);
                    }
                    lat
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        let lat: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        (lat, t0.elapsed().as_secs_f64())
    });
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p99 = latencies[((latencies.len() as f64 * 0.99) as usize).min(latencies.len() - 1)];
    let qps = (clients * per_client) as f64 / wall;
    (qps, p99)
}

fn bench_serve_front(c: &mut Criterion) {
    let (db, ens) = fixture();
    let pool: Vec<Query> = (0..64).map(shape_query).collect();
    let per_client = if fast() { 40 } else { 200 };

    let solo_cfg = ServeConfig {
        window: Duration::ZERO,
        max_batch: 1,
        ..ServeConfig::default()
    };
    // The window scales with the swarm: merging 64 clients' arrivals takes
    // longer than merging 8, and a too-short window ships half-empty
    // batches that forfeit the shared-sweep amortization.
    let fused_cfg = |clients: usize| ServeConfig {
        window: Duration::from_micros(200 * (clients as u64 / 8).max(1)),
        max_batch: clients.max(2),
        ..ServeConfig::default()
    };

    // Acceptance first: both serving lanes are bitwise-identical to the
    // unfused single-query compile path on every shape.
    {
        let solo = ServeFront::with_config(&ens, &db, solo_cfg.clone());
        let fused = ServeFront::with_config(&ens, &db, fused_cfg(8));
        for (i, q) in pool.iter().enumerate() {
            let want = compile::estimate_count(&ens, &db, q).expect("reference");
            let a = solo.serve(q, None).expect("solo");
            let b = fused.serve(q, None).expect("fused");
            assert_eq!(
                want.value.to_bits(),
                a.value.to_bits(),
                "shape {i}: per-client lane diverges"
            );
            assert_eq!(want.variance.to_bits(), a.variance.to_bits());
            assert_eq!(
                want.value.to_bits(),
                b.value.to_bits(),
                "shape {i}: fused lane diverges"
            );
            assert_eq!(want.variance.to_bits(), b.variance.to_bits());
        }
    }

    // Criterion lane: single-request serving latency through the front.
    {
        let solo = ServeFront::with_config(&ens, &db, solo_cfg.clone());
        let mut i = 0usize;
        c.bench_function("serve_front/1/serve", |b| {
            b.iter(|| {
                let q = &pool[i % pool.len()];
                i += 1;
                solo.serve(q, None).expect("serve")
            })
        });
    }

    let mut rows = Vec::new();
    for clients in [1usize, 8, 64] {
        let solo = ServeFront::with_config(&ens, &db, solo_cfg.clone());
        let (solo_qps, solo_p99) = run_lane(&solo, &pool, clients, per_client);

        let fused = ServeFront::with_config(&ens, &db, fused_cfg(clients));
        let (fused_qps, fused_p99) = run_lane(&fused, &pool, clients, per_client);
        let fused_stats = fused.stats();

        println!(
            "serve_front/{clients}: per-client {solo_qps:.0} qps (p99 {:.0} µs), \
             fused {fused_qps:.0} qps (p99 {:.0} µs), {} batches for {} requests",
            solo_p99 / 1e3,
            fused_p99 / 1e3,
            fused_stats.batches,
            fused_stats.admitted,
        );
        rows.push((clients, solo_qps, solo_p99, fused_qps, fused_p99));
    }

    // The acceptance gate: once concurrency is real (8+ clients), the
    // batching window must not lose to per-client sweeps.
    for &(clients, solo_qps, _, fused_qps, _) in &rows {
        if clients >= 8 {
            assert!(
                fused_qps >= solo_qps,
                "{clients} clients: fused ({fused_qps:.0} qps) must be ≥ \
                 per-client ({solo_qps:.0} qps)"
            );
        }
    }

    let host = std::thread::available_parallelism().map_or(1, |x| x.get());
    let mut json = String::from("{\n  \"bench\": \"serve_front\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"ensemble_members\": {},\n", ens.rspns().len()));
    json.push_str(&format!("  \"requests_per_client\": {per_client},\n"));
    json.push_str("  \"results\": [\n");
    for (i, (clients, solo_qps, solo_p99, fused_qps, fused_p99)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {clients}, \"per_client_qps\": {solo_qps:.0}, \
             \"per_client_p99_ns\": {solo_p99:.0}, \"fused_qps\": {fused_qps:.0}, \
             \"fused_p99_ns\": {fused_p99:.0}, \"fused_over_per_client\": {:.2}}}{}\n",
            fused_qps / solo_qps.max(1.0),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve_front.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }
    println!("{json}");
}

criterion_group! {
    name = benches;
    config = {
        let (samples, secs) = if fast() { (5, 1) } else { (15, 3) };
        Criterion::default()
            .sample_size(samples)
            .measurement_time(std::time::Duration::from_secs(secs))
            .warm_up_time(std::time::Duration::from_millis(if fast() { 100 } else { 500 }))
    };
    targets = bench_serve_front
}
criterion_main!(benches);
