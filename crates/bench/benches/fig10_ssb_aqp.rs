//! **Figure 10** — AQP on the Star Schema Benchmark: average relative error
//! per query S1.1–S4.3 for VerdictDB-style scrambles, Wander Join,
//! TABLESAMPLE, and DeepDB.
//!
//! Paper shape: the sample-based systems degrade to >100 % error or "No
//! result" as the selectivity ladder descends (3.42 % → 0.00007 %), while
//! DeepDB stays below ~6 %. The SSB functional dependencies
//! (nation → region on customer and supplier) are declared to the ensemble,
//! exercising the FD dictionaries of §3.2.

use std::time::Instant;

use deepdb_baselines::tablesample::TableSample;
use deepdb_baselines::verdict::VerdictDb;
use deepdb_baselines::wanderjoin::WanderJoin;
use deepdb_bench::{
    default_ensemble_params, fmt_dur, grouped_rel_error_pct, print_table, rel_error_pct,
};
use deepdb_core::{execute_aqp, AqpOutput, EnsembleBuilder};
use deepdb_data::ssb;
use deepdb_storage::{execute_with_indexes, Indexes, QueryOutput, Value};

fn fmt_pct(v: f64) -> String {
    if v.is_infinite() {
        "No result".into()
    } else {
        format!("{v:.2}%")
    }
}

fn main() {
    let scale = deepdb_bench::bench_scale(1.0);
    println!(
        "Figure 10: SSB AQP (scale {:.2}, seed {})",
        scale.factor, scale.seed
    );
    let db = ssb::generate(scale);
    println!(
        "lineorder rows: {}",
        db.table(db.table_id("lineorder").unwrap()).n_rows()
    );

    // DeepDB with declared FDs: c_nation→c_region, s_nation→s_region.
    let c = db.table_id("customer").unwrap();
    let s = db.table_id("supplier").unwrap();
    let t0 = Instant::now();
    let ensemble = EnsembleBuilder::new(&db)
        .params(default_ensemble_params(scale.seed))
        .functional_dependency(c, 2, 3)
        .functional_dependency(s, 2, 3)
        .build()
        .expect("ensemble");
    println!("DeepDB ensemble training: {}", fmt_dur(t0.elapsed()));

    let verdict = VerdictDb::build(&db, 0.01, scale.seed ^ 0x3).expect("scrambles");
    println!("VerdictDB scramble build: {}", fmt_dur(verdict.build_time));
    let indexes = Indexes::build(&db);
    let walks = if deepdb_bench::fast_mode() {
        2_000
    } else {
        20_000
    };
    let mut wander = WanderJoin::new(&db, &indexes, walks, scale.seed ^ 0x4);
    let mut tablesample = TableSample::new(&db, 0.01, scale.seed ^ 0x5);

    let mut rows = Vec::new();
    let mut deepdb_max_latency = std::time::Duration::ZERO;
    for nq in ssb::queries(&db) {
        let truth = execute_with_indexes(&db, &nq.query, Some(&indexes)).expect("ground truth");
        let grouped = !nq.query.group_by.is_empty();
        let tg = truth_groups(&truth, &nq.query);
        let ts = scalar_truth(&truth, &nq.query);

        let (v_err, _) = {
            if grouped {
                let (groups, lat) = verdict.grouped_values(&nq.query);
                (grouped_rel_error_pct(&tg, &groups), lat)
            } else {
                let (est, lat) = verdict.aggregate_value(&nq.query);
                (rel_error_pct(est, ts), lat)
            }
        };
        let (w_scalar, w_groups, _) = wander.query(&nq.query);
        let w_err = if grouped {
            grouped_rel_error_pct(&tg, &w_groups)
        } else {
            rel_error_pct(w_scalar, ts)
        };
        let (t_scalar, t_groups, _) = tablesample.query(&nq.query);
        let t_err = if grouped {
            grouped_rel_error_pct(&tg, &t_groups)
        } else {
            rel_error_pct(t_scalar, ts)
        };
        let t0 = Instant::now();
        let out = execute_aqp(&ensemble, &db, &nq.query).expect("deepdb aqp");
        let d_lat = t0.elapsed();
        deepdb_max_latency = deepdb_max_latency.max(d_lat);
        let d_err = match &out {
            AqpOutput::Scalar(r) => rel_error_pct(Some(r.value), ts),
            AqpOutput::Grouped(groups) => {
                let est: Vec<(Vec<Value>, Option<f64>)> = groups
                    .iter()
                    .map(|(k, r)| (k.clone(), Some(r.value)))
                    .collect();
                grouped_rel_error_pct(&tg, &est)
            }
        };
        rows.push(vec![
            nq.name.clone(),
            fmt_pct(v_err),
            fmt_pct(w_err),
            fmt_pct(t_err),
            fmt_pct(d_err),
            fmt_dur(d_lat),
        ]);
    }
    print_table(
        "Figure 10: average relative error per SSB query",
        &[
            "query",
            "VerdictDB",
            "Wander Join",
            "Tablesample",
            "DeepDB (ours)",
            "DeepDB lat",
        ],
        &rows,
    );
    println!(
        "\nDeepDB max AQP latency: {} (paper: 293ms worst case on SSB)",
        fmt_dur(deepdb_max_latency)
    );
}

fn scalar_truth(out: &QueryOutput, q: &deepdb_storage::Query) -> f64 {
    out.scalar().value_for(q.aggregate).unwrap_or(0.0)
}

fn truth_groups(out: &QueryOutput, q: &deepdb_storage::Query) -> Vec<(Vec<Value>, f64)> {
    out.groups()
        .iter()
        .filter_map(|(k, a)| a.value_for(q.aggregate).map(|v| (k.clone(), v)))
        .collect()
}
