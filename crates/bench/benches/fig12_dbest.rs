//! **Figure 12** — Cumulative training time: DBEst-style per-query models
//! vs. DeepDB's one-off ensemble, over the SSB query sequence S1.1–S4.3.
//!
//! Paper shape: DeepDB's curve is flat (one ensemble, then every ad-hoc
//! query is free); DBEst's curve climbs whenever a query introduces a new
//! template (S1.2/S1.3 reuse S1.1's model; selective flight-3/4 templates
//! each pay biased sampling + fitting again).

use deepdb_baselines::dbest::DbEst;
use deepdb_bench::{build_ensemble, default_ensemble_params, fmt_dur, print_table};
use deepdb_data::ssb;

fn main() {
    let scale = deepdb_bench::bench_scale(1.0);
    println!(
        "Figure 12: cumulative training time (scale {:.2}, seed {})",
        scale.factor, scale.seed
    );
    let db = ssb::generate(scale);

    let (_, deepdb_time) = build_ensemble(&db, default_ensemble_params(scale.seed));

    let mut dbest = DbEst::new();
    let mut rows = Vec::new();
    let mut cumulative = std::time::Duration::ZERO;
    for nq in ssb::queries(&db) {
        let _ = dbest.query(&db, &nq.query);
        cumulative = dbest.cumulative_training;
        rows.push(vec![
            nq.name.clone(),
            fmt_dur(cumulative),
            fmt_dur(deepdb_time),
            format!("{}", dbest.n_models()),
        ]);
    }
    print_table(
        "Figure 12: cumulative training time over the SSB query sequence",
        &[
            "query",
            "DBEst cumulative",
            "DeepDB (one-off)",
            "DBEst models",
        ],
        &rows,
    );
    println!(
        "\nDBEst total {} across {} templates vs DeepDB {} once \
         (paper: DBEst exceeds hours on selective queries; DeepDB trains once)",
        fmt_dur(cumulative),
        dbest.n_models(),
        fmt_dur(deepdb_time)
    );
}
