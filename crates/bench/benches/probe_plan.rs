//! `probe_plan_groupby`: the deferred probe-plan layer under a GROUP BY
//! shaped load — every group contributes its count / moment / squared-moment
//! probes to ONE fused [`ProbePlan`], which sweeps the touched RSPN member
//! once with tiles spread over 1/2/4 worker threads.
//!
//! Grids: 16 / 64 / 256 groups × 1 / 2 / 4 threads. Besides the criterion
//! rows, a machine-readable `BENCH_probe_plan.json` summary lands next to
//! `BENCH_spn_batch.json` so the plan path's perf trajectory is tracked
//! (multi-thread speedups are only meaningful on multi-core hosts; the JSON
//! records `host_parallelism` so single-core CI smoke runs are
//! interpretable). `DEEPDB_FAST=1` shrinks the model and the rep counts for
//! the CI smoke run that keeps this target from rotting.

use criterion::{criterion_group, criterion_main, Criterion};
use deepdb_core::{Ensemble, EnsembleBuilder, EnsembleParams, ProbePlan};
use deepdb_spn::{LeafFunc, LeafPred, SpnParams};
use deepdb_storage::{Database, Domain, TableSchema, Value};

fn fast() -> bool {
    std::env::var("DEEPDB_FAST").is_ok_and(|v| v == "1")
}

/// Hierarchically clustered single-table database: every column tracks a
/// shared latent cluster id, so column splits fail and SPN learning recurses
/// on row splits — producing a realistically deep model (like the paper's
/// IMDb/SSB RSPNs) whose sweeps are worth parallelizing. The `g` column
/// carries 256 distinct group values.
fn grouped_fixture() -> (Database, Ensemble, usize) {
    let n: i64 = if fast() { 6_000 } else { 40_000 };
    let mut db = Database::new("probe_plan_fixture");
    db.create_table(
        TableSchema::new("facts")
            .pk("id")
            .col("g", Domain::Discrete)
            .col("a", Domain::Discrete)
            .col("b", Domain::Discrete),
    )
    .expect("fresh catalog");

    let mut state = 0xBA7C4u64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for id in 0..n {
        let c = (rng() * 64.0).floor(); // latent cluster 0..63
        let g = c * 4.0 + (rng() * 4.0).floor(); // 256 group values
        let a = c * 7.0 + (rng() * 5.0).floor();
        let b = c * 3.0 + (rng() * 10.0).floor();
        db.insert(
            "facts",
            &[
                Value::Int(id),
                Value::Int(g as i64),
                Value::Int(a as i64),
                Value::Int(b as i64),
            ],
        )
        .expect("valid row");
    }

    let params = EnsembleParams {
        sample_size: n as usize,
        correlation_sample: 500,
        spn: SpnParams {
            min_instance_ratio: 0.0025,
            ..SpnParams::default()
        },
        ..EnsembleParams::default()
    };
    let mut ens = EnsembleBuilder::new(&db)
        .params(params)
        .build()
        .expect("ensemble");
    ens.recompile_models();
    let model_nodes = ens.rspns()[0].model_size();
    (db, ens, model_nodes)
}

/// One GROUP BY-shaped plan: per group, a count probe plus an X and an X²
/// moment probe on the aggregate column (what `execute_aqp` registers per
/// group for a SUM/AVG with variance).
fn build_plan(ens: &Ensemble, db: &Database, n_groups: usize) -> ProbePlan {
    let t = db.table_id("facts").expect("fixture table");
    let rspn = &ens.rspns()[0];
    let g_col = rspn.data_column(t, 1).expect("g modeled");
    let a_col = rspn.data_column(t, 2).expect("a modeled");
    let mut plan = ProbePlan::new();
    for g in 0..n_groups {
        let gv = (g % 256) as f64;
        let count_q = rspn.new_query().with_pred(g_col, LeafPred::eq(gv));
        let sum_q = rspn
            .new_query()
            .with_pred(g_col, LeafPred::eq(gv))
            .with_func(a_col, LeafFunc::X);
        let sq_q = rspn
            .new_query()
            .with_pred(g_col, LeafPred::eq(gv))
            .with_func(a_col, LeafFunc::X2);
        plan.register(0, count_q);
        plan.register(0, sum_q);
        plan.register(0, sq_q);
    }
    plan
}

/// Median ns over `reps` runs of `f`.
fn median_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_probe_plan_groupby(c: &mut Criterion) {
    let (db, ens, model_nodes) = grouped_fixture();
    let group_sizes = [16usize, 64, 256];
    let thread_counts = [1usize, 2, 4];
    let reps = if fast() { 9 } else { 41 };

    let mut rows = Vec::new();
    for &n_groups in &group_sizes {
        let plan = build_plan(&ens, &db, n_groups);
        let mut per_thread = Vec::new();
        for &threads in &thread_counts {
            c.bench_function(&format!("probe_plan_groupby/{n_groups}g_{threads}t"), |b| {
                b.iter(|| plan.execute_with_threads(&ens, threads))
            });
            let ns = median_ns(reps, || plan.execute_with_threads(&ens, threads));
            per_thread.push((threads, ns));
        }
        rows.push((n_groups, per_thread));
    }

    // Sanity: the plan still produces finite values end to end.
    let rspn = &ens.rspns()[0];
    let mut sanity = ProbePlan::new();
    let h = sanity.register(0, rspn.new_query());
    let results = sanity.execute_with_threads(&ens, 2);
    assert!(results.value(h).is_finite());

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::from("{\n  \"bench\": \"probe_plan_groupby\",\n");
    json.push_str(&format!("  \"model_nodes\": {model_nodes},\n"));
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str("  \"results\": [\n");
    for (i, (n_groups, per_thread)) in rows.iter().enumerate() {
        let t1 = per_thread
            .iter()
            .find(|(t, _)| *t == 1)
            .map(|(_, ns)| *ns)
            .unwrap_or(f64::NAN);
        json.push_str(&format!(
            "    {{\"n_groups\": {n_groups}, \"probes\": {}, ",
            n_groups * 3
        ));
        json.push_str("\"threads\": [");
        for (j, (threads, ns)) in per_thread.iter().enumerate() {
            json.push_str(&format!(
                "{{\"threads\": {threads}, \"ns\": {ns:.0}, \"speedup_vs_1t\": {:.2}}}{}",
                t1 / ns,
                if j + 1 < per_thread.len() { ", " } else { "" }
            ));
        }
        let best = per_thread.iter().map(|(_, ns)| t1 / ns).fold(0.0, f64::max);
        json.push_str(&format!(
            "], \"best_speedup\": {best:.2}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_probe_plan.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }
    println!("{json}");
}

criterion_group! {
    name = benches;
    config = {
        let (samples, secs) = if fast() { (5, 1) } else { (15, 3) };
        Criterion::default()
            .sample_size(samples)
            .measurement_time(std::time::Duration::from_secs(secs))
            .warm_up_time(std::time::Duration::from_millis(if fast() { 100 } else { 500 }))
    };
    targets = bench_probe_plan_groupby
}
criterion_main!(benches);
