//! **Figure 8** — Parameter exploration: q-error and training time versus
//! the ensemble learning budget factor and the per-RSPN sample size, plus
//! the "cheap strategy" ablation of §6.1 (single-table ensembles only).
//!
//! Paper shape: the budget sweep saturates around B = 0.5; larger samples
//! improve q-error (2.5 → 1.9 in the paper) at linearly higher training
//! time; the single-table ensemble stays competitive at higher percentiles.

use std::time::Instant;

use deepdb_bench::{default_ensemble_params, percentiles, print_table, qerror};
use deepdb_core::compile::estimate_cardinality;
use deepdb_core::{EnsembleBuilder, EnsembleStrategy};
use deepdb_data::{ground_truth_cardinalities, imdb, joblight, NamedQuery};
use deepdb_storage::Database;

fn eval_ensemble(
    db: &Database,
    workload: &[NamedQuery],
    truths: &[f64],
    params: deepdb_core::EnsembleParams,
) -> (f64, f64, f64, f64, std::time::Duration) {
    let t0 = Instant::now();
    let ens = EnsembleBuilder::new(db)
        .params(params)
        .build()
        .expect("ensemble");
    let train_time = t0.elapsed();
    let mut qs: Vec<f64> = workload
        .iter()
        .zip(truths)
        .map(|(nq, &t)| {
            qerror(
                estimate_cardinality(&ens, db, &nq.query).expect("estimate"),
                t,
            )
        })
        .collect();
    let (med, p90, p95, max) = percentiles(&mut qs);
    (med, p90, p95, max, train_time)
}

fn main() {
    let scale = deepdb_bench::bench_scale(0.5);
    println!(
        "Figure 8: parameter exploration (scale {:.2}, seed {})",
        scale.factor, scale.seed
    );
    let db = imdb::generate(scale);
    // Mixed workload: 3–6-way joins, 1–5 predicates (as in §6.1).
    let per_cell = if deepdb_bench::fast_mode() { 1 } else { 3 };
    let workload = joblight::synthetic(&db, &[3, 4, 5, 6], &[1, 2, 3, 4, 5], per_cell, scale.seed);
    let truths = ground_truth_cardinalities(&db, &workload);

    // Sweep 1: ensemble learning budget factor.
    let budgets = if deepdb_bench::fast_mode() {
        vec![0.0, 0.5]
    } else {
        vec![0.0, 0.5, 1.0, 2.0, 3.0]
    };
    let mut rows = Vec::new();
    for &b in &budgets {
        let mut p = default_ensemble_params(scale.seed);
        p.budget_factor = b;
        let (med, _, _, _, t) = eval_ensemble(&db, &workload, &truths, p);
        rows.push(vec![
            format!("{b:.1}"),
            format!("{med:.3}"),
            deepdb_bench::fmt_dur(t),
        ]);
    }
    print_table(
        "Figure 8 (left): q-error / training time vs ensemble learning budget",
        &["budget factor", "median q-error", "training time"],
        &rows,
    );

    // Sweep 2: samples per RSPN.
    let sample_sizes = if deepdb_bench::fast_mode() {
        vec![1_000, 10_000]
    } else {
        vec![1_000, 10_000, 50_000, 100_000]
    };
    let mut rows = Vec::new();
    for &n in &sample_sizes {
        let mut p = default_ensemble_params(scale.seed);
        p.sample_size = n;
        let (med, _, _, _, t) = eval_ensemble(&db, &workload, &truths, p);
        rows.push(vec![
            format!("{n}"),
            format!("{med:.3}"),
            deepdb_bench::fmt_dur(t),
        ]);
    }
    print_table(
        "Figure 8 (right): q-error / training time vs samples per RSPN",
        &["samples per RSPN", "median q-error", "training time"],
        &rows,
    );

    // Ablation (§6.1 text): single-table-only ensembles.
    let jl = joblight::job_light(&db, scale.seed);
    let jl_truths = ground_truth_cardinalities(&db, &jl);
    let mut p = default_ensemble_params(scale.seed);
    p.strategy = EnsembleStrategy::SingleTables;
    let (med, p90, p95, max, t) = eval_ensemble(&db, &jl, &jl_truths, p);
    let (bmed, bp90, bp95, bmax, bt) =
        eval_ensemble(&db, &jl, &jl_truths, default_ensemble_params(scale.seed));
    print_table(
        "Cheap strategy ablation on JOB-light (§6.1: paper 1.98 / 5.32 / 8.54 / 186.5)",
        &["ensemble", "median", "90th", "95th", "max", "training"],
        &[
            vec![
                "single tables only".into(),
                format!("{med:.2}"),
                format!("{p90:.2}"),
                format!("{p95:.2}"),
                format!("{max:.2}"),
                deepdb_bench::fmt_dur(t),
            ],
            vec![
                "full ensemble (B=0.5)".into(),
                format!("{bmed:.2}"),
                format!("{bp90:.2}"),
                format!("{bp95:.2}"),
                format!("{bmax:.2}"),
                deepdb_bench::fmt_dur(bt),
            ],
        ],
    );
}
