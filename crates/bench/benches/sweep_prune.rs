//! `sweep_prune`: query-scoped sub-DAG pruning vs the full arena sweep.
//!
//! Fixture: a deep/wide SPN over 24 columns (12 correlated pairs, so
//! learning produces sum splits inside each pair and product splits across
//! pairs). Two workloads over 64-query batches:
//!
//! * **selective** — every query constrains a single column, so the active
//!   sub-DAG is a thin slice of the arena (the acceptance gate is pruned
//!   ≥ 1.5× faster ns/query than the full sweep).
//! * **all_cols** — every query constrains all 24 columns, so pruning can
//!   remove (almost) nothing; the gate is "no regression" (full ≥ 0.75×
//!   pruned — a noise-tolerant bound that catches systematic slowdown).
//!
//! Pruned ≡ full is asserted **bitwise** on both workloads before any
//! timing. Writes `BENCH_sweep_prune.json` with ns/query per lane, the
//! speedup ratio, each workload's `active_fraction`, and
//! `host_parallelism`. `DEEPDB_FAST=1` shrinks the fixture and rep counts
//! for the CI smoke run.

use criterion::{criterion_group, criterion_main, Criterion};
use deepdb_spn::{
    BatchEvaluator, ColumnMeta, CompiledSpn, DataView, LeafPred, Spn, SpnParams, SpnQuery,
};

fn fast() -> bool {
    std::env::var("DEEPDB_FAST").is_ok_and(|v| v == "1")
}

const N_COLS: usize = 24;
const BATCH: usize = 64;

/// Deterministic 24-column fixture: column pair `2p, 2p+1` shares a
/// 3-cluster latent, clusters are offset by 10 so k-means separates them.
fn fixture() -> CompiledSpn {
    let n_rows = if fast() { 1_200 } else { 6_000 };
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };
    let mut cols: Vec<Vec<f64>> = (0..N_COLS).map(|_| Vec::with_capacity(n_rows)).collect();
    for _ in 0..n_rows {
        for p in 0..N_COLS / 2 {
            let cluster = next().rem_euclid(3);
            cols[2 * p].push((cluster * 10 + next().rem_euclid(4)) as f64);
            cols[2 * p + 1].push((cluster * 10 + next().rem_euclid(5)) as f64);
        }
    }
    let meta: Vec<ColumnMeta> = (0..N_COLS)
        .map(|i| ColumnMeta::discrete(format!("c{i}")))
        .collect();
    let params = SpnParams {
        rdc_sample_rows: 600,
        ..SpnParams::default()
    };
    let spn = Spn::learn(DataView::new(&cols, &meta), &params);
    spn.compile()
}

/// Selective workload: 64 single-column equality probes on column 0.
fn selective_batch() -> Vec<SpnQuery> {
    (0..BATCH)
        .map(|i| SpnQuery::new(N_COLS).with_pred(0, LeafPred::eq(((i % 3) * 10 + i % 4) as f64)))
        .collect()
}

/// Dense workload: 64 probes constraining every column.
fn all_cols_batch() -> Vec<SpnQuery> {
    (0..BATCH)
        .map(|i| {
            let mut q = SpnQuery::new(N_COLS);
            for c in 0..N_COLS {
                q.add_pred(c, LeafPred::le((((i + c) % 3) * 10 + 4) as f64));
            }
            q
        })
        .collect()
}

/// Median ns over `reps` runs of `f`.
fn median_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_sweep_prune(c: &mut Criterion) {
    let reps = if fast() { 9 } else { 31 };
    let arena = fixture();

    let workloads: Vec<(&str, Vec<SpnQuery>, Vec<usize>)> = vec![
        ("selective", selective_batch(), vec![0]),
        ("all_cols", all_cols_batch(), (0..N_COLS).collect()),
    ];

    let mut rows = Vec::new();
    for (name, queries, columns) in &workloads {
        let active = arena.active_set(columns);

        // Acceptance first: pruned ≡ full, bitwise, on every query.
        let mut ev = BatchEvaluator::new();
        let full = ev.evaluate(&arena, queries);
        let pruned = ev.evaluate_pruned(&arena, queries, &active);
        for (i, (p, f)) in pruned.iter().zip(&full).enumerate() {
            assert_eq!(
                p.to_bits(),
                f.to_bits(),
                "{name} query {i}: pruned {p} vs full {f}"
            );
        }

        c.bench_function(&format!("sweep_prune/{name}/full"), |b| {
            b.iter(|| std::hint::black_box(ev.evaluate(&arena, queries)))
        });
        let full_ns = median_ns(reps, || ev.evaluate(&arena, queries)) / BATCH as f64;

        c.bench_function(&format!("sweep_prune/{name}/pruned"), |b| {
            b.iter(|| std::hint::black_box(ev.evaluate_pruned(&arena, queries, &active)))
        });
        let pruned_ns =
            median_ns(reps, || ev.evaluate_pruned(&arena, queries, &active)) / BATCH as f64;

        rows.push((*name, active.active_fraction(), full_ns, pruned_ns));
    }

    // Gates: a thin active slice must buy ≥ 1.5×; a fully-active workload
    // must not regress (the pruned dispatch's overhead stays under ~18%).
    for &(name, frac, full_ns, pruned_ns) in &rows {
        match name {
            "selective" => assert!(
                full_ns >= 1.5 * pruned_ns,
                "selective (active {frac:.3}): pruned ({pruned_ns:.0} ns) must be \
                 ≥1.5x faster than full ({full_ns:.0} ns)"
            ),
            // Noise-tolerant bound: repeated runs jitter around 1.0 on
            // loaded hosts, so the gate only catches a systematic slowdown.
            _ => assert!(
                full_ns >= 0.75 * pruned_ns,
                "all_cols (active {frac:.3}): pruned ({pruned_ns:.0} ns) must not \
                 regress vs full ({full_ns:.0} ns)"
            ),
        }
    }

    let host = std::thread::available_parallelism().map_or(1, |x| x.get());
    let mut json = String::from("{\n  \"bench\": \"sweep_prune\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"n_nodes\": {},\n", arena.n_nodes()));
    json.push_str(&format!("  \"batch\": {BATCH},\n"));
    json.push_str("  \"results\": [\n");
    for (i, (name, frac, full_ns, pruned_ns)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{name}\", \"active_fraction\": {frac:.4}, \
             \"full_ns_per_query\": {full_ns:.0}, \
             \"pruned_ns_per_query\": {pruned_ns:.0}, \
             \"full_over_pruned\": {:.2}}}{}\n",
            full_ns / pruned_ns.max(1.0),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep_prune.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }
    println!("{json}");
}

criterion_group! {
    name = benches;
    config = {
        let (samples, secs) = if fast() { (5, 1) } else { (15, 3) };
        Criterion::default()
            .sample_size(samples)
            .measurement_time(std::time::Duration::from_secs(secs))
            .warm_up_time(std::time::Duration::from_millis(if fast() { 100 } else { 500 }))
    };
    targets = bench_sweep_prune
}
criterion_main!(benches);
