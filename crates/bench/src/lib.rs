//! Shared harness for the experiment bench targets.
//!
//! Every paper table/figure has a `benches/` target that prints the same
//! rows/series the paper reports. All targets honour:
//!
//! * `DEEPDB_SCALE` — multiplier on default dataset sizes (default 1.0),
//! * `DEEPDB_SEED` — global seed (default 42),
//! * `DEEPDB_FAST=1` — shrink workloads/model sizes for smoke runs.

use std::time::Duration;

use deepdb_core::{Ensemble, EnsembleBuilder, EnsembleParams};
use deepdb_data::Scale;
use deepdb_storage::Database;

/// The q-error of an estimate (≥ 1; both sides floored at one tuple).
pub fn qerror(estimate: f64, truth: f64) -> f64 {
    let e = estimate.max(1.0);
    let t = truth.max(1.0);
    (e / t).max(t / e)
}

/// Median / 90th / 95th / max of a sample (sorted internally).
pub fn percentiles(values: &mut [f64]) -> (f64, f64, f64, f64) {
    assert!(!values.is_empty(), "no values to summarize");
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pick = |q: f64| values[((values.len() - 1) as f64 * q).round() as usize];
    (pick(0.5), pick(0.9), pick(0.95), values[values.len() - 1])
}

/// Relative error |est − truth| / |truth| (in %). `None` estimates map to
/// `f64::INFINITY` ("No result" in the paper's figures).
pub fn rel_error_pct(estimate: Option<f64>, truth: f64) -> f64 {
    match estimate {
        None => f64::INFINITY,
        Some(e) => {
            if truth.abs() < 1e-12 {
                if e.abs() < 1e-9 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                100.0 * (e - truth).abs() / truth.abs()
            }
        }
    }
}

/// Average relative error over matched groups, in percent (grouped queries
/// in Figures 9/10). Groups missing from the estimate count as 100 %.
pub fn grouped_rel_error_pct(
    truth: &[(Vec<deepdb_storage::Value>, f64)],
    estimate: &[(Vec<deepdb_storage::Value>, Option<f64>)],
) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (key, t) in truth {
        let est = estimate
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| *v);
        let e = match est {
            Some(e) if t.abs() > 1e-12 => (100.0 * (e - t).abs() / t.abs()).min(100.0),
            Some(_) => 0.0,
            None => 100.0,
        };
        total += e;
    }
    total / truth.len() as f64
}

/// Fixed-width table printer (the "figure" output of each bench target).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Human-readable duration.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 60.0 {
        format!("{:.1}min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1000.0)
    }
}

/// Scale from the environment, shrunk further under `DEEPDB_FAST`.
pub fn bench_scale(default_factor: f64) -> Scale {
    let mut s = Scale::from_env();
    s.factor *= default_factor;
    if fast_mode() {
        s.factor *= 0.15;
    }
    s
}

/// Smoke-run mode.
pub fn fast_mode() -> bool {
    std::env::var("DEEPDB_FAST").is_ok_and(|v| v == "1")
}

/// Ensemble parameters used by the experiments (paper hyper-parameters:
/// RDC threshold 0.3, min instance slice 1 %, budget factor 0.5).
pub fn default_ensemble_params(seed: u64) -> EnsembleParams {
    let mut p = EnsembleParams {
        seed,
        ..EnsembleParams::default()
    };
    if fast_mode() {
        p.sample_size = 8_000;
        p.correlation_sample = 1_000;
    }
    p
}

/// Build an ensemble and report the wall-clock training time.
pub fn build_ensemble(db: &Database, params: EnsembleParams) -> (Ensemble, Duration) {
    let t0 = std::time::Instant::now();
    let ens = EnsembleBuilder::new(db)
        .params(params)
        .build()
        .expect("ensemble learning");
    (ens, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qerror_is_symmetric_and_floored() {
        assert_eq!(qerror(10.0, 100.0), 10.0);
        assert_eq!(qerror(100.0, 10.0), 10.0);
        assert_eq!(qerror(0.0, 0.0), 1.0);
    }

    #[test]
    fn percentile_extraction() {
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let (med, p90, p95, max) = percentiles(&mut v);
        assert_eq!(med, 51.0);
        assert_eq!(p90, 90.0);
        assert_eq!(p95, 95.0);
        assert_eq!(max, 100.0);
    }

    #[test]
    fn rel_error_handles_missing() {
        assert!(rel_error_pct(None, 5.0).is_infinite());
        assert_eq!(rel_error_pct(Some(110.0), 100.0), 10.0);
    }
}
