//! Scalar values and column types.

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// Physical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColType {
    /// 64-bit signed integer (keys, categorical codes, discrete numerics).
    Int,
    /// 64-bit float (continuous numerics).
    Float,
}

/// A single scalar value. Categorical values are dictionary codes (`Int`).
#[derive(Debug, Clone, Copy)]
pub enum Value {
    /// SQL NULL.
    Null,
    Int(i64),
    Float(f64),
}

impl Value {
    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as `f64`; `None` for NULL.
    ///
    /// Integers up to 2⁵³ convert exactly, which covers every key and code
    /// the generators produce.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Null => None,
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
        }
    }

    /// Integer view; `None` for NULL or `Float`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is NULL (unknown).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        let a = self.as_f64()?;
        let b = other.as_f64()?;
        a.partial_cmp(&b)
    }

    /// SQL equality: `None` when either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        Some(self.sql_cmp(other)? == Ordering::Equal)
    }

    /// The physical type this value stores, if not NULL.
    pub fn col_type(&self) -> Option<ColType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColType::Int),
            Value::Float(_) => Some(ColType::Float),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<Option<i64>> for Value {
    fn from(v: Option<i64>) -> Self {
        v.map_or(Value::Null, Value::Int)
    }
}

impl From<Option<f64>> for Value {
    fn from(v: Option<f64>) -> Self {
        v.map_or(Value::Null, Value::Float)
    }
}

// Bitwise semantics for grouping: NULL == NULL, floats compared by canonical
// bits. This is GROUP BY equality, intentionally different from `sql_eq`.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => canonical_bits(*a) == canonical_bits(*b),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                *a as f64 == *b && b.fract() == 0.0
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    // Hash like the equal Int so mixed-type groups agree.
                    1u8.hash(state);
                    (*v as i64).hash(state);
                } else {
                    2u8.hash(state);
                    canonical_bits(*v).hash(state);
                }
            }
        }
    }
}

fn canonical_bits(v: f64) -> u64 {
    if v.is_nan() {
        f64::NAN.to_bits()
    } else if v == 0.0 {
        0.0f64.to_bits() // collapse -0.0 and +0.0
    } else {
        v.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn sql_comparisons_with_null_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn group_semantics_null_equals_null() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn mixed_numeric_grouping() {
        let mut m: HashMap<Value, u32> = HashMap::new();
        *m.entry(Value::Int(3)).or_default() += 1;
        *m.entry(Value::Float(3.0)).or_default() += 1;
        assert_eq!(m.len(), 1, "Int(3) and Float(3.0) should group together");
    }

    #[test]
    fn negative_zero_groups_with_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
    }

    #[test]
    fn as_f64_roundtrip() {
        assert_eq!(Value::Int(42).as_f64(), Some(42.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Null.as_f64(), None);
    }
}
