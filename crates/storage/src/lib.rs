//! In-memory columnar relational engine for DeepDB.
//!
//! This crate is the substrate the paper assumes a DBMS provides:
//!
//! * typed, NULL-aware columnar tables with dictionary-encoded categoricals
//!   ([`Table`], [`Column`], [`Value`]);
//! * a catalog with primary/foreign-key metadata forming a join graph
//!   ([`Database`], [`ForeignKey`]);
//! * SQL-style conjunctive predicates with three-valued NULL semantics
//!   ([`Predicate`]);
//! * a ground-truth executor for COUNT/SUM/AVG (+ GROUP BY) over inner
//!   equi-joins along foreign keys ([`execute`]) — used to compute the true
//!   cardinalities and aggregates every experiment compares against;
//! * an exact full-outer-join counter and uniform sampler over FK join trees,
//!   producing the augmented training matrices (join indicators `N_T` and
//!   tuple factors `F_{S←T}`) that Relational SPNs are learned from
//!   ([`JoinTree`], [`JoinSample`]).

mod database;
mod error;
mod executor;
pub mod fixtures;
mod index;
mod join;
pub mod optimizer;
mod predicate;
mod query;
mod schema;
mod table;
mod value;

pub use database::Database;
pub use error::StorageError;
pub use executor::{
    execute, execute_ordered, execute_ordered_with_stats, execute_with_indexes, plan_order,
    AggResult, ExecStats, QueryOutput,
};
pub use index::Indexes;
pub use join::{JoinColumnMeta, JoinColumnRole, JoinSample, JoinTree};
pub use optimizer::{
    explain, optimize, CardinalityModel, JoinOrder, JoinOrderSpace, TrueCardinality,
};
pub use predicate::{CmpOp, PredOp, Predicate};
pub use query::{Aggregate, ColumnRef, Query};
pub use schema::{ColumnDef, Domain, ForeignKey, TableSchema};
pub use table::{Column, Table};
pub use value::{ColType, Value};

/// Identifier of a table inside a [`Database`] (stable across reads).
pub type TableId = usize;
/// Identifier of a column inside a [`Table`].
pub type ColId = usize;
