//! Exact full-outer-join counting and uniform sampling over FK join trees.
//!
//! RSPNs are learned over (samples of) the *full outer join* of correlated
//! tables (paper §4.1), augmented with
//!
//! * a join indicator `N_T ∈ {0,1}` per table marking whether the tuple has a
//!   `T` component (used to answer inner-join queries from the outer join);
//! * a tuple-factor column per foreign key `S←T` whose parent `S` is in the
//!   join: the number of `T` rows joining the `S` row. Factors of edges
//!   *inside* the join are stored clamped to ≥ 1 (`F'`, Figure 5b); factors
//!   of edges leaving the join are stored raw (Figure 5a), as the paper does.
//!
//! Rather than materializing the join, we root the join tree, compute exact
//! per-row combination counts bottom-up, and then draw i.i.d. uniform rows by
//! weighted descent. This gives the exact `|J|` and unbiased samples in
//! O(rows) preprocessing + O(depth·fanout) per sample.

use std::collections::HashMap;

use rand::Rng;

use crate::{ColId, Database, ForeignKey, StorageError, TableId};

/// How a column of a [`JoinSample`] relates to the base tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinColumnRole {
    /// A data column of one of the joined tables.
    Data { table: TableId, col: ColId },
    /// The `N_T` join indicator of a table (1 present, 0 NULL-padded).
    Indicator { table: TableId },
    /// A tuple-factor column `F_{parent←child}`. `clamped` means values are
    /// `max(F,1)` (edges internal to the join); raw otherwise.
    TupleFactor { fk: ForeignKey, clamped: bool },
}

/// Metadata of one column in a [`JoinSample`].
#[derive(Debug, Clone)]
pub struct JoinColumnMeta {
    /// Qualified name, e.g. `"customer.c_age"`, `"N:orders"`,
    /// `"F:customer<-orders"`.
    pub name: String,
    pub role: JoinColumnRole,
    /// Whether learners should treat the column as discrete.
    pub discrete: bool,
    /// Whether NULLs (NaN) can appear.
    pub nullable: bool,
}

/// A uniform sample of the full outer join, as a column-major `f64` matrix
/// with NaN encoding NULL. This is the training input of an RSPN.
#[derive(Debug, Clone)]
pub struct JoinSample {
    pub tables: Vec<TableId>,
    pub columns: Vec<JoinColumnMeta>,
    /// `data[col][sample]`.
    pub data: Vec<Vec<f64>>,
    /// Exact size of the full outer join.
    pub full_join_count: u64,
    pub n_samples: usize,
}

impl JoinSample {
    /// Index of the column with the given name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

/// Tree edge classification relative to the BFS parent.
#[derive(Debug, Clone, Copy)]
struct TreeEdge {
    fk: ForeignKey,
    /// True if the node is the FK-child (many side) of its tree parent.
    node_is_fk_child: bool,
}

/// A rooted FK join tree over a set of tables with precomputed combination
/// counts, anchors, and hash indexes for sampling.
pub struct JoinTree {
    /// Node order; `nodes[0]` is the root. Values are table ids.
    nodes: Vec<TableId>,
    edges: Vec<Option<TreeEdge>>, // None only for the root
    /// Children in the tree per node (node indexes).
    tree_children: Vec<Vec<usize>>,
    /// Subtree combination counts per node per row.
    counts: Vec<Vec<u64>>,
    /// Hash index child-FK value → child rows, for downward edges (per node).
    child_index: Vec<Option<HashMap<i64, Vec<u32>>>>,
    /// PK → row maps for upward edges (per node).
    pk_index: Vec<Option<HashMap<i64, u32>>>,
    /// Anchor nodes with per-row weights (prefix sums) over valid anchor rows.
    anchors: Vec<Anchor>,
    total: u64,
}

struct Anchor {
    node: usize,
    /// Valid anchor rows.
    rows: Vec<u32>,
    /// Cumulative weights aligned with `rows` (last entry = anchor total).
    cumulative: Vec<u64>,
}

impl JoinTree {
    /// Build the join tree for `tables` (must form a connected subtree of the
    /// FK graph) and precompute counts.
    pub fn new(db: &Database, tables: &[TableId]) -> Result<Self, StorageError> {
        if tables.is_empty() {
            return Err(StorageError::InvalidQuery("empty table list".into()));
        }
        let nodes = crate::executor::plan_order(db, tables)?;
        let n = nodes.len();
        let mut edges: Vec<Option<TreeEdge>> = vec![None; n];
        let mut tree_children: Vec<Vec<usize>> = vec![Vec::new(); n];
        // BFS parent per node — needed only during construction.
        let mut tree_parent = vec![0usize; n];
        for i in 1..n {
            let (pidx, fk) = nodes[..i]
                .iter()
                .enumerate()
                .find_map(|(j, &u)| db.edge_between(u, nodes[i]).map(|fk| (j, *fk)))
                .expect("plan_order guarantees connectivity");
            tree_parent[i] = pidx;
            tree_children[pidx].push(i);
            edges[i] = Some(TreeEdge {
                fk,
                node_is_fk_child: fk.child_table == nodes[i],
            });
        }

        // Per-node indexes for descent.
        let mut child_index: Vec<Option<HashMap<i64, Vec<u32>>>> = vec![None; n];
        let mut pk_index: Vec<Option<HashMap<i64, u32>>> = vec![None; n];
        for i in 1..n {
            let edge = edges[i].unwrap();
            let table = db.table(nodes[i]);
            if edge.node_is_fk_child {
                // Downward: index child rows by FK value.
                let col = table.column(edge.fk.child_col);
                let mut map: HashMap<i64, Vec<u32>> = HashMap::new();
                for r in 0..table.n_rows() {
                    if let Some(k) = col.i64_at(r) {
                        map.entry(k).or_default().push(r as u32);
                    }
                }
                child_index[i] = Some(map);
            } else {
                // Upward: index parent rows by PK.
                let col = table.column(edge.fk.parent_col);
                let mut map: HashMap<i64, u32> = HashMap::with_capacity(table.n_rows());
                for r in 0..table.n_rows() {
                    if let Some(k) = col.i64_at(r) {
                        map.insert(k, r as u32);
                    }
                }
                pk_index[i] = Some(map);
            }
        }

        // Subtree counts bottom-up (reverse BFS order suffices: children have
        // larger indexes than parents).
        let mut counts: Vec<Vec<u64>> = nodes
            .iter()
            .map(|&t| vec![1u64; db.table(t).n_rows()])
            .collect();
        for i in (0..n).rev() {
            let table = db.table(nodes[i]);
            for &j in &tree_children[i] {
                let edge = edges[j].unwrap();
                if edge.node_is_fk_child {
                    // Branch count = Σ matching child subtree counts, min 1.
                    let idx = child_index[j].as_ref().unwrap();
                    let probe = table.column(edge.fk.parent_col);
                    for r in 0..table.n_rows() {
                        let branch: u64 = probe
                            .i64_at(r)
                            .and_then(|k| idx.get(&k))
                            .map(|rows| {
                                rows.iter()
                                    .map(|&s| counts[j][s as usize])
                                    .fold(0u64, u64::saturating_add)
                            })
                            .unwrap_or(0)
                            .max(1);
                        counts[i][r] = counts[i][r].saturating_mul(branch);
                    }
                } else {
                    // Unique FK parent: multiply by its subtree count.
                    let idx = pk_index[j].as_ref().unwrap();
                    let probe = table.column(edge.fk.child_col);
                    for r in 0..table.n_rows() {
                        let branch = probe
                            .i64_at(r)
                            .and_then(|k| idx.get(&k))
                            .map(|&s| counts[j][s as usize])
                            .unwrap_or(1);
                        counts[i][r] = counts[i][r].saturating_mul(branch);
                    }
                }
            }
        }

        // Anchors: the root (all rows) plus every node whose tree parent is
        // its FK child (rows with zero referencing parent-side rows).
        let mut anchors = Vec::new();
        let mut total = 0u64;
        {
            let rows: Vec<u32> = (0..db.table(nodes[0]).n_rows() as u32).collect();
            let mut cumulative = Vec::with_capacity(rows.len());
            let mut acc = 0u64;
            for &r in &rows {
                acc = acc.saturating_add(counts[0][r as usize]);
                cumulative.push(acc);
            }
            total = total.saturating_add(acc);
            anchors.push(Anchor {
                node: 0,
                rows,
                cumulative,
            });
        }
        for i in 1..n {
            let edge = edges[i].unwrap();
            if edge.node_is_fk_child {
                continue; // node always has its FK parent present
            }
            // Node is FK-parent of its tree parent: anchor rows are those
            // with no referencing rows in the tree parent's table.
            let table = db.table(nodes[i]);
            let parent_table = db.table(nodes[tree_parent[i]]);
            let mut referenced: std::collections::HashSet<i64> = std::collections::HashSet::new();
            let fkcol = parent_table.column(edge.fk.child_col);
            for r in 0..parent_table.n_rows() {
                if let Some(k) = fkcol.i64_at(r) {
                    referenced.insert(k);
                }
            }
            let pkcol = table.column(edge.fk.parent_col);
            let mut rows = Vec::new();
            let mut cumulative = Vec::new();
            let mut acc = 0u64;
            #[allow(clippy::needless_range_loop)]
            for r in 0..table.n_rows() {
                let dangling = pkcol.i64_at(r).is_none_or(|k| !referenced.contains(&k));
                if dangling {
                    acc = acc.saturating_add(counts[i][r]);
                    rows.push(r as u32);
                    cumulative.push(acc);
                }
            }
            if !rows.is_empty() {
                total = total.saturating_add(acc);
                anchors.push(Anchor {
                    node: i,
                    rows,
                    cumulative,
                });
            }
        }

        Ok(Self {
            nodes,
            edges,
            tree_children,
            counts,
            child_index,
            pk_index,
            anchors,
            total,
        })
    }

    /// Exact number of rows in the full outer join.
    pub fn full_count(&self) -> u64 {
        self.total
    }

    /// Tables of the join in BFS order.
    pub fn tables(&self) -> &[TableId] {
        &self.nodes
    }

    /// Draw one uniform full-outer-join row as per-node `Option<row>`.
    fn sample_row<R: Rng + ?Sized>(&self, db: &Database, rng: &mut R) -> Vec<Option<u32>> {
        let mut assignment: Vec<Option<u32>> = vec![None; self.nodes.len()];
        if self.total == 0 {
            return assignment;
        }
        // Pick the anchor entry by global weight.
        let mut u = rng.gen_range(0..self.total);
        let mut chosen: Option<(usize, u32)> = None;
        for anchor in &self.anchors {
            let anchor_total = *anchor.cumulative.last().unwrap_or(&0);
            if u < anchor_total {
                let pos = anchor.cumulative.partition_point(|&c| c <= u);
                chosen = Some((anchor.node, anchor.rows[pos]));
                break;
            }
            u -= anchor_total;
        }
        let (anchor_node, anchor_row) = chosen.expect("total is the sum of anchor totals");
        assignment[anchor_node] = Some(anchor_row);
        self.descend(db, anchor_node, anchor_row, &mut assignment, rng);
        assignment
    }

    /// Fill the subtree below `node` by weighted descent.
    fn descend<R: Rng + ?Sized>(
        &self,
        db: &Database,
        node: usize,
        row: u32,
        assignment: &mut Vec<Option<u32>>,
        rng: &mut R,
    ) {
        let table = db.table(self.nodes[node]);
        for &j in &self.tree_children[node] {
            let edge = self.edges[j].unwrap();
            if edge.node_is_fk_child {
                let idx = self.child_index[j].as_ref().unwrap();
                let key = table.column(edge.fk.parent_col).i64_at(row as usize);
                let matches = key.and_then(|k| idx.get(&k));
                if let Some(matches) = matches.filter(|m| !m.is_empty()) {
                    // Weighted choice proportional to subtree counts.
                    let weights: Vec<u64> = matches
                        .iter()
                        .map(|&s| self.counts[j][s as usize])
                        .collect();
                    let total: u64 = weights.iter().fold(0u64, |a, &b| a.saturating_add(b));
                    let pick = if total == 0 {
                        matches[rng.gen_range(0..matches.len())]
                    } else {
                        let mut u = rng.gen_range(0..total);
                        let mut chosen = matches[matches.len() - 1];
                        for (w, &s) in weights.iter().zip(matches.iter()) {
                            if u < *w {
                                chosen = s;
                                break;
                            }
                            u -= w;
                        }
                        chosen
                    };
                    assignment[j] = Some(pick);
                    self.descend(db, j, pick, assignment, rng);
                }
                // else: branch NULL-padded (assignment[j] stays None)
            } else {
                let idx = self.pk_index[j].as_ref().unwrap();
                if let Some(&s) = table
                    .column(edge.fk.child_col)
                    .i64_at(row as usize)
                    .and_then(|k| idx.get(&k))
                {
                    assignment[j] = Some(s);
                    self.descend(db, j, s, assignment, rng);
                }
            }
        }
    }

    /// Draw `n` i.i.d. uniform rows and assemble the learner matrix: all
    /// modelled data columns, one `N_T` indicator per table, and tuple-factor
    /// columns for every FK whose parent is one of the joined tables.
    pub fn sample<R: Rng + ?Sized>(&self, db: &Database, n: usize, rng: &mut R) -> JoinSample {
        let internal: Vec<ForeignKey> = self.edges.iter().flatten().map(|e| e.fk).collect();
        let mut columns: Vec<JoinColumnMeta> = Vec::new();
        // Per output column: how to compute it from an assignment.
        enum Src {
            Data {
                node: usize,
                col: ColId,
            },
            Indicator {
                node: usize,
            },
            Factor {
                node: usize,
                factors: Vec<u32>,
                clamped: bool,
            },
        }
        let mut sources: Vec<Src> = Vec::new();

        for (node, &t) in self.nodes.iter().enumerate() {
            let table = db.table(t);
            for (c, def) in table.schema().columns().iter().enumerate() {
                if !def.domain.is_modelled() {
                    continue;
                }
                columns.push(JoinColumnMeta {
                    name: format!("{}.{}", table.schema().name(), def.name),
                    role: JoinColumnRole::Data { table: t, col: c },
                    discrete: def.domain.is_discrete(),
                    nullable: def.nullable || self.nodes.len() > 1,
                });
                sources.push(Src::Data { node, col: c });
            }
            columns.push(JoinColumnMeta {
                name: format!("N:{}", table.schema().name()),
                role: JoinColumnRole::Indicator { table: t },
                discrete: true,
                nullable: false,
            });
            sources.push(Src::Indicator { node });
            // Tuple factors of every FK with this table as parent.
            for fk in db.foreign_keys() {
                if fk.parent_table != t {
                    continue;
                }
                let clamped = internal.iter().any(|e| e == fk);
                let factors = db.tuple_factors(fk);
                columns.push(JoinColumnMeta {
                    name: format!(
                        "F:{}<-{}",
                        table.schema().name(),
                        db.table(fk.child_table).schema().name()
                    ),
                    role: JoinColumnRole::TupleFactor { fk: *fk, clamped },
                    discrete: true,
                    nullable: false,
                });
                sources.push(Src::Factor {
                    node,
                    factors,
                    clamped,
                });
            }
        }

        let mut data: Vec<Vec<f64>> = columns.iter().map(|_| Vec::with_capacity(n)).collect();
        for _ in 0..n {
            let assignment = self.sample_row(db, rng);
            for (out, src) in data.iter_mut().zip(&sources) {
                let v = match src {
                    Src::Data { node, col } => match assignment[*node] {
                        Some(r) => db
                            .table(self.nodes[*node])
                            .column(*col)
                            .f64_or_nan(r as usize),
                        None => f64::NAN,
                    },
                    Src::Indicator { node } => {
                        if assignment[*node].is_some() {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    Src::Factor {
                        node,
                        factors,
                        clamped,
                    } => match assignment[*node] {
                        Some(r) => {
                            let f = factors[r as usize] as f64;
                            if *clamped {
                                f.max(1.0)
                            } else {
                                f
                            }
                        }
                        None => 1.0, // neutral for absent parents
                    },
                };
                out.push(v);
            }
        }

        JoinSample {
            tables: self.nodes.clone(),
            columns,
            data,
            full_join_count: self.total,
            n_samples: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::test_fixtures::paper_customer_order;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_outer_join_count_matches_paper_figure_5b() {
        let db = paper_customer_order();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let tree = JoinTree::new(&db, &[c, o]).unwrap();
        assert_eq!(tree.full_count(), 5); // 4 joined rows + customer 2 padded
                                          // Root choice must not matter.
        let tree2 = JoinTree::new(&db, &[o, c]).unwrap();
        assert_eq!(tree2.full_count(), 5);
    }

    #[test]
    fn single_table_tree_counts_rows() {
        let db = paper_customer_order();
        let c = db.table_id("customer").unwrap();
        let tree = JoinTree::new(&db, &[c]).unwrap();
        assert_eq!(tree.full_count(), 3);
    }

    #[test]
    fn sample_matches_full_outer_join_distribution() {
        let db = paper_customer_order();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let tree = JoinTree::new(&db, &[c, o]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let s = tree.sample(&db, n, &mut rng);
        assert_eq!(s.n_samples, n);
        assert_eq!(s.full_join_count, 5);

        let age = s.column_index("customer.c_age").unwrap();
        let n_orders = s.column_index("N:orders").unwrap();
        let f_co = s.column_index("F:customer<-orders").unwrap();

        // Customer 2 (age 50) occupies exactly 1/5 of the join.
        let c2 = s.data[age].iter().filter(|&&v| v == 50.0).count() as f64 / n as f64;
        assert!((c2 - 0.2).abs() < 0.02, "customer 2 share {c2}");
        // Its rows are NULL-padded on the order side with F' clamped to 1.
        for i in 0..n {
            if s.data[age][i] == 50.0 {
                assert_eq!(s.data[n_orders][i], 0.0);
                assert_eq!(s.data[f_co][i], 1.0);
            } else {
                assert_eq!(s.data[n_orders][i], 1.0);
                assert_eq!(s.data[f_co][i], 2.0);
            }
        }
    }

    #[test]
    fn single_table_sample_has_raw_external_factors() {
        let db = paper_customer_order();
        let c = db.table_id("customer").unwrap();
        let tree = JoinTree::new(&db, &[c]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = tree.sample(&db, 5000, &mut rng);
        let f_co = s.column_index("F:customer<-orders").unwrap();
        let age = s.column_index("customer.c_age").unwrap();
        // Figure 5a: F_{C←O} = 2, 0, 2 — raw zero preserved for customer 2.
        for i in 0..s.n_samples {
            let expected = if s.data[age][i] == 50.0 { 0.0 } else { 2.0 };
            assert_eq!(s.data[f_co][i], expected);
        }
        // Uniform over 3 customers.
        let c1 = s.data[age].iter().filter(|&&v| v == 20.0).count() as f64 / 5000.0;
        assert!((c1 - 1.0 / 3.0).abs() < 0.03);
    }

    #[test]
    fn three_table_chain_counts() {
        // customer ← orders ← items chain with a dangling customer and order.
        let mut db = Database::new("chain");
        db.create_table(crate::TableSchema::new("c").pk("id"))
            .unwrap();
        db.create_table(
            crate::TableSchema::new("o")
                .pk("id")
                .col("cid", crate::Domain::Key),
        )
        .unwrap();
        db.create_table(
            crate::TableSchema::new("i")
                .pk("id")
                .col("oid", crate::Domain::Key),
        )
        .unwrap();
        db.add_foreign_key("o", "cid", "c").unwrap();
        db.add_foreign_key("i", "oid", "o").unwrap();
        use crate::Value::Int;
        for id in 1..=3 {
            db.insert("c", &[Int(id)]).unwrap();
        }
        // customer 1 has orders 1,2; customer 2 has none; customer 3 has order 3.
        for (oid, cid) in [(1, 1), (2, 1), (3, 3)] {
            db.insert("o", &[Int(oid), Int(cid)]).unwrap();
        }
        // order 1 has items 1,2,3; order 2 none; order 3 has item 4.
        for (iid, oid) in [(1, 1), (2, 1), (3, 1), (4, 3)] {
            db.insert("i", &[Int(iid), Int(oid)]).unwrap();
        }
        let (c, o, i) = (0, 1, 2);
        let tree = JoinTree::new(&db, &[c, o, i]).unwrap();
        // c1: o1×3 items + o2×1(pad) = 4; c2: 1 (pad); c3: o3×1 = 1 → 6.
        assert_eq!(tree.full_count(), 6);
        // Rooting at the deepest table must agree.
        let tree2 = JoinTree::new(&db, &[i, o, c]).unwrap();
        assert_eq!(tree2.full_count(), 6);
    }

    #[test]
    fn anchored_dangling_parents_are_sampled() {
        // suppliers never referenced must appear as NULL-padded anchor rows.
        let mut db = Database::new("d");
        db.create_table(crate::TableSchema::new("s").pk("id"))
            .unwrap();
        db.create_table(
            crate::TableSchema::new("lo")
                .pk("id")
                .col("sid", crate::Domain::Key),
        )
        .unwrap();
        db.add_foreign_key("lo", "sid", "s").unwrap();
        use crate::Value::Int;
        for id in 1..=4 {
            db.insert("s", &[Int(id)]).unwrap();
        }
        db.insert("lo", &[Int(1), Int(1)]).unwrap();
        // Root at lo: suppliers 2,3,4 are dangling anchors.
        let tree = JoinTree::new(&db, &[1, 0]).unwrap();
        assert_eq!(tree.full_count(), 4); // 1 joined + 3 dangling suppliers
        let mut rng = StdRng::seed_from_u64(3);
        let s = tree.sample(&db, 4000, &mut rng);
        let n_lo = s.column_index("N:lo").unwrap();
        let absent = s.data[n_lo].iter().filter(|&&v| v == 0.0).count() as f64 / 4000.0;
        assert!((absent - 0.75).abs() < 0.03, "dangling share {absent}");
    }
}
