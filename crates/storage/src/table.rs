//! Columnar tables.

use crate::{ColId, ColType, StorageError, TableSchema, Value};

/// A single column: dense typed data plus an optional validity mask.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    /// `None` means "all valid". Otherwise `validity[i] == false` marks NULL.
    validity: Option<Vec<bool>>,
}

#[derive(Debug, Clone)]
enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
}

impl Column {
    fn new(ctype: ColType) -> Self {
        let data = match ctype {
            ColType::Int => ColumnData::Int(Vec::new()),
            ColType::Float => ColumnData::Float(Vec::new()),
        };
        Self {
            data,
            validity: None,
        }
    }

    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn col_type(&self) -> ColType {
        match &self.data {
            ColumnData::Int(_) => ColType::Int,
            ColumnData::Float(_) => ColType::Float,
        }
    }

    /// Value at `row` (NULL-aware).
    pub fn value(&self, row: usize) -> Value {
        if !self.is_valid(row) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
        }
    }

    /// `f64` view of the value; NaN encodes NULL. Used by learners.
    pub fn f64_or_nan(&self, row: usize) -> f64 {
        if !self.is_valid(row) {
            return f64::NAN;
        }
        match &self.data {
            ColumnData::Int(v) => v[row] as f64,
            ColumnData::Float(v) => v[row],
        }
    }

    /// Integer view; `None` on NULL or type mismatch.
    pub fn i64_at(&self, row: usize) -> Option<i64> {
        if !self.is_valid(row) {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => Some(v[row]),
            ColumnData::Float(_) => None,
        }
    }

    pub fn is_valid(&self, row: usize) -> bool {
        self.validity.as_ref().is_none_or(|v| v[row])
    }

    fn push(&mut self, value: &Value) -> Result<(), StorageError> {
        match (&mut self.data, value) {
            (ColumnData::Int(v), Value::Int(x)) => v.push(*x),
            (ColumnData::Float(v), Value::Float(x)) => v.push(*x),
            // Accept integer literals into float columns for ergonomics.
            (ColumnData::Float(v), Value::Int(x)) => v.push(*x as f64),
            (ColumnData::Int(v), Value::Null) => v.push(0),
            (ColumnData::Float(v), Value::Null) => v.push(f64::NAN),
            (ColumnData::Int(_), Value::Float(_)) => {
                return Err(StorageError::TypeMismatch {
                    expected: ColType::Int,
                    got: ColType::Float,
                })
            }
        }
        let is_null = value.is_null();
        match (&mut self.validity, is_null) {
            (Some(mask), _) => mask.push(!is_null),
            (None, true) => {
                // First NULL: materialize the mask lazily.
                let mut mask = vec![true; self.len() - 1];
                mask.push(false);
                self.validity = Some(mask);
            }
            (None, false) => {}
        }
        Ok(())
    }

    fn swap_remove(&mut self, row: usize) {
        match &mut self.data {
            ColumnData::Int(v) => {
                v.swap_remove(row);
            }
            ColumnData::Float(v) => {
                v.swap_remove(row);
            }
        }
        if let Some(mask) = &mut self.validity {
            mask.swap_remove(row);
        }
    }

    /// Iterate the column as `f64` with NaN for NULL.
    pub fn iter_f64(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len()).map(move |i| self.f64_or_nan(i))
    }
}

/// A table: a schema plus columnar data.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Column::new(c.domain.col_type()))
            .collect();
        Self {
            schema,
            columns,
            n_rows: 0,
        }
    }

    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn column(&self, id: ColId) -> &Column {
        &self.columns[id]
    }

    /// Value of `col` at `row`.
    pub fn value(&self, row: usize, col: ColId) -> Value {
        self.columns[col].value(row)
    }

    /// Append a full row.
    pub fn push_row(&mut self, values: &[Value]) -> Result<(), StorageError> {
        if values.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                table: self.schema.name().to_string(),
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        for (idx, (col, v)) in self.columns.iter_mut().zip(values).enumerate() {
            if v.is_null() && !self.schema.columns()[idx].nullable {
                return Err(StorageError::NullViolation {
                    table: self.schema.name().to_string(),
                    column: self.schema.columns()[idx].name.clone(),
                });
            }
            col.push(v)?;
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Remove a row by swapping in the last row (O(1); row ids are not stable
    /// across deletes — callers must rebuild indexes).
    pub fn swap_remove_row(&mut self, row: usize) -> Result<Vec<Value>, StorageError> {
        if row >= self.n_rows {
            return Err(StorageError::RowOutOfRange {
                row,
                n_rows: self.n_rows,
            });
        }
        let values = self.row_values(row);
        for col in &mut self.columns {
            col.swap_remove(row);
        }
        self.n_rows -= 1;
        Ok(values)
    }

    /// Materialize one row as values.
    pub fn row_values(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Resolve a primary-key value to a row id, scanning (use [`crate::Indexes`]
    /// for repeated lookups).
    pub fn find_pk(&self, key: i64) -> Option<usize> {
        let pk = self.schema.primary_key()?;
        let col = &self.columns[pk];
        (0..self.n_rows).find(|&r| col.i64_at(r) == Some(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    fn customer() -> Table {
        Table::new(
            TableSchema::new("customer")
                .pk("c_id")
                .col("c_age", Domain::Discrete)
                .nullable_col("c_score", Domain::Continuous),
        )
    }

    #[test]
    fn push_and_read_back() {
        let mut t = customer();
        t.push_row(&[Value::Int(1), Value::Int(30), Value::Float(0.5)])
            .unwrap();
        t.push_row(&[Value::Int(2), Value::Int(40), Value::Null])
            .unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.value(0, 1), Value::Int(30));
        assert!(t.value(1, 2).is_null());
        assert!(t.column(2).f64_or_nan(1).is_nan());
        assert_eq!(t.column(2).f64_or_nan(0), 0.5);
    }

    #[test]
    fn arity_and_type_checks() {
        let mut t = customer();
        assert!(matches!(
            t.push_row(&[Value::Int(1)]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.push_row(&[Value::Int(1), Value::Float(3.5), Value::Null]),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn null_violation_on_non_nullable() {
        let mut t = customer();
        assert!(matches!(
            t.push_row(&[Value::Int(1), Value::Null, Value::Null]),
            Err(StorageError::NullViolation { .. })
        ));
    }

    #[test]
    fn swap_remove_keeps_remaining_rows() {
        let mut t = customer();
        for i in 0..3 {
            t.push_row(&[Value::Int(i), Value::Int(10 * i), Value::Float(i as f64)])
                .unwrap();
        }
        let removed = t.swap_remove_row(0).unwrap();
        assert_eq!(removed[0], Value::Int(0));
        assert_eq!(t.n_rows(), 2);
        // Last row (id 2) swapped into position 0.
        assert_eq!(t.value(0, 0), Value::Int(2));
        assert!(t.swap_remove_row(5).is_err());
    }

    #[test]
    fn find_pk_scans() {
        let mut t = customer();
        t.push_row(&[Value::Int(7), Value::Int(1), Value::Null])
            .unwrap();
        assert_eq!(t.find_pk(7), Some(0));
        assert_eq!(t.find_pk(8), None);
    }

    #[test]
    fn int_literal_coerces_into_float_column() {
        let mut t = customer();
        t.push_row(&[Value::Int(1), Value::Int(5), Value::Int(2)])
            .unwrap();
        assert_eq!(t.value(0, 2), Value::Float(2.0));
    }
}
