//! Hash indexes over primary and foreign keys.

use std::collections::HashMap;

use crate::{ColId, Database, TableId};

/// Prebuilt hash indexes: primary key → row id, and (child table, fk column,
/// key) → child row ids. These play the role of the secondary indexes the
/// paper's baselines (Index-Based Join Sampling, Wander Join) assume exist.
#[derive(Debug, Default, Clone)]
pub struct Indexes {
    pk: HashMap<TableId, HashMap<i64, u32>>,
    children: HashMap<(TableId, ColId), HashMap<i64, Vec<u32>>>,
}

impl Indexes {
    /// Build all PK indexes and one children-index per foreign key.
    pub fn build(db: &Database) -> Self {
        let mut idx = Indexes::default();
        for t in 0..db.n_tables() {
            let table = db.table(t);
            if let Some(pk) = table.schema().primary_key() {
                let col = table.column(pk);
                let mut map = HashMap::with_capacity(table.n_rows());
                for r in 0..table.n_rows() {
                    if let Some(k) = col.i64_at(r) {
                        map.insert(k, r as u32);
                    }
                }
                idx.pk.insert(t, map);
            }
        }
        for fk in db.foreign_keys() {
            let child = db.table(fk.child_table);
            let col = child.column(fk.child_col);
            let mut map: HashMap<i64, Vec<u32>> = HashMap::new();
            for r in 0..child.n_rows() {
                if let Some(k) = col.i64_at(r) {
                    map.entry(k).or_default().push(r as u32);
                }
            }
            idx.children.insert((fk.child_table, fk.child_col), map);
        }
        idx
    }

    /// Row id holding primary key `key` in `table`.
    pub fn pk_lookup(&self, table: TableId, key: i64) -> Option<u32> {
        self.pk.get(&table)?.get(&key).copied()
    }

    /// Child rows of `(child_table, child_col)` whose FK equals `key`.
    pub fn children(&self, child_table: TableId, child_col: ColId, key: i64) -> &[u32] {
        self.children
            .get(&(child_table, child_col))
            .and_then(|m| m.get(&key))
            .map_or(&[], Vec::as_slice)
    }

    /// The whole unique PK index of `table` — lets the executor reuse the
    /// prebuilt map as a join build side when the build column is the PK.
    pub fn pk_index(&self, table: TableId) -> Option<&HashMap<i64, u32>> {
        self.pk.get(&table)
    }

    /// All (key, rows) pairs of a children index — used by samplers.
    pub fn children_index(
        &self,
        child_table: TableId,
        child_col: ColId,
    ) -> Option<&HashMap<i64, Vec<u32>>> {
        self.children.get(&(child_table, child_col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::test_fixtures::paper_customer_order;

    #[test]
    fn pk_and_children_lookups() {
        let db = paper_customer_order();
        let idx = Indexes::build(&db);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        assert_eq!(idx.pk_lookup(c, 3), Some(2));
        assert_eq!(idx.pk_lookup(c, 42), None);
        let fk = db.foreign_keys()[0];
        assert_eq!(idx.children(o, fk.child_col, 1), &[0, 1]);
        assert_eq!(idx.children(o, fk.child_col, 2), &[] as &[u32]);
        assert_eq!(idx.children(o, fk.child_col, 3), &[2, 3]);
    }
}
