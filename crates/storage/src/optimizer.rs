//! Cardinality-driven join ordering.
//!
//! The executor streams the first table of its scan order and attaches every
//! further table through a hash index, so *any* FK-connected order returns
//! the same output multiset — only the intermediate row counts change. The
//! work it does is therefore ≈ Σ over order prefixes of |filtered prefix
//! join| (the classic `C_out` cost), and picking a good order is a pure
//! cardinality-estimation problem: exactly the "optimizer in the loop"
//! scenario DeepDB's RSPN estimates are meant for.
//!
//! [`JoinOrderSpace`] enumerates every connected subset of the query's
//! tables (bitmask DP, ≤ 16 tables), prices each subset **once** through a
//! pluggable [`CardinalityModel`], and runs a left-deep dynamic program over
//! the priced subsets: `cost(S) = card(S) + min over last-table t` (with the
//! same pass under `max` yielding the worst enumerated order for benchmark
//! bracketing). The model is a trait so storage stays independent of the
//! estimator: `deepdb-core` implements it with RSPN estimates rebound
//! through prepared queries, while [`TrueCardinality`] backs it with the
//! ground-truth executor for oracle tests.

use crate::executor::ExecStats;
use crate::{execute_with_indexes, Database, Indexes, Query, StorageError, TableId};

/// Source of cardinality estimates for candidate subplans.
///
/// `tables` is always a *connected* subset of `query.tables`; the model must
/// return the (estimated) number of qualifying rows of the inner FK join of
/// those tables with `query`'s predicates restricted to them. Estimates only
/// steer order choice, so they may be approximate — but they must be finite
/// and non-negative.
pub trait CardinalityModel {
    fn subset_cardinality(&mut self, db: &Database, query: &Query, tables: &[TableId]) -> f64;
}

/// Ground-truth [`CardinalityModel`]: executes a `COUNT(*)` sub-query per
/// subset. Exact and slow — the oracle the RSPN-backed model is tested
/// against, and a baseline for "how good could ordering possibly get".
pub struct TrueCardinality<'a> {
    idx: Option<&'a Indexes>,
}

impl<'a> TrueCardinality<'a> {
    /// Ground truth via the executor, reusing `idx` across all sub-queries.
    pub fn new(idx: Option<&'a Indexes>) -> Self {
        Self { idx }
    }
}

impl CardinalityModel for TrueCardinality<'_> {
    fn subset_cardinality(&mut self, db: &Database, query: &Query, tables: &[TableId]) -> f64 {
        let mut sub = Query::count(tables.to_vec());
        sub.predicates = query
            .predicates
            .iter()
            .filter(|p| tables.contains(&p.table))
            .cloned()
            .collect();
        match execute_with_indexes(db, &sub, self.idx) {
            Ok(out) => out.scalar().count as f64,
            Err(_) => f64::INFINITY,
        }
    }
}

/// A chosen scan order plus the estimates that chose it.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinOrder {
    /// Tables in scan order (first is the streamed base table).
    pub tables: Vec<TableId>,
    /// Estimated filtered-prefix-join cardinality after each step:
    /// `est_rows[k]` prices the join of `tables[..=k]`.
    pub est_rows: Vec<f64>,
    /// Total estimated cost (`Σ est_rows` — the `C_out` objective).
    pub cost: f64,
}

/// The priced search space of one query: cardinalities of every connected
/// table subset plus the best/worst left-deep DP tables over them.
///
/// Building the space issues exactly one [`CardinalityModel`] call per
/// connected subset; [`best`](Self::best), [`worst`](Self::worst), and
/// [`order_for`](Self::order_for) then read the priced table without
/// touching the model again, so one estimate pass serves every lane of a
/// benchmark comparison.
pub struct JoinOrderSpace {
    tables: Vec<TableId>,
    /// `card[mask]` for connected masks, `NAN` elsewhere.
    card: Vec<f64>,
    best_cost: Vec<f64>,
    best_last: Vec<u8>,
    worst_cost: Vec<f64>,
    worst_last: Vec<u8>,
    n_estimates: usize,
}

impl JoinOrderSpace {
    /// Enumerate and price the space. `query` must validate against `db` and
    /// list at most 16 tables.
    pub fn new(
        db: &Database,
        query: &Query,
        model: &mut dyn CardinalityModel,
    ) -> Result<Self, StorageError> {
        query.validate(db)?;
        let tables = query.tables.clone();
        let n = tables.len();
        if n > 16 {
            return Err(StorageError::InvalidQuery(format!(
                "join-order enumeration supports at most 16 tables, query lists {n}"
            )));
        }

        // Local adjacency over the query's tables.
        let adj: Vec<u32> = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i && db.edge_between(tables[i], tables[j]).is_some())
                    .fold(0u32, |m, j| m | (1 << j))
            })
            .collect();

        let full = (1usize << n) - 1;
        let mut card = vec![f64::NAN; full + 1];
        let mut best_cost = vec![f64::INFINITY; full + 1];
        let mut best_last = vec![u8::MAX; full + 1];
        let mut worst_cost = vec![f64::NEG_INFINITY; full + 1];
        let mut worst_last = vec![u8::MAX; full + 1];
        let mut n_estimates = 0usize;
        let mut subset: Vec<TableId> = Vec::with_capacity(n);

        // Masks in increasing order: every proper sub-mask is visited first,
        // so connectivity and DP costs of `mask \ t` are already known. A
        // mask is connected iff removing some member leaves it connected and
        // adjacent to that member — sound because every connected graph has
        // a non-cut vertex.
        for mask in 1usize..=full {
            let connected = if mask.count_ones() == 1 {
                true
            } else {
                (0..n).any(|t| {
                    let rest = mask & !(1 << t);
                    mask & (1 << t) != 0 && !card[rest].is_nan() && adj[t] & rest as u32 != 0
                })
            };
            if !connected {
                continue;
            }
            subset.clear();
            subset.extend((0..n).filter(|&i| mask & (1 << i) != 0).map(|i| tables[i]));
            let c = model.subset_cardinality(db, query, &subset).max(0.0);
            n_estimates += 1;
            card[mask] = c;
            if mask.count_ones() == 1 {
                best_cost[mask] = c;
                worst_cost[mask] = c;
                continue;
            }
            for (t, &adj_t) in adj.iter().enumerate().take(n) {
                let rest = mask & !(1 << t);
                if mask & (1 << t) == 0 || card[rest].is_nan() || adj_t & rest as u32 == 0 {
                    continue;
                }
                if best_cost[rest] + c < best_cost[mask] {
                    best_cost[mask] = best_cost[rest] + c;
                    best_last[mask] = t as u8;
                }
                if worst_cost[rest] + c > worst_cost[mask] {
                    worst_cost[mask] = worst_cost[rest] + c;
                    worst_last[mask] = t as u8;
                }
            }
        }

        Ok(Self {
            tables,
            card,
            best_cost,
            best_last,
            worst_cost,
            worst_last,
            n_estimates,
        })
    }

    /// Number of cardinality estimates issued while building the space (one
    /// per connected subset).
    pub fn n_estimates(&self) -> usize {
        self.n_estimates
    }

    /// Estimated cardinality of a connected subset of the query's tables.
    pub fn cardinality(&self, tables: &[TableId]) -> Option<f64> {
        let mask = self.mask_of(tables)?;
        let c = self.card[mask];
        (!c.is_nan()).then_some(c)
    }

    /// The cheapest left-deep order under the model's estimates.
    pub fn best(&self) -> JoinOrder {
        self.reconstruct(&self.best_cost, &self.best_last)
    }

    /// The most expensive enumerated order — brackets how much ordering can
    /// matter on this query under the same estimates.
    pub fn worst(&self) -> JoinOrder {
        self.reconstruct(&self.worst_cost, &self.worst_last)
    }

    /// Price an externally chosen order (e.g. the listed BFS order) from the
    /// already-built cardinality table. `None` if the order is not a
    /// connected-prefix permutation of the query's tables.
    pub fn order_for(&self, order: &[TableId]) -> Option<JoinOrder> {
        if order.len() != self.tables.len() {
            return None;
        }
        let mut mask = 0usize;
        let mut est_rows = Vec::with_capacity(order.len());
        for &t in order {
            let i = self.tables.iter().position(|&u| u == t)?;
            if mask & (1 << i) != 0 {
                return None;
            }
            mask |= 1 << i;
            let c = self.card[mask];
            if c.is_nan() {
                return None; // prefix not connected (or not a subset)
            }
            est_rows.push(c);
        }
        Some(JoinOrder {
            tables: order.to_vec(),
            cost: est_rows.iter().sum(),
            est_rows,
        })
    }

    fn mask_of(&self, tables: &[TableId]) -> Option<usize> {
        let mut mask = 0usize;
        for &t in tables {
            let i = self.tables.iter().position(|&u| u == t)?;
            if mask & (1 << i) != 0 {
                return None;
            }
            mask |= 1 << i;
        }
        Some(mask)
    }

    fn reconstruct(&self, cost: &[f64], last: &[u8]) -> JoinOrder {
        let n = self.tables.len();
        let full = (1usize << n) - 1;
        let mut order = vec![0usize; n];
        let mut mask = full;
        for k in (1..n).rev() {
            let t = last[mask] as usize;
            debug_assert!(t < n, "DP table incomplete for mask {mask:#b}");
            order[k] = t;
            mask &= !(1 << t);
        }
        order[0] = mask.trailing_zeros() as usize;
        let mut est_rows = Vec::with_capacity(n);
        let mut m = 0usize;
        for &i in &order {
            m |= 1 << i;
            est_rows.push(self.card[m]);
        }
        JoinOrder {
            tables: order.into_iter().map(|i| self.tables[i]).collect(),
            est_rows,
            cost: cost[full],
        }
    }
}

/// One-shot convenience: build the space and return the best order.
pub fn optimize(
    db: &Database,
    query: &Query,
    model: &mut dyn CardinalityModel,
) -> Result<JoinOrder, StorageError> {
    JoinOrderSpace::new(db, query, model).map(|s| s.best())
}

/// Render the chosen order with estimated vs actual cardinalities per step —
/// `stats` comes from [`crate::execute_ordered_with_stats`] on the same
/// order.
pub fn explain(db: &Database, order: &JoinOrder, stats: &ExecStats) -> String {
    let mut out = format!(
        "join order ({} tables, estimated cost {:.1} rows):\n",
        order.tables.len(),
        order.cost
    );
    let width = order
        .tables
        .iter()
        .map(|&t| db.table(t).schema().name().len())
        .max()
        .unwrap_or(0);
    for (k, &t) in order.tables.iter().enumerate() {
        let name = db.table(t).schema().name();
        let est = order.est_rows.get(k).copied().unwrap_or(f64::NAN);
        let line = match stats.rows_per_level.get(k) {
            Some(&actual) if stats.order.get(k) == Some(&t) => {
                let q = if actual == 0 {
                    f64::NAN
                } else {
                    est / actual as f64
                };
                format!(
                    "  {:>2}. {name:width$}  est {est:>12.1}  actual {actual:>10}  est/actual {q:>8.3}\n",
                    k + 1
                )
            }
            _ => format!(
                "  {:>2}. {name:width$}  est {est:>12.1}  actual          ?\n",
                k + 1
            ),
        };
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        execute, execute_ordered, execute_ordered_with_stats, plan_order, CmpOp, Domain, PredOp,
        TableSchema, Value,
    };

    /// Tiny 4-table star: `title` parent of `cast_info`, `movie_keyword`,
    /// `movie_company`. Predicates can make children arbitrarily selective.
    fn star_db() -> Database {
        let mut db = Database::new("star");
        db.create_table(
            TableSchema::new("title")
                .pk("id")
                .col("year", Domain::Discrete),
        )
        .unwrap();
        for child in ["cast_info", "movie_keyword", "movie_company"] {
            db.create_table(
                TableSchema::new(child)
                    .pk("id")
                    .col("movie_id", Domain::Key)
                    .col("tag", Domain::Discrete),
            )
            .unwrap();
            db.add_foreign_key(child, "movie_id", "title").unwrap();
        }
        for m in 1..=20i64 {
            db.insert("title", &[Value::Int(m), Value::Int(1990 + m % 10)])
                .unwrap();
        }
        let mut id = 1i64;
        for child in ["cast_info", "movie_keyword", "movie_company"] {
            for m in 1..=20i64 {
                // Fan-out varies per child so orders differ in cost.
                let fan = match child {
                    "cast_info" => 5,
                    "movie_keyword" => 2,
                    _ => 1,
                };
                for k in 0..fan {
                    db.insert(child, &[Value::Int(id), Value::Int(m), Value::Int(k)])
                        .unwrap();
                    id += 1;
                }
            }
        }
        db
    }

    fn star_query(db: &Database) -> Query {
        let t = db.table_id("title").unwrap();
        let ci = db.table_id("cast_info").unwrap();
        let mk = db.table_id("movie_keyword").unwrap();
        let mc = db.table_id("movie_company").unwrap();
        // FROM lists the big unfiltered child first — the worst listed order.
        Query::count(vec![ci, t, mk, mc])
            .filter(mk, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)))
            .filter(t, 1, PredOp::Cmp(CmpOp::Le, Value::Int(1995)))
    }

    #[test]
    fn true_cardinality_prices_subsets_exactly() {
        let db = star_db();
        let q = star_query(&db);
        let idx = Indexes::build(&db);
        let mut model = TrueCardinality::new(Some(&idx));
        let t = db.table_id("title").unwrap();
        let mk = db.table_id("movie_keyword").unwrap();
        // year = 1990 + m%10, so year ≤ 1995 keeps m%10 ∈ {0..5} → 12 of 20.
        assert_eq!(model.subset_cardinality(&db, &q, &[t]), 12.0);
        // movie_keyword has fan-out 2 with tag ∈ {0,1} → tag=1 keeps 1/movie.
        assert_eq!(model.subset_cardinality(&db, &q, &[mk]), 20.0);
        assert_eq!(model.subset_cardinality(&db, &q, &[t, mk]), 12.0);
    }

    #[test]
    fn best_order_beats_listed_and_worst_in_cost() {
        let db = star_db();
        let q = star_query(&db);
        let idx = Indexes::build(&db);
        let mut model = TrueCardinality::new(Some(&idx));
        let space = JoinOrderSpace::new(&db, &q, &mut model).unwrap();
        // A 4-table star has 1 + 3·2 + ... connected subsets; every one is
        // priced exactly once.
        assert_eq!(space.n_estimates(), 11);
        let best = space.best();
        let worst = space.worst();
        let listed = space
            .order_for(&plan_order(&db, &q.tables).unwrap())
            .unwrap();
        assert!(best.cost <= listed.cost);
        assert!(listed.cost <= worst.cost);
        assert!(
            best.cost < worst.cost,
            "fan-out asymmetry must separate best {best:?} from worst {worst:?}"
        );
        // The cheapest base is a filtered table, not the big cast_info scan.
        let ci = db.table_id("cast_info").unwrap();
        assert_ne!(best.tables[0], ci);
        assert_eq!(worst.tables.len(), 4);
    }

    #[test]
    fn every_enumerated_order_is_executable_and_output_equal() {
        let db = star_db();
        let q = star_query(&db);
        let idx = Indexes::build(&db);
        let mut model = TrueCardinality::new(Some(&idx));
        let space = JoinOrderSpace::new(&db, &q, &mut model).unwrap();
        let reference = execute(&db, &q).unwrap();
        for order in [space.best(), space.worst()] {
            let out = execute_ordered(&db, &q, Some(&idx), &order).unwrap();
            assert_eq!(out.scalar().count, reference.scalar().count);
        }
    }

    #[test]
    fn stats_actuals_match_true_cardinalities() {
        let db = star_db();
        let q = star_query(&db);
        let idx = Indexes::build(&db);
        let mut model = TrueCardinality::new(Some(&idx));
        let space = JoinOrderSpace::new(&db, &q, &mut model).unwrap();
        let best = space.best();
        let (_, stats) = execute_ordered_with_stats(&db, &q, Some(&idx), &best).unwrap();
        assert_eq!(stats.order, best.tables);
        // TrueCardinality estimates are exact, so est == actual per level.
        for (k, &actual) in stats.rows_per_level.iter().enumerate() {
            assert_eq!(best.est_rows[k], actual as f64, "level {k}");
        }
        let rendered = explain(&db, &best, &stats);
        assert!(rendered.contains("est/actual"));
        assert!(rendered.contains(db.table(best.tables[0]).schema().name()));
    }

    #[test]
    fn invalid_orders_rejected() {
        let db = star_db();
        let q = star_query(&db);
        let t = db.table_id("title").unwrap();
        let ci = db.table_id("cast_info").unwrap();
        let mk = db.table_id("movie_keyword").unwrap();
        // Wrong table set.
        let bad = JoinOrder {
            tables: vec![t, ci, mk],
            est_rows: vec![],
            cost: 0.0,
        };
        assert!(execute_ordered(&db, &q, None, &bad).is_err());
        // Disconnected prefix: two children before their shared parent.
        let mc = db.table_id("movie_company").unwrap();
        let bad = JoinOrder {
            tables: vec![ci, mk, t, mc],
            est_rows: vec![],
            cost: 0.0,
        };
        assert!(matches!(
            execute_ordered(&db, &q, None, &bad),
            Err(StorageError::DisconnectedJoin(_))
        ));
    }

    #[test]
    fn order_for_rejects_disconnected_prefixes() {
        let db = star_db();
        let q = star_query(&db);
        let idx = Indexes::build(&db);
        let mut model = TrueCardinality::new(Some(&idx));
        let space = JoinOrderSpace::new(&db, &q, &mut model).unwrap();
        let t = db.table_id("title").unwrap();
        let ci = db.table_id("cast_info").unwrap();
        let mk = db.table_id("movie_keyword").unwrap();
        let mc = db.table_id("movie_company").unwrap();
        assert!(space.order_for(&[ci, mk, t, mc]).is_none());
        assert!(space.order_for(&[t, ci]).is_none());
        assert!(space.order_for(&[t, ci, mk, mc]).is_some());
    }

    #[test]
    fn single_table_space() {
        let db = star_db();
        let t = db.table_id("title").unwrap();
        let q = Query::count(vec![t]);
        let mut model = TrueCardinality::new(None);
        let space = JoinOrderSpace::new(&db, &q, &mut model).unwrap();
        assert_eq!(space.n_estimates(), 1);
        let best = space.best();
        assert_eq!(best.tables, vec![t]);
        assert_eq!(best.cost, 20.0);
        assert_eq!(space.worst().cost, 20.0);
    }
}
