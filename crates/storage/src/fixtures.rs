//! Shared test/example fixtures: the paper's running Customer/Order example
//! (Figure 5). Public so downstream crates, examples, and integration tests
//! can verify against the paper's worked numbers.

use crate::{Database, Domain, TableSchema, Value};

/// Build the exact database of paper Figure 5.
///
/// * `customer(c_id, c_age, c_region)` = (1, 20, EUROPE), (2, 50, EUROPE),
///   (3, 80, ASIA)
/// * `orders(o_id, c_id, o_channel)` = (1, 1, ONLINE), (2, 1, STORE),
///   (3, 3, ONLINE), (4, 3, STORE)
///
/// Region codes: EUROPE = 0, ASIA = 1. Channel codes: ONLINE = 0, STORE = 1.
pub fn paper_customer_order() -> Database {
    let mut db = Database::new("paper");
    db.create_table(
        TableSchema::new("customer")
            .pk("c_id")
            .col("c_age", Domain::Discrete)
            .col("c_region", Domain::categorical(["EUROPE", "ASIA"])),
    )
    .expect("fresh catalog");
    db.create_table(
        TableSchema::new("orders")
            .pk("o_id")
            .col("c_id", Domain::Key)
            .col("o_channel", Domain::categorical(["ONLINE", "STORE"])),
    )
    .expect("fresh catalog");
    db.add_foreign_key("orders", "c_id", "customer")
        .expect("valid fk");
    for (id, age, region) in [(1, 20, 0), (2, 50, 0), (3, 80, 1)] {
        db.insert(
            "customer",
            &[Value::Int(id), Value::Int(age), Value::Int(region)],
        )
        .expect("valid row");
    }
    for (id, cid, channel) in [(1, 1, 0), (2, 1, 1), (3, 3, 0), (4, 3, 1)] {
        db.insert(
            "orders",
            &[Value::Int(id), Value::Int(cid), Value::Int(channel)],
        )
        .expect("valid row");
    }
    db
}

/// A larger randomized customer/orders database with a controllable
/// correlation between customer region and order channel, for statistical
/// tests of estimators. Deterministic in `seed`.
pub fn correlated_customer_order(n_customers: usize, seed: u64) -> Database {
    let mut db = Database::new("correlated");
    db.create_table(
        TableSchema::new("customer")
            .pk("c_id")
            .col("c_age", Domain::Discrete)
            .col(
                "c_region",
                Domain::categorical(["EUROPE", "ASIA", "AMERICA"]),
            ),
    )
    .expect("fresh catalog");
    db.create_table(
        TableSchema::new("orders")
            .pk("o_id")
            .col("c_id", Domain::Key)
            .col("o_channel", Domain::categorical(["ONLINE", "STORE"]))
            .col("o_amount", Domain::Continuous),
    )
    .expect("fresh catalog");
    db.add_foreign_key("orders", "c_id", "customer")
        .expect("valid fk");

    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };

    let mut order_id = 1i64;
    for c in 1..=n_customers as i64 {
        let region = (next() * 3.0) as i64;
        // Age correlates with region: Europeans skew older.
        let age = match region {
            0 => 50 + (next() * 40.0) as i64,
            _ => 18 + (next() * 40.0) as i64,
        };
        db.insert(
            "customer",
            &[Value::Int(c), Value::Int(age), Value::Int(region)],
        )
        .expect("valid row");
        // Fan-out 0..4 correlated with age (older → more orders).
        let lambda = if age > 50 { 2.5 } else { 1.0 };
        let n_orders = (next() * lambda * 2.0) as i64;
        for _ in 0..n_orders {
            // Channel correlates with region: Europeans shop in stores.
            let channel = if region == 0 {
                i64::from(next() < 0.2)
            } else {
                i64::from(next() < 0.8)
            };
            let amount = 10.0 + next() * 490.0;
            db.insert(
                "orders",
                &[
                    Value::Int(order_id),
                    Value::Int(c),
                    Value::Int(channel),
                    Value::Float(amount),
                ],
            )
            .expect("valid row");
            order_id += 1;
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fixture_matches_figure_5() {
        let db = paper_customer_order();
        db.validate_integrity().unwrap();
        assert_eq!(db.table(db.table_id("customer").unwrap()).n_rows(), 3);
        assert_eq!(db.table(db.table_id("orders").unwrap()).n_rows(), 4);
    }

    #[test]
    fn correlated_fixture_is_deterministic_and_consistent() {
        let a = correlated_customer_order(200, 7);
        let b = correlated_customer_order(200, 7);
        a.validate_integrity().unwrap();
        let oa = a.table(a.table_id("orders").unwrap()).n_rows();
        let ob = b.table(b.table_id("orders").unwrap()).n_rows();
        assert_eq!(oa, ob);
        assert!(
            oa > 50,
            "should generate a reasonable number of orders, got {oa}"
        );
    }
}
