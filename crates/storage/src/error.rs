//! Error type for the storage crate.

use crate::ColType;

/// Errors surfaced by catalog, table, and executor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A table name was not found in the catalog.
    UnknownTable(String),
    /// A column name was not found in a table.
    UnknownColumn { table: String, column: String },
    /// Row arity did not match the schema.
    ArityMismatch {
        table: String,
        expected: usize,
        got: usize,
    },
    /// A value's physical type did not match the column.
    TypeMismatch { expected: ColType, got: ColType },
    /// NULL written to a non-nullable column.
    NullViolation { table: String, column: String },
    /// Row index out of range.
    RowOutOfRange { row: usize, n_rows: usize },
    /// A foreign key referenced a missing table/column or a non-PK parent.
    InvalidForeignKey(String),
    /// The tables of a query do not form a connected acyclic join graph.
    DisconnectedJoin(String),
    /// A query referenced an aggregate input it cannot use.
    InvalidQuery(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            Self::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            Self::ArityMismatch {
                table,
                expected,
                got,
            } => {
                write!(f, "table `{table}` expects {expected} values, got {got}")
            }
            Self::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected:?}, got {got:?}")
            }
            Self::NullViolation { table, column } => {
                write!(f, "NULL written to non-nullable `{table}.{column}`")
            }
            Self::RowOutOfRange { row, n_rows } => {
                write!(f, "row {row} out of range (table has {n_rows} rows)")
            }
            Self::InvalidForeignKey(msg) => write!(f, "invalid foreign key: {msg}"),
            Self::DisconnectedJoin(msg) => write!(f, "join not connected/acyclic: {msg}"),
            Self::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}
