//! Ground-truth query execution.
//!
//! A streaming multi-way hash-join pipeline over the FK join tree: the first
//! table is scanned, every further table is attached through a hash index,
//! and aggregates are folded without materializing the join. This gives the
//! exact answers (cardinalities, aggregates) that the experiments compare
//! estimators against.

use std::collections::HashMap;

use crate::{Aggregate, ColId, Database, Indexes, Predicate, Query, StorageError, TableId, Value};

/// Accumulated aggregate state for one (group of) result row(s).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AggResult {
    /// `COUNT(*)` over qualifying join rows.
    pub count: u64,
    /// Sum of the (non-NULL) aggregate input.
    pub sum: f64,
    /// Number of non-NULL aggregate inputs (denominator of AVG).
    pub non_null: u64,
}

impl AggResult {
    /// `AVG`; `None` when no non-NULL inputs qualified.
    pub fn avg(&self) -> Option<f64> {
        (self.non_null > 0).then(|| self.sum / self.non_null as f64)
    }

    /// The value of the query's aggregate.
    pub fn value_for(&self, agg: Aggregate) -> Option<f64> {
        match agg {
            Aggregate::CountStar => Some(self.count as f64),
            Aggregate::Sum(_) => (self.count > 0).then_some(self.sum),
            Aggregate::Avg(_) => self.avg(),
        }
    }

    fn absorb(&mut self, agg_value: Option<Value>) {
        self.count += 1;
        if let Some(v) = agg_value {
            if let Some(x) = v.as_f64() {
                self.sum += x;
                self.non_null += 1;
            }
        }
    }
}

/// Result of [`execute`]: a scalar for plain aggregates, per-group results
/// for GROUP BY queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    Scalar(AggResult),
    Grouped(Vec<(Vec<Value>, AggResult)>),
}

impl QueryOutput {
    /// Scalar accessor; groups are summed for COUNT/SUM to allow cardinality
    /// checks on grouped queries.
    pub fn scalar(&self) -> AggResult {
        match self {
            QueryOutput::Scalar(a) => *a,
            QueryOutput::Grouped(gs) => {
                let mut total = AggResult::default();
                for (_, a) in gs {
                    total.count += a.count;
                    total.sum += a.sum;
                    total.non_null += a.non_null;
                }
                total
            }
        }
    }

    /// Group list (empty slice for scalar output).
    pub fn groups(&self) -> &[(Vec<Value>, AggResult)] {
        match self {
            QueryOutput::Scalar(_) => &[],
            QueryOutput::Grouped(g) => g,
        }
    }
}

/// One join step: attach `table` by matching `probe_col` values of an earlier
/// table against this table's `build_col`.
struct JoinStep {
    table: TableId,
    /// Index into the plan order of the already-joined table we probe from.
    from_level: usize,
    /// Column of the earlier table whose value we look up.
    probe_col: ColId,
    /// Column of the new table the hash index is built on.
    build_col: ColId,
}

/// Execute a query, building temporary indexes.
pub fn execute(db: &Database, q: &Query) -> Result<QueryOutput, StorageError> {
    execute_with_indexes(db, q, None)
}

/// Execute a query, reusing prebuilt [`Indexes`] where possible.
pub fn execute_with_indexes(
    db: &Database,
    q: &Query,
    idx: Option<&Indexes>,
) -> Result<QueryOutput, StorageError> {
    q.validate(db)?;
    let order = plan_order(db, &q.tables)?;

    // Per-level predicate lists.
    let preds: Vec<Vec<&Predicate>> = order
        .iter()
        .map(|&t| q.predicates_on(t).collect())
        .collect();

    // Build hash maps for non-base tables (level ≥ 1).
    let mut steps: Vec<JoinStep> = Vec::new();
    for (level, &t) in order.iter().enumerate().skip(1) {
        let (from_level, fk) = order[..level]
            .iter()
            .enumerate()
            .find_map(|(l, &u)| db.edge_between(u, t).map(|fk| (l, fk)))
            .expect("plan_order guarantees connectivity");
        let (probe_col, build_col) = if fk.child_table == t {
            // New table is the many side: probe with the parent's PK.
            (fk.parent_col, fk.child_col)
        } else {
            // New table is the one side: probe with the child's FK value.
            (fk.child_col, fk.parent_col)
        };
        steps.push(JoinStep {
            table: t,
            from_level,
            probe_col,
            build_col,
        });
    }

    // Hash index per step (reuse prebuilt children indexes when they match).
    let mut built: Vec<HashMap<i64, Vec<u32>>> = Vec::with_capacity(steps.len());
    for step in &steps {
        if let Some(pre) = idx.and_then(|ix| ix.children_index(step.table, step.build_col)) {
            built.push(pre.clone());
            continue;
        }
        let table = db.table(step.table);
        let col = table.column(step.build_col);
        let mut map: HashMap<i64, Vec<u32>> = HashMap::new();
        for r in 0..table.n_rows() {
            if let Some(k) = col.i64_at(r) {
                map.entry(k).or_default().push(r as u32);
            }
        }
        built.push(map);
    }

    let agg_input = q.aggregate_input();
    let grouped = !q.group_by.is_empty();
    let mut scalar = AggResult::default();
    let mut groups: HashMap<Vec<Value>, AggResult> = HashMap::new();

    // Depth-first enumeration of join combinations.
    let base = db.table(order[0]);
    let mut assignment: Vec<u32> = vec![0; order.len()];
    let level_of = |t: TableId| order.iter().position(|&u| u == t).unwrap();
    let agg_level = agg_input.map(|c| (level_of(c.table), c.column));
    let group_levels: Vec<(usize, ColId)> = q
        .group_by
        .iter()
        .map(|c| (level_of(c.table), c.column))
        .collect();

    // Recursive closure via explicit stack to avoid lifetime gymnastics.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        db: &Database,
        order: &[TableId],
        steps: &[JoinStep],
        built: &[HashMap<i64, Vec<u32>>],
        preds: &[Vec<&Predicate>],
        assignment: &mut Vec<u32>,
        level: usize,
        agg_level: Option<(usize, ColId)>,
        group_levels: &[(usize, ColId)],
        grouped: bool,
        scalar: &mut AggResult,
        groups: &mut HashMap<Vec<Value>, AggResult>,
    ) {
        if level == order.len() {
            let agg_value =
                agg_level.map(|(l, c)| db.table(order[l]).value(assignment[l] as usize, c));
            if grouped {
                let key: Vec<Value> = group_levels
                    .iter()
                    .map(|&(l, c)| db.table(order[l]).value(assignment[l] as usize, c))
                    .collect();
                groups.entry(key).or_default().absorb(agg_value);
            } else {
                scalar.absorb(agg_value);
            }
            return;
        }
        let step = &steps[level - 1];
        let from_table = db.table(order[step.from_level]);
        let from_row = assignment[step.from_level] as usize;
        let Some(key) = from_table.column(step.probe_col).i64_at(from_row) else {
            return; // NULL join key never matches (inner join)
        };
        let Some(matches) = built[level - 1].get(&key) else {
            return;
        };
        let table = db.table(step.table);
        'rows: for &r in matches {
            for p in &preds[level] {
                if !p.passes(&table.value(r as usize, p.column)) {
                    continue 'rows;
                }
            }
            assignment[level] = r;
            recurse(
                db,
                order,
                steps,
                built,
                preds,
                assignment,
                level + 1,
                agg_level,
                group_levels,
                grouped,
                scalar,
                groups,
            );
        }
    }

    'base_rows: for r in 0..base.n_rows() {
        for p in &preds[0] {
            if !p.passes(&base.value(r, p.column)) {
                continue 'base_rows;
            }
        }
        assignment[0] = r as u32;
        recurse(
            db,
            &order,
            &steps,
            &built,
            &preds,
            &mut assignment,
            1,
            agg_level,
            &group_levels,
            grouped,
            &mut scalar,
            &mut groups,
        );
    }

    if grouped {
        let mut out: Vec<(Vec<Value>, AggResult)> = groups.into_iter().collect();
        // Deterministic output order for tests and reports.
        out.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        Ok(QueryOutput::Grouped(out))
    } else {
        Ok(QueryOutput::Scalar(scalar))
    }
}

/// BFS ordering of the query's tables such that each table after the first
/// connects by FK to an earlier one.
pub(crate) fn plan_order(db: &Database, tables: &[TableId]) -> Result<Vec<TableId>, StorageError> {
    let mut order = vec![tables[0]];
    let mut remaining: Vec<TableId> = tables[1..].to_vec();
    while !remaining.is_empty() {
        let pos = remaining
            .iter()
            .position(|&t| order.iter().any(|&u| db.edge_between(u, t).is_some()))
            .ok_or_else(|| {
                StorageError::DisconnectedJoin(format!("cannot order tables {tables:?}"))
            })?;
        order.push(remaining.remove(pos));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::test_fixtures::paper_customer_order;
    use crate::{Aggregate, CmpOp, ColumnRef, PredOp, Query};

    fn ids(db: &Database) -> (TableId, TableId) {
        (
            db.table_id("customer").unwrap(),
            db.table_id("orders").unwrap(),
        )
    }

    #[test]
    fn paper_query_q1_count_european_customers() {
        let db = paper_customer_order();
        let (c, _) = ids(&db);
        let q = Query::count(vec![c]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        assert_eq!(execute(&db, &q).unwrap().scalar().count, 2);
    }

    #[test]
    fn paper_query_q2_join_count() {
        let db = paper_customer_order();
        let (c, o) = ids(&db);
        // European customers with online orders: only customer 1 / order 1.
        let q = Query::count(vec![c, o])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        assert_eq!(execute(&db, &q).unwrap().scalar().count, 1);
    }

    #[test]
    fn join_without_predicates_counts_all_pairs() {
        let db = paper_customer_order();
        let (c, o) = ids(&db);
        let q = Query::count(vec![c, o]);
        assert_eq!(execute(&db, &q).unwrap().scalar().count, 4);
        // Order of tables in FROM must not matter.
        let q2 = Query::count(vec![o, c]);
        assert_eq!(execute(&db, &q2).unwrap().scalar().count, 4);
    }

    #[test]
    fn paper_query_q3_avg_age_of_europeans() {
        let db = paper_customer_order();
        let (c, _) = ids(&db);
        let q = Query::count(vec![c])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .aggregate(Aggregate::Avg(ColumnRef {
                table: c,
                column: 1,
            }));
        let out = execute(&db, &q).unwrap().scalar();
        assert_eq!(out.avg(), Some(35.0)); // (20 + 50) / 2, paper §4.2
    }

    #[test]
    fn avg_over_join_weights_by_orders() {
        let db = paper_customer_order();
        let (c, o) = ids(&db);
        // Joined AVG(c_age): customers 1 and 3 contribute twice each.
        let q = Query::count(vec![c, o]).aggregate(Aggregate::Avg(ColumnRef {
            table: c,
            column: 1,
        }));
        let out = execute(&db, &q).unwrap().scalar();
        assert_eq!(out.avg(), Some((20.0 * 2.0 + 80.0 * 2.0) / 4.0));
    }

    #[test]
    fn group_by_region() {
        let db = paper_customer_order();
        let (c, _) = ids(&db);
        let q = Query::count(vec![c]).group(c, 2);
        let out = execute(&db, &q).unwrap();
        let groups = out.groups();
        assert_eq!(groups.len(), 2);
        let total: u64 = groups.iter().map(|(_, a)| a.count).sum();
        assert_eq!(total, 3);
        assert_eq!(out.scalar().count, 3);
    }

    #[test]
    fn sum_ignores_nulls() {
        let mut db = Database::new("t");
        db.create_table(
            crate::TableSchema::new("x")
                .pk("id")
                .nullable_col("v", crate::Domain::Continuous),
        )
        .unwrap();
        db.insert("x", &[Value::Int(1), Value::Float(2.0)]).unwrap();
        db.insert("x", &[Value::Int(2), Value::Null]).unwrap();
        let x = db.table_id("x").unwrap();
        let q = Query::count(vec![x]).aggregate(Aggregate::Sum(ColumnRef {
            table: x,
            column: 1,
        }));
        let out = execute(&db, &q).unwrap().scalar();
        assert_eq!(out.sum, 2.0);
        assert_eq!(out.count, 2);
        assert_eq!(out.non_null, 1);
    }

    #[test]
    fn prebuilt_indexes_give_same_answer() {
        let db = paper_customer_order();
        let (c, o) = ids(&db);
        let idx = Indexes::build(&db);
        let q = Query::count(vec![c, o]).filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)));
        let a = execute(&db, &q).unwrap();
        let b = execute_with_indexes(&db, &q, Some(&idx)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.scalar().count, 2);
    }

    #[test]
    fn count_monotone_under_conjunction() {
        let db = paper_customer_order();
        let (c, o) = ids(&db);
        let base = Query::count(vec![c, o]);
        let narrowed =
            Query::count(vec![c, o]).filter(c, 1, PredOp::Cmp(CmpOp::Lt, Value::Int(50)));
        let a = execute(&db, &base).unwrap().scalar().count;
        let b = execute(&db, &narrowed).unwrap().scalar().count;
        assert!(b <= a);
    }
}
