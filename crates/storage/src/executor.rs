//! Ground-truth query execution.
//!
//! A streaming multi-way hash-join pipeline over the FK join tree: the first
//! table is scanned, every further table is attached through a hash index,
//! and aggregates are folded without materializing the join. This gives the
//! exact answers (cardinalities, aggregates) that the experiments compare
//! estimators against.
//!
//! The scan order is pluggable: [`execute`]/[`execute_with_indexes`] use the
//! listed order (BFS from the first `FROM` table, [`plan_order`]), while
//! [`execute_ordered`] takes a [`JoinOrder`] chosen by the cardinality-driven
//! optimizer ([`crate::optimizer`]). Every valid order produces the same
//! multiset of join combinations, so outputs are identical — only the number
//! of intermediate rows enumerated (and therefore runtime) changes.
//! [`execute_ordered_with_stats`] additionally reports the actual per-level
//! intermediate cardinalities, the ground truth `explain` renders next to the
//! optimizer's estimates.

use std::collections::HashMap;

use crate::optimizer::JoinOrder;
use crate::{Aggregate, ColId, Database, Indexes, Predicate, Query, StorageError, TableId, Value};

/// Accumulated aggregate state for one (group of) result row(s).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AggResult {
    /// `COUNT(*)` over qualifying join rows.
    pub count: u64,
    /// Sum of the (non-NULL) aggregate input.
    pub sum: f64,
    /// Number of non-NULL aggregate inputs (denominator of AVG).
    pub non_null: u64,
}

impl AggResult {
    /// `AVG`; `None` when no non-NULL inputs qualified.
    pub fn avg(&self) -> Option<f64> {
        (self.non_null > 0).then(|| self.sum / self.non_null as f64)
    }

    /// The value of the query's aggregate.
    pub fn value_for(&self, agg: Aggregate) -> Option<f64> {
        match agg {
            Aggregate::CountStar => Some(self.count as f64),
            Aggregate::Sum(_) => (self.count > 0).then_some(self.sum),
            Aggregate::Avg(_) => self.avg(),
        }
    }

    fn absorb(&mut self, agg_value: Option<Value>) {
        self.count += 1;
        if let Some(v) = agg_value {
            if let Some(x) = v.as_f64() {
                self.sum += x;
                self.non_null += 1;
            }
        }
    }
}

/// Result of [`execute`]: a scalar for plain aggregates, per-group results
/// for GROUP BY queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    Scalar(AggResult),
    Grouped(Vec<(Vec<Value>, AggResult)>),
}

impl QueryOutput {
    /// Scalar accessor with **contractual** grouped-sum semantics.
    ///
    /// For `Scalar` output this returns the aggregate state verbatim. For
    /// `Grouped` output the per-group states are *component-wise summed* —
    /// NULL groups included — so:
    ///
    /// * `scalar().count` is the total number of qualifying join rows, i.e.
    ///   exactly the `COUNT(*)` of the same query without its `GROUP BY`
    ///   clause (cardinality checks on grouped queries rely on this);
    /// * `scalar().sum` is the `SUM` over all groups (each group's sum is an
    ///   order-independent sum of its inputs, so for integer-valued columns
    ///   below 2^53 the total is exact regardless of grouping or join
    ///   order);
    /// * `scalar().non_null` is the total non-NULL aggregate-input count, so
    ///   `scalar().avg()` is the ungrouped `AVG` (the *row-weighted* mean of
    ///   the group means, not their unweighted mean).
    pub fn scalar(&self) -> AggResult {
        match self {
            QueryOutput::Scalar(a) => *a,
            QueryOutput::Grouped(gs) => {
                let mut total = AggResult::default();
                for (_, a) in gs {
                    total.count += a.count;
                    total.sum += a.sum;
                    total.non_null += a.non_null;
                }
                total
            }
        }
    }

    /// Group list (empty slice for scalar output).
    pub fn groups(&self) -> &[(Vec<Value>, AggResult)] {
        match self {
            QueryOutput::Scalar(_) => &[],
            QueryOutput::Grouped(g) => g,
        }
    }
}

/// One join step: attach `table` by matching `probe_col` values of an earlier
/// table against this table's `build_col`.
struct JoinStep {
    table: TableId,
    /// Index into the plan order of the already-joined table we probe from.
    from_level: usize,
    /// Column of the earlier table whose value we look up.
    probe_col: ColId,
    /// Column of the new table the hash index is built on.
    build_col: ColId,
}

/// The hash index one join step probes — the "build side" of the step.
/// Prebuilt [`Indexes`] are borrowed (never cloned): FK-side builds reuse
/// the children index, PK-side builds reuse the unique primary-key index.
/// Only when no prebuilt index matches is a private one built per query.
enum StepIndex<'a> {
    /// Borrowed prebuilt children index (build column is a child FK).
    Children(&'a HashMap<i64, Vec<u32>>),
    /// Borrowed prebuilt unique index (build column is the table's PK).
    Unique(&'a HashMap<i64, u32>),
    /// Index built for this query only.
    Owned(HashMap<i64, Vec<u32>>),
}

/// Actual per-level execution counts collected by
/// [`execute_ordered_with_stats`] — the ground truth `explain` compares the
/// optimizer's estimates against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// The scan order that was executed.
    pub order: Vec<TableId>,
    /// `rows_per_level[k]` = number of partial join rows that survived the
    /// filters at level `k`, i.e. the exact cardinality of the filtered
    /// inner join of the first `k + 1` tables of the order (with predicates
    /// restricted to those tables). The last entry is the query's qualifying
    /// row count.
    pub rows_per_level: Vec<u64>,
}

/// Execute a query, building temporary indexes.
pub fn execute(db: &Database, q: &Query) -> Result<QueryOutput, StorageError> {
    execute_with_indexes(db, q, None)
}

/// Execute a query in the listed (BFS) table order, reusing prebuilt
/// [`Indexes`] where possible.
pub fn execute_with_indexes(
    db: &Database,
    q: &Query,
    idx: Option<&Indexes>,
) -> Result<QueryOutput, StorageError> {
    q.validate(db)?;
    let order = plan_order(db, &q.tables)?;
    run_ordered(db, q, idx, &order).map(|(out, _)| out)
}

/// Execute a query in the scan order chosen by a join-order optimizer
/// ([`crate::optimizer`]). The order must cover exactly the query's tables
/// and every prefix must stay FK-connected; any valid order returns output
/// identical to [`execute`].
pub fn execute_ordered(
    db: &Database,
    q: &Query,
    idx: Option<&Indexes>,
    order: &JoinOrder,
) -> Result<QueryOutput, StorageError> {
    q.validate(db)?;
    check_order(db, &q.tables, &order.tables)?;
    run_ordered(db, q, idx, &order.tables).map(|(out, _)| out)
}

/// [`execute_ordered`] plus the actual per-level intermediate cardinalities
/// (the `actual` column of [`crate::optimizer::explain`]).
pub fn execute_ordered_with_stats(
    db: &Database,
    q: &Query,
    idx: Option<&Indexes>,
    order: &JoinOrder,
) -> Result<(QueryOutput, ExecStats), StorageError> {
    q.validate(db)?;
    check_order(db, &q.tables, &order.tables)?;
    run_ordered(db, q, idx, &order.tables)
}

/// Validate that `order` is a permutation of `tables` whose every prefix is
/// FK-connected (each table after the first joins an earlier one).
fn check_order(db: &Database, tables: &[TableId], order: &[TableId]) -> Result<(), StorageError> {
    if order.len() != tables.len()
        || tables.iter().any(|t| !order.contains(t))
        || order.iter().any(|t| !tables.contains(t))
    {
        return Err(StorageError::InvalidQuery(format!(
            "join order {order:?} is not a permutation of the query tables {tables:?}"
        )));
    }
    for (i, &t) in order.iter().enumerate().skip(1) {
        if !order[..i].iter().any(|&u| db.edge_between(u, t).is_some()) {
            return Err(StorageError::DisconnectedJoin(format!(
                "join order {order:?}: table {t} has no FK edge to an earlier table"
            )));
        }
    }
    Ok(())
}

/// The shared execution body: stream the first table of `order`, attach every
/// further table through a hash index, fold aggregates. Counts survivors per
/// level as it goes (the counters are plain increments on rows the join
/// already enumerates, so the listed-order wrappers share this body too).
fn run_ordered(
    db: &Database,
    q: &Query,
    idx: Option<&Indexes>,
    order: &[TableId],
) -> Result<(QueryOutput, ExecStats), StorageError> {
    // Per-level predicate lists.
    let preds: Vec<Vec<&Predicate>> = order
        .iter()
        .map(|&t| q.predicates_on(t).collect())
        .collect();

    // Build hash maps for non-base tables (level ≥ 1).
    let mut steps: Vec<JoinStep> = Vec::new();
    for (level, &t) in order.iter().enumerate().skip(1) {
        let (from_level, fk) = order[..level]
            .iter()
            .enumerate()
            .find_map(|(l, &u)| db.edge_between(u, t).map(|fk| (l, fk)))
            .expect("check_order / plan_order guarantee connectivity");
        let (probe_col, build_col) = if fk.child_table == t {
            // New table is the many side: probe with the parent's PK.
            (fk.parent_col, fk.child_col)
        } else {
            // New table is the one side: probe with the child's FK value.
            (fk.child_col, fk.parent_col)
        };
        steps.push(JoinStep {
            table: t,
            from_level,
            probe_col,
            build_col,
        });
    }

    // Build side per step: borrow a prebuilt index when one matches the
    // build column (children index for FK-side builds, unique PK index for
    // parent-side builds), build a private one otherwise.
    let mut built: Vec<StepIndex> = Vec::with_capacity(steps.len());
    for step in &steps {
        if let Some(pre) = idx.and_then(|ix| ix.children_index(step.table, step.build_col)) {
            built.push(StepIndex::Children(pre));
            continue;
        }
        let table = db.table(step.table);
        if table.schema().primary_key() == Some(step.build_col) {
            if let Some(pre) = idx.and_then(|ix| ix.pk_index(step.table)) {
                built.push(StepIndex::Unique(pre));
                continue;
            }
        }
        let col = table.column(step.build_col);
        let mut map: HashMap<i64, Vec<u32>> = HashMap::new();
        for r in 0..table.n_rows() {
            if let Some(k) = col.i64_at(r) {
                map.entry(k).or_default().push(r as u32);
            }
        }
        built.push(StepIndex::Owned(map));
    }

    let agg_input = q.aggregate_input();
    let grouped = !q.group_by.is_empty();
    let mut scalar = AggResult::default();
    let mut groups: HashMap<Vec<Value>, AggResult> = HashMap::new();
    let mut rows_per_level: Vec<u64> = vec![0; order.len()];

    // Depth-first enumeration of join combinations.
    let base = db.table(order[0]);
    let mut assignment: Vec<u32> = vec![0; order.len()];
    let level_of = |t: TableId| order.iter().position(|&u| u == t).unwrap();
    let agg_level = agg_input.map(|c| (level_of(c.table), c.column));
    let group_levels: Vec<(usize, ColId)> = q
        .group_by
        .iter()
        .map(|c| (level_of(c.table), c.column))
        .collect();

    // Recursive closure via explicit stack to avoid lifetime gymnastics.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        db: &Database,
        order: &[TableId],
        steps: &[JoinStep],
        built: &[StepIndex],
        preds: &[Vec<&Predicate>],
        assignment: &mut Vec<u32>,
        level: usize,
        agg_level: Option<(usize, ColId)>,
        group_levels: &[(usize, ColId)],
        grouped: bool,
        scalar: &mut AggResult,
        groups: &mut HashMap<Vec<Value>, AggResult>,
        rows_per_level: &mut [u64],
    ) {
        if level == order.len() {
            let agg_value =
                agg_level.map(|(l, c)| db.table(order[l]).value(assignment[l] as usize, c));
            if grouped {
                let key: Vec<Value> = group_levels
                    .iter()
                    .map(|&(l, c)| db.table(order[l]).value(assignment[l] as usize, c))
                    .collect();
                groups.entry(key).or_default().absorb(agg_value);
            } else {
                scalar.absorb(agg_value);
            }
            return;
        }
        let step = &steps[level - 1];
        let from_table = db.table(order[step.from_level]);
        let from_row = assignment[step.from_level] as usize;
        let Some(key) = from_table.column(step.probe_col).i64_at(from_row) else {
            return; // NULL join key never matches (inner join)
        };
        let single;
        let matches: &[u32] = match &built[level - 1] {
            StepIndex::Children(m) => m.get(&key).map_or(&[], Vec::as_slice),
            StepIndex::Owned(m) => m.get(&key).map_or(&[], Vec::as_slice),
            StepIndex::Unique(m) => match m.get(&key) {
                Some(&r) => {
                    single = [r];
                    &single
                }
                None => &[],
            },
        };
        let table = db.table(step.table);
        'rows: for &r in matches {
            for p in &preds[level] {
                if !p.passes(&table.value(r as usize, p.column)) {
                    continue 'rows;
                }
            }
            rows_per_level[level] += 1;
            assignment[level] = r;
            recurse(
                db,
                order,
                steps,
                built,
                preds,
                assignment,
                level + 1,
                agg_level,
                group_levels,
                grouped,
                scalar,
                groups,
                rows_per_level,
            );
        }
    }

    'base_rows: for r in 0..base.n_rows() {
        for p in &preds[0] {
            if !p.passes(&base.value(r, p.column)) {
                continue 'base_rows;
            }
        }
        rows_per_level[0] += 1;
        assignment[0] = r as u32;
        recurse(
            db,
            order,
            &steps,
            &built,
            &preds,
            &mut assignment,
            1,
            agg_level,
            &group_levels,
            grouped,
            &mut scalar,
            &mut groups,
            &mut rows_per_level,
        );
    }

    let stats = ExecStats {
        order: order.to_vec(),
        rows_per_level,
    };
    let out = if grouped {
        let mut out: Vec<(Vec<Value>, AggResult)> = groups.into_iter().collect();
        // Deterministic output order for tests and reports.
        out.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        QueryOutput::Grouped(out)
    } else {
        QueryOutput::Scalar(scalar)
    };
    Ok((out, stats))
}

/// BFS ordering of the query's tables such that each table after the first
/// connects by FK to an earlier one — the "listed order" a query executes in
/// unless a [`JoinOrder`] says otherwise.
pub fn plan_order(db: &Database, tables: &[TableId]) -> Result<Vec<TableId>, StorageError> {
    let mut order = vec![tables[0]];
    let mut remaining: Vec<TableId> = tables[1..].to_vec();
    while !remaining.is_empty() {
        let pos = remaining
            .iter()
            .position(|&t| order.iter().any(|&u| db.edge_between(u, t).is_some()))
            .ok_or_else(|| {
                StorageError::DisconnectedJoin(format!("cannot order tables {tables:?}"))
            })?;
        order.push(remaining.remove(pos));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::test_fixtures::paper_customer_order;
    use crate::{Aggregate, CmpOp, ColumnRef, PredOp, Query};

    fn ids(db: &Database) -> (TableId, TableId) {
        (
            db.table_id("customer").unwrap(),
            db.table_id("orders").unwrap(),
        )
    }

    #[test]
    fn paper_query_q1_count_european_customers() {
        let db = paper_customer_order();
        let (c, _) = ids(&db);
        let q = Query::count(vec![c]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        assert_eq!(execute(&db, &q).unwrap().scalar().count, 2);
    }

    #[test]
    fn paper_query_q2_join_count() {
        let db = paper_customer_order();
        let (c, o) = ids(&db);
        // European customers with online orders: only customer 1 / order 1.
        let q = Query::count(vec![c, o])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        assert_eq!(execute(&db, &q).unwrap().scalar().count, 1);
    }

    #[test]
    fn join_without_predicates_counts_all_pairs() {
        let db = paper_customer_order();
        let (c, o) = ids(&db);
        let q = Query::count(vec![c, o]);
        assert_eq!(execute(&db, &q).unwrap().scalar().count, 4);
        // Order of tables in FROM must not matter.
        let q2 = Query::count(vec![o, c]);
        assert_eq!(execute(&db, &q2).unwrap().scalar().count, 4);
    }

    #[test]
    fn paper_query_q3_avg_age_of_europeans() {
        let db = paper_customer_order();
        let (c, _) = ids(&db);
        let q = Query::count(vec![c])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .aggregate(Aggregate::Avg(ColumnRef {
                table: c,
                column: 1,
            }));
        let out = execute(&db, &q).unwrap().scalar();
        assert_eq!(out.avg(), Some(35.0)); // (20 + 50) / 2, paper §4.2
    }

    #[test]
    fn avg_over_join_weights_by_orders() {
        let db = paper_customer_order();
        let (c, o) = ids(&db);
        // Joined AVG(c_age): customers 1 and 3 contribute twice each.
        let q = Query::count(vec![c, o]).aggregate(Aggregate::Avg(ColumnRef {
            table: c,
            column: 1,
        }));
        let out = execute(&db, &q).unwrap().scalar();
        assert_eq!(out.avg(), Some((20.0 * 2.0 + 80.0 * 2.0) / 4.0));
    }

    #[test]
    fn group_by_region() {
        let db = paper_customer_order();
        let (c, _) = ids(&db);
        let q = Query::count(vec![c]).group(c, 2);
        let out = execute(&db, &q).unwrap();
        let groups = out.groups();
        assert_eq!(groups.len(), 2);
        let total: u64 = groups.iter().map(|(_, a)| a.count).sum();
        assert_eq!(total, 3);
        assert_eq!(out.scalar().count, 3);
    }

    #[test]
    fn sum_ignores_nulls() {
        let mut db = Database::new("t");
        db.create_table(
            crate::TableSchema::new("x")
                .pk("id")
                .nullable_col("v", crate::Domain::Continuous),
        )
        .unwrap();
        db.insert("x", &[Value::Int(1), Value::Float(2.0)]).unwrap();
        db.insert("x", &[Value::Int(2), Value::Null]).unwrap();
        let x = db.table_id("x").unwrap();
        let q = Query::count(vec![x]).aggregate(Aggregate::Sum(ColumnRef {
            table: x,
            column: 1,
        }));
        let out = execute(&db, &q).unwrap().scalar();
        assert_eq!(out.sum, 2.0);
        assert_eq!(out.count, 2);
        assert_eq!(out.non_null, 1);
    }

    #[test]
    fn prebuilt_indexes_give_same_answer() {
        let db = paper_customer_order();
        let (c, o) = ids(&db);
        let idx = Indexes::build(&db);
        let q = Query::count(vec![c, o]).filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)));
        let a = execute(&db, &q).unwrap();
        let b = execute_with_indexes(&db, &q, Some(&idx)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.scalar().count, 2);
    }

    /// The documented `QueryOutput::scalar` contract: summing grouped output
    /// component-wise (NULL groups included) reproduces the ungrouped query.
    #[test]
    fn scalar_contract_grouped_sum_equals_ungrouped() {
        let mut db = Database::new("t");
        db.create_table(
            crate::TableSchema::new("x")
                .pk("id")
                .nullable_col("g", crate::Domain::categorical(["A", "B"]))
                .nullable_col("v", crate::Domain::Continuous),
        )
        .unwrap();
        for (id, g, v) in [
            (1, Value::Int(0), Value::Float(1.5)),
            (2, Value::Int(0), Value::Null),
            (3, Value::Int(1), Value::Float(2.5)),
            (4, Value::Null, Value::Float(4.0)),
            (5, Value::Null, Value::Null),
        ] {
            db.insert("x", &[Value::Int(id), g, v]).unwrap();
        }
        let x = db.table_id("x").unwrap();
        let agg = Aggregate::Sum(ColumnRef {
            table: x,
            column: 2,
        });
        let grouped = execute(&db, &Query::count(vec![x]).aggregate(agg).group(x, 1)).unwrap();
        let ungrouped = execute(&db, &Query::count(vec![x]).aggregate(agg)).unwrap();
        // NULL group must be present — three groups: A, B, NULL.
        assert_eq!(grouped.groups().len(), 3);
        let (s, u) = (grouped.scalar(), ungrouped.scalar());
        assert_eq!(s.count, u.count);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, u.sum);
        assert_eq!(s.sum, 8.0);
        assert_eq!(s.non_null, u.non_null);
        assert_eq!(s.non_null, 3);
        // Row-weighted AVG, not the mean of group means.
        assert_eq!(s.avg(), u.avg());
    }

    #[test]
    fn count_monotone_under_conjunction() {
        let db = paper_customer_order();
        let (c, o) = ids(&db);
        let base = Query::count(vec![c, o]);
        let narrowed =
            Query::count(vec![c, o]).filter(c, 1, PredOp::Cmp(CmpOp::Lt, Value::Int(50)));
        let a = execute(&db, &base).unwrap().scalar().count;
        let b = execute(&db, &narrowed).unwrap().scalar().count;
        assert!(b <= a);
    }
}
