//! Query representation: joins (implicit along FKs), predicates, aggregates.

use crate::{ColId, Database, PredOp, Predicate, StorageError, TableId};

/// A column reference inside a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    pub table: TableId,
    pub column: ColId,
}

/// The aggregate a query computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*)`.
    CountStar,
    /// `SUM(col)` (NULLs ignored).
    Sum(ColumnRef),
    /// `AVG(col)` (NULLs ignored).
    Avg(ColumnRef),
}

/// An aggregate query over an inner equi-join of `tables` along foreign keys,
/// with a conjunction of filter `predicates` and optional `group_by` columns.
///
/// This is the query class the paper supports (§4): joins are implicit — the
/// listed tables must form a connected subtree of the database's FK graph.
#[derive(Debug, Clone)]
pub struct Query {
    pub tables: Vec<TableId>,
    pub predicates: Vec<Predicate>,
    pub aggregate: Aggregate,
    pub group_by: Vec<ColumnRef>,
}

impl Query {
    /// `SELECT COUNT(*) FROM tables WHERE …` — the cardinality-estimation
    /// query shape.
    pub fn count(tables: Vec<TableId>) -> Self {
        Self {
            tables,
            predicates: Vec::new(),
            aggregate: Aggregate::CountStar,
            group_by: Vec::new(),
        }
    }

    /// Add a predicate (builder style).
    pub fn filter(mut self, table: TableId, column: ColId, op: PredOp) -> Self {
        self.predicates.push(Predicate::new(table, column, op));
        self
    }

    /// Set the aggregate (builder style).
    pub fn aggregate(mut self, agg: Aggregate) -> Self {
        self.aggregate = agg;
        self
    }

    /// Add a group-by column (builder style).
    pub fn group(mut self, table: TableId, column: ColId) -> Self {
        self.group_by.push(ColumnRef { table, column });
        self
    }

    /// Predicates restricted to one table.
    pub fn predicates_on(&self, table: TableId) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(move |p| p.table == table)
    }

    /// Column the aggregate reads, if any.
    pub fn aggregate_input(&self) -> Option<ColumnRef> {
        match self.aggregate {
            Aggregate::CountStar => None,
            Aggregate::Sum(c) | Aggregate::Avg(c) => Some(c),
        }
    }

    /// Validate that all referenced tables/columns exist and that the join is
    /// a connected subtree of the FK graph.
    pub fn validate(&self, db: &Database) -> Result<(), StorageError> {
        if self.tables.is_empty() {
            return Err(StorageError::InvalidQuery("query has no tables".into()));
        }
        for &t in &self.tables {
            if t >= db.n_tables() {
                return Err(StorageError::UnknownTable(format!("table id {t}")));
            }
        }
        for p in &self.predicates {
            if !self.tables.contains(&p.table) {
                return Err(StorageError::InvalidQuery(format!(
                    "predicate on table {} not in FROM list",
                    p.table
                )));
            }
            if p.column >= db.table(p.table).schema().n_columns() {
                return Err(StorageError::UnknownColumn {
                    table: db.table(p.table).schema().name().to_string(),
                    column: format!("id {}", p.column),
                });
            }
        }
        if let Some(c) = self.aggregate_input() {
            if !self.tables.contains(&c.table) {
                return Err(StorageError::InvalidQuery(
                    "aggregate input table not in FROM list".into(),
                ));
            }
        }
        // Connectivity check via BFS over FK edges restricted to the tables.
        let mut seen = vec![false; self.tables.len()];
        seen[0] = true;
        let mut frontier = vec![self.tables[0]];
        while let Some(t) = frontier.pop() {
            for (i, &u) in self.tables.iter().enumerate() {
                if !seen[i] && db.edge_between(t, u).is_some() {
                    seen[i] = true;
                    frontier.push(u);
                }
            }
        }
        if seen.iter().all(|&s| s) {
            Ok(())
        } else {
            Err(StorageError::DisconnectedJoin(format!(
                "tables {:?} are not connected by foreign keys",
                self.tables
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::test_fixtures::paper_customer_order;
    use crate::{CmpOp, Value};

    #[test]
    fn builder_and_validation() {
        let db = paper_customer_order();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        q.validate(&db).unwrap();
        assert_eq!(q.predicates_on(c).count(), 1);
        assert_eq!(q.predicates_on(o).count(), 0);
    }

    #[test]
    fn disconnected_join_rejected() {
        let mut db = paper_customer_order();
        let island = db
            .create_table(crate::TableSchema::new("island").pk("id"))
            .unwrap();
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c, island]);
        assert!(matches!(
            q.validate(&db),
            Err(StorageError::DisconnectedJoin(_))
        ));
    }

    #[test]
    fn predicate_outside_from_rejected() {
        let db = paper_customer_order();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c]).filter(o, 2, PredOp::IsNull);
        assert!(q.validate(&db).is_err());
    }

    #[test]
    fn aggregate_input_extraction() {
        let db = paper_customer_order();
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).aggregate(Aggregate::Avg(ColumnRef {
            table: c,
            column: 1,
        }));
        assert_eq!(
            q.aggregate_input(),
            Some(ColumnRef {
                table: c,
                column: 1
            })
        );
        q.validate(&db).unwrap();
    }
}
