//! The catalog: tables plus foreign-key relationships.

use std::collections::HashMap;

use crate::{ColId, ForeignKey, StorageError, Table, TableId, TableSchema, Value};

/// A database: named tables and the foreign keys connecting them.
///
/// The foreign keys form the *join graph* DeepDB reasons over. All joins in
/// queries and in RSPN training are along these edges.
#[derive(Debug, Clone)]
pub struct Database {
    name: String,
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    foreign_keys: Vec<ForeignKey>,
}

impl Database {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tables: Vec::new(),
            by_name: HashMap::new(),
            foreign_keys: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register a new (empty) table. Returns its id.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<TableId, StorageError> {
        if self.by_name.contains_key(schema.name()) {
            return Err(StorageError::InvalidQuery(format!(
                "table `{}` already exists",
                schema.name()
            )));
        }
        let id = self.tables.len();
        self.by_name.insert(schema.name().to_string(), id);
        self.tables.push(Table::new(schema));
        Ok(id)
    }

    /// Declare `child.child_col → parent.pk`. The parent column must be the
    /// parent table's primary key.
    pub fn add_foreign_key(
        &mut self,
        child: &str,
        child_col: &str,
        parent: &str,
    ) -> Result<(), StorageError> {
        let child_table = self.table_id(child)?;
        let parent_table = self.table_id(parent)?;
        let child_col = self.tables[child_table]
            .schema()
            .column_id(child_col)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: child.to_string(),
                column: child_col.to_string(),
            })?;
        let parent_col = self.tables[parent_table]
            .schema()
            .primary_key()
            .ok_or_else(|| {
                StorageError::InvalidForeignKey(format!("parent `{parent}` has no primary key"))
            })?;
        self.foreign_keys.push(ForeignKey {
            child_table,
            child_col,
            parent_table,
            parent_col,
        });
        Ok(())
    }

    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id]
    }

    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id]
    }

    /// Resolve a table name.
    pub fn table_id(&self, name: &str) -> Result<TableId, StorageError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Resolve `table.column` names to ids.
    pub fn column_id(&self, table: &str, column: &str) -> Result<(TableId, ColId), StorageError> {
        let tid = self.table_id(table)?;
        let cid = self.tables[tid].schema().column_id(column).ok_or_else(|| {
            StorageError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            }
        })?;
        Ok((tid, cid))
    }

    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Foreign keys touching table `t`.
    pub fn foreign_keys_of(&self, t: TableId) -> impl Iterator<Item = &ForeignKey> {
        self.foreign_keys.iter().filter(move |fk| fk.touches(t))
    }

    /// The unique FK edge between two tables, if any.
    pub fn edge_between(&self, a: TableId, b: TableId) -> Option<&ForeignKey> {
        self.foreign_keys
            .iter()
            .find(|fk| fk.touches(a) && fk.touches(b) && a != b)
    }

    /// Tuple factor `F_{parent←child}`: for every row of the FK's parent
    /// table, the number of child rows referencing it.
    ///
    /// Recomputed on each call; callers that need it repeatedly should cache
    /// (the RSPN ensembles do).
    pub fn tuple_factors(&self, fk: &ForeignKey) -> Vec<u32> {
        let parent = &self.tables[fk.parent_table];
        let child = &self.tables[fk.child_table];
        let pk_col = parent.column(fk.parent_col);
        let mut by_key: HashMap<i64, u32> = HashMap::with_capacity(parent.n_rows());
        for r in 0..parent.n_rows() {
            if let Some(k) = pk_col.i64_at(r) {
                by_key.insert(k, r as u32);
            }
        }
        let mut factors = vec![0u32; parent.n_rows()];
        let fk_col = child.column(fk.child_col);
        for r in 0..child.n_rows() {
            if let Some(k) = fk_col.i64_at(r) {
                if let Some(&pr) = by_key.get(&k) {
                    factors[pr as usize] += 1;
                }
            }
        }
        factors
    }

    /// Check referential integrity of every foreign key (used by tests and
    /// dataset generators).
    pub fn validate_integrity(&self) -> Result<(), StorageError> {
        for fk in &self.foreign_keys {
            let parent = &self.tables[fk.parent_table];
            let child = &self.tables[fk.child_table];
            let mut keys = std::collections::HashSet::with_capacity(parent.n_rows());
            let pk_col = parent.column(fk.parent_col);
            for r in 0..parent.n_rows() {
                if let Some(k) = pk_col.i64_at(r) {
                    if !keys.insert(k) {
                        return Err(StorageError::InvalidForeignKey(format!(
                            "duplicate primary key {k} in `{}`",
                            parent.schema().name()
                        )));
                    }
                }
            }
            let fk_col = child.column(fk.child_col);
            for r in 0..child.n_rows() {
                match fk_col.i64_at(r) {
                    Some(k) if keys.contains(&k) => {}
                    Some(k) => {
                        return Err(StorageError::InvalidForeignKey(format!(
                            "`{}` row {r} references missing `{}` key {k}",
                            child.schema().name(),
                            parent.schema().name()
                        )))
                    }
                    None => {
                        return Err(StorageError::InvalidForeignKey(format!(
                            "`{}` row {r} has NULL foreign key",
                            child.schema().name()
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    /// Insert a row by table name (convenience for update workloads).
    pub fn insert(&mut self, table: &str, values: &[Value]) -> Result<(), StorageError> {
        let tid = self.table_id(table)?;
        self.tables[tid].push_row(values)
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::n_rows).sum()
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;
    use crate::Domain;

    /// The paper's running example (Figure 5): customers and orders.
    ///
    /// Customer 1 (age 20, EUROPE) has orders 1 (ONLINE) and 2 (STORE);
    /// customer 2 (age 50, EUROPE) has none; customer 3 (age 80, ASIA) has
    /// orders 3 (ONLINE) and 4 (STORE).
    pub fn paper_customer_order() -> Database {
        let mut db = Database::new("paper");
        db.create_table(
            TableSchema::new("customer")
                .pk("c_id")
                .col("c_age", Domain::Discrete)
                .col("c_region", Domain::categorical(["EUROPE", "ASIA"])),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("orders")
                .pk("o_id")
                .col("c_id", Domain::Key)
                .col("o_channel", Domain::categorical(["ONLINE", "STORE"])),
        )
        .unwrap();
        db.add_foreign_key("orders", "c_id", "customer").unwrap();
        let rows = [(1, 20, 0), (2, 50, 0), (3, 80, 1)];
        for (id, age, region) in rows {
            db.insert(
                "customer",
                &[Value::Int(id), Value::Int(age), Value::Int(region)],
            )
            .unwrap();
        }
        let orders = [(1, 1, 0), (2, 1, 1), (3, 3, 0), (4, 3, 1)];
        for (id, cid, channel) in orders {
            db.insert(
                "orders",
                &[Value::Int(id), Value::Int(cid), Value::Int(channel)],
            )
            .unwrap();
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::paper_customer_order;
    use super::*;

    #[test]
    fn catalog_round_trip() {
        let db = paper_customer_order();
        assert_eq!(db.n_tables(), 2);
        let cid = db.table_id("customer").unwrap();
        assert_eq!(db.table(cid).n_rows(), 3);
        assert!(db.table_id("nope").is_err());
        let (t, c) = db.column_id("orders", "o_channel").unwrap();
        assert_eq!(db.table(t).schema().column(c).name, "o_channel");
    }

    #[test]
    fn tuple_factors_match_paper_example() {
        let db = paper_customer_order();
        let fk = db.foreign_keys()[0];
        // Paper Figure 5a: F_{C←O} = [2, 0, 2].
        assert_eq!(db.tuple_factors(&fk), vec![2, 0, 2]);
    }

    #[test]
    fn integrity_validation_passes_then_fails() {
        let mut db = paper_customer_order();
        db.validate_integrity().unwrap();
        // Order referencing a missing customer breaks integrity.
        db.insert("orders", &[Value::Int(5), Value::Int(99), Value::Int(0)])
            .unwrap();
        assert!(db.validate_integrity().is_err());
    }

    #[test]
    fn edge_between_finds_fk() {
        let db = paper_customer_order();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let fk = db.edge_between(c, o).unwrap();
        assert_eq!(fk.parent_table, c);
        assert_eq!(fk.child_table, o);
        assert!(db.edge_between(c, c).is_none());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = Database::new("x");
        db.create_table(TableSchema::new("t").pk("id")).unwrap();
        assert!(db.create_table(TableSchema::new("t").pk("id")).is_err());
    }
}
