//! Filter predicates with SQL three-valued logic.

use std::cmp::Ordering;

use crate::{ColId, TableId, Value};

/// Comparison operators supported in filter predicates (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// The operation part of a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum PredOp {
    /// `col op constant`.
    Cmp(CmpOp, Value),
    /// `col IN (v1, v2, …)`.
    In(Vec<Value>),
    /// `col BETWEEN lo AND hi` (inclusive).
    Between(Value, Value),
    /// `col IS NULL`.
    IsNull,
    /// `col IS NOT NULL`.
    IsNotNull,
}

/// A predicate bound to a specific table column.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    pub table: TableId,
    pub column: ColId,
    pub op: PredOp,
}

impl Predicate {
    pub fn new(table: TableId, column: ColId, op: PredOp) -> Self {
        Self { table, column, op }
    }

    /// Evaluate against a value using SQL three-valued logic: `None` means
    /// *unknown* (a comparison against NULL), which conjunctive filters treat
    /// as not-satisfied.
    pub fn eval(&self, v: &Value) -> Option<bool> {
        self.op.eval(v)
    }

    /// True iff the row value passes (unknown ⇒ false, as in a WHERE clause).
    pub fn passes(&self, v: &Value) -> bool {
        self.eval(v).unwrap_or(false)
    }
}

impl PredOp {
    /// Three-valued evaluation.
    pub fn eval(&self, v: &Value) -> Option<bool> {
        match self {
            PredOp::IsNull => Some(v.is_null()),
            PredOp::IsNotNull => Some(!v.is_null()),
            PredOp::Cmp(op, c) => {
                let ord = v.sql_cmp(c)?;
                Some(match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                })
            }
            PredOp::In(values) => {
                if v.is_null() {
                    return None;
                }
                for c in values {
                    if v.sql_eq(c) == Some(true) {
                        return Some(true);
                    }
                }
                // SQL: x IN (…, NULL) is unknown when no match and a NULL is
                // present in the list.
                if values.iter().any(Value::is_null) {
                    None
                } else {
                    Some(false)
                }
            }
            PredOp::Between(lo, hi) => {
                let a = v.sql_cmp(lo)?;
                let b = v.sql_cmp(hi)?;
                Some(a != Ordering::Less && b != Ordering::Greater)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(op: PredOp) -> Predicate {
        Predicate::new(0, 0, op)
    }

    #[test]
    fn comparisons() {
        let ge = p(PredOp::Cmp(CmpOp::Ge, Value::Int(10)));
        assert!(ge.passes(&Value::Int(10)));
        assert!(ge.passes(&Value::Float(10.5)));
        assert!(!ge.passes(&Value::Int(9)));
    }

    #[test]
    fn null_comparisons_are_unknown() {
        let ne = p(PredOp::Cmp(CmpOp::Ne, Value::Int(1)));
        assert_eq!(ne.eval(&Value::Null), None);
        assert!(!ne.passes(&Value::Null), "unknown must filter the row out");
        let eq = p(PredOp::Cmp(CmpOp::Eq, Value::Null));
        assert_eq!(eq.eval(&Value::Int(1)), None);
    }

    #[test]
    fn is_null_predicates() {
        assert!(p(PredOp::IsNull).passes(&Value::Null));
        assert!(!p(PredOp::IsNull).passes(&Value::Int(0)));
        assert!(p(PredOp::IsNotNull).passes(&Value::Int(0)));
    }

    #[test]
    fn in_list_semantics() {
        let inlist = p(PredOp::In(vec![Value::Int(20), Value::Int(30)]));
        assert!(inlist.passes(&Value::Int(20)));
        assert!(!inlist.passes(&Value::Int(25)));
        assert_eq!(inlist.eval(&Value::Null), None);
        let with_null = p(PredOp::In(vec![Value::Int(1), Value::Null]));
        assert_eq!(
            with_null.eval(&Value::Int(2)),
            None,
            "no match + NULL in list = unknown"
        );
        assert_eq!(with_null.eval(&Value::Int(1)), Some(true));
    }

    #[test]
    fn between_is_inclusive() {
        let b = p(PredOp::Between(Value::Int(10), Value::Int(20)));
        assert!(b.passes(&Value::Int(10)));
        assert!(b.passes(&Value::Int(20)));
        assert!(!b.passes(&Value::Int(21)));
        assert_eq!(b.eval(&Value::Null), None);
    }
}
