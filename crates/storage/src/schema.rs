//! Table schemas, column domains, and foreign-key metadata.

use crate::{ColId, ColType, TableId};

/// Statistical domain of a column — how learners should treat its values.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// Surrogate key (primary or foreign). Not modeled by RSPNs.
    Key,
    /// Dictionary-encoded categorical; codes are `0..labels.len()`.
    Categorical { labels: Vec<String> },
    /// Integer-valued attribute with meaningful order (e.g. a year).
    Discrete,
    /// Real-valued attribute.
    Continuous,
}

impl Domain {
    /// Convenience constructor for categorical columns.
    pub fn categorical<S: Into<String>>(labels: impl IntoIterator<Item = S>) -> Self {
        Domain::Categorical {
            labels: labels.into_iter().map(Into::into).collect(),
        }
    }

    /// Physical type implied by the domain.
    pub fn col_type(&self) -> ColType {
        match self {
            Domain::Key | Domain::Categorical { .. } | Domain::Discrete => ColType::Int,
            Domain::Continuous => ColType::Float,
        }
    }

    /// True for domains an RSPN should model (i.e. everything except keys).
    pub fn is_modelled(&self) -> bool {
        !matches!(self, Domain::Key)
    }

    /// True if values are inherently discrete (exact-match histograms).
    pub fn is_discrete(&self) -> bool {
        !matches!(self, Domain::Continuous)
    }
}

/// Definition of one column.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    pub name: String,
    pub domain: Domain,
    pub nullable: bool,
}

/// Schema of a table: named columns plus an optional integer primary key.
#[derive(Debug, Clone)]
pub struct TableSchema {
    name: String,
    columns: Vec<ColumnDef>,
    primary_key: Option<ColId>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            columns: Vec::new(),
            primary_key: None,
        }
    }

    /// Add an integer primary-key column (non-null, `Domain::Key`).
    pub fn pk(mut self, name: impl Into<String>) -> Self {
        assert!(
            self.primary_key.is_none(),
            "table already has a primary key"
        );
        self.primary_key = Some(self.columns.len());
        self.columns.push(ColumnDef {
            name: name.into(),
            domain: Domain::Key,
            nullable: false,
        });
        self
    }

    /// Add a non-null column.
    pub fn col(mut self, name: impl Into<String>, domain: Domain) -> Self {
        self.columns.push(ColumnDef {
            name: name.into(),
            domain,
            nullable: false,
        });
        self
    }

    /// Add a nullable column.
    pub fn nullable_col(mut self, name: impl Into<String>, domain: Domain) -> Self {
        self.columns.push(ColumnDef {
            name: name.into(),
            domain,
            nullable: true,
        });
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    pub fn column(&self, id: ColId) -> &ColumnDef {
        &self.columns[id]
    }

    pub fn primary_key(&self) -> Option<ColId> {
        self.primary_key
    }

    /// Find a column id by name.
    pub fn column_id(&self, name: &str) -> Option<ColId> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }
}

/// A foreign-key relationship: `child.child_col` references `parent.parent_col`
/// (the parent's primary key). The parent is the "one" side, the child the
/// "many" side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ForeignKey {
    pub child_table: TableId,
    pub child_col: ColId,
    pub parent_table: TableId,
    pub parent_col: ColId,
}

impl ForeignKey {
    /// The table on the other end of the relationship.
    pub fn other(&self, t: TableId) -> TableId {
        if t == self.child_table {
            self.parent_table
        } else {
            self.child_table
        }
    }

    /// True if this edge touches table `t`.
    pub fn touches(&self, t: TableId) -> bool {
        t == self.child_table || t == self.parent_table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_ids_in_order() {
        let s = TableSchema::new("customer")
            .pk("c_id")
            .col("c_age", Domain::Discrete)
            .nullable_col("c_region", Domain::categorical(["EUROPE", "ASIA"]));
        assert_eq!(s.primary_key(), Some(0));
        assert_eq!(s.column_id("c_age"), Some(1));
        assert_eq!(s.column_id("c_region"), Some(2));
        assert!(s.column(2).nullable);
        assert_eq!(s.column(1).domain.col_type(), ColType::Int);
    }

    #[test]
    fn key_columns_are_not_modelled() {
        assert!(!Domain::Key.is_modelled());
        assert!(Domain::Discrete.is_modelled());
        assert!(Domain::Continuous.is_modelled());
        assert!(!Domain::Continuous.is_discrete());
    }

    #[test]
    #[should_panic(expected = "already has a primary key")]
    fn double_pk_panics() {
        let _ = TableSchema::new("t").pk("a").pk("b");
    }

    #[test]
    fn fk_other_side() {
        let fk = ForeignKey {
            child_table: 1,
            child_col: 0,
            parent_table: 0,
            parent_col: 0,
        };
        assert_eq!(fk.other(1), 0);
        assert_eq!(fk.other(0), 1);
        assert!(fk.touches(0) && fk.touches(1) && !fk.touches(2));
    }
}
