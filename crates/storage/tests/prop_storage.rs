//! Property tests for the storage substrate: the executor and the
//! full-outer-join counter are checked against brute-force oracles on
//! randomized small databases.

use deepdb_storage::{
    execute, CmpOp, Database, Domain, JoinTree, PredOp, Predicate, Query, TableSchema, Value,
};
use proptest::prelude::*;

/// Build a random customer/orders database from generated rows.
/// `customers[i] = (age, region)`, `orders[j] = (customer_index, channel)`.
fn build_db(customers: &[(i64, i64)], orders: &[(usize, i64)]) -> Database {
    let mut db = Database::new("prop");
    db.create_table(
        TableSchema::new("customer")
            .pk("id")
            .col("age", Domain::Discrete)
            .col("region", Domain::Discrete),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("orders")
            .pk("id")
            .col("cid", Domain::Key)
            .col("channel", Domain::Discrete),
    )
    .unwrap();
    db.add_foreign_key("orders", "cid", "customer").unwrap();
    for (i, &(age, region)) in customers.iter().enumerate() {
        db.insert(
            "customer",
            &[
                Value::Int(i as i64 + 1),
                Value::Int(age),
                Value::Int(region),
            ],
        )
        .unwrap();
    }
    for (j, &(ci, channel)) in orders.iter().enumerate() {
        let cid = (ci % customers.len()) as i64 + 1;
        db.insert(
            "orders",
            &[
                Value::Int(j as i64 + 1),
                Value::Int(cid),
                Value::Int(channel),
            ],
        )
        .unwrap();
    }
    db
}

/// Brute-force nested-loop COUNT of the inner join with predicates.
fn brute_force_count(
    customers: &[(i64, i64)],
    orders: &[(usize, i64)],
    age_min: i64,
    region: Option<i64>,
    channel: Option<i64>,
) -> u64 {
    let mut count = 0;
    for (j, &(ci, ch)) in orders.iter().enumerate() {
        let _ = j;
        let (age, reg) = customers[ci % customers.len()];
        if age >= age_min && region.is_none_or(|r| reg == r) && channel.is_none_or(|c| ch == c) {
            count += 1;
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Executor equals the nested-loop oracle for arbitrary join queries.
    #[test]
    fn executor_matches_nested_loop(
        customers in prop::collection::vec((18i64..80, 0i64..3), 1..30),
        orders in prop::collection::vec((0usize..30, 0i64..2), 0..60),
        age_min in 18i64..80,
        region in prop::option::of(0i64..3),
        channel in prop::option::of(0i64..2),
    ) {
        let db = build_db(&customers, &orders);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let mut q = Query::count(vec![c, o])
            .filter(c, 1, PredOp::Cmp(CmpOp::Ge, Value::Int(age_min)));
        if let Some(r) = region {
            q = q.filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(r)));
        }
        if let Some(ch) = channel {
            q = q.filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(ch)));
        }
        let got = execute(&db, &q).unwrap().scalar().count;
        let want = brute_force_count(&customers, &orders, age_min, region, channel);
        prop_assert_eq!(got, want);
    }

    /// The full-outer-join count equals the brute-force formula
    /// Σ_customers max(#orders, 1) for a two-table FK tree.
    #[test]
    fn join_tree_count_matches_formula(
        customers in prop::collection::vec((18i64..80, 0i64..3), 1..25),
        orders in prop::collection::vec((0usize..25, 0i64..2), 0..50),
    ) {
        let db = build_db(&customers, &orders);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let mut per_customer = vec![0u64; customers.len()];
        for &(ci, _) in &orders {
            per_customer[ci % customers.len()] += 1;
        }
        let expected: u64 = per_customer.iter().map(|&f| f.max(1)).sum();
        let tree = JoinTree::new(&db, &[c, o]).unwrap();
        prop_assert_eq!(tree.full_count(), expected);
        // Root choice must not matter.
        let tree2 = JoinTree::new(&db, &[o, c]).unwrap();
        prop_assert_eq!(tree2.full_count(), expected);
    }

    /// Join-sample tuple factors always satisfy F' = max(F, 1) and the
    /// indicator columns are consistent with NULL padding.
    #[test]
    fn join_sample_invariants(
        customers in prop::collection::vec((18i64..80, 0i64..3), 1..15),
        orders in prop::collection::vec((0usize..15, 0i64..2), 0..30),
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let db = build_db(&customers, &orders);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let tree = JoinTree::new(&db, &[c, o]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sample = tree.sample(&db, 200, &mut rng);
        let n_c = sample.column_index("N:customer").unwrap();
        let n_o = sample.column_index("N:orders").unwrap();
        let f = sample.column_index("F:customer<-orders").unwrap();
        let age = sample.column_index("customer.age").unwrap();
        for i in 0..sample.n_samples {
            prop_assert!(sample.data[f][i] >= 1.0, "clamped factor below 1");
            // A row has at least one side present.
            prop_assert!(sample.data[n_c][i] == 1.0 || sample.data[n_o][i] == 1.0);
            // Present customer ⇒ data column non-NULL; absent ⇒ NULL.
            prop_assert_eq!(sample.data[n_c][i] == 1.0, sample.data[age][i].is_finite());
        }
    }

    /// Three-valued logic: no comparison predicate ever passes a NULL.
    #[test]
    fn null_never_passes_comparisons(v in -100i64..100) {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let p = Predicate::new(0, 0, PredOp::Cmp(op, Value::Int(v)));
            prop_assert!(!p.passes(&Value::Null));
        }
        let inp = Predicate::new(0, 0, PredOp::In(vec![Value::Int(v)]));
        prop_assert!(!inp.passes(&Value::Null));
        let btw = Predicate::new(0, 0, PredOp::Between(Value::Int(v), Value::Int(v + 10)));
        prop_assert!(!btw.passes(&Value::Null));
    }

    /// GROUP BY partitions: per-group counts sum to the ungrouped count.
    #[test]
    fn group_by_partitions_count(
        customers in prop::collection::vec((18i64..80, 0i64..4), 1..25),
        orders in prop::collection::vec((0usize..25, 0i64..2), 1..50),
    ) {
        let db = build_db(&customers, &orders);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let flat = execute(&db, &Query::count(vec![c, o])).unwrap().scalar().count;
        let grouped = execute(&db, &Query::count(vec![c, o]).group(c, 2)).unwrap();
        let sum: u64 = grouped.groups().iter().map(|(_, a)| a.count).sum();
        prop_assert_eq!(flat, sum);
    }
}
