//! Split helpers for the update experiments (paper Table 2): learn the
//! ensemble on part of IMDb, then stream the held-out tuples through the
//! RSPN update path.

use deepdb_storage::{Database, TableId, Value};

use crate::imdb;
use crate::workload::{Scale, Xor64};

/// A pending insert: (table id, row values). Ordered so that parents precede
/// their children (referential integrity is preserved at every prefix).
pub type InsertStream = Vec<(TableId, Vec<Value>)>;

/// Split the synthetic IMDb so that a random `held_out` fraction of titles
/// (with all their children) is returned as an insert stream.
pub fn split_imdb_random(scale: Scale, held_out: f64, seed: u64) -> (Database, InsertStream) {
    let full = imdb::generate(scale);
    let mut rng = Xor64::new(seed ^ 0x0DD5);
    split(full, |_, _| rng.f64() < held_out)
}

/// Split the synthetic IMDb temporally: every title with
/// `production_year >= cutoff` is held out. Returns the held-out share too.
pub fn split_imdb_temporal(scale: Scale, cutoff_year: i64) -> (Database, InsertStream, f64) {
    let full = imdb::generate(scale);
    let titles = full.table(full.table_id("title").expect("imdb")).n_rows();
    let (db, stream) = split(full, |_, year| year >= cutoff_year);
    let held = stream
        .iter()
        .filter(|(t, _)| *t == db.table_id("title").expect("imdb"))
        .count();
    let share = held as f64 / titles as f64;
    (db, stream, share)
}

/// The production-year cutoff that holds out approximately `fraction` of
/// titles (mirrors the paper's "< 2011 (4.7%)" style splits).
pub fn cutoff_for_fraction(scale: Scale, fraction: f64) -> i64 {
    let full = imdb::generate(scale);
    let t = full.table(full.table_id("title").expect("imdb"));
    let mut years: Vec<i64> = (0..t.n_rows())
        .filter_map(|r| t.column(2).i64_at(r))
        .collect();
    years.sort_unstable();
    let idx = ((1.0 - fraction) * years.len() as f64) as usize;
    years[idx.min(years.len() - 1)]
}

/// Partition a generated IMDb by a title predicate `(title_id, year) →
/// held_out`.
fn split(full: Database, mut hold: impl FnMut(i64, i64) -> bool) -> (Database, InsertStream) {
    let title_tid = full.table_id("title").expect("imdb");
    let title = full.table(title_tid);
    let mut held: std::collections::HashSet<i64> = std::collections::HashSet::new();
    for r in 0..title.n_rows() {
        let id = title.column(0).i64_at(r).expect("pk");
        let year = title.column(2).i64_at(r).expect("year");
        if hold(id, year) {
            held.insert(id);
        }
    }

    let mut db = imdb::schema();
    let mut stream: InsertStream = Vec::new();
    // Titles first (parents), preserving id order for determinism.
    for r in 0..title.n_rows() {
        let values = title.row_values(r);
        let id = values[0].as_i64().expect("pk");
        if held.contains(&id) {
            stream.push((title_tid, values));
        } else {
            db.insert("title", &values).expect("row");
        }
    }
    // Children follow their movie_id.
    for name in &imdb::TABLES[1..] {
        let tid = full.table_id(name).expect("imdb");
        let table = full.table(tid);
        for r in 0..table.n_rows() {
            let values = table.row_values(r);
            let movie = values[1].as_i64().expect("fk");
            if held.contains(&movie) {
                stream.push((tid, values));
            } else {
                db.insert(name, &values).expect("row");
            }
        }
    }
    // Order the stream so parents precede children: stable partition by
    // table id (title first) keeps integrity at each prefix because children
    // only reference held-out titles.
    stream.sort_by_key(|(t, _)| *t);
    (db, stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: Scale = Scale {
        factor: 0.02,
        seed: 13,
    };

    #[test]
    fn random_split_preserves_integrity_at_every_prefix() {
        let (mut db, stream) = split_imdb_random(SCALE, 0.2, 1);
        db.validate_integrity().unwrap();
        assert!(!stream.is_empty());
        // Replaying the full stream restores the complete database.
        let full = imdb::generate(SCALE);
        for (t, values) in &stream {
            db.table_mut(*t).push_row(values).unwrap();
        }
        db.validate_integrity().unwrap();
        for t in 0..db.n_tables() {
            assert_eq!(db.table(t).n_rows(), full.table(t).n_rows(), "table {t}");
        }
    }

    #[test]
    fn temporal_split_holds_out_recent_titles() {
        let cutoff = cutoff_for_fraction(SCALE, 0.2);
        let (db, stream, share) = split_imdb_temporal(SCALE, cutoff);
        assert!((share - 0.2).abs() < 0.05, "held-out share {share}");
        let title = db.table(db.table_id("title").unwrap());
        for r in 0..title.n_rows() {
            assert!(title.column(2).i64_at(r).unwrap() < cutoff);
        }
        let tid = db.table_id("title").unwrap();
        for (t, values) in &stream {
            if *t == tid {
                assert!(values[2].as_i64().unwrap() >= cutoff);
            }
        }
    }

    #[test]
    fn held_out_fraction_tracks_request() {
        for frac in [0.05, 0.4] {
            let (_, stream) = split_imdb_random(SCALE, frac, 2);
            let full = imdb::generate(SCALE);
            let total: usize = (0..full.n_tables()).map(|t| full.table(t).n_rows()).sum();
            let got = stream.len() as f64 / total as f64;
            assert!((got - frac).abs() < 0.1, "requested {frac}, got {got}");
        }
    }
}
