//! Shared workload types and scaling knobs.

use deepdb_storage::{execute_with_indexes, Database, Indexes, Query};

/// A named benchmark query.
#[derive(Debug, Clone)]
pub struct NamedQuery {
    /// Identifier as reported in the paper (e.g. `"S1.1"`, `"F2.3"`).
    pub name: String,
    pub query: Query,
}

impl NamedQuery {
    pub fn new(name: impl Into<String>, query: Query) -> Self {
        Self {
            name: name.into(),
            query,
        }
    }
}

/// Dataset scale configuration, read from `DEEPDB_SCALE` (a multiplier on
/// the default row counts) and `DEEPDB_SEED`.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier on default base-table row counts.
    pub factor: f64,
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            factor: 1.0,
            seed: 42,
        }
    }
}

impl Scale {
    /// Read from the environment (`DEEPDB_SCALE`, `DEEPDB_SEED`), with
    /// defaults suitable for a laptop run.
    pub fn from_env() -> Self {
        let factor = std::env::var("DEEPDB_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|v| *v > 0.0)
            .unwrap_or(1.0);
        let seed = std::env::var("DEEPDB_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(42);
        Self { factor, seed }
    }

    /// Apply the factor to a default row count (min 10 rows).
    pub fn rows(&self, default_rows: usize) -> usize {
        ((default_rows as f64 * self.factor) as usize).max(10)
    }
}

/// True cardinalities of a workload, computed with the ground-truth
/// executor. Queries with zero true cardinality are reported as 1 (q-error
/// convention used by the paper's tooling).
///
/// One set of [`Indexes`] is built up front and shared by every query —
/// workloads repeat the same FK join steps, so rebuilding hash indexes per
/// query would dominate the sweep.
pub fn ground_truth_cardinalities(db: &Database, workload: &[NamedQuery]) -> Vec<f64> {
    let idx = Indexes::build(db);
    workload
        .iter()
        .map(|nq| {
            let out = execute_with_indexes(db, &nq.query, Some(&idx))
                .expect("workload queries are valid");
            (out.scalar().count as f64).max(1.0)
        })
        .collect()
}

/// The imdb workload registry: every named workload the benchmarks and the
/// join-order experiments draw from, deterministic in `seed`.
pub fn imdb_workloads(db: &Database, seed: u64) -> Vec<(&'static str, Vec<NamedQuery>)> {
    vec![
        ("job_light", crate::joblight::job_light(db, seed)),
        ("job_multi", crate::joblight::job_multi(db, seed)),
    ]
}

/// Deterministic xorshift helper shared by the generators.
#[derive(Debug, Clone)]
pub struct Xor64 {
    state: u64,
}

impl Xor64 {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    /// Uniform f64 in [0, 1).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        (self.f64() * n as f64) as usize % n.max(1)
    }

    /// Approximately normal via sum of uniforms (Irwin–Hall, k=12).
    pub fn gaussian(&mut self, mean: f64, std: f64) -> f64 {
        let s: f64 = (0..12).map(|_| self.f64()).sum::<f64>() - 6.0;
        mean + std * s
    }

    /// Zipf-ish rank in [0, n) with exponent ~1 (skewed categorical draws).
    pub fn zipf(&mut self, n: usize) -> usize {
        let u = self.f64().max(1e-12);
        let r = ((n as f64).powf(u) - 1.0) as usize;
        r.min(n.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_rows_applies_factor() {
        let s = Scale {
            factor: 0.5,
            seed: 1,
        };
        assert_eq!(s.rows(1000), 500);
        assert_eq!(s.rows(4), 10, "floor at 10 rows");
    }

    #[test]
    fn xor64_is_deterministic_and_in_range() {
        let mut a = Xor64::new(9);
        let mut b = Xor64::new(9);
        for _ in 0..100 {
            let x = a.f64();
            assert_eq!(x, b.f64());
            assert!((0.0..1.0).contains(&x));
        }
        for _ in 0..100 {
            assert!(a.below(7) < 7);
            let z = a.zipf(50);
            assert!(z < 50);
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = Xor64::new(3);
        let n = 10_000;
        let low = (0..n).filter(|_| rng.zipf(100) < 10).count();
        assert!(
            low > n / 3,
            "zipf should concentrate mass on low ranks: {low}"
        );
    }
}
