//! JOB-light-style workloads over the synthetic IMDb (paper §6.1).
//!
//! * [`job_light`] — 70 queries mirroring the benchmark's structure: joins
//!   of `title` with 1–4 FK children and 1–4 filter predicates drawn from
//!   the columns the real JOB-light touches (`production_year`, `kind_id`,
//!   `role_id`, `info_type_id`, `company_type_id`, `keyword_id`).
//! * [`synthetic`] — the generalization workload of Figures 1 and 7:
//!   queries with a chosen number of joined tables (4–6) and predicates
//!   (1–5), uniformly sampled.
//! * [`job_multi`] — JOB-style 4–6-table multi-join templates whose FROM
//!   lists deliberately lead with a large unfiltered child, so the listed
//!   (BFS) scan order is a bad plan and cardinality-driven join ordering
//!   has room to matter.

use deepdb_storage::{CmpOp, Database, PredOp, Query, TableId, Value};

use crate::imdb;
use crate::workload::{NamedQuery, Xor64};

/// Resolve the six JOB-light table ids.
fn tables(db: &Database) -> [TableId; 6] {
    let mut out = [0; 6];
    for (i, name) in imdb::TABLES.iter().enumerate() {
        out[i] = db.table_id(name).expect("imdb schema");
    }
    out
}

/// A random predicate on one of the workload columns of `table`.
fn random_predicate(db: &Database, rng: &mut Xor64, q: Query, table_name: &str) -> Query {
    let t = db.table_id(table_name).expect("imdb schema");
    match table_name {
        "title" => match rng.below(3) {
            0 => {
                let y = 1930 + rng.below(90) as i64;
                let op = if rng.f64() < 0.5 {
                    PredOp::Cmp(CmpOp::Gt, Value::Int(y))
                } else {
                    PredOp::Cmp(CmpOp::Le, Value::Int(y))
                };
                q.filter(t, 2, op)
            }
            1 => q.filter(
                t,
                1,
                PredOp::Cmp(
                    CmpOp::Eq,
                    Value::Int(rng.below(imdb::N_KINDS as usize) as i64),
                ),
            ),
            _ => {
                let lo = 1935 + rng.below(60) as i64;
                q.filter(
                    t,
                    2,
                    PredOp::Between(Value::Int(lo), Value::Int(lo + 5 + rng.below(20) as i64)),
                )
            }
        },
        "cast_info" => q.filter(
            t,
            2,
            PredOp::Cmp(
                CmpOp::Eq,
                Value::Int(1 + rng.zipf((imdb::N_ROLES - 1) as usize) as i64),
            ),
        ),
        "movie_info" | "movie_info_idx" => {
            let v = rng.zipf(imdb::N_INFO_TYPES as usize) as i64;
            let op = if rng.f64() < 0.7 {
                PredOp::Cmp(CmpOp::Eq, Value::Int(v))
            } else {
                PredOp::Cmp(CmpOp::Gt, Value::Int(v))
            };
            q.filter(t, 2, op)
        }
        "movie_keyword" => {
            let v = rng.zipf(imdb::N_KEYWORDS as usize) as i64;
            q.filter(t, 2, PredOp::Cmp(CmpOp::Lt, Value::Int(v.max(1))))
        }
        "movie_companies" => {
            if rng.f64() < 0.5 {
                q.filter(
                    t,
                    3,
                    PredOp::Cmp(CmpOp::Eq, Value::Int(rng.below(2) as i64)),
                )
            } else {
                q.filter(
                    t,
                    2,
                    PredOp::Cmp(
                        CmpOp::Lt,
                        Value::Int(1 + rng.zipf(imdb::N_COMPANIES as usize) as i64),
                    ),
                )
            }
        }
        other => panic!("unknown table {other}"),
    }
}

/// Build a query joining `title` with `n_children` children and carrying
/// `n_preds` predicates (at least one on `title`).
fn build_query(db: &Database, rng: &mut Xor64, n_children: usize, n_preds: usize) -> Query {
    let ids = tables(db);
    let mut children: Vec<usize> = (1..6).collect();
    // Fisher-Yates shuffle.
    for i in (1..children.len()).rev() {
        let j = rng.below(i + 1);
        children.swap(i, j);
    }
    let chosen: Vec<usize> = children.into_iter().take(n_children).collect();
    let mut q_tables = vec![ids[0]];
    q_tables.extend(chosen.iter().map(|&c| ids[c]));
    let mut q = Query::count(q_tables);
    // Predicates: first on title, the rest spread over the joined tables.
    q = random_predicate(db, rng, q, "title");
    for k in 1..n_preds {
        let pick = chosen[k % chosen.len()];
        q = random_predicate(db, rng, q, imdb::TABLES[pick]);
    }
    q
}

/// The 70-query JOB-light-style benchmark (2–5 joined tables, 1–4
/// predicates), deterministic in `seed`.
pub fn job_light(db: &Database, seed: u64) -> Vec<NamedQuery> {
    let mut rng = Xor64::new(seed ^ 0x10B);
    let mut out = Vec::with_capacity(70);
    for i in 0..70 {
        // Join-size mix of the real benchmark: mostly 2-4 tables.
        let n_children = match i % 7 {
            0 | 1 => 1,
            2..=4 => 2,
            5 => 3,
            _ => 4,
        };
        let n_preds = 1 + rng.below(4).min(n_children + 1);
        let q = build_query(db, &mut rng, n_children, n_preds);
        out.push(NamedQuery::new(format!("jl_{:02}", i + 1), q));
    }
    out
}

/// JOB-style multi-join templates: 18 queries of 4–6 tables over the imdb
/// FK star, deterministic in `seed`.
///
/// The FROM lists are written the way the real JOB queries are — the big
/// fact-like child (`cast_info`) first — so the listed (BFS) order streams
/// the largest unfiltered table and the join-order optimizer has something
/// to win. Every query carries a narrow `production_year` window on `title`
/// (rotated through the middle of the FROM list) plus one or two child
/// predicates, none of them on the first-listed table.
pub fn job_multi(db: &Database, seed: u64) -> Vec<NamedQuery> {
    let mut rng = Xor64::new(seed ^ 0x30B_00F);
    let ids = tables(db);
    let mut out = Vec::with_capacity(18);
    for i in 0..18usize {
        let n_children = 3 + i % 3; // 3..=5 children → 4–6 tables
                                    // Always lead with cast_info (the biggest child); shuffle the rest.
        let mut rest: Vec<usize> = (2..6).collect();
        for k in (1..rest.len()).rev() {
            let j = rng.below(k + 1);
            rest.swap(k, j);
        }
        let chosen: Vec<usize> = rest.into_iter().take(n_children - 1).collect();
        let mut from = vec![ids[1]];
        from.extend(chosen.iter().map(|&c| ids[c]));
        // Rotate title through positions 1..=n_children — never first, so
        // the BFS listed order must start at the unfiltered lead child.
        from.insert(1 + i % n_children, ids[0]);
        let lo = 1935 + rng.below(55) as i64;
        let mut q = Query::count(from).filter(
            ids[0],
            2,
            PredOp::Between(Value::Int(lo), Value::Int(lo + 4)),
        );
        for k in 0..=(i % 2) {
            q = random_predicate(db, &mut rng, q, imdb::TABLES[chosen[k % chosen.len()]]);
        }
        out.push(NamedQuery::new(format!("jm_{:02}", i + 1), q));
    }
    out
}

/// The synthetic generalization workload (Figures 1 and 7): `per_cell`
/// queries for every (join size, predicate count) combination requested.
pub fn synthetic(
    db: &Database,
    join_sizes: &[usize],
    pred_counts: &[usize],
    per_cell: usize,
    seed: u64,
) -> Vec<NamedQuery> {
    let mut rng = Xor64::new(seed ^ 0x5F7);
    let mut out = Vec::new();
    for &tables in join_sizes {
        for &preds in pred_counts {
            for k in 0..per_cell {
                let q = build_query(db, &mut rng, tables - 1, preds);
                out.push(NamedQuery::new(format!("syn_t{tables}_p{preds}_{k}"), q));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ground_truth_cardinalities, Scale};

    fn db() -> Database {
        crate::imdb::generate(Scale {
            factor: 0.03,
            seed: 11,
        })
    }

    #[test]
    fn job_light_is_70_valid_queries() {
        let db = db();
        let wl = job_light(&db, 1);
        assert_eq!(wl.len(), 70);
        for nq in &wl {
            nq.query
                .validate(&db)
                .unwrap_or_else(|e| panic!("{}: {e}", nq.name));
            assert!(!nq.query.predicates.is_empty());
            assert!(nq.query.tables.len() >= 2 && nq.query.tables.len() <= 5);
        }
    }

    #[test]
    fn synthetic_grid_has_requested_shape() {
        let db = db();
        let wl = synthetic(&db, &[4, 5, 6], &[1, 2, 3, 4, 5], 2, 3);
        assert_eq!(wl.len(), 3 * 5 * 2);
        for nq in &wl {
            nq.query.validate(&db).unwrap();
        }
        let six: Vec<_> = wl.iter().filter(|n| n.name.starts_with("syn_t6")).collect();
        assert!(six.iter().all(|n| n.query.tables.len() == 6));
    }

    #[test]
    fn ground_truths_are_mostly_nontrivial() {
        let db = db();
        let wl = job_light(&db, 1);
        let truths = ground_truth_cardinalities(&db, &wl);
        let nontrivial = truths.iter().filter(|&&t| t > 1.0).count();
        assert!(
            nontrivial > 40,
            "only {nontrivial}/70 queries have nonzero results"
        );
    }

    #[test]
    fn job_multi_shapes_penalize_listed_order() {
        let db = db();
        let wl = job_multi(&db, 5);
        assert_eq!(wl.len(), 18);
        let title = db.table_id("title").unwrap();
        let cast = db.table_id("cast_info").unwrap();
        let mut sizes = [0usize; 3];
        for nq in &wl {
            nq.query
                .validate(&db)
                .unwrap_or_else(|e| panic!("{}: {e}", nq.name));
            let n = nq.query.tables.len();
            assert!((4..=6).contains(&n), "{}: {n} tables", nq.name);
            sizes[n - 4] += 1;
            // The decoy lead: cast_info first, unfiltered, never title.
            assert_eq!(nq.query.tables[0], cast, "{}", nq.name);
            assert_ne!(nq.query.tables[0], title);
            assert_eq!(nq.query.predicates_on(cast).count(), 0, "{}", nq.name);
            // Selectivity lives elsewhere: title always filtered.
            assert!(nq.query.predicates_on(title).count() >= 1, "{}", nq.name);
        }
        assert!(
            sizes.iter().all(|&c| c == 6),
            "even 4/5/6-table mix: {sizes:?}"
        );
    }

    #[test]
    fn job_multi_is_deterministic() {
        let db = db();
        let a = job_multi(&db, 13);
        let b = job_multi(&db, 13);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.query.tables, y.query.tables);
            assert_eq!(
                format!("{:?}", x.query.predicates),
                format!("{:?}", y.query.predicates)
            );
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let db = db();
        let a = job_light(&db, 9);
        let b = job_light(&db, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.query.tables, y.query.tables);
            assert_eq!(
                format!("{:?}", x.query.predicates),
                format!("{:?}", y.query.predicates)
            );
        }
    }
}
