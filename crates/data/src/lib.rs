//! Synthetic datasets and workloads for the DeepDB evaluation.
//!
//! The paper evaluates on the real IMDb database (JOB-light), the Star
//! Schema Benchmark at SF 500, and a Kaggle flight-delays dataset scaled to
//! 10⁹ rows with IDEBench. None of those artifacts are available offline, so
//! this crate generates structurally faithful substitutes (see DESIGN.md §4):
//! the exact schemas and query shapes, with injected skew and cross-table
//! correlations that exercise the same estimator failure modes, at
//! laptop-friendly scales controlled by [`Scale`].
//!
//! * [`imdb`] — JOB-light schema (`title` + 5 FK children) and generator.
//! * [`joblight`] — the 70-query JOB-light-style workload plus the synthetic
//!   4–6-join / 1–5-predicate generalization workload (Figures 1 and 7).
//! * [`ssb`] — Star Schema Benchmark generator and queries S1.1–S4.3.
//! * [`flights`] — Flights generator and queries F1.1–F5.2.
//! * [`updates`] — random/temporal split helpers for the update experiments
//!   (Table 2).

pub mod flights;
pub mod imdb;
pub mod joblight;
pub mod ssb;
pub mod updates;
mod workload;

pub use workload::{ground_truth_cardinalities, imdb_workloads, NamedQuery, Scale, Xor64};
