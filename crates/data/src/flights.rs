//! Flights dataset generator and queries F1.1–F5.2 (paper §6.2, §6.3).
//!
//! Substitutes the Kaggle flight-delays dataset (scaled to 10⁹ rows via
//! IDEBench in the paper) with a single-table generator that reproduces the
//! relationships the experiments rely on:
//!
//! * `air_time ≈ distance / speed + noise` (strong continuous correlation,
//!   the regression target of Figure 13);
//! * `arr_delay ≈ dep_delay + noise` (delay propagation);
//! * `dep_delay` has an airline- and month-dependent heavy tail;
//! * `taxi_out`/`taxi_in` depend on the origin/destination airport;
//! * the query set F1.1–F5.2 descends in selectivity from ≈5 % to ≈0.01 %
//!   with a mix of COUNT/AVG/SUM and group-bys, and F5.2 is the difference
//!   of two SUM aggregates (the confidence-interval failure case of
//!   Figure 11).

use deepdb_storage::{Aggregate, ColumnRef, Database, Domain, PredOp, Query, TableSchema, Value};

use crate::workload::{NamedQuery, Scale, Xor64};
use deepdb_storage::CmpOp;

pub const N_AIRLINES: usize = 14;
pub const N_AIRPORTS: usize = 30;
pub const YEARS: (i64, i64) = (2015, 2019);

/// Default row count at scale 1.0.
pub const DEFAULT_FLIGHTS: usize = 300_000;

/// Column indices in the `flights` table (after the PK).
pub mod cols {
    pub const YEAR: usize = 1;
    pub const MONTH: usize = 2;
    pub const DAY_OF_WEEK: usize = 3;
    pub const AIRLINE: usize = 4;
    pub const ORIGIN: usize = 5;
    pub const DEST: usize = 6;
    pub const DISTANCE: usize = 7;
    pub const AIR_TIME: usize = 8;
    pub const DEP_DELAY: usize = 9;
    pub const ARR_DELAY: usize = 10;
    pub const TAXI_OUT: usize = 11;
    pub const TAXI_IN: usize = 12;
}

/// Build the schema.
pub fn schema() -> Database {
    let mut db = Database::new("flights");
    db.create_table(
        TableSchema::new("flights")
            .pk("id")
            .col("year", Domain::Discrete)
            .col("month", Domain::Discrete)
            .col("day_of_week", Domain::Discrete)
            .col("airline", Domain::Discrete)
            .col("origin", Domain::Discrete)
            .col("dest", Domain::Discrete)
            .col("distance", Domain::Continuous)
            .col("air_time", Domain::Continuous)
            .col("dep_delay", Domain::Continuous)
            .nullable_col("arr_delay", Domain::Continuous)
            .col("taxi_out", Domain::Continuous)
            .col("taxi_in", Domain::Continuous),
    )
    .expect("fresh catalog");
    db
}

/// Generate the dataset.
pub fn generate(scale: Scale) -> Database {
    let mut db = schema();
    let n = scale.rows(DEFAULT_FLIGHTS);
    let mut rng = Xor64::new(scale.seed ^ 0xF11);

    // Fixed route distances (origin, dest) → base distance.
    let mut route_dist = vec![0.0f64; N_AIRPORTS * N_AIRPORTS];
    for v in route_dist.iter_mut() {
        *v = 150.0 + rng.f64() * 2400.0;
    }
    // Airport congestion factors for taxi times.
    let congestion: Vec<f64> = (0..N_AIRPORTS).map(|_| 0.5 + rng.f64() * 1.8).collect();

    for id in 1..=n as i64 {
        let year = YEARS.0 + rng.below((YEARS.1 - YEARS.0 + 1) as usize) as i64;
        let month = 1 + rng.below(12) as i64;
        let dow = 1 + rng.below(7) as i64;
        let airline = rng.zipf(N_AIRLINES) as i64;
        let origin = rng.zipf(N_AIRPORTS) as i64;
        let mut dest = rng.zipf(N_AIRPORTS) as i64;
        if dest == origin {
            dest = (dest + 1) % N_AIRPORTS as i64;
        }
        let distance =
            route_dist[(origin as usize) * N_AIRPORTS + dest as usize] * (0.97 + 0.06 * rng.f64());
        let air_time = distance / 7.8 + rng.gaussian(18.0, 6.0);
        // Heavy-tailed departure delay: airline- and season-dependent.
        let base = 2.0 + airline as f64 * 0.8 + if month == 12 || month == 6 { 6.0 } else { 0.0 };
        let dep_delay = if rng.f64() < 0.62 {
            rng.gaussian(-2.0, 3.5)
        } else {
            base + (-rng.f64().max(1e-12).ln()) * (12.0 + airline as f64)
        };
        // Arrival delay propagates; ~1.5% of flights are cancelled → NULL.
        let arr_delay = if rng.f64() < 0.015 {
            Value::Null
        } else {
            Value::Float(dep_delay + rng.gaussian(-1.5, 9.0))
        };
        let taxi_out = 8.0 + congestion[origin as usize] * 11.0 + rng.gaussian(0.0, 2.5);
        let taxi_in = 3.0 + congestion[dest as usize] * 4.5 + rng.gaussian(0.0, 1.2);
        db.insert(
            "flights",
            &[
                Value::Int(id),
                Value::Int(year),
                Value::Int(month),
                Value::Int(dow),
                Value::Int(airline),
                Value::Int(origin),
                Value::Int(dest),
                Value::Float(distance),
                Value::Float(air_time.max(10.0)),
                Value::Float(dep_delay),
                arr_delay,
                Value::Float(taxi_out.max(1.0)),
                Value::Float(taxi_in.max(1.0)),
            ],
        )
        .expect("row");
    }
    db
}

fn cref(db: &Database, c: usize) -> ColumnRef {
    ColumnRef {
        table: db.table_id("flights").expect("flights"),
        column: c,
    }
}

/// Queries F1.1–F5.1 (11 queries, descending selectivity ≈5 % → ≈0.01 %).
/// F5.2 — the difference of two SUMs — is exposed via [`f52_pair`].
pub fn queries(db: &Database) -> Vec<NamedQuery> {
    use cols::*;
    let f = db.table_id("flights").expect("flights");
    let eq = |c: usize, v: i64| (c, PredOp::Cmp(CmpOp::Eq, Value::Int(v)));
    let q = |preds: Vec<(usize, PredOp)>| {
        let mut q = Query::count(vec![f]);
        for (c, op) in preds {
            q = q.filter(f, c, op);
        }
        q
    };
    vec![
        // F1.x: broad single-attribute filters (≈3–6 %).
        NamedQuery::new("F1.1", q(vec![eq(AIRLINE, 2)])),
        NamedQuery::new(
            "F1.2",
            q(vec![eq(AIRLINE, 2)])
                .aggregate(Aggregate::Avg(cref(db, DEP_DELAY)))
                .group(f, YEAR),
        ),
        // F2.x: two filters (≈0.5–2 %).
        NamedQuery::new(
            "F2.1",
            q(vec![eq(ORIGIN, 3)]).aggregate(Aggregate::Avg(cref(db, ARR_DELAY))),
        ),
        NamedQuery::new("F2.2", q(vec![eq(ORIGIN, 3), eq(MONTH, 6)])),
        NamedQuery::new(
            "F2.3",
            q(vec![eq(AIRLINE, 1), eq(DAY_OF_WEEK, 1)])
                .aggregate(Aggregate::Sum(cref(db, DISTANCE))),
        ),
        // F3.x: (≈0.1–0.6 %).
        NamedQuery::new(
            "F3.1",
            q(vec![eq(ORIGIN, 5), eq(YEAR, 2017)]).aggregate(Aggregate::Avg(cref(db, TAXI_OUT))),
        ),
        NamedQuery::new(
            "F3.2",
            q(vec![eq(ORIGIN, 3), eq(DEST, 7)]).aggregate(Aggregate::Avg(cref(db, ARR_DELAY))),
        ),
        NamedQuery::new("F3.3", q(vec![eq(ORIGIN, 1), eq(DEST, 4), eq(AIRLINE, 0)])),
        // F4.x: (≈0.05–0.3 %), one grouped.
        NamedQuery::new(
            "F4.1",
            q(vec![eq(MONTH, 12), eq(DAY_OF_WEEK, 5)])
                .aggregate(Aggregate::Avg(cref(db, DEP_DELAY)))
                .group(f, AIRLINE),
        ),
        NamedQuery::new(
            "F4.2",
            q(vec![
                eq(YEAR, 2016),
                eq(ORIGIN, 9),
                (MONTH, PredOp::In(vec![Value::Int(1), Value::Int(2)])),
            ])
            .aggregate(Aggregate::Sum(cref(db, DISTANCE))),
        ),
        // F5.1: (≈0.01–0.05 %).
        NamedQuery::new(
            "F5.1",
            q(vec![
                eq(DEST, 11),
                eq(AIRLINE, 3),
                (YEAR, PredOp::Cmp(CmpOp::Ge, Value::Int(2018))),
            ])
            .aggregate(Aggregate::Avg(cref(db, AIR_TIME))),
        ),
    ]
}

/// F5.2: the difference of two SUM aggregates, `SUM(arr_delay) −
/// SUM(dep_delay)` over the same filter. The two summands share correlated
/// attributes, which is exactly the case where the §5.1 independence
/// assumption overestimates the CI (Figure 11's outlier).
pub fn f52_pair(db: &Database) -> (NamedQuery, NamedQuery) {
    use cols::*;
    let f = db.table_id("flights").expect("flights");
    let base = Query::count(vec![f])
        .filter(f, AIRLINE, PredOp::Cmp(CmpOp::Eq, Value::Int(4)))
        .filter(f, MONTH, PredOp::Cmp(CmpOp::Eq, Value::Int(7)));
    (
        NamedQuery::new(
            "F5.2a",
            base.clone().aggregate(Aggregate::Sum(cref(db, ARR_DELAY))),
        ),
        NamedQuery::new("F5.2b", base.aggregate(Aggregate::Sum(cref(db, DEP_DELAY)))),
    )
}

/// The six regression targets of Figure 13 (column indices).
pub fn regression_targets() -> Vec<(&'static str, usize)> {
    use cols::*;
    vec![
        ("Arr. Delay", ARR_DELAY),
        ("Dep. Delay", DEP_DELAY),
        ("Taxi Out", TAXI_OUT),
        ("Taxi In", TAXI_IN),
        ("Air Time", AIR_TIME),
        ("Distance", DISTANCE),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::execute;

    fn tiny() -> Database {
        generate(Scale {
            factor: 0.05,
            seed: 9,
        }) // 15k flights
    }

    #[test]
    fn schema_and_rows() {
        let db = tiny();
        let f = db.table_id("flights").unwrap();
        assert_eq!(db.table(f).n_rows(), 15_000);
    }

    #[test]
    fn air_time_tracks_distance() {
        let db = tiny();
        let t = db.table(db.table_id("flights").unwrap());
        // Pearson correlation between distance and air_time should be high.
        let n = t.n_rows() as f64;
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for r in 0..t.n_rows() {
            let x = t.column(cols::DISTANCE).f64_or_nan(r);
            let y = t.column(cols::AIR_TIME).f64_or_nan(r);
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
        let corr = (n * sxy - sx * sy) / ((n * sxx - sx * sx).sqrt() * (n * syy - sy * sy).sqrt());
        assert!(corr > 0.95, "distance/air_time correlation {corr}");
    }

    #[test]
    fn arr_delay_has_nulls_and_tracks_dep_delay() {
        let db = tiny();
        let t = db.table(db.table_id("flights").unwrap());
        let nulls = (0..t.n_rows())
            .filter(|&r| t.value(r, cols::ARR_DELAY).is_null())
            .count();
        let frac = nulls as f64 / t.n_rows() as f64;
        assert!(frac > 0.005 && frac < 0.04, "cancelled fraction {frac}");
    }

    #[test]
    fn query_selectivity_ladder_descends() {
        let db = tiny();
        let total = db.table(db.table_id("flights").unwrap()).n_rows() as f64;
        let sel = |nq: &NamedQuery| execute(&db, &nq.query).unwrap().scalar().count as f64 / total;
        let qs = queries(&db);
        for nq in &qs {
            nq.query.validate(&db).unwrap();
        }
        let f11 = sel(&qs[0]);
        let f33 = sel(&qs[7]);
        let f51 = sel(&qs[10]);
        assert!(f11 > 0.02, "F1.1 selectivity {f11}");
        assert!(f33 < f11, "ladder should descend");
        assert!(f51 < 0.005, "F5.1 selectivity {f51}");
    }

    #[test]
    fn f52_pair_shares_filters() {
        let db = tiny();
        let (a, b) = f52_pair(&db);
        assert_eq!(
            format!("{:?}", a.query.predicates),
            format!("{:?}", b.query.predicates)
        );
        let ta = execute(&db, &a.query).unwrap().scalar();
        let tb = execute(&db, &b.query).unwrap().scalar();
        assert!(ta.count > 0 && tb.count > 0);
    }
}
