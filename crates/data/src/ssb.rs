//! Star Schema Benchmark (O'Neil et al.) generator and queries S1.1–S4.3
//! (paper §6.2).
//!
//! Dimensions are shrunk proportionally from the SF-500 setup the paper uses
//! (documented in DESIGN.md §4); the 13 standard queries keep their filter
//! structure, group-by columns, and the paper's selectivity ladder
//! (3.42 % → 0.00007 %). Two substitutions, both noted in EXPERIMENTS.md:
//! derived aggregates (`extendedprice*discount`, `revenue-supplycost`) are
//! materialized as generator columns `lo_discounted` and `lo_profit`, since
//! the supported query class aggregates single columns.

use deepdb_storage::{Aggregate, ColumnRef, Database, Domain, PredOp, Query, TableSchema, Value};

use crate::workload::{NamedQuery, Scale, Xor64};
use deepdb_storage::CmpOp;

/// Scaled dimension sizes.
pub const N_REGIONS: i64 = 5;
pub const N_NATIONS: i64 = 10; // 2 per region
pub const N_CITIES: i64 = 30; // 3 per nation
pub const N_MFGRS: i64 = 5;
pub const N_CATEGORIES: i64 = 25; // 5 per mfgr
pub const N_BRANDS: i64 = 125; // 5 per category
pub const YEARS: (i64, i64) = (1992, 1998);

/// Default row counts at scale 1.0.
pub const DEFAULT_CUSTOMERS: usize = 3_000;
pub const DEFAULT_SUPPLIERS: usize = 400;
pub const DEFAULT_PARTS: usize = 2_500;
pub const DEFAULT_LINEORDERS: usize = 400_000;

/// Nation of a city / region of a nation (functional dependencies).
pub fn nation_of_city(city: i64) -> i64 {
    city / 3
}
pub fn region_of_nation(nation: i64) -> i64 {
    nation / 2
}
/// Category of a brand / mfgr of a category.
pub fn category_of_brand(brand: i64) -> i64 {
    brand / 5
}
pub fn mfgr_of_category(category: i64) -> i64 {
    category / 5
}

/// Build the SSB schema.
pub fn schema() -> Database {
    let mut db = Database::new("ssb");
    db.create_table(
        TableSchema::new("customer")
            .pk("c_custkey")
            .col("c_city", Domain::Discrete)
            .col("c_nation", Domain::Discrete)
            .col("c_region", Domain::Discrete)
            .col("c_mktsegment", Domain::Discrete),
    )
    .expect("fresh catalog");
    db.create_table(
        TableSchema::new("supplier")
            .pk("s_suppkey")
            .col("s_city", Domain::Discrete)
            .col("s_nation", Domain::Discrete)
            .col("s_region", Domain::Discrete),
    )
    .expect("fresh catalog");
    db.create_table(
        TableSchema::new("part")
            .pk("p_partkey")
            .col("p_mfgr", Domain::Discrete)
            .col("p_category", Domain::Discrete)
            .col("p_brand1", Domain::Discrete),
    )
    .expect("fresh catalog");
    db.create_table(
        TableSchema::new("date")
            .pk("d_datekey")
            .col("d_year", Domain::Discrete)
            .col("d_yearmonthnum", Domain::Discrete)
            .col("d_weeknuminyear", Domain::Discrete),
    )
    .expect("fresh catalog");
    db.create_table(
        TableSchema::new("lineorder")
            .pk("lo_orderkey")
            .col("lo_custkey", Domain::Key)
            .col("lo_partkey", Domain::Key)
            .col("lo_suppkey", Domain::Key)
            .col("lo_orderdate", Domain::Key)
            .col("lo_quantity", Domain::Discrete)
            .col("lo_discount", Domain::Discrete)
            .col("lo_extendedprice", Domain::Continuous)
            .col("lo_discounted", Domain::Continuous)
            .col("lo_revenue", Domain::Continuous)
            .col("lo_supplycost", Domain::Continuous)
            .col("lo_profit", Domain::Continuous),
    )
    .expect("fresh catalog");
    db.add_foreign_key("lineorder", "lo_custkey", "customer")
        .expect("fk");
    db.add_foreign_key("lineorder", "lo_partkey", "part")
        .expect("fk");
    db.add_foreign_key("lineorder", "lo_suppkey", "supplier")
        .expect("fk");
    db.add_foreign_key("lineorder", "lo_orderdate", "date")
        .expect("fk");
    db
}

/// Generate the database at the given scale.
pub fn generate(scale: Scale) -> Database {
    let mut db = schema();
    let mut rng = Xor64::new(scale.seed ^ 0x55B);

    let n_cust = scale.rows(DEFAULT_CUSTOMERS);
    for k in 1..=n_cust as i64 {
        let city = rng.below(N_CITIES as usize) as i64;
        db.insert(
            "customer",
            &[
                Value::Int(k),
                Value::Int(city),
                Value::Int(nation_of_city(city)),
                Value::Int(region_of_nation(nation_of_city(city))),
                Value::Int(rng.below(5) as i64),
            ],
        )
        .expect("row");
    }
    let n_supp = scale.rows(DEFAULT_SUPPLIERS);
    for k in 1..=n_supp as i64 {
        let city = rng.below(N_CITIES as usize) as i64;
        db.insert(
            "supplier",
            &[
                Value::Int(k),
                Value::Int(city),
                Value::Int(nation_of_city(city)),
                Value::Int(region_of_nation(nation_of_city(city))),
            ],
        )
        .expect("row");
    }
    let n_part = scale.rows(DEFAULT_PARTS);
    for k in 1..=n_part as i64 {
        let brand = rng.zipf(N_BRANDS as usize) as i64;
        db.insert(
            "part",
            &[
                Value::Int(k),
                Value::Int(mfgr_of_category(category_of_brand(brand))),
                Value::Int(category_of_brand(brand)),
                Value::Int(brand),
            ],
        )
        .expect("row");
    }
    // Date dimension: every (year, month, week) day bucket.
    let mut datekeys: Vec<i64> = Vec::new();
    for year in YEARS.0..=YEARS.1 {
        for month in 1..=12i64 {
            for day_bucket in 0..4i64 {
                let key = year * 10_000 + month * 100 + day_bucket;
                let week = ((month - 1) * 4 + day_bucket) % 53 + 1;
                db.insert(
                    "date",
                    &[
                        Value::Int(key),
                        Value::Int(year),
                        Value::Int(year * 100 + month),
                        Value::Int(week),
                    ],
                )
                .expect("row");
                datekeys.push(key);
            }
        }
    }

    let n_lo = scale.rows(DEFAULT_LINEORDERS);
    for k in 1..=n_lo as i64 {
        // Order dates skew toward later years (growth), which correlates
        // revenue with the date dimension.
        let di = (rng.f64().powf(0.7) * datekeys.len() as f64) as usize % datekeys.len();
        let datekey = datekeys[di];
        let custkey = 1 + rng.below(n_cust) as i64;
        let partkey = 1 + rng.zipf(n_part) as i64;
        let suppkey = 1 + rng.below(n_supp) as i64;
        let quantity = 1 + rng.below(50) as i64;
        let discount = rng.below(11) as i64;
        let price = 900.0 + rng.f64() * 10_000.0;
        let extended = price * quantity as f64 / 10.0;
        let discounted = extended * discount as f64 / 100.0;
        let revenue = extended * (1.0 - discount as f64 / 100.0);
        let supplycost = 0.6 * extended * (0.8 + 0.4 * rng.f64());
        db.insert(
            "lineorder",
            &[
                Value::Int(k),
                Value::Int(custkey),
                Value::Int(partkey),
                Value::Int(suppkey),
                Value::Int(datekey),
                Value::Int(quantity),
                Value::Int(discount),
                Value::Float(extended),
                Value::Float(discounted),
                Value::Float(revenue),
                Value::Float(supplycost),
                Value::Float(revenue - supplycost),
            ],
        )
        .expect("row");
    }
    db
}

/// Column helper.
fn col(db: &Database, table: &str, col: &str) -> ColumnRef {
    let (t, c) = db.column_id(table, col).expect("ssb schema");
    ColumnRef {
        table: t,
        column: c,
    }
}

/// The 13 standard SSB queries (S1.1–S4.3), adapted as documented in the
/// module docs. Aggregates use `lo_discounted` (S1.x, for
/// `extendedprice*discount`), `lo_revenue` (S2.x, S3.x), and `lo_profit`
/// (S4.x, for `revenue-supplycost`).
#[allow(clippy::vec_init_then_push)]
pub fn queries(db: &Database) -> Vec<NamedQuery> {
    let lo = db.table_id("lineorder").expect("ssb");
    let c = db.table_id("customer").expect("ssb");
    let s = db.table_id("supplier").expect("ssb");
    let p = db.table_id("part").expect("ssb");
    let d = db.table_id("date").expect("ssb");
    let (d_year, d_ymn, d_week) = (1, 2, 3);
    let (lo_qty, lo_disc) = (5, 6);
    let discounted = col(db, "lineorder", "lo_discounted");
    let revenue = col(db, "lineorder", "lo_revenue");
    let profit = col(db, "lineorder", "lo_profit");

    let mut out = Vec::new();
    // Flight 1: no group-by, discount/quantity + date filters.
    out.push(NamedQuery::new(
        "S1.1",
        Query::count(vec![lo, d])
            .filter(d, d_year, PredOp::Cmp(CmpOp::Eq, Value::Int(1993)))
            .filter(lo, lo_disc, PredOp::Between(Value::Int(1), Value::Int(3)))
            .filter(lo, lo_qty, PredOp::Cmp(CmpOp::Lt, Value::Int(25)))
            .aggregate(Aggregate::Sum(discounted)),
    ));
    out.push(NamedQuery::new(
        "S1.2",
        Query::count(vec![lo, d])
            .filter(d, d_ymn, PredOp::Cmp(CmpOp::Eq, Value::Int(199401)))
            .filter(lo, lo_disc, PredOp::Between(Value::Int(4), Value::Int(6)))
            .filter(lo, lo_qty, PredOp::Between(Value::Int(26), Value::Int(35)))
            .aggregate(Aggregate::Sum(discounted)),
    ));
    out.push(NamedQuery::new(
        "S1.3",
        Query::count(vec![lo, d])
            .filter(d, d_week, PredOp::Cmp(CmpOp::Eq, Value::Int(6)))
            .filter(d, d_year, PredOp::Cmp(CmpOp::Eq, Value::Int(1994)))
            .filter(lo, lo_disc, PredOp::Between(Value::Int(5), Value::Int(7)))
            .filter(lo, lo_qty, PredOp::Between(Value::Int(26), Value::Int(35)))
            .aggregate(Aggregate::Sum(discounted)),
    ));
    // Flight 2: part/supplier filters, group by year × brand.
    out.push(NamedQuery::new(
        "S2.1",
        Query::count(vec![lo, p, s, d])
            .filter(p, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(12)))
            .filter(s, 3, PredOp::Cmp(CmpOp::Eq, Value::Int(1)))
            .aggregate(Aggregate::Sum(revenue))
            .group(d, d_year)
            .group(p, 3),
    ));
    out.push(NamedQuery::new(
        "S2.2",
        Query::count(vec![lo, p, s, d])
            .filter(p, 3, PredOp::Between(Value::Int(60), Value::Int(67)))
            .filter(s, 3, PredOp::Cmp(CmpOp::Eq, Value::Int(2)))
            .aggregate(Aggregate::Sum(revenue))
            .group(d, d_year)
            .group(p, 3),
    ));
    out.push(NamedQuery::new(
        "S2.3",
        Query::count(vec![lo, p, s, d])
            .filter(p, 3, PredOp::Cmp(CmpOp::Eq, Value::Int(30)))
            .filter(s, 3, PredOp::Cmp(CmpOp::Eq, Value::Int(3)))
            .aggregate(Aggregate::Sum(revenue))
            .group(d, d_year)
            .group(p, 3),
    ));
    // Flight 3: customer × supplier geography over time.
    out.push(NamedQuery::new(
        "S3.1",
        Query::count(vec![lo, c, s, d])
            .filter(c, 3, PredOp::Cmp(CmpOp::Eq, Value::Int(2)))
            .filter(s, 3, PredOp::Cmp(CmpOp::Eq, Value::Int(2)))
            .filter(
                d,
                d_year,
                PredOp::Between(Value::Int(1992), Value::Int(1997)),
            )
            .aggregate(Aggregate::Sum(revenue))
            .group(c, 2)
            .group(s, 2)
            .group(d, d_year),
    ));
    out.push(NamedQuery::new(
        "S3.2",
        Query::count(vec![lo, c, s, d])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(4)))
            .filter(s, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(4)))
            .filter(
                d,
                d_year,
                PredOp::Between(Value::Int(1992), Value::Int(1997)),
            )
            .aggregate(Aggregate::Sum(revenue))
            .group(c, 1)
            .group(s, 1)
            .group(d, d_year),
    ));
    out.push(NamedQuery::new(
        "S3.3",
        Query::count(vec![lo, c, s, d])
            .filter(c, 1, PredOp::In(vec![Value::Int(12), Value::Int(13)]))
            .filter(s, 1, PredOp::In(vec![Value::Int(12), Value::Int(13)]))
            .filter(
                d,
                d_year,
                PredOp::Between(Value::Int(1992), Value::Int(1997)),
            )
            .aggregate(Aggregate::Sum(revenue))
            .group(c, 1)
            .group(s, 1)
            .group(d, d_year),
    ));
    out.push(NamedQuery::new(
        "S3.4",
        Query::count(vec![lo, c, s, d])
            .filter(c, 1, PredOp::In(vec![Value::Int(12), Value::Int(13)]))
            .filter(s, 1, PredOp::In(vec![Value::Int(12), Value::Int(13)]))
            .filter(d, d_ymn, PredOp::Cmp(CmpOp::Eq, Value::Int(199712)))
            .aggregate(Aggregate::Sum(revenue))
            .group(c, 1)
            .group(s, 1)
            .group(d, d_year),
    ));
    // Flight 4: profit queries.
    out.push(NamedQuery::new(
        "S4.1",
        Query::count(vec![lo, c, s, p, d])
            .filter(c, 3, PredOp::Cmp(CmpOp::Eq, Value::Int(1)))
            .filter(s, 3, PredOp::Cmp(CmpOp::Eq, Value::Int(1)))
            .filter(p, 1, PredOp::In(vec![Value::Int(0), Value::Int(1)]))
            .aggregate(Aggregate::Sum(profit))
            .group(d, d_year)
            .group(c, 2),
    ));
    out.push(NamedQuery::new(
        "S4.2",
        Query::count(vec![lo, c, s, p, d])
            .filter(c, 3, PredOp::Cmp(CmpOp::Eq, Value::Int(1)))
            .filter(s, 3, PredOp::Cmp(CmpOp::Eq, Value::Int(1)))
            .filter(p, 1, PredOp::In(vec![Value::Int(0), Value::Int(1)]))
            .filter(
                d,
                d_year,
                PredOp::In(vec![Value::Int(1997), Value::Int(1998)]),
            )
            .aggregate(Aggregate::Sum(profit))
            .group(d, d_year)
            .group(s, 2)
            .group(p, 2),
    ));
    out.push(NamedQuery::new(
        "S4.3",
        Query::count(vec![lo, c, s, p, d])
            .filter(c, 3, PredOp::Cmp(CmpOp::Eq, Value::Int(1)))
            .filter(s, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(3)))
            .filter(p, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(7)))
            .filter(
                d,
                d_year,
                PredOp::In(vec![Value::Int(1997), Value::Int(1998)]),
            )
            .aggregate(Aggregate::Sum(profit))
            .group(d, d_year)
            .group(s, 1)
            .group(p, 3),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::execute;

    fn tiny() -> Database {
        generate(Scale {
            factor: 0.02,
            seed: 3,
        }) // 8k lineorders
    }

    #[test]
    fn integrity_and_fds_hold() {
        let db = tiny();
        db.validate_integrity().unwrap();
        // city → nation → region functional dependencies.
        let c = db.table(db.table_id("customer").unwrap());
        for r in 0..c.n_rows() {
            let city = c.column(1).i64_at(r).unwrap();
            let nation = c.column(2).i64_at(r).unwrap();
            let region = c.column(3).i64_at(r).unwrap();
            assert_eq!(nation, nation_of_city(city));
            assert_eq!(region, region_of_nation(nation));
        }
        // brand → category → mfgr.
        let p = db.table(db.table_id("part").unwrap());
        for r in 0..p.n_rows() {
            let brand = p.column(3).i64_at(r).unwrap();
            assert_eq!(p.column(2).i64_at(r).unwrap(), category_of_brand(brand));
            assert_eq!(
                p.column(1).i64_at(r).unwrap(),
                mfgr_of_category(category_of_brand(brand))
            );
        }
    }

    #[test]
    fn queries_validate_and_have_selectivity_ladder() {
        let db = tiny();
        let qs = queries(&db);
        assert_eq!(qs.len(), 13);
        let total = db.table(db.table_id("lineorder").unwrap()).n_rows() as f64;
        let mut sels = Vec::new();
        for nq in &qs {
            nq.query
                .validate(&db)
                .unwrap_or_else(|e| panic!("{}: {e}", nq.name));
            let count = execute(&db, &nq.query).unwrap().scalar().count as f64;
            sels.push((nq.name.clone(), count / total));
        }
        // S1.1 is the most selective flight-1 query at a few percent.
        let s11 = sels[0].1;
        assert!(s11 > 0.005 && s11 < 0.2, "S1.1 selectivity {s11}");
        // The ladder descends: S3.4 must be (near-)empty at tiny scale.
        let s34 = sels[9].1;
        assert!(s34 < 0.001, "S3.4 selectivity {s34}");
    }

    #[test]
    fn lineorder_profit_is_consistent() {
        let db = tiny();
        let lo = db.table(db.table_id("lineorder").unwrap());
        for r in (0..lo.n_rows()).step_by(97) {
            let rev = lo.column(9).f64_or_nan(r);
            let cost = lo.column(10).f64_or_nan(r);
            let profit = lo.column(11).f64_or_nan(r);
            assert!((profit - (rev - cost)).abs() < 1e-9);
        }
    }

    #[test]
    fn grouped_query_executes_with_groups() {
        let db = tiny();
        let qs = queries(&db);
        let out = execute(&db, &qs[3].query).unwrap(); // S2.1
        assert!(!out.groups().is_empty(), "S2.1 should produce groups");
    }
}
