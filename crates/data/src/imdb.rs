//! Synthetic IMDb with the JOB-light schema (paper §6.1).
//!
//! Schema (exactly the six JOB-light tables; attribute domains shrunk to
//! laptop scale, documented in DESIGN.md §4):
//!
//! ```text
//! title(id, kind_id, production_year, season_nr?)
//!   ← cast_info(id, movie_id, role_id)
//!   ← movie_info(id, movie_id, info_type_id)
//!   ← movie_info_idx(id, movie_id, info_type_id)
//!   ← movie_keyword(id, movie_id, keyword_id)
//!   ← movie_companies(id, movie_id, company_id, company_type_id)
//! ```
//!
//! Injected structure the estimators must capture:
//! * `kind_id` ↔ `production_year`: TV kinds dominate recent years;
//! * fan-outs grow with `production_year` (recent titles have more cast,
//!   info, and keyword rows) — the cross-table correlation that breaks
//!   independence-assuming estimators on joins;
//! * `role_id` depends on `kind_id`; `info_type_id` is Zipf-skewed and
//!   kind-dependent; `company_id`/`keyword_id` are Zipf-skewed;
//! * `season_nr` is NULL for non-TV kinds (NULL-handling exercise).

use deepdb_storage::{Database, Domain, TableSchema, Value};

use crate::workload::{Scale, Xor64};

/// Number of `kind_id` values (movie, tv_movie, tv_series, episode, video,
/// short, documentary).
pub const N_KINDS: i64 = 7;
/// `role_id` domain size (as in IMDb's role_type).
pub const N_ROLES: i64 = 11;
/// `info_type_id` domain size (shrunk from IMDb's 113).
pub const N_INFO_TYPES: i64 = 40;
/// Distinct keywords (shrunk, Zipf-distributed).
pub const N_KEYWORDS: i64 = 500;
/// Distinct companies (shrunk, Zipf-distributed).
pub const N_COMPANIES: i64 = 300;
/// Company types (production / distribution).
pub const N_COMPANY_TYPES: i64 = 2;
/// Production year range.
pub const YEAR_RANGE: (i64, i64) = (1930, 2019);

/// Default number of titles at scale 1.0.
pub const DEFAULT_TITLES: usize = 30_000;

/// Table names in creation order.
pub const TABLES: [&str; 6] = [
    "title",
    "cast_info",
    "movie_info",
    "movie_info_idx",
    "movie_keyword",
    "movie_companies",
];

/// Build the schema (empty tables + foreign keys).
pub fn schema() -> Database {
    let mut db = Database::new("imdb_synth");
    db.create_table(
        TableSchema::new("title")
            .pk("id")
            .col("kind_id", Domain::Discrete)
            .col("production_year", Domain::Discrete)
            .nullable_col("season_nr", Domain::Discrete),
    )
    .expect("fresh catalog");
    db.create_table(
        TableSchema::new("cast_info")
            .pk("id")
            .col("movie_id", Domain::Key)
            .col("role_id", Domain::Discrete),
    )
    .expect("fresh catalog");
    db.create_table(
        TableSchema::new("movie_info")
            .pk("id")
            .col("movie_id", Domain::Key)
            .col("info_type_id", Domain::Discrete),
    )
    .expect("fresh catalog");
    db.create_table(
        TableSchema::new("movie_info_idx")
            .pk("id")
            .col("movie_id", Domain::Key)
            .col("info_type_id", Domain::Discrete),
    )
    .expect("fresh catalog");
    db.create_table(
        TableSchema::new("movie_keyword")
            .pk("id")
            .col("movie_id", Domain::Key)
            .col("keyword_id", Domain::Discrete),
    )
    .expect("fresh catalog");
    db.create_table(
        TableSchema::new("movie_companies")
            .pk("id")
            .col("movie_id", Domain::Key)
            .col("company_id", Domain::Discrete)
            .col("company_type_id", Domain::Discrete),
    )
    .expect("fresh catalog");
    for child in &TABLES[1..] {
        db.add_foreign_key(child, "movie_id", "title")
            .expect("valid fk");
    }
    db
}

/// Generate the full database at the given scale.
pub fn generate(scale: Scale) -> Database {
    let mut db = schema();
    let n_titles = scale.rows(DEFAULT_TITLES);
    let mut rng = Xor64::new(scale.seed ^ 0x1BDB);
    let mut ids = ChildIds::default();
    for title_id in 1..=n_titles as i64 {
        generate_title(&mut db, &mut rng, &mut ids, title_id, None);
    }
    db
}

/// Per-child-table id counters (so split/update generation can continue).
#[derive(Debug, Default, Clone)]
pub struct ChildIds {
    pub cast_info: i64,
    pub movie_info: i64,
    pub movie_info_idx: i64,
    pub movie_keyword: i64,
    pub movie_companies: i64,
}

/// Generate one title and its children. `force_year` pins the production
/// year (used by the temporal-split update experiment).
pub fn generate_title(
    db: &mut Database,
    rng: &mut Xor64,
    ids: &mut ChildIds,
    title_id: i64,
    force_year: Option<i64>,
) {
    let (y0, y1) = YEAR_RANGE;
    // Years skew recent: quadratic ramp.
    let year = force_year.unwrap_or_else(|| y0 + ((y1 - y0) as f64 * rng.f64().sqrt()) as i64);
    let recency = (year - y0) as f64 / (y1 - y0) as f64; // 0 old … 1 new

    // kind ↔ year correlation: TV kinds (2,3) rare before ~1960, common late.
    let kind = {
        let r = rng.f64();
        if r < 0.25 + 0.45 * recency {
            2 + (rng.f64() < 0.5) as i64 // tv kinds
        } else if r < 0.85 {
            0 // movie
        } else {
            4 + rng.below(3) as i64 // video/short/documentary
        }
    };
    let season = if kind == 2 || kind == 3 {
        Value::Int(1 + rng.zipf(15) as i64)
    } else {
        Value::Null
    };
    db.insert(
        "title",
        &[
            Value::Int(title_id),
            Value::Int(kind),
            Value::Int(year),
            season,
        ],
    )
    .expect("valid title row");

    // Fan-outs correlate with recency and kind.
    let boost = 0.5 + 1.5 * recency;
    let n_cast = (rng.f64() * 4.0 * boost) as usize;
    for _ in 0..n_cast {
        ids.cast_info += 1;
        // Roles depend on kind: documentaries (6) favor "self" roles.
        let role = if kind == 6 {
            8 + rng.below(3) as i64
        } else {
            1 + rng.zipf((N_ROLES - 1) as usize) as i64
        };
        db.insert(
            "cast_info",
            &[
                Value::Int(ids.cast_info),
                Value::Int(title_id),
                Value::Int(role),
            ],
        )
        .expect("valid row");
    }
    let n_info = (rng.f64() * 3.0 * boost) as usize;
    for _ in 0..n_info {
        ids.movie_info += 1;
        // info types skew by kind.
        let it = ((rng.zipf(N_INFO_TYPES as usize) as i64) + kind * 3) % N_INFO_TYPES;
        db.insert(
            "movie_info",
            &[
                Value::Int(ids.movie_info),
                Value::Int(title_id),
                Value::Int(it),
            ],
        )
        .expect("valid row");
    }
    let n_info_idx = (rng.f64() * 2.0 * boost) as usize;
    for _ in 0..n_info_idx {
        ids.movie_info_idx += 1;
        let it = rng.zipf(N_INFO_TYPES as usize) as i64;
        db.insert(
            "movie_info_idx",
            &[
                Value::Int(ids.movie_info_idx),
                Value::Int(title_id),
                Value::Int(it),
            ],
        )
        .expect("valid row");
    }
    let n_kw = (rng.f64() * 3.0 * boost) as usize;
    for _ in 0..n_kw {
        ids.movie_keyword += 1;
        let kw = rng.zipf(N_KEYWORDS as usize) as i64;
        db.insert(
            "movie_keyword",
            &[
                Value::Int(ids.movie_keyword),
                Value::Int(title_id),
                Value::Int(kw),
            ],
        )
        .expect("valid row");
    }
    let n_mc = (rng.f64() * 2.0 * boost) as usize;
    for _ in 0..n_mc {
        ids.movie_companies += 1;
        let company = rng.zipf(N_COMPANIES as usize) as i64;
        let ctype = (rng.f64() < 0.3 + 0.4 * recency) as i64;
        db.insert(
            "movie_companies",
            &[
                Value::Int(ids.movie_companies),
                Value::Int(title_id),
                Value::Int(company),
                Value::Int(ctype),
            ],
        )
        .expect("valid row");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::{execute, CmpOp, PredOp, Query};

    fn tiny() -> Database {
        generate(Scale {
            factor: 0.05,
            seed: 7,
        }) // 1500 titles
    }

    #[test]
    fn integrity_and_shape() {
        let db = tiny();
        db.validate_integrity().unwrap();
        assert_eq!(db.n_tables(), 6);
        assert_eq!(db.foreign_keys().len(), 5);
        let title = db.table_id("title").unwrap();
        assert_eq!(db.table(title).n_rows(), 1500);
        for t in &TABLES[1..] {
            assert!(
                db.table(db.table_id(t).unwrap()).n_rows() > 100,
                "{t} too small"
            );
        }
    }

    #[test]
    fn year_kind_correlation_exists() {
        let db = tiny();
        let title = db.table_id("title").unwrap();
        // P(tv | year ≥ 2000) must exceed P(tv | year < 1960).
        let tv_late = execute(
            &db,
            &Query::count(vec![title])
                .filter(title, 1, PredOp::In(vec![Value::Int(2), Value::Int(3)]))
                .filter(title, 2, PredOp::Cmp(CmpOp::Ge, Value::Int(2000))),
        )
        .unwrap()
        .scalar()
        .count as f64;
        let late = execute(
            &db,
            &Query::count(vec![title]).filter(title, 2, PredOp::Cmp(CmpOp::Ge, Value::Int(2000))),
        )
        .unwrap()
        .scalar()
        .count as f64;
        let tv_early = execute(
            &db,
            &Query::count(vec![title])
                .filter(title, 1, PredOp::In(vec![Value::Int(2), Value::Int(3)]))
                .filter(title, 2, PredOp::Cmp(CmpOp::Lt, Value::Int(1960))),
        )
        .unwrap()
        .scalar()
        .count as f64;
        let early = execute(
            &db,
            &Query::count(vec![title]).filter(title, 2, PredOp::Cmp(CmpOp::Lt, Value::Int(1960))),
        )
        .unwrap()
        .scalar()
        .count as f64;
        assert!(
            tv_late / late > tv_early / early.max(1.0) + 0.1,
            "kind-year correlation missing"
        );
    }

    #[test]
    fn fanout_grows_with_recency() {
        let db = tiny();
        let title = db.table_id("title").unwrap();
        let ci = db.table_id("cast_info").unwrap();
        let per_title = |lo: i64, hi: i64| -> f64 {
            let joined = execute(
                &db,
                &Query::count(vec![title, ci]).filter(
                    title,
                    2,
                    PredOp::Between(Value::Int(lo), Value::Int(hi)),
                ),
            )
            .unwrap()
            .scalar()
            .count as f64;
            let titles = execute(
                &db,
                &Query::count(vec![title]).filter(
                    title,
                    2,
                    PredOp::Between(Value::Int(lo), Value::Int(hi)),
                ),
            )
            .unwrap()
            .scalar()
            .count as f64;
            joined / titles.max(1.0)
        };
        assert!(
            per_title(2000, 2019) > per_title(1930, 1960) * 1.4,
            "fan-out correlation missing"
        );
    }

    #[test]
    fn season_null_iff_not_tv() {
        let db = tiny();
        let title = db.table_id("title").unwrap();
        let t = db.table(title);
        for r in 0..t.n_rows() {
            let kind = t.column(1).i64_at(r).unwrap();
            let is_tv = kind == 2 || kind == 3;
            assert_eq!(t.value(r, 3).is_null(), !is_tv, "row {r}");
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(Scale {
            factor: 0.02,
            seed: 5,
        });
        let b = generate(Scale {
            factor: 0.02,
            seed: 5,
        });
        let ta = a.table(1);
        let tb = b.table(1);
        assert_eq!(ta.n_rows(), tb.n_rows());
        for r in (0..ta.n_rows()).step_by(37) {
            assert_eq!(ta.row_values(r), tb.row_values(r));
        }
    }
}
