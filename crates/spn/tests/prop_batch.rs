//! Differential property suite: the arena/batch engine must agree with the
//! recursive reference evaluator on randomized SPNs × randomized query
//! batches — including NULL handling (`IsNull`/`IsNotNull`), `In`/`NotIn`
//! sets, one- and two-sided ranges, and every moment slot (`X`, `X²`,
//! `InvClamp1`, `InvSqClamp1`). The SIMD kernels are additionally held to
//! **bitwise** equality against the scalar reference path
//! ([`BatchEvaluator::evaluate_scalar`]), across tile- and lane-boundary
//! batch shapes and in-place update streams.

use deepdb_spn::{
    BatchEvaluator, ColumnMeta, DataView, LeafFunc, LeafPred, Spn, SpnParams, SpnQuery,
};
use proptest::prelude::*;

/// Learn a 3-column SPN: a small discrete column, a wider discrete column,
/// and a factor-like column where `0` encodes NULL (exercises the NULL slot
/// and the clamped-inverse moments).
fn learn(rows: &[(i64, i64, i64)]) -> Spn {
    let a: Vec<f64> = rows.iter().map(|&(x, _, _)| x as f64).collect();
    let b: Vec<f64> = rows.iter().map(|&(_, y, _)| y as f64).collect();
    let f: Vec<f64> = rows
        .iter()
        .map(|&(_, _, z)| if z == 0 { f64::NAN } else { z as f64 })
        .collect();
    let meta = vec![
        ColumnMeta::discrete("a"),
        ColumnMeta::discrete("b"),
        ColumnMeta::discrete("f"),
    ];
    let cols = vec![a, b, f];
    let params = SpnParams {
        rdc_sample_rows: 400,
        ..SpnParams::default()
    };
    Spn::learn(DataView::new(&cols, &meta), &params)
}

const FUNCS: [LeafFunc; 5] = [
    LeafFunc::One,
    LeafFunc::X,
    LeafFunc::X2,
    LeafFunc::InvClamp1,
    LeafFunc::InvSqClamp1,
];

/// Build one query from a list of slot specs
/// `(col, pred_kind, v1, v2, func_kind)`.
fn build_query(specs: &[(usize, i64, i64, i64, usize)]) -> SpnQuery {
    let mut q = SpnQuery::new(3);
    for &(col, kind, v1, v2, func) in specs {
        let (lo, hi) = (v1.min(v2) as f64, v1.max(v2) as f64);
        match kind {
            0 => q.add_pred(
                col,
                LeafPred::Range {
                    lo,
                    hi,
                    lo_incl: true,
                    hi_incl: v1 % 2 == 0,
                },
            ),
            1 => q.add_pred(col, LeafPred::lt(v1 as f64)),
            2 => q.add_pred(col, LeafPred::In(vec![v1 as f64, v2 as f64])),
            3 => q.add_pred(col, LeafPred::NotIn(vec![v1 as f64])),
            4 => q.add_pred(col, LeafPred::IsNull),
            _ => q.add_pred(col, LeafPred::IsNotNull),
        }
        q.set_func(col, FUNCS[func % FUNCS.len()]);
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batched arena evaluation ≡ recursive evaluation, query by query.
    #[test]
    fn batch_matches_recursive_on_random_spns(
        rows in prop::collection::vec((0i64..6, 0i64..40, 0i64..5), 20..300),
        // Batch sizes straddle the evaluator's internal tile width (32) so
        // the multi-tile path — the one production GROUP BY / bench batches
        // take — is differentially tested too.
        batch in prop::collection::vec(
            prop::collection::vec((0usize..3, 0i64..6, 0i64..40, 0i64..40, 0usize..5), 0..4),
            1..80,
        ),
    ) {
        let mut spn = learn(&rows);
        let compiled = spn.compile();
        let queries: Vec<SpnQuery> = batch.iter().map(|specs| build_query(specs)).collect();
        let got = BatchEvaluator::new().evaluate(&compiled, &queries);
        prop_assert_eq!(got.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let want = spn.evaluate(q);
            prop_assert!(
                (got[i] - want).abs() < 1e-12,
                "query {i}: batch {} vs recursive {} ({q:?})", got[i], want
            );
        }
        // The SIMD kernels must reproduce the scalar path bit for bit.
        let scalar = BatchEvaluator::new().evaluate_scalar(&compiled, &queries);
        for (i, (s, c)) in got.iter().zip(&scalar).enumerate() {
            prop_assert_eq!(
                s.to_bits(), c.to_bits(),
                "query {}: simd {} vs scalar {}", i, s, c
            );
        }
    }

    /// SIMD ≡ scalar bitwise at every tile/lane-boundary batch size — 31,
    /// 32, 33, 65 straddle the sweep tile (32) and partial-lane shapes —
    /// with one shared evaluator so scratch reuse across differing strides
    /// is exercised too.
    #[test]
    fn simd_matches_scalar_bitwise_on_boundary_batches(
        rows in prop::collection::vec((0i64..6, 0i64..40, 0i64..5), 20..200),
        specs in prop::collection::vec((0usize..3, 0i64..6, 0i64..40, 0i64..40, 0usize..5), 4..12),
    ) {
        let mut spn = learn(&rows);
        let compiled = spn.compile();
        let pool: Vec<SpnQuery> = specs
            .iter()
            .map(|s| build_query(std::slice::from_ref(s)))
            .collect();
        let mut ev = BatchEvaluator::new();
        for n in [1usize, 3, 4, 31, 32, 33, 65] {
            let queries: Vec<SpnQuery> =
                (0..n).map(|i| pool[i % pool.len()].clone()).collect();
            let simd = ev.evaluate(&compiled, &queries);
            let scalar = ev.evaluate_scalar(&compiled, &queries);
            let simd_bits: Vec<u64> = simd.iter().map(|v| v.to_bits()).collect();
            let scalar_bits: Vec<u64> = scalar.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(simd_bits, scalar_bits, "batch size {}", n);
            let recursive: Vec<f64> = queries.iter().map(|q| spn.evaluate(q)).collect();
            for (i, (s, w)) in simd.iter().zip(&recursive).enumerate() {
                prop_assert!(
                    (s - w).abs() < 1e-12,
                    "batch size {}, query {}: simd {} vs recursive {}", n, i, s, w
                );
            }
        }
    }

    /// The NULL slot and the clamped-inverse tuple-factor moments agree —
    /// these are the paths cardinality estimation leans on hardest.
    #[test]
    fn null_and_invclamp_slots_agree(
        rows in prop::collection::vec((0i64..4, 0i64..20, 0i64..6), 30..200),
        probe in 0i64..4,
    ) {
        let mut spn = learn(&rows);
        let compiled = spn.compile();
        let queries = vec![
            SpnQuery::new(3).with_pred(2, LeafPred::IsNull),
            SpnQuery::new(3).with_pred(2, LeafPred::IsNotNull),
            SpnQuery::new(3).with_func(2, LeafFunc::InvClamp1),
            SpnQuery::new(3).with_func(2, LeafFunc::InvSqClamp1),
            SpnQuery::new(3)
                .with_pred(0, LeafPred::eq(probe as f64))
                .with_func(2, LeafFunc::InvClamp1),
            SpnQuery::new(3)
                .with_pred(0, LeafPred::eq(probe as f64))
                .with_pred(2, LeafPred::IsNull),
        ];
        let got = BatchEvaluator::new().evaluate(&compiled, &queries);
        for (i, q) in queries.iter().enumerate() {
            let want = spn.evaluate(q);
            prop_assert!(
                (got[i] - want).abs() < 1e-12,
                "probe {i}: batch {} vs recursive {}", got[i], want
            );
        }
    }

    /// Recompiling after updates re-synchronizes the arena with the tree.
    #[test]
    fn recompiled_arena_tracks_updates(
        rows in prop::collection::vec((0i64..5, 0i64..30, 0i64..4), 30..150),
        tuples in prop::collection::vec((0i64..5, 0i64..30, 0i64..4), 1..10),
        probe in 0i64..5,
    ) {
        let mut spn = learn(&rows);
        for &(x, y, z) in &tuples {
            spn.insert(&[x as f64, y as f64, if z == 0 { f64::NAN } else { z as f64 }]);
        }
        let compiled = spn.compile();
        let q = SpnQuery::new(3).with_pred(0, LeafPred::eq(probe as f64));
        let got = BatchEvaluator::new().evaluate(&compiled, std::slice::from_ref(&q))[0];
        let want = spn.evaluate(&q);
        prop_assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    /// SIMD ≡ scalar bitwise survives in-place patched-update streams: the
    /// arena the kernels sweep is edited by updates, never recompiled.
    #[test]
    fn simd_matches_scalar_after_patched_updates(
        rows in prop::collection::vec((0i64..5, 0i64..30, 0i64..4), 30..150),
        tuples in prop::collection::vec((0i64..5, 0i64..30, 0i64..4), 1..12),
        batch in prop::collection::vec(
            prop::collection::vec((0usize..3, 0i64..6, 0i64..40, 0i64..40, 0usize..5), 0..3),
            33..40,
        ),
    ) {
        let mut spn = learn(&rows);
        let mut arena = spn.compile();
        for &(x, y, z) in &tuples {
            spn.insert_patch(
                &mut arena,
                &[x as f64, y as f64, if z == 0 { f64::NAN } else { z as f64 }],
            );
        }
        let queries: Vec<SpnQuery> = batch.iter().map(|specs| build_query(specs)).collect();
        let mut ev = BatchEvaluator::new();
        let simd = ev.evaluate(&arena, &queries);
        let scalar = ev.evaluate_scalar(&arena, &queries);
        for (i, (s, c)) in simd.iter().zip(&scalar).enumerate() {
            prop_assert_eq!(s.to_bits(), c.to_bits(), "query {}: simd vs scalar", i);
            let want = spn.evaluate(&queries[i]);
            prop_assert!(
                (s - want).abs() < 1e-12,
                "query {}: simd {} vs recursive {}", i, s, want
            );
        }
    }
}
