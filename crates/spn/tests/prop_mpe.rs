//! Differential property suite for compiled max-product inference: the
//! arena MPE pass ([`deepdb_spn::MaxProductEvaluator`]) must agree with the
//! recursive oracle **bitwise** (score) and exactly (value) on randomized
//! SPNs × randomized evidence — including NULL evidence, empty-support
//! targets (evidence values the model never saw), and tied clusters (small
//! discrete domains make exact weight/score ties common). Both paths share
//! one tie-break rule: the lowest-index child wins at sum nodes, the lowest
//! value wins inside a leaf. The SIMD (max, ×) kernels are additionally
//! held to **bitwise** equality against the scalar reference path
//! ([`MaxProductEvaluator::evaluate_scalar`]), including after in-place
//! patched-update streams.

use deepdb_spn::{
    ColumnMeta, DataView, LeafPred, MaxProductEvaluator, MpeProbe, Spn, SpnParams, SpnQuery,
};
use proptest::prelude::*;

/// Learn a 3-column SPN: two small discrete columns (tight domains force
/// frequent exact ties) and a nullable column where `0` encodes NULL.
fn learn(rows: &[(i64, i64, i64)]) -> Spn {
    let a: Vec<f64> = rows.iter().map(|&(x, _, _)| x as f64).collect();
    let b: Vec<f64> = rows.iter().map(|&(_, y, _)| y as f64).collect();
    let c: Vec<f64> = rows
        .iter()
        .map(|&(_, _, z)| if z == 0 { f64::NAN } else { z as f64 })
        .collect();
    let meta = vec![
        ColumnMeta::discrete("a"),
        ColumnMeta::discrete("b"),
        ColumnMeta::discrete("c"),
    ];
    let cols = vec![a, b, c];
    let params = SpnParams {
        rdc_sample_rows: 400,
        ..SpnParams::default()
    };
    Spn::learn(DataView::new(&cols, &meta), &params)
}

/// Build one evidence query from slot specs `(col, pred_kind, v)`. Values
/// range past the training domain so empty-support evidence is generated.
fn build_evidence(specs: &[(usize, i64, i64)]) -> SpnQuery {
    let mut q = SpnQuery::new(3);
    for &(col, kind, v) in specs {
        let v = v as f64;
        match kind % 6 {
            0 => {}
            1 => q.add_pred(col, LeafPred::eq(v)),
            2 => q.add_pred(col, LeafPred::le(v)),
            3 => q.add_pred(col, LeafPred::ge(v)),
            4 => q.add_pred(col, LeafPred::IsNull),
            _ => q.add_pred(col, LeafPred::IsNotNull),
        }
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compiled MPE ≡ recursive oracle: exact value equality and bitwise
    /// score equality, for every target column, across batches that straddle
    /// the sweep tile width.
    #[test]
    fn compiled_mpe_matches_recursive_oracle(
        rows in prop::collection::vec((0i64..4, 0i64..6, 0i64..4), 20..250),
        batch in prop::collection::vec(
            (0usize..3, prop::collection::vec((0usize..3, 0i64..6, -2i64..9), 0..3)),
            1..70,
        ),
    ) {
        let mut spn = learn(&rows);
        let compiled = spn.compile();
        let probes: Vec<MpeProbe> = batch
            .iter()
            .map(|(target, specs)| MpeProbe::new(*target, build_evidence(specs)))
            .collect();
        let got = MaxProductEvaluator::new().evaluate(&compiled, &probes);
        prop_assert_eq!(got.len(), probes.len());
        for (i, p) in probes.iter().enumerate() {
            let (want_score, want_value) = spn.mpe_outcome(p.target, &p.query);
            prop_assert_eq!(
                got[i].value, want_value,
                "probe {} (target {}): compiled {:?} vs oracle {:?} for {:?}",
                i, p.target, got[i].value, want_value, p.query
            );
            prop_assert_eq!(
                got[i].score.to_bits(), want_score.to_bits(),
                "probe {} score: compiled {} vs oracle {}",
                i, got[i].score, want_score
            );
        }
        // And the SIMD kernels reproduce the scalar path bit for bit.
        let scalar = MaxProductEvaluator::new().evaluate_scalar(&compiled, &probes);
        for (i, (s, c)) in got.iter().zip(&scalar).enumerate() {
            prop_assert_eq!(s.value, c.value, "probe {}: simd vs scalar value", i);
            prop_assert_eq!(
                s.score.to_bits(), c.score.to_bits(),
                "probe {}: simd {} vs scalar {}", i, s.score, c.score
            );
        }
    }

    /// Empty-support evidence (values outside the training domain, or
    /// contradictory NULL constraints) still agrees exactly — the winning
    /// branch under all-zero scores is the lowest-index one on both paths.
    #[test]
    fn empty_support_and_null_evidence_agree(
        rows in prop::collection::vec((0i64..3, 0i64..5, 0i64..3), 15..150),
        target in 0usize..3,
    ) {
        let mut spn = learn(&rows);
        let compiled = spn.compile();
        let ev_col = (target + 1) % 3;
        let probes = vec![
            // Value the model has never seen.
            MpeProbe::new(target, SpnQuery::new(3).with_pred(ev_col, LeafPred::eq(99.0))),
            // Contradiction: NULL and NOT NULL at once.
            MpeProbe::new(
                target,
                SpnQuery::new(3)
                    .with_pred(2, LeafPred::IsNull)
                    .with_pred(2, LeafPred::IsNotNull),
            ),
            // NULL evidence on the nullable column.
            MpeProbe::new(target, SpnQuery::new(3).with_pred(2, LeafPred::IsNull)),
        ];
        let got = MaxProductEvaluator::new().evaluate(&compiled, &probes);
        for (i, p) in probes.iter().enumerate() {
            let (want_score, want_value) = spn.mpe_outcome(p.target, &p.query);
            prop_assert_eq!(got[i].value, want_value, "probe {}", i);
            prop_assert_eq!(got[i].score.to_bits(), want_score.to_bits(), "probe {}", i);
        }
    }

    /// The equivalence survives in-place update streams: patched arenas keep
    /// their cached leaf modes (and hence MPE answers) in sync with the tree.
    #[test]
    fn mpe_agrees_after_patched_updates(
        rows in prop::collection::vec((0i64..3, 0i64..5, 0i64..3), 20..120),
        tuples in prop::collection::vec((0i64..3, 0i64..5, 0i64..3), 1..12),
        target in 0usize..3,
    ) {
        let mut spn = learn(&rows);
        let mut arena = spn.compile();
        for &(x, y, z) in &tuples {
            spn.insert_patch(
                &mut arena,
                &[x as f64, y as f64, if z == 0 { f64::NAN } else { z as f64 }],
            );
        }
        let q = SpnQuery::new(3).with_pred((target + 1) % 3, LeafPred::ge(1.0));
        let got = MaxProductEvaluator::new()
            .evaluate(&arena, &[MpeProbe::new(target, q.clone())])[0];
        let (want_score, want_value) = spn.mpe_outcome(target, &q);
        prop_assert_eq!(got.value, want_value);
        prop_assert_eq!(got.score.to_bits(), want_score.to_bits());
        // SIMD ≡ scalar bitwise on the patched arena, across a batch that
        // straddles the tile width.
        let probes: Vec<MpeProbe> = (0..40)
            .map(|i| MpeProbe::new(
                (target + i) % 3,
                SpnQuery::new(3).with_pred((target + i + 1) % 3, LeafPred::ge((i % 4) as f64)),
            ))
            .collect();
        let simd = MaxProductEvaluator::new().evaluate(&arena, &probes);
        let scalar = MaxProductEvaluator::new().evaluate_scalar(&arena, &probes);
        for (i, (s, c)) in simd.iter().zip(&scalar).enumerate() {
            prop_assert_eq!(s.value, c.value, "probe {}: simd vs scalar value", i);
            prop_assert_eq!(
                s.score.to_bits(), c.score.to_bits(),
                "probe {}: simd {} vs scalar {}", i, s.score, c.score
            );
        }
    }
}
