//! Differential property suite for query-scoped sub-DAG pruning: a sweep
//! restricted to an [`ActiveSet`]'s compacted runs (boundary rows seeded
//! from the arena's neutral tables) must be **bitwise** identical to the
//! full-arena sweep — for both the (+,×) expectation semiring and the
//! (max,×) max-product semiring, including NULL predicates, in-place
//! patched-update streams, superset active columns, and every thread/tile
//! shape the worker pool and inline sweeps dispatch.

use deepdb_spn::{
    BatchEvaluator, ColumnMeta, DataView, InlineSweep, LeafFunc, LeafPred, MaxProductEvaluator,
    MpeOutcome, MpeProbe, Spn, SpnParams, SpnQuery, SweepJob, WorkerPool, SWEEP_TILE,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Learn a 3-column SPN: a small discrete column, a wider discrete column,
/// and a factor-like column where `0` encodes NULL (exercises the NULL slot
/// in pruned leaf runs).
fn learn(rows: &[(i64, i64, i64)]) -> Spn {
    let a: Vec<f64> = rows.iter().map(|&(x, _, _)| x as f64).collect();
    let b: Vec<f64> = rows.iter().map(|&(_, y, _)| y as f64).collect();
    let f: Vec<f64> = rows
        .iter()
        .map(|&(_, _, z)| if z == 0 { f64::NAN } else { z as f64 })
        .collect();
    let meta = vec![
        ColumnMeta::discrete("a"),
        ColumnMeta::discrete("b"),
        ColumnMeta::discrete("f"),
    ];
    let cols = vec![a, b, f];
    let params = SpnParams {
        rdc_sample_rows: 400,
        ..SpnParams::default()
    };
    Spn::learn(DataView::new(&cols, &meta), &params)
}

const FUNCS: [LeafFunc; 5] = [
    LeafFunc::One,
    LeafFunc::X,
    LeafFunc::X2,
    LeafFunc::InvClamp1,
    LeafFunc::InvSqClamp1,
];

/// Build one query from a list of slot specs
/// `(col, pred_kind, v1, v2, func_kind)`.
fn build_query(specs: &[(usize, i64, i64, i64, usize)]) -> SpnQuery {
    let mut q = SpnQuery::new(3);
    for &(col, kind, v1, v2, func) in specs {
        let (lo, hi) = (v1.min(v2) as f64, v1.max(v2) as f64);
        match kind {
            0 => q.add_pred(
                col,
                LeafPred::Range {
                    lo,
                    hi,
                    lo_incl: true,
                    hi_incl: v1 % 2 == 0,
                },
            ),
            1 => q.add_pred(col, LeafPred::lt(v1 as f64)),
            2 => q.add_pred(col, LeafPred::In(vec![v1 as f64, v2 as f64])),
            3 => q.add_pred(col, LeafPred::NotIn(vec![v1 as f64])),
            4 => q.add_pred(col, LeafPred::IsNull),
            _ => q.add_pred(col, LeafPred::IsNotNull),
        }
        q.set_func(col, FUNCS[func % FUNCS.len()]);
    }
    q
}

/// Union of the batch's constrained columns plus any MPE target columns —
/// the exact cover the pruning contract requires.
fn cover(queries: &[SpnQuery], probes: &[MpeProbe]) -> Vec<usize> {
    let mut cols = BTreeSet::new();
    for q in queries {
        cols.extend(q.active_columns());
    }
    for p in probes {
        cols.extend(p.query.active_columns());
        cols.insert(p.target);
    }
    cols.into_iter().collect()
}

fn assert_mpe_bitwise(got: &[MpeOutcome], want: &[MpeOutcome]) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "probe {}: pruned score {} vs full {}",
            i,
            g.score,
            w.score
        );
        assert_eq!(
            g.value.map(f64::to_bits),
            w.value.map(f64::to_bits),
            "probe {}: pruned value {:?} vs full {:?}",
            i,
            g.value,
            w.value
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Expectation semiring: pruned ≡ full bitwise on random SPNs ×
    /// random batches, with the active set built from the exact column
    /// cover and from an arbitrary superset (supersets only grow the
    /// active sub-DAG, never change swept values).
    #[test]
    fn pruned_expect_matches_full_bitwise(
        rows in prop::collection::vec((0i64..6, 0i64..40, 0i64..5), 20..300),
        batch in prop::collection::vec(
            prop::collection::vec((0usize..3, 0i64..6, 0i64..40, 0i64..40, 0usize..5), 0..3),
            1..80,
        ),
        extra in 0usize..3,
    ) {
        let spn = learn(&rows);
        let compiled = spn.compile();
        let queries: Vec<SpnQuery> = batch.iter().map(|specs| build_query(specs)).collect();
        let mut ev = BatchEvaluator::new();
        let full = ev.evaluate(&compiled, &queries);

        let exact = compiled.active_set(&cover(&queries, &[]));
        let pruned = ev.evaluate_pruned(&compiled, &queries, &exact);
        for (i, (p, f)) in pruned.iter().zip(&full).enumerate() {
            prop_assert_eq!(p.to_bits(), f.to_bits(), "query {}: pruned {} vs full {}", i, p, f);
        }

        let mut sup_cols = cover(&queries, &[]);
        sup_cols.push(extra);
        let superset = compiled.active_set(&sup_cols);
        prop_assert!(superset.n_active() >= exact.n_active());
        let sup = ev.evaluate_pruned(&compiled, &queries, &superset);
        for (i, (p, f)) in sup.iter().zip(&full).enumerate() {
            prop_assert_eq!(p.to_bits(), f.to_bits(), "query {} (superset cover)", i);
        }
    }

    /// Max-product semiring: pruned ≡ full bitwise (scores **and** argmax
    /// target values) when the active set covers evidence plus targets.
    #[test]
    fn pruned_maxprod_matches_full_bitwise(
        rows in prop::collection::vec((0i64..6, 0i64..40, 0i64..5), 20..300),
        probes in prop::collection::vec(
            (0usize..3, prop::collection::vec((0usize..3, 0i64..6, 0i64..40, 0i64..40, 0usize..5), 0..2)),
            1..40,
        ),
    ) {
        let spn = learn(&rows);
        let compiled = spn.compile();
        let probes: Vec<MpeProbe> = probes
            .iter()
            .map(|(t, specs)| MpeProbe::new(*t, build_query(specs)))
            .collect();
        let mut ev = MaxProductEvaluator::new();
        let full = ev.evaluate(&compiled, &probes);
        let active = compiled.active_set(&cover(&[], &probes));
        let pruned = ev.evaluate_pruned(&compiled, &probes, &active);
        assert_mpe_bitwise(&pruned, &full);
    }

    /// Pruning survives in-place patched-update streams: the active set is
    /// built once (scopes never change under patches), the neutral tables
    /// are refreshed by `commit_patch`, and pruned ≡ full stays bitwise
    /// after every prefix of the stream — both semirings.
    #[test]
    fn pruned_matches_full_after_patched_updates(
        rows in prop::collection::vec((0i64..5, 0i64..30, 0i64..4), 30..150),
        tuples in prop::collection::vec((0i64..5, 0i64..30, 0i64..4), 1..12),
        batch in prop::collection::vec(
            prop::collection::vec((0usize..3, 0i64..6, 0i64..40, 0i64..40, 0usize..5), 0..3),
            SWEEP_TILE + 1..SWEEP_TILE + 8,
        ),
        target in 0usize..3,
    ) {
        let mut spn = learn(&rows);
        let mut arena = spn.compile();
        let queries: Vec<SpnQuery> = batch.iter().map(|specs| build_query(specs)).collect();
        let probes = vec![MpeProbe::new(target, queries[0].clone())];
        // Built before any patch: must stay valid for the whole stream.
        let active = arena.active_set(&cover(&queries, &probes));
        let mut ev = BatchEvaluator::new();
        let mut mp = MaxProductEvaluator::new();
        for &(x, y, z) in &tuples {
            spn.insert_patch(
                &mut arena,
                &[x as f64, y as f64, if z == 0 { f64::NAN } else { z as f64 }],
            );
            let full = ev.evaluate(&arena, &queries);
            let pruned = ev.evaluate_pruned(&arena, &queries, &active);
            for (i, (p, f)) in pruned.iter().zip(&full).enumerate() {
                prop_assert_eq!(p.to_bits(), f.to_bits(), "query {} after patch", i);
            }
            let full_mpe = mp.evaluate(&arena, &probes);
            let pruned_mpe = mp.evaluate_pruned(&arena, &probes, &active);
            assert_mpe_bitwise(&pruned_mpe, &full_mpe);
        }
    }

    /// Pool and inline dispatch: a fused expectation+MPE sweep carrying
    /// `SweepJob::active` must reproduce the unpruned job bitwise across
    /// thread counts and tile-straddling batch shapes.
    #[test]
    fn pool_and_inline_pruned_sweeps_match_full(
        rows in prop::collection::vec((0i64..5, 0i64..30, 0i64..4), 30..150),
        specs in prop::collection::vec((0usize..3, 0i64..6, 0i64..40, 0i64..40, 0usize..5), 4..10),
        target in 0usize..3,
    ) {
        let spn = learn(&rows);
        let compiled = spn.compile();
        let pool_q: Vec<SpnQuery> = specs
            .iter()
            .map(|s| build_query(std::slice::from_ref(s)))
            .collect();
        let pool = WorkerPool::new();
        for n in [1usize, 3, SWEEP_TILE - 1, SWEEP_TILE, SWEEP_TILE + 1] {
            let queries: Vec<SpnQuery> =
                (0..n).map(|i| pool_q[i % pool_q.len()].clone()).collect();
            let probes = vec![MpeProbe::new(target, queries[0].clone())];
            let active = compiled.active_set(&cover(&queries, &probes));

            let mut full = vec![0.0; n];
            let mut full_mpe = vec![MpeOutcome::default(); probes.len()];
            let mut pruned = vec![0.0; n];
            let mut pruned_mpe = vec![MpeOutcome::default(); probes.len()];

            for threads in [1usize, 2, 4] {
                full.fill(0.0);
                pruned.fill(0.0);
                pool.sweep(
                    vec![SweepJob {
                        spn: &compiled,
                        queries: &queries,
                        out: &mut full,
                        mpe: &probes,
                        mpe_out: &mut full_mpe,
                        cancel: None,
                        fault: None,
                        active: None,
                    }],
                    threads,
                );
                pool.sweep(
                    vec![SweepJob {
                        spn: &compiled,
                        queries: &queries,
                        out: &mut pruned,
                        mpe: &probes,
                        mpe_out: &mut pruned_mpe,
                        cancel: None,
                        fault: None,
                        active: Some(&active),
                    }],
                    threads,
                );
                for (i, (p, f)) in pruned.iter().zip(&full).enumerate() {
                    prop_assert_eq!(
                        p.to_bits(), f.to_bits(),
                        "batch {}, threads {}, query {}", n, threads, i
                    );
                }
                assert_mpe_bitwise(&pruned_mpe, &full_mpe);
            }

            // Inline (pool-free) dispatch takes the same pruned path.
            let mut inline = InlineSweep::new();
            pruned.fill(0.0);
            inline.sweep(
                &compiled,
                &queries,
                &mut pruned,
                &probes,
                &mut pruned_mpe,
                Some(&active),
            );
            for (i, (p, f)) in pruned.iter().zip(&full).enumerate() {
                prop_assert_eq!(p.to_bits(), f.to_bits(), "inline batch {}, query {}", n, i);
            }
            assert_mpe_bitwise(&pruned_mpe, &full_mpe);
        }
    }
}

/// Node accounting: a pruned sweep visits exactly `n_active` nodes per
/// tile, a full sweep exactly `n_nodes` — measured through the arena's
/// `nodes_swept` counter, so a silently un-pruned dispatch cannot pass.
#[test]
fn pruned_sweep_accounts_only_active_nodes() {
    let rows: Vec<(i64, i64, i64)> = (0..240)
        .map(|i| (i % 5, (i * 7) % 30, (i % 4) + 1))
        .collect();
    let spn = learn(&rows);
    let compiled = spn.compile();
    let n_nodes = compiled.n_nodes() as u64;

    let queries: Vec<SpnQuery> = (0..SWEEP_TILE + 5)
        .map(|i| SpnQuery::new(3).with_pred(0, LeafPred::eq((i % 5) as f64)))
        .collect();
    let active = compiled.active_set(&[0]);
    assert!(
        active.n_active() > 0,
        "a constrained column must mark nodes"
    );
    assert!(
        active.n_active() < compiled.n_nodes(),
        "a single-column query over a multi-column SPN must prune something"
    );
    let tiles = queries.len().div_ceil(SWEEP_TILE) as u64;

    let mut ev = BatchEvaluator::new();
    let before = compiled.nodes_swept();
    let full = ev.evaluate(&compiled, &queries);
    let full_delta = compiled.nodes_swept() - before;
    assert_eq!(
        full_delta,
        tiles * n_nodes,
        "full sweep visits every node per tile"
    );

    let before = compiled.nodes_swept();
    let pruned = ev.evaluate_pruned(&compiled, &queries, &active);
    let pruned_delta = compiled.nodes_swept() - before;
    assert_eq!(
        pruned_delta,
        tiles * active.n_active() as u64,
        "pruned sweep visits exactly the active nodes per tile"
    );

    for (p, f) in pruned.iter().zip(&full) {
        assert_eq!(p.to_bits(), f.to_bits());
    }
}
