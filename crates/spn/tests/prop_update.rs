//! Differential property suite for **in-place arena patching**: after any
//! randomized stream of inserts / deletes / updates (including NULL tuples,
//! deletes of absent tuples, and empty-cluster deletes), the incrementally
//! patched [`CompiledSpn`] must be **bitwise identical** to the dirty-flag
//! baseline — mutate the tree only, then run a full recompile. Batched and
//! one-by-one application must also coincide bitwise, and the tree's mass
//! bookkeeping (sum counts vs. leaf totals) must stay consistent — the
//! regression surface of the old `saturating_sub` delete desync.

use deepdb_spn::{
    BatchEvaluator, ColumnMeta, CompiledSpn, DataView, LeafFunc, LeafPred, Spn, SpnParams, SpnQuery,
};
use proptest::prelude::*;

/// Learn a 3-column SPN: two discrete columns plus a factor-like column
/// where `0` encodes NULL (exercises NULL-slot patching).
fn learn(rows: &[(i64, i64, i64)]) -> Spn {
    let a: Vec<f64> = rows.iter().map(|&(x, _, _)| x as f64).collect();
    let b: Vec<f64> = rows.iter().map(|&(_, y, _)| y as f64).collect();
    let f: Vec<f64> = rows
        .iter()
        .map(|&(_, _, z)| if z == 0 { f64::NAN } else { z as f64 })
        .collect();
    let meta = vec![
        ColumnMeta::discrete("a"),
        ColumnMeta::discrete("b"),
        ColumnMeta::discrete("f"),
    ];
    let cols = vec![a, b, f];
    let params = SpnParams {
        rdc_sample_rows: 400,
        min_instance_ratio: 0.05,
        ..SpnParams::default()
    };
    Spn::learn(DataView::new(&cols, &meta), &params)
}

fn tuple(a: i64, b: i64, f: i64) -> [f64; 3] {
    [a as f64, b as f64, if f == 0 { f64::NAN } else { f as f64 }]
}

/// Probe batch covering ranges, point sets, NULL slots, and every moment.
fn probes() -> Vec<SpnQuery> {
    vec![
        SpnQuery::new(3),
        SpnQuery::new(3).with_pred(0, LeafPred::eq(1.0)),
        SpnQuery::new(3)
            .with_pred(1, LeafPred::ge(3.0))
            .with_func(1, LeafFunc::X),
        SpnQuery::new(3).with_pred(2, LeafPred::IsNull),
        SpnQuery::new(3)
            .with_pred(2, LeafPred::IsNotNull)
            .with_func(2, LeafFunc::InvClamp1),
        SpnQuery::new(3)
            .with_pred(0, LeafPred::In(vec![0.0, 2.0]))
            .with_func(1, LeafFunc::X2),
        SpnQuery::new(3).with_func(2, LeafFunc::InvSqClamp1),
    ]
}

fn assert_patch_equals_recompile(patched_arena: &CompiledSpn, baseline_tree: &Spn) {
    let recompiled = baseline_tree.compile();
    assert!(
        patched_arena.bitwise_eq(&recompiled),
        "patched arena diverged from full recompile (n_rows {} vs {})",
        patched_arena.n_rows(),
        recompiled.n_rows()
    );
    // Belt and braces: probe results agree bit for bit too.
    let mut ev = BatchEvaluator::new();
    let q = probes();
    let got = ev.evaluate(patched_arena, &q);
    let want = ev.evaluate(&recompiled, &q);
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "probe {i} diverged: {g} vs {w}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Patch path ≡ dirty-flag + full recompile, bitwise, across randomized
    /// insert/delete/update streams. Deletes draw from a small domain so
    /// they hit present tuples, absent tuples, and — once a cluster drains —
    /// empty clusters; both paths must agree on which deletes were no-ops.
    #[test]
    fn patched_arena_matches_recompile_bitwise(
        rows in prop::collection::vec((0i64..4, 0i64..8, 0i64..3), 20..200),
        ops in prop::collection::vec((0u8..3, 0i64..4, 0i64..8, 0i64..3), 0..80),
    ) {
        let mut patched = learn(&rows);
        let mut baseline = patched.clone();
        let mut arena = patched.compile();
        prop_assert!(arena.bitwise_eq(&baseline.compile()));

        for (i, &(kind, a, b, f)) in ops.iter().enumerate() {
            let t = tuple(a, b, f);
            match kind {
                0 => {
                    patched.insert_patch(&mut arena, &t);
                    baseline.insert(&t);
                }
                1 => {
                    let x = patched.delete_patch(&mut arena, &t);
                    let y = baseline.delete(&t);
                    prop_assert_eq!(x, y, "delete applicability diverged at op {}", i);
                }
                _ => {
                    let new = tuple((a + 1) % 4, (b + 3) % 8, (f + 1) % 3);
                    // Patched update = delete_patch + insert_patch.
                    let x = patched.delete_patch(&mut arena, &t);
                    if x {
                        patched.insert_patch(&mut arena, &new);
                    }
                    let y = baseline.update(&t, &new);
                    prop_assert_eq!(x, y, "update applicability diverged at op {}", i);
                }
            }
            prop_assert_eq!(arena.n_rows(), patched.n_rows());
        }
        prop_assert_eq!(
            patched.consistency_error(),
            None,
            "mass bookkeeping desynced after the stream"
        );
        assert_patch_equals_recompile(&arena, &baseline);
    }

    /// Batched application ≡ one-by-one application, bitwise — for inserts
    /// (one partitioned traversal, folded renormalization) and deletes
    /// (check-then-apply per tuple, folded finalization).
    #[test]
    fn batch_equals_one_by_one_bitwise(
        rows in prop::collection::vec((0i64..4, 0i64..8, 0i64..3), 20..150),
        inserts in prop::collection::vec((0i64..4, 0i64..8, 0i64..3), 1..60),
        deletes in prop::collection::vec((0i64..4, 0i64..8, 0i64..3), 1..60),
    ) {
        let mut batched = learn(&rows);
        let mut stepped = batched.clone();
        let mut arena_batched = batched.compile();
        let mut arena_stepped = stepped.compile();

        let ins: Vec<[f64; 3]> = inserts.iter().map(|&(a, b, f)| tuple(a, b, f)).collect();
        batched.insert_batch(&mut arena_batched, &ins);
        for t in &ins {
            stepped.insert_patch(&mut arena_stepped, t);
        }
        prop_assert!(
            arena_batched.bitwise_eq(&arena_stepped),
            "insert_batch diverged from one-by-one inserts"
        );

        let del: Vec<[f64; 3]> = deletes.iter().map(|&(a, b, f)| tuple(a, b, f)).collect();
        let n_batched = batched.delete_batch(&mut arena_batched, &del);
        let mut n_stepped = 0;
        for t in &del {
            n_stepped += usize::from(stepped.delete_patch(&mut arena_stepped, t));
        }
        prop_assert_eq!(n_batched, n_stepped, "applied-delete counts diverged");
        prop_assert!(
            arena_batched.bitwise_eq(&arena_stepped),
            "delete_batch diverged from one-by-one deletes"
        );
        prop_assert_eq!(batched.consistency_error(), None);
        assert_patch_equals_recompile(&arena_batched, &stepped);
    }
}

/// Draining a cluster empty and deleting into it again must be a consistent
/// no-op along the whole routed path — the regression case for the old
/// desync, where the sum count saturated at zero while the routed leaf kept
/// losing mass.
#[test]
fn empty_cluster_delete_is_a_consistent_noop() {
    // Two well-separated clusters so routing is unambiguous.
    let rows: Vec<(i64, i64, i64)> = (0..40)
        .map(|i| if i % 4 == 0 { (0, 0, 1) } else { (3, 7, 2) })
        .collect();
    let mut spn = learn(&rows);
    let mut arena = spn.compile();
    let t = tuple(0, 0, 1);

    // Drain every copy of the minority tuple (10 of them), then keep going.
    let mut removed = 0;
    for _ in 0..rows.len() {
        if !spn.delete_patch(&mut arena, &t) {
            break;
        }
        removed += 1;
    }
    assert_eq!(removed, 10, "exactly the present copies are removable");
    assert_eq!(spn.n_rows(), 30);
    assert_eq!(arena.n_rows(), 30);

    // Further deletes along the drained path: no-ops, no partial decrements.
    let before = spn.compile();
    assert!(!spn.delete_patch(&mut arena, &t));
    assert!(!spn.delete_patch(&mut arena, &tuple(0, 1, 1)));
    assert_eq!(spn.consistency_error(), None);
    assert!(
        arena.bitwise_eq(&before),
        "no-op deletes must not touch state"
    );
    assert!(arena.bitwise_eq(&spn.compile()));
}

/// NULL tuples route, patch, and delete through the NULL slot of every leaf.
#[test]
fn null_tuples_patch_null_mass_in_place() {
    let rows: Vec<(i64, i64, i64)> = (0..60).map(|i| (i % 3, i % 5, i % 3)).collect();
    let mut spn = learn(&rows);
    let mut arena = spn.compile();
    let q = SpnQuery::new(3).with_pred(2, LeafPred::IsNull);
    let before = arena.evaluate(&q);

    let t = tuple(1, 2, 0); // f = 0 encodes NULL
    spn.insert_patch(&mut arena, &t);
    assert!(arena.evaluate(&q) > before, "NULL mass must grow in place");
    assert!(arena.bitwise_eq(&spn.compile()));

    assert!(spn.delete_patch(&mut arena, &t));
    assert_eq!(
        arena.evaluate(&q).to_bits(),
        spn.compile().evaluate(&q).to_bits()
    );
    assert_eq!(spn.consistency_error(), None);
}
