//! Corrupted-snapshot fuzzing: `Spn::read_from` must treat every byte
//! stream as hostile. Truncations and bit flips of a valid snapshot must
//! either fail cleanly with a typed `InvalidData` error or yield a model
//! that still evaluates and compiles — never a panic, never an unbounded
//! allocation.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use deepdb_spn::{ColumnMeta, DataView, LeafPred, Spn, SpnParams, SpnQuery};
use proptest::prelude::*;

/// A snapshot with both leaf kinds (exact and binned), sum and product
/// nodes, serialized once.
fn snapshot() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut state = 0xC0FFEE_u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let n = 2000;
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        let mut c = Vec::with_capacity(n);
        for _ in 0..n {
            let cluster = rng() < 0.5;
            a.push(if cluster {
                (rng() * 3.0).floor()
            } else {
                4.0 + (rng() * 3.0).floor()
            });
            b.push(if cluster {
                rng() * 5.0
            } else {
                40.0 + rng() * 5.0
            });
            c.push(if rng() < 0.04 { f64::NAN } else { rng() * 90.0 });
        }
        let cols = vec![a, b, c];
        let meta = vec![
            ColumnMeta::discrete("a"),
            ColumnMeta::continuous("b"),
            ColumnMeta::continuous("c"),
        ];
        let params = SpnParams {
            max_distinct_exact: 64, // force binned leaves on c
            ..SpnParams::default()
        };
        let spn = Spn::learn(DataView::new(&cols, &meta), &params);
        let mut buf = Vec::new();
        spn.write_to(&mut buf).unwrap();
        buf
    })
}

/// Load `bytes` and, if it parses, exercise the model: evaluation and
/// arena compilation must not panic on whatever state decoded.
fn load_and_exercise(bytes: &[u8]) -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(|| {
        if let Ok(mut spn) = Spn::read_from(&mut &bytes[..]) {
            let n = spn.n_columns();
            let _ = spn.evaluate(&SpnQuery::new(n));
            if n > 0 {
                let _ = spn.evaluate(&SpnQuery::new(n).with_pred(0, LeafPred::ge(1.0)));
            }
            let _ = spn.compile();
        }
    }))
    .map_err(|_| "panicked".to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every strict prefix of a snapshot is rejected with a clean error.
    #[test]
    fn truncated_snapshots_fail_cleanly(cut_seed in 0usize..usize::MAX) {
        let buf = snapshot();
        let cut = cut_seed % buf.len();
        let truncated = &buf[..cut];
        prop_assert!(load_and_exercise(truncated).is_ok(), "panicked at cut {cut}");
        let r = Spn::read_from(&mut &truncated[..]);
        prop_assert!(r.is_err(), "strict prefix of length {cut} parsed");
    }

    /// Bit-flipped snapshots never panic and never poison evaluation: they
    /// are either rejected or load into a model that still evaluates and
    /// compiles.
    #[test]
    fn bit_flipped_snapshots_never_panic(
        flips in prop::collection::vec((0usize..usize::MAX, 0u32..8), 1..8),
        cut_seed in prop::option::of(0usize..usize::MAX),
    ) {
        let mut buf = snapshot().to_vec();
        for &(off, bit) in &flips {
            let i = off % buf.len();
            buf[i] ^= 1 << bit;
        }
        // Optionally truncate after flipping (torn + corrupted write).
        if let Some(cs) = cut_seed {
            buf.truncate(cs % (buf.len() + 1));
        }
        prop_assert!(
            load_and_exercise(&buf).is_ok(),
            "panicked on flips {flips:?} cut {cut_seed:?}"
        );
    }
}
