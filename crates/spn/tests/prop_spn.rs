//! Property tests for the SPN stack: learned models must behave like
//! probability distributions regardless of the data they see.

use deepdb_spn::{ColumnMeta, DataView, LeafFunc, LeafPred, Spn, SpnParams, SpnQuery};
use proptest::prelude::*;

fn learn(cols: Vec<Vec<f64>>) -> Spn {
    let meta: Vec<ColumnMeta> = (0..cols.len())
        .map(|i| ColumnMeta::discrete(format!("c{i}")))
        .collect();
    let params = SpnParams {
        rdc_sample_rows: 500,
        ..SpnParams::default()
    };
    Spn::learn(DataView::new(&cols, &meta), &params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Probabilities are in [0,1]; the empty query integrates to 1.
    #[test]
    fn probabilities_are_normalized(
        rows in prop::collection::vec((0i64..6, 0i64..4), 5..200),
        threshold in 0i64..6,
    ) {
        let a: Vec<f64> = rows.iter().map(|&(x, _)| x as f64).collect();
        let b: Vec<f64> = rows.iter().map(|&(_, y)| y as f64).collect();
        let mut spn = learn(vec![a, b]);
        let total = spn.probability(&SpnQuery::new(2));
        prop_assert!((total - 1.0).abs() < 1e-9, "total mass {total}");
        let p = spn.probability(&SpnQuery::new(2).with_pred(0, LeafPred::lt(threshold as f64)));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p), "p = {p}");
    }

    /// The learned marginal of a column equals its empirical distribution
    /// (the SPN may approximate the joint but never the marginals).
    #[test]
    fn marginals_are_exact(
        rows in prop::collection::vec((0i64..5, 0i64..5), 10..200),
    ) {
        let a: Vec<f64> = rows.iter().map(|&(x, _)| x as f64).collect();
        let b: Vec<f64> = rows.iter().map(|&(_, y)| y as f64).collect();
        let n = rows.len() as f64;
        let mut spn = learn(vec![a.clone(), b]);
        for v in 0..5 {
            let p = spn.probability(&SpnQuery::new(2).with_pred(0, LeafPred::eq(v as f64)));
            let emp = a.iter().filter(|&&x| x == v as f64).count() as f64 / n;
            prop_assert!((p - emp).abs() < 1e-9, "P(a={v}) = {p} vs empirical {emp}");
        }
    }

    /// Complementary events sum to one.
    #[test]
    fn complement_rule(
        rows in prop::collection::vec((0i64..8, 0i64..3), 10..150),
        split in 0i64..8,
    ) {
        let a: Vec<f64> = rows.iter().map(|&(x, _)| x as f64).collect();
        let b: Vec<f64> = rows.iter().map(|&(_, y)| y as f64).collect();
        let mut spn = learn(vec![a, b]);
        let lo = spn.probability(&SpnQuery::new(2).with_pred(0, LeafPred::lt(split as f64)));
        let hi = spn.probability(&SpnQuery::new(2).with_pred(0, LeafPred::ge(split as f64)));
        prop_assert!((lo + hi - 1.0).abs() < 1e-9, "{lo} + {hi} != 1");
    }

    /// E[X] from the SPN equals the empirical mean (exact marginal moments).
    #[test]
    fn expectation_matches_empirical_mean(
        rows in prop::collection::vec((0i64..50, 0i64..3), 10..150),
    ) {
        let a: Vec<f64> = rows.iter().map(|&(x, _)| x as f64).collect();
        let b: Vec<f64> = rows.iter().map(|&(_, y)| y as f64).collect();
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        let mut spn = learn(vec![a, b]);
        let e = spn.evaluate(&SpnQuery::new(2).with_func(0, LeafFunc::X));
        prop_assert!((e - mean).abs() < 1e-9, "E[X] = {e} vs {mean}");
    }

    /// Insert followed by delete of the same tuple restores every query
    /// answer exactly.
    #[test]
    fn insert_delete_is_identity(
        rows in prop::collection::vec((0i64..5, 0i64..5), 20..100),
        tuple in (0i64..5, 0i64..5),
        probe in 0i64..5,
    ) {
        let a: Vec<f64> = rows.iter().map(|&(x, _)| x as f64).collect();
        let b: Vec<f64> = rows.iter().map(|&(_, y)| y as f64).collect();
        let mut spn = learn(vec![a, b]);
        let q = SpnQuery::new(2).with_pred(0, LeafPred::eq(probe as f64));
        let before = spn.probability(&q);
        let t = [tuple.0 as f64, tuple.1 as f64];
        spn.insert(&t);
        spn.delete(&t);
        let after = spn.probability(&q);
        prop_assert!((before - after).abs() < 1e-12, "{before} vs {after}");
        prop_assert_eq!(spn.n_rows(), rows.len() as u64);
    }

    /// Conditional expectations stay within the support bounds of the column.
    #[test]
    fn conditional_expectation_within_bounds(
        rows in prop::collection::vec((0i64..40, 0i64..4), 20..150),
        evidence in 0i64..4,
    ) {
        let a: Vec<f64> = rows.iter().map(|&(x, _)| x as f64).collect();
        let b: Vec<f64> = rows.iter().map(|&(_, y)| y as f64).collect();
        let lo = a.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut spn = learn(vec![a, b]);
        let num = spn.evaluate(
            &SpnQuery::new(2).with_func(0, LeafFunc::X).with_pred(1, LeafPred::eq(evidence as f64)),
        );
        let den = spn.probability(&SpnQuery::new(2).with_pred(1, LeafPred::eq(evidence as f64)));
        if den > 1e-12 {
            let cond = num / den;
            prop_assert!(cond >= lo - 1e-9 && cond <= hi + 1e-9, "E[X|e] = {cond} ∉ [{lo}, {hi}]");
        }
    }
}
