//! SPN snapshots: a compact hand-rolled binary format so learned models can
//! be persisted and bulk-loaded like indexes (paper §2 likens ensemble
//! creation to index building).
//!
//! The format stores structure, weights, centroids, and leaf histograms;
//! derived state (leaf prefix sums) is rebuilt on load.

use std::io::{self, Read, Write};

use crate::node::{Node, ProductNode, Spn, SumNode};
use crate::wire::*;
use crate::{ColumnMeta, Leaf};

const MAGIC: &[u8; 5] = b"DSPN1";

/// Reject deserialized trees whose indices or arities would panic (or
/// overflow in debug builds) downstream — in arena compilation, evaluation,
/// or the direct-update walks. A snapshot that decodes byte-wise can still
/// be semantic garbage after bit flips; loading must fail with a clean
/// `InvalidData`, never a panic.
fn validate_node(node: &Node, n_cols: usize) -> io::Result<()> {
    match node {
        Node::Leaf(leaf) => leaf.validate(n_cols),
        Node::Sum(s) => {
            if s.scope.iter().any(|&c| c >= n_cols) {
                return Err(corrupt("sum scope column"));
            }
            if s.norm.len() != s.scope.len() {
                return Err(corrupt("sum norm arity"));
            }
            if s.centroids.iter().any(|c| c.len() != s.scope.len()) {
                return Err(corrupt("sum centroid arity"));
            }
            // Weight totals are summed all over inference and the arena
            // compiler with plain `+`; garbage counts must not be able to
            // overflow u64 (a panic in debug builds).
            let mut total: u64 = 0;
            for &c in &s.counts {
                total = total
                    .checked_add(c)
                    .ok_or_else(|| corrupt("sum counts overflow"))?;
            }
            for child in &s.children {
                validate_node(child, n_cols)?;
            }
            Ok(())
        }
        Node::Product(p) => {
            if p.scope.iter().any(|&c| c >= n_cols) {
                return Err(corrupt("product scope column"));
            }
            for child in &p.children {
                validate_node(child, n_cols)?;
            }
            Ok(())
        }
    }
}

fn write_node(w: &mut impl Write, node: &Node) -> io::Result<()> {
    match node {
        Node::Leaf(leaf) => {
            write_u8(w, 0)?;
            leaf.write_to(w)
        }
        Node::Sum(s) => {
            write_u8(w, 1)?;
            write_usizes(w, &s.scope)?;
            write_u64s(w, &s.counts)?;
            write_u32(w, s.centroids.len() as u32)?;
            for c in &s.centroids {
                write_f64s(w, c)?;
            }
            write_u32(w, s.norm.len() as u32)?;
            for &(m, sd) in &s.norm {
                write_f64(w, m)?;
                write_f64(w, sd)?;
            }
            write_u32(w, s.children.len() as u32)?;
            for child in &s.children {
                write_node(w, child)?;
            }
            Ok(())
        }
        Node::Product(p) => {
            write_u8(w, 2)?;
            write_usizes(w, &p.scope)?;
            write_u32(w, p.children.len() as u32)?;
            for child in &p.children {
                write_node(w, child)?;
            }
            Ok(())
        }
    }
}

fn read_node(r: &mut impl Read, depth: usize) -> io::Result<Node> {
    if depth > 512 {
        return Err(corrupt("node nesting"));
    }
    match read_u8(r)? {
        0 => Ok(Node::Leaf(Leaf::read_from(r)?)),
        1 => {
            let scope = read_usizes(r)?;
            let counts = read_u64s(r)?;
            let n_centroids = read_u32(r)? as usize;
            let centroids: Vec<Vec<f64>> = (0..n_centroids)
                .map(|_| read_f64s(r))
                .collect::<io::Result<_>>()?;
            let n_norm = read_u32(r)? as usize;
            let norm: Vec<(f64, f64)> = (0..n_norm)
                .map(|_| Ok::<_, io::Error>((read_f64(r)?, read_f64(r)?)))
                .collect::<io::Result<_>>()?;
            let n_children = read_u32(r)? as usize;
            if n_children != counts.len() || n_children != centroids.len() {
                return Err(corrupt("sum node arity"));
            }
            let children: Vec<Node> = (0..n_children)
                .map(|_| read_node(r, depth + 1))
                .collect::<io::Result<_>>()?;
            Ok(Node::Sum(SumNode {
                scope,
                children,
                counts,
                centroids,
                norm,
            }))
        }
        2 => {
            let scope = read_usizes(r)?;
            let n_children = read_u32(r)? as usize;
            if n_children > 1 << 20 {
                return Err(corrupt("product arity"));
            }
            let children: Vec<Node> = (0..n_children)
                .map(|_| read_node(r, depth + 1))
                .collect::<io::Result<_>>()?;
            Ok(Node::Product(ProductNode { scope, children }))
        }
        _ => Err(corrupt("node tag")),
    }
}

impl Spn {
    /// Serialize the model.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        write_u64(w, self.n_rows)?;
        write_u32(w, self.meta.len() as u32)?;
        for m in &self.meta {
            write_str(w, &m.name)?;
            write_u8(w, u8::from(m.discrete))?;
        }
        write_node(w, &self.root)
    }

    /// Deserialize a model written by [`Spn::write_to`].
    pub fn read_from(r: &mut impl Read) -> io::Result<Spn> {
        let mut magic = [0u8; 5];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(corrupt("magic"));
        }
        let n_rows = read_u64(r)?;
        let n_cols = read_u32(r)? as usize;
        if n_cols > 1 << 16 {
            return Err(corrupt("column count"));
        }
        let meta: Vec<ColumnMeta> = (0..n_cols)
            .map(|_| {
                Ok::<_, io::Error>(ColumnMeta {
                    name: read_str(r)?,
                    discrete: read_u8(r)? != 0,
                })
            })
            .collect::<io::Result<_>>()?;
        let root = read_node(r, 0)?;
        validate_node(&root, n_cols)?;
        Ok(Spn::new(root, meta, n_rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataView, LeafFunc, LeafPred, SpnParams, SpnQuery};

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    fn sample_spn() -> Spn {
        let mut rng = lcg(3);
        let n = 3000;
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        let mut c = Vec::with_capacity(n);
        for _ in 0..n {
            let cluster = rng() < 0.4;
            a.push(if cluster {
                (rng() * 3.0).floor()
            } else {
                3.0 + (rng() * 3.0).floor()
            });
            b.push(if cluster {
                rng() * 10.0
            } else {
                50.0 + rng() * 10.0
            });
            c.push(if rng() < 0.05 {
                f64::NAN
            } else {
                rng() * 100.0
            });
        }
        let cols = vec![a, b, c];
        let meta = vec![
            ColumnMeta::discrete("a"),
            ColumnMeta::continuous("b"),
            ColumnMeta::continuous("c"),
        ];
        // Force binning on column c by keeping the exact limit small.
        let params = SpnParams {
            max_distinct_exact: 100,
            ..SpnParams::default()
        };
        Spn::learn(DataView::new(&cols, &meta), &params)
    }

    #[test]
    fn snapshot_round_trip_preserves_all_queries() {
        let mut original = sample_spn();
        let mut buf = Vec::new();
        original.write_to(&mut buf).unwrap();
        let mut restored = Spn::read_from(&mut buf.as_slice()).unwrap();

        assert_eq!(original.n_rows(), restored.n_rows());
        assert_eq!(original.size(), restored.size());
        assert_eq!(original.column_index("b"), restored.column_index("b"));

        let queries = vec![
            SpnQuery::new(3),
            SpnQuery::new(3).with_pred(0, LeafPred::eq(2.0)),
            SpnQuery::new(3).with_pred(1, LeafPred::ge(30.0)),
            SpnQuery::new(3)
                .with_pred(0, LeafPred::In(vec![1.0, 4.0]))
                .with_func(1, LeafFunc::X),
            SpnQuery::new(3).with_pred(2, LeafPred::IsNull),
            SpnQuery::new(3)
                .with_func(2, LeafFunc::X2)
                .with_pred(0, LeafPred::le(3.0)),
        ];
        for q in &queries {
            let a = original.evaluate(q);
            let b = restored.evaluate(q);
            assert!((a - b).abs() < 1e-12, "query {q:?}: {a} vs {b}");
        }
    }

    #[test]
    fn restored_model_supports_updates() {
        let mut original = sample_spn();
        let mut buf = Vec::new();
        original.write_to(&mut buf).unwrap();
        let mut restored = Spn::read_from(&mut buf.as_slice()).unwrap();
        restored.insert(&[1.0, 5.0, 50.0]);
        restored.delete(&[1.0, 5.0, 50.0]);
        let q = SpnQuery::new(3).with_pred(0, LeafPred::eq(1.0));
        assert!((original.evaluate(&q) - restored.evaluate(&q)).abs() < 1e-12);
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut spn = sample_spn();
        let _ = &mut spn;
        let mut buf = Vec::new();
        spn.write_to(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(Spn::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let spn = sample_spn();
        let mut buf = Vec::new();
        spn.write_to(&mut buf).unwrap();
        let cut = buf.len() / 2;
        assert!(Spn::read_from(&mut &buf[..cut]).is_err());
    }
}
