//! Compiled max-product (MPE) inference over the arena (paper §3.1
//! "Extended Inference Algorithms", served for classification in §4.3).
//!
//! Where [`crate::batch::BatchEvaluator`] sweeps the arena in the
//! (+, ×) semiring, [`MaxProductEvaluator`] sweeps it in (max, ×): sum nodes
//! take the best weighted child instead of the weighted average, and each
//! query additionally tracks **which leaf of the target column** sits on its
//! current best branch. The tracked leaf id *is* the backtrace — it is
//! propagated upward through every argmax decision, so when the sweep
//! reaches the root the winning branch's target leaf is already resolved and
//! its mode is a single O(1) lookup in the arena's cached
//! [`crate::CompiledSpn`] `leaf_mode` table (rebuilt by `commit_patch`
//! whenever updates touch a leaf). No recursion, no second top-down pass,
//! no per-visit allocation. Both semirings run the same sweep skeleton and
//! lane-structured kernels ([`crate::kernel`]); the scalar reference path
//! survives as [`MaxProductEvaluator::evaluate_scalar`].
//!
//! Determinism: at a sum node the **lowest-index child wins ties** (a later
//! child must score *strictly* higher to replace the incumbent), and the
//! frozen `count/total` mixture weight multiplies the child score in exactly
//! the order the recursive oracle in [`crate::infer`] uses — so compiled and
//! recursive MPE agree **bitwise** (score and value), which
//! `tests/prop_mpe.rs` enforces. Results are also independent of kernel
//! flavor (SIMD vs scalar), tiling, and thread count: a probe reads only its
//! own slots and its own scratch lane.

use crate::arena::{ActiveSet, CompiledSpn};
use crate::batch::SWEEP_TILE;
use crate::kernel::{LeafValueTable, MaxProduct, SweepScratch, NO_LEAF};
use crate::SpnQuery;

/// One max-product probe: evidence (an [`SpnQuery`]) plus the column whose
/// most probable value is wanted. Any slot the query carries on the target
/// column itself is ignored, matching the recursive oracle.
#[derive(Debug, Clone)]
pub struct MpeProbe {
    /// Column whose mode on the best branch is returned.
    pub target: usize,
    /// Evidence conjunction (and optional moment slots) on the other columns.
    pub query: SpnQuery,
}

impl MpeProbe {
    pub fn new(target: usize, query: SpnQuery) -> Self {
        Self { target, query }
    }
}

/// Resolved max-product outcome of one probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpeOutcome {
    /// Max-product likelihood of the evidence along the winning branch
    /// (0 when the evidence has no support anywhere).
    pub score: f64,
    /// Mode of the target column on the winning branch; `None` when the
    /// model holds no leaf for the target (or that leaf is empty).
    pub value: Option<f64>,
}

impl Default for MpeOutcome {
    fn default() -> Self {
        Self {
            score: 0.0,
            value: None,
        }
    }
}

/// Reusable scratch for batched arena max-product evaluation; the MPE twin
/// of [`crate::BatchEvaluator`], with the same tiling scheme and per-batch
/// leaf-value table.
#[derive(Debug, Clone, Default)]
pub struct MaxProductEvaluator {
    scratch: SweepScratch,
    /// Per-batch (leaf × distinct slot) value table for self-contained
    /// evaluations; pooled sweeps pass a job-wide table in instead.
    table: LeafValueTable,
}

impl MaxProductEvaluator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate every probe against `spn`, returning one outcome per probe
    /// (same order). Counts as one fused sweep.
    pub fn evaluate(&mut self, spn: &CompiledSpn, probes: &[MpeProbe]) -> Vec<MpeOutcome> {
        let mut out = Vec::new();
        self.evaluate_into(spn, probes, &mut out);
        out
    }

    /// Like [`MaxProductEvaluator::evaluate`] but into a caller-owned buffer
    /// (cleared first). Counts as one fused sweep.
    pub fn evaluate_into(
        &mut self,
        spn: &CompiledSpn,
        probes: &[MpeProbe],
        out: &mut Vec<MpeOutcome>,
    ) {
        self.evaluate_into_impl(spn, probes, out, true, None);
    }

    /// Scalar-kernel twin of [`MaxProductEvaluator::evaluate`]: the
    /// reference path the SIMD kernels are differentially tested against
    /// (results are bitwise identical). Counts as one fused sweep.
    pub fn evaluate_scalar(&mut self, spn: &CompiledSpn, probes: &[MpeProbe]) -> Vec<MpeOutcome> {
        let mut out = Vec::new();
        self.evaluate_into_impl(spn, probes, &mut out, false, None);
        out
    }

    /// Pruned twin of [`MaxProductEvaluator::evaluate`]: sweeps only
    /// `active`'s compacted runs, seeding pruned-out boundary rows from the
    /// arena's neutral table. Bitwise identical to the full sweep whenever
    /// `active` covers the union of the batch's evidence columns **and
    /// every probe's target column** (see [`CompiledSpn::active_set`]).
    /// Counts as one fused sweep.
    pub fn evaluate_pruned(
        &mut self,
        spn: &CompiledSpn,
        probes: &[MpeProbe],
        active: &ActiveSet,
    ) -> Vec<MpeOutcome> {
        let mut out = Vec::new();
        self.evaluate_into_impl(spn, probes, &mut out, true, Some(active));
        out
    }

    fn evaluate_into_impl(
        &mut self,
        spn: &CompiledSpn,
        probes: &[MpeProbe],
        out: &mut Vec<MpeOutcome>,
        simd: bool,
        active: Option<&ActiveSet>,
    ) {
        out.clear();
        if probes.is_empty() {
            return;
        }
        spn.note_sweep();
        out.resize(probes.len(), MpeOutcome::default());
        // Leaf values are evaluated once per (leaf, distinct slot) for the
        // WHOLE batch; the per-tile sweeps below only gather from the table.
        self.table.build::<MaxProduct>(spn, probes);
        let mut base = 0;
        for (tile, dst) in probes.chunks(SWEEP_TILE).zip(out.chunks_mut(SWEEP_TILE)) {
            chunk(
                &mut self.scratch,
                &self.table,
                spn,
                tile,
                base,
                dst,
                simd,
                active,
            );
            base += tile.len();
        }
    }

    /// One forward max-product sweep for a single chunk of probes. Does
    /// **not** bump the model's sweep counter — callers orchestrating a
    /// larger fused sweep ([`crate::sweep_models`]) account for it once per
    /// model.
    pub fn evaluate_chunk(
        &mut self,
        spn: &CompiledSpn,
        probes: &[MpeProbe],
        out: &mut [MpeOutcome],
    ) {
        self.table.build::<MaxProduct>(spn, probes);
        chunk(
            &mut self.scratch,
            &self.table,
            spn,
            probes,
            0,
            out,
            true,
            None,
        );
    }

    /// Scalar-kernel twin of [`MaxProductEvaluator::evaluate_chunk`].
    pub fn evaluate_chunk_scalar(
        &mut self,
        spn: &CompiledSpn,
        probes: &[MpeProbe],
        out: &mut [MpeOutcome],
    ) {
        self.table.build::<MaxProduct>(spn, probes);
        chunk(
            &mut self.scratch,
            &self.table,
            spn,
            probes,
            0,
            out,
            false,
            None,
        );
    }

    /// Pooled-tile entry: sweep one tile against a **job-wide** leaf-value
    /// table built by the submitter (`base` = the tile's offset within the
    /// job's probe batch), so tiles never re-evaluate shared leaf work.
    /// `active` prunes the tile's sweep to the job's active sub-DAG.
    pub(crate) fn evaluate_chunk_shared(
        &mut self,
        spn: &CompiledSpn,
        probes: &[MpeProbe],
        table: &LeafValueTable,
        base: usize,
        out: &mut [MpeOutcome],
        active: Option<&ActiveSet>,
    ) {
        chunk(
            &mut self.scratch,
            table,
            spn,
            probes,
            base,
            out,
            true,
            active,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn chunk(
    scratch: &mut SweepScratch,
    table: &LeafValueTable,
    spn: &CompiledSpn,
    probes: &[MpeProbe],
    base: usize,
    out: &mut [MpeOutcome],
    simd: bool,
    active: Option<&ActiveSet>,
) {
    assert_eq!(probes.len(), out.len(), "output slice arity mismatch");
    if probes.is_empty() {
        return;
    }
    scratch.sweep::<MaxProduct>(spn, probes, table, base, simd, active);
    let scores = scratch.root_values();
    let leaves = scratch.root_aux();
    for ((slot, &score), &leaf) in out.iter_mut().zip(scores).zip(leaves) {
        *slot = MpeOutcome {
            score,
            value: match leaf {
                NO_LEAF => None,
                payload => spn.leaf_mode(payload),
            },
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, Spn, SumNode};
    use crate::{ColumnMeta, DataView, Leaf, LeafPred, SpnParams};

    fn leaf_over(values: &[f64], col: usize) -> Leaf {
        let cols = vec![values.to_vec()];
        let meta = vec![ColumnMeta::discrete("x")];
        let data = DataView::new(&cols, &meta);
        let rows: Vec<u32> = (0..values.len() as u32).collect();
        let mut leaf = Leaf::build(&data, &rows, 0, 1000, 16);
        leaf.col = col;
        leaf
    }

    /// Hand-built SPN with two *exactly tied* clusters whose target modes
    /// differ: the lowest-index child must win on both paths.
    fn tied_spn() -> Spn {
        let root = Node::Sum(SumNode {
            scope: vec![0],
            children: vec![
                Node::Leaf(leaf_over(&[7.0, 7.0, 1.0], 0)),
                Node::Leaf(leaf_over(&[3.0, 3.0, 2.0], 0)),
            ],
            counts: vec![3, 3],
            centroids: vec![vec![-1.0], vec![1.0]],
            norm: vec![(0.0, 1.0)],
        });
        Spn::new(root, vec![ColumnMeta::discrete("x")], 6)
    }

    #[test]
    fn tied_clusters_break_toward_lowest_child_on_both_paths() {
        let mut spn = tied_spn();
        let compiled = spn.compile();
        let q = SpnQuery::new(1);
        // Child 0's mode is 7, child 1's is 3; weights tie at 1/2.
        assert_eq!(spn.most_probable_value(0, &q), Some(7.0));
        assert_eq!(compiled.most_probable_value(0, &q), Some(7.0));
    }

    #[test]
    fn leaf_mode_ties_break_toward_lowest_value() {
        // 1 and 2 both appear twice: the smaller value wins.
        let leaf = leaf_over(&[2.0, 1.0, 2.0, 1.0, 5.0], 0);
        assert_eq!(leaf.mode(), Some(1.0));
    }

    /// All-zero-weight sum node: no child ever becomes the incumbent, so
    /// the score is 0 and no target leaf resolves — on the SIMD and scalar
    /// kernels alike.
    #[test]
    fn all_zero_weight_sum_yields_empty_outcome() {
        let root = Node::Sum(SumNode {
            scope: vec![0],
            children: vec![
                Node::Leaf(leaf_over(&[7.0, 7.0], 0)),
                Node::Leaf(leaf_over(&[3.0], 0)),
            ],
            counts: vec![0, 0],
            centroids: vec![vec![-1.0], vec![1.0]],
            norm: vec![(0.0, 1.0)],
        });
        let spn = Spn::new(root, vec![ColumnMeta::discrete("x")], 0);
        let compiled = spn.compile();
        let probes: Vec<MpeProbe> = (0..33)
            .map(|_| MpeProbe::new(0, SpnQuery::new(1)))
            .collect();
        let simd = MaxProductEvaluator::new().evaluate(&compiled, &probes);
        let scalar = MaxProductEvaluator::new().evaluate_scalar(&compiled, &probes);
        assert_eq!(simd, scalar);
        for got in &simd {
            assert_eq!(got.score.to_bits(), 0.0f64.to_bits());
            assert_eq!(got.value, None);
        }
    }

    #[test]
    fn compiled_mpe_matches_oracle_on_learned_model() {
        let cols = vec![
            vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 0.0],
            vec![70.0, 80.0, 75.0, 20.0, 25.0, 30.0, 22.0, 72.0],
        ];
        let meta = vec![ColumnMeta::discrete("region"), ColumnMeta::discrete("age")];
        let mut spn = Spn::learn(DataView::new(&cols, &meta), &SpnParams::default());
        let compiled = spn.compile();
        for q in [
            SpnQuery::new(2),
            SpnQuery::new(2).with_pred(1, LeafPred::ge(60.0)),
            SpnQuery::new(2).with_pred(1, LeafPred::le(30.0)),
            // Empty support: nobody is 500 years old.
            SpnQuery::new(2).with_pred(1, LeafPred::eq(500.0)),
        ] {
            let (want_score, want_value) = spn.mpe_outcome(0, &q);
            let got =
                MaxProductEvaluator::new().evaluate(&compiled, &[MpeProbe::new(0, q.clone())])[0];
            assert_eq!(got.value, want_value, "value for {q:?}");
            assert_eq!(got.score.to_bits(), want_score.to_bits(), "score for {q:?}");
        }
    }

    #[test]
    fn batches_straddle_tiles_and_mix_targets() {
        let cols = vec![
            vec![0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0, f64::NAN],
            vec![10.0, 20.0, 30.0, 30.0, 40.0, 10.0, 20.0, 30.0],
        ];
        let meta = vec![ColumnMeta::discrete("a"), ColumnMeta::discrete("b")];
        let mut spn = Spn::learn(DataView::new(&cols, &meta), &SpnParams::default());
        let compiled = spn.compile();
        let probes: Vec<MpeProbe> = (0..75)
            .map(|i| {
                let target = i % 2;
                let evidence = 1 - target;
                MpeProbe::new(
                    target,
                    SpnQuery::new(2).with_pred(evidence, LeafPred::ge((i % 5) as f64 * 9.0)),
                )
            })
            .collect();
        let got = MaxProductEvaluator::new().evaluate(&compiled, &probes);
        assert_eq!(got.len(), probes.len());
        for (i, p) in probes.iter().enumerate() {
            let (score, value) = spn.mpe_outcome(p.target, &p.query);
            assert_eq!(got[i].value, value, "probe {i}");
            assert_eq!(got[i].score.to_bits(), score.to_bits(), "probe {i}");
        }
        // SIMD and scalar kernels agree bitwise across the whole batch.
        let scalar = MaxProductEvaluator::new().evaluate_scalar(&compiled, &probes);
        for (i, (a, b)) in got.iter().zip(&scalar).enumerate() {
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "probe {i}");
            assert_eq!(a.value, b.value, "probe {i}");
        }
    }

    #[test]
    fn patched_arena_keeps_modes_fresh() {
        let cols = vec![vec![1.0, 1.0, 2.0], vec![5.0, 5.0, 9.0]];
        let meta = vec![ColumnMeta::discrete("a"), ColumnMeta::discrete("b")];
        let mut spn = Spn::learn(DataView::new(&cols, &meta), &SpnParams::default());
        let mut arena = spn.compile();
        assert_eq!(arena.most_probable_value(0, &SpnQuery::new(2)), Some(1.0));
        // Shift the majority to 2 through the in-place patch path.
        for _ in 0..4 {
            spn.insert_patch(&mut arena, &[2.0, 9.0]);
        }
        assert_eq!(arena.most_probable_value(0, &SpnQuery::new(2)), Some(2.0));
        assert!(arena.bitwise_eq(&spn.compile()), "mode cache drifted");
    }
}
