//! Randomized Dependence Coefficient (Lopez-Paz et al., NeurIPS 2013).
//!
//! `rdc(x, y)` estimates the largest canonical correlation between random
//! nonlinear projections of the empirical copulas of `x` and `y`. It is the
//! dependence measure the MSPN learner (and therefore DeepDB) uses for column
//! splits and table-correlation tests: distribution-free, detects nonlinear
//! and non-monotone dependence, and lands in `[0, 1]`.

use deepdb_linalg::{canonical_correlation, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for the RDC estimate.
#[derive(Debug, Clone, Copy)]
pub struct RdcParams {
    /// Number of random sine features per variable (k in the paper).
    pub features: usize,
    /// Scale of the random projection weights (s in the paper).
    pub scale: f64,
    /// Ridge regularization for the CCA step.
    pub regularization: f64,
    /// Seed for the random projections (fixed ⇒ deterministic estimates).
    pub seed: u64,
}

impl Default for RdcParams {
    fn default() -> Self {
        Self {
            features: 16,
            scale: 1.0 / 6.0,
            regularization: 1e-4,
            seed: 0x5eed_0001,
        }
    }
}

/// Empirical copula transform: ranks scaled to (0, 1], averaging ties.
///
/// NaNs must be filtered by the caller.
pub fn copula_transform(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        values[a as usize]
            .partial_cmp(&values[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Average rank over the tie group for stability on categoricals.
        let mut j = i;
        while j + 1 < n && values[order[j + 1] as usize] == values[order[i] as usize] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx as usize] = avg / n as f64;
        }
        i = j + 1;
    }
    ranks
}

/// Random sine feature map of a copula-transformed variable: `sin(w·u + b)`
/// with `w ~ N(0, (s·k)²)`-ish per the reference implementation.
fn sine_features(u: &[f64], params: &RdcParams, salt: u64) -> Matrix {
    let n = u.len();
    let k = params.features;
    let mut rng = StdRng::seed_from_u64(params.seed ^ salt.wrapping_mul(0x9e3779b97f4a7c15));
    // Gaussian weights via Box-Muller from the uniform RNG.
    let mut gauss = || {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let ws: Vec<f64> = (0..k).map(|_| gauss() / params.scale).collect();
    let bs: Vec<f64> = (0..k).map(|_| gauss() / params.scale).collect();
    let mut m = Matrix::zeros(n, k);
    for (i, &ui) in u.iter().enumerate() {
        let row = m.row_mut(i);
        for j in 0..k {
            row[j] = (ws[j] * ui + bs[j]).sin();
        }
    }
    m
}

/// RDC between two columns. Pairs where either side is NaN (NULL) are
/// dropped. Returns 0 when fewer than `min_pairs` complete pairs remain or a
/// side is constant.
pub fn rdc(x: &[f64], y: &[f64], params: &RdcParams) -> f64 {
    assert_eq!(x.len(), y.len(), "rdc inputs must be aligned");
    let mut xs = Vec::with_capacity(x.len());
    let mut ys = Vec::with_capacity(y.len());
    for (&a, &b) in x.iter().zip(y) {
        if a.is_finite() && b.is_finite() {
            xs.push(a);
            ys.push(b);
        }
    }
    const MIN_PAIRS: usize = 10;
    if xs.len() < MIN_PAIRS {
        return 0.0;
    }
    let constant = |v: &[f64]| v.iter().all(|&a| a == v[0]);
    if constant(&xs) || constant(&ys) {
        return 0.0;
    }
    let ux = copula_transform(&xs);
    let uy = copula_transform(&ys);
    let fx = sine_features(&ux, params, 1);
    let fy = sine_features(&uy, params, 2);
    canonical_correlation(&fx, &fy, params.regularization).unwrap_or(0.0)
}

/// Pairwise RDC matrix over `cols`, each entry computed on at most
/// `max_rows` rows chosen by deterministic stride sampling.
pub fn pairwise_rdc(
    cols: &[&[f64]],
    rows: &[u32],
    max_rows: usize,
    params: &RdcParams,
) -> Vec<Vec<f64>> {
    let d = cols.len();
    let picked: Vec<u32> = if rows.len() > max_rows {
        let stride = rows.len() as f64 / max_rows as f64;
        (0..max_rows)
            .map(|i| rows[(i as f64 * stride) as usize])
            .collect()
    } else {
        rows.to_vec()
    };
    let gathered: Vec<Vec<f64>> = cols
        .iter()
        .map(|c| picked.iter().map(|&r| c[r as usize]).collect())
        .collect();
    let mut m = vec![vec![0.0; d]; d];
    for i in 0..d {
        m[i][i] = 1.0;
        for j in (i + 1)..d {
            let v = rdc(&gathered[i], &gathered[j], params);
            m[i][j] = v;
            m[j][i] = v;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    #[test]
    fn copula_is_uniform_on_distinct_values() {
        let v = vec![10.0, 30.0, 20.0, 40.0];
        let u = copula_transform(&v);
        assert_eq!(u, vec![0.25, 0.75, 0.5, 1.0]);
    }

    #[test]
    fn copula_averages_ties() {
        let v = vec![1.0, 1.0, 2.0];
        let u = copula_transform(&v);
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert!((u[1] - 0.5).abs() < 1e-12);
        assert!((u[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_is_low_dependent_is_high() {
        let mut rng = lcg(11);
        let n = 1500;
        let x: Vec<f64> = (0..n).map(|_| rng()).collect();
        let y_ind: Vec<f64> = (0..n).map(|_| rng()).collect();
        let y_dep: Vec<f64> = x.iter().map(|&v| (4.0 * v).sin() + 0.05 * rng()).collect();
        let p = RdcParams::default();
        let low = rdc(&x, &y_ind, &p);
        let high = rdc(&x, &y_dep, &p);
        assert!(low < 0.3, "independent rdc = {low}");
        assert!(high > 0.7, "dependent rdc = {high}");
    }

    #[test]
    fn detects_non_monotone_dependence() {
        let mut rng = lcg(3);
        let n = 1500;
        let x: Vec<f64> = (0..n).map(|_| rng() * 2.0 - 1.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| v * v + 0.02 * rng()).collect();
        let v = rdc(&x, &y, &RdcParams::default());
        assert!(v > 0.6, "parabola rdc = {v}");
    }

    #[test]
    fn invariant_under_monotone_transform() {
        let mut rng = lcg(8);
        let n = 1000;
        let x: Vec<f64> = (0..n).map(|_| rng()).collect();
        let y: Vec<f64> = x.iter().map(|&v| 0.8 * v + 0.2 * rng()).collect();
        let p = RdcParams::default();
        let base = rdc(&x, &y, &p);
        let x_t: Vec<f64> = x.iter().map(|&v| (v * 5.0).exp()).collect();
        let transformed = rdc(&x_t, &y, &p);
        assert!((base - transformed).abs() < 0.05, "{base} vs {transformed}");
    }

    #[test]
    fn nulls_are_dropped_pairwise() {
        let mut rng = lcg(21);
        let n = 1200;
        let mut x: Vec<f64> = (0..n).map(|_| rng()).collect();
        let y: Vec<f64> = x.iter().map(|&v| v + 0.01 * rng()).collect();
        for i in (0..n).step_by(5) {
            x[i] = f64::NAN;
        }
        let v = rdc(&x, &y, &RdcParams::default());
        assert!(v > 0.9, "rdc with nulls = {v}");
    }

    #[test]
    fn degenerate_inputs_return_zero() {
        let p = RdcParams::default();
        assert_eq!(rdc(&[1.0; 100], &[2.0; 100], &p), 0.0);
        assert_eq!(rdc(&[f64::NAN; 50], &[1.0; 50], &p), 0.0);
        assert_eq!(rdc(&[1.0, 2.0], &[1.0, 2.0], &p), 0.0, "too few pairs");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = lcg(77);
        let x: Vec<f64> = (0..500).map(|_| rng()).collect();
        let y: Vec<f64> = (0..500).map(|_| rng()).collect();
        let p = RdcParams::default();
        assert_eq!(rdc(&x, &y, &p), rdc(&x, &y, &p));
    }

    #[test]
    fn pairwise_matrix_is_symmetric_with_unit_diagonal() {
        let mut rng = lcg(5);
        let n = 400usize;
        let a: Vec<f64> = (0..n).map(|_| rng()).collect();
        let b: Vec<f64> = a.iter().map(|&v| 1.0 - v).collect();
        let c: Vec<f64> = (0..n).map(|_| rng()).collect();
        let cols: Vec<&[f64]> = vec![&a, &b, &c];
        let rows: Vec<u32> = (0..n as u32).collect();
        let m = pairwise_rdc(&cols, &rows, 1000, &RdcParams::default());
        #[allow(clippy::needless_range_loop)]
        for i in 0..3 {
            assert_eq!(m[i][i], 1.0);
            for j in 0..3 {
                assert_eq!(m[i][j], m[j][i]);
            }
        }
        assert!(
            m[0][1] > 0.9,
            "perfect anticorrelation should be detected: {}",
            m[0][1]
        );
        assert!(m[0][2] < 0.35);
    }
}
