//! SPN node structure and the top-level [`Spn`] handle.

use crate::{ColumnMeta, Leaf};

/// Sum node: a mixture over row clusters. Weights are stored as raw counts so
/// the update algorithm can increment/decrement them; centroids and
/// normalization statistics route inserted tuples to the nearest cluster
/// (paper Algorithm 1).
#[derive(Debug, Clone)]
pub struct SumNode {
    pub scope: Vec<usize>,
    pub children: Vec<Node>,
    /// Row count per child (weights = counts / Σcounts).
    pub counts: Vec<u64>,
    /// K-means centroids in z-space, aligned with `scope`.
    pub centroids: Vec<Vec<f64>>,
    /// Per-scope-column (mean, std) of the z-transform used for `centroids`.
    pub norm: Vec<(f64, f64)>,
}

/// Product node: independent column groups.
#[derive(Debug, Clone)]
pub struct ProductNode {
    pub scope: Vec<usize>,
    pub children: Vec<Node>,
}

/// A tree-structured SPN node.
#[derive(Debug, Clone)]
pub enum Node {
    Sum(SumNode),
    Product(ProductNode),
    Leaf(Leaf),
}

impl Node {
    /// Columns this node models, borrowed (leaves store their own one-element
    /// scope, so no visit allocates).
    pub fn scope(&self) -> &[usize] {
        match self {
            Node::Sum(s) => &s.scope,
            Node::Product(p) => &p.scope,
            Node::Leaf(l) => l.scope(),
        }
    }

    /// Total node count of the subtree (structure size metric).
    pub fn size(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Sum(s) => 1 + s.children.iter().map(Node::size).sum::<usize>(),
            Node::Product(p) => 1 + p.children.iter().map(Node::size).sum::<usize>(),
        }
    }

    /// Depth of the subtree.
    pub fn depth(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Sum(s) => 1 + s.children.iter().map(Node::depth).max().unwrap_or(0),
            Node::Product(p) => 1 + p.children.iter().map(Node::depth).max().unwrap_or(0),
        }
    }
}

/// A learned Sum-Product Network over an opaque `f64` matrix.
#[derive(Debug, Clone)]
pub struct Spn {
    pub(crate) root: Node,
    pub(crate) meta: Vec<ColumnMeta>,
    pub(crate) n_rows: u64,
}

impl Spn {
    pub fn n_columns(&self) -> usize {
        self.meta.len()
    }

    /// Number of rows currently represented (training rows ± updates).
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    pub fn meta(&self) -> &[ColumnMeta] {
        &self.meta
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.meta.iter().position(|m| m.name == name)
    }

    /// Node count (model size diagnostic).
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// Tree depth diagnostic.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    pub(crate) fn new(root: Node, meta: Vec<ColumnMeta>, n_rows: u64) -> Self {
        Self { root, meta, n_rows }
    }

    /// Verify the mass bookkeeping invariant that direct updates must
    /// preserve (paper Algorithm 1): every node's represented row count —
    /// leaf total, sum-of-counts, or the shared count of a product's
    /// children — matches what its parent routed into it, and the root mass
    /// equals [`Spn::n_rows`]. Returns a description of the first violation,
    /// or `None` when consistent. Diagnostic for tests; O(nodes).
    pub fn consistency_error(&self) -> Option<String> {
        fn mass(node: &Node) -> Result<u64, String> {
            match node {
                Node::Leaf(l) => Ok(l.total()),
                Node::Sum(s) => {
                    for (k, child) in s.children.iter().enumerate() {
                        let m = mass(child)?;
                        if m != s.counts[k] {
                            return Err(format!(
                                "sum child {k} holds mass {m} but its count is {}",
                                s.counts[k]
                            ));
                        }
                    }
                    Ok(s.counts.iter().sum())
                }
                Node::Product(p) => {
                    let masses: Vec<u64> = p.children.iter().map(mass).collect::<Result<_, _>>()?;
                    if let Some((&first, rest)) = masses.split_first() {
                        if rest.iter().any(|&m| m != first) {
                            return Err(format!("product children disagree on mass: {masses:?}"));
                        }
                        Ok(first)
                    } else {
                        Ok(0)
                    }
                }
            }
        }
        match mass(&self.root) {
            Err(e) => Some(e),
            Ok(m) if m != self.n_rows => Some(format!("root mass {m} != n_rows {}", self.n_rows)),
            Ok(_) => None,
        }
    }
}
